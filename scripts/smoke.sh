#!/usr/bin/env bash
# One smoke per experiment: run the quick binary, then gate on its JSON
# artifacts with jq. This is the single home of the smoke + assert
# pairs — both .github/workflows/ci.yml and scripts/ci_local.sh call in
# here, so the two gates can never drift apart.
#
# Usage:
#   scripts/smoke.sh e18        # one experiment
#   scripts/smoke.sh all        # e15 through e22, in order
#
# Requires: the repo toolchain and `jq`. Offline like CI.

set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_TERM_COLOR=${CARGO_TERM_COLOR:-always}
export CARGO_NET_OFFLINE=true

if ! command -v jq >/dev/null 2>&1; then
    echo "smoke: jq is required (the gates assert on experiment artifacts with it)" >&2
    exit 1
fi

quick() { cargo run --release -p tinymlops_bench --bin "$1" -- --quick; }

smoke_e15() {
    # e15 has no quick mode: the full 100k-request replay IS the smoke.
    cargo run --release -p tinymlops_bench --bin e15_serving
}

smoke_e16() {
    quick e16_sharding
    jq -e '.rows | length >= 4' results/e16_sharding_fleet.json
    jq -e '.rows[-1].node == "fleet"' results/e16_sharding_fleet.json
    jq -e '.rows[0].unrefunded == "0"' results/e16_sharding_refunds.json
}

smoke_e17() {
    quick e17_live_serving
    jq -e '.rows | length == 3' results/e17_live_parity.json
    jq -e '.rows[-1].backend == "identical" and .rows[-1].served == "yes"' results/e17_live_parity.json
    jq -e '.rows[-1].unrefunded == "0"' results/e17_live_parity.json
    jq -e '.rows | length == 2' results/e17_live_throughput.json
    jq -e '.rows[0].unrefunded == "0"' results/e17_live_wallmode.json
}

smoke_e18() {
    quick e18_migration
    # Every migrated tenant ends up served on its new home, no prepaid
    # query is lost (unrefunded 0, census equal), sim and live replays
    # are bit-identical, and the bounded-load cap held.
    jq -e '.rows | length >= 1' results/e18_migration_handoff.json
    jq -e '[.rows[] | select(.new_home_serves == "yes")] | length >= 1' results/e18_migration_handoff.json
    jq -e '[.rows[] | select(.unrefunded != "0" or .census != "equal")] | length == 0' results/e18_migration_handoff.json
    jq -e '.rows[-1].identical == "yes"' results/e18_migration_parity.json
    jq -e '.rows[0]["victim load after"] == "0"' results/e18_migration_drain.json
    jq -e '[.rows[] | select(.capped != "yes")] | length == 0' results/e18_migration_bounded.json
    jq -e '.rows[0].unrefunded == "0"' results/e18_migration_wall.json
}

smoke_e19() {
    quick e19_observability
    # Tracing must not change any serving outcome (sim and live
    # identical, off/on fleets equal), fleet quantiles must land within
    # one histogram bucket, and the Chrome-trace dump must carry both
    # handoff spans of the scripted migration.
    jq -e '.rows | length == 3' results/e19_observe_parity.json
    jq -e '[.rows[] | select(.identical == "NO")] | length == 0' results/e19_observe_parity.json
    jq -e '.rows[0]["trace events"] == "0" and .rows[0].windows == "0"' results/e19_observe_parity.json
    jq -e '.rows[1]["trace events"] == .rows[2]["trace events"]' results/e19_observe_parity.json
    jq -e '[.rows[] | select(.within != "yes")] | length == 0' results/e19_observe_hist.json
    jq -e '.rows | length >= 1' results/e19_observe_windows.json
    jq -e '[.rows[] | select(.["span kind"] == "handoff")][0].events == "2"' results/e19_observe_trace.json
    jq -e 'length >= 1 and ([.[] | select(.name == "handoff")] | length == 2)' results/e19_trace.json
}

smoke_e20() {
    quick e20_faults
    # A mid-stream crash must lose zero prepaid queries (unrefunded 0,
    # census exact, every chain verified), the same fault plan must
    # replay bit-identically on the threaded backend, an armed-but-empty
    # plan must change nothing, the brownout ladder must beat shed-only
    # under the flash crowd while holding p99, and a genuinely panicked
    # worker must surface as one structured NodeFailure instead of
    # killing the run.
    jq -e '.rows[0].unrefunded == "0" and .rows[0].census == "exact" and .rows[0].chains == "verified"' results/e20_faults_crash.json
    jq -e '(.rows[0]["failover sheds"] | tonumber) > 0' results/e20_faults_crash.json
    jq -e '.rows[-1].identical == "yes"' results/e20_faults_parity.json
    jq -e '.rows[-1].identical == "yes"' results/e20_faults_identity.json
    jq -e '.rows[-1].brownout_wins == "yes" and .rows[-1].p99_held == "yes"' results/e20_faults_brownout.json
    jq -e '(.rows[-1].succeeded | tonumber) > 0 and (.rows[-1].deadline_denied | tonumber) > 0' results/e20_faults_retry.json
    jq -e '.rows[0].panic_contained == "yes"' results/e20_faults_panic.json
}

smoke_e21() {
    quick e21_autoscale
    # The controlled run must actually scale (>= 1 join and >= 1 drain
    # inside the stream) while holding the p99/shed gates the static
    # fleet breaches, the controlled replay must be bit-identical sim vs
    # live (control log included), and an armed-but-untrippable
    # controller must change nothing.
    jq -e '.rows[-1].slo_held == "yes" and .rows[-1].controller_wins == "yes"' results/e21_autoscale_elastic.json
    jq -e '(.rows[-1].joins | tonumber) >= 1 and (.rows[-1].drains | tonumber) >= 1' results/e21_autoscale_elastic.json
    jq -e '.rows[0].slo_held == "NO"' results/e21_autoscale_elastic.json
    jq -e '.rows[0].identical == "yes" and (.rows[0].joins | tonumber) >= 1' results/e21_autoscale_parity.json
    jq -e '.rows[-1].identical == "yes"' results/e21_autoscale_identity.json
}

smoke_e22() {
    quick e22_overload
    # The lock-free-ingest replay must be bit-identical sim vs live on
    # the parity workload, with every admitted-then-shed query refunded.
    jq -e '.rows[0].identical == "yes"' results/e22_overload_parity.json
    jq -e '(.rows[0].requests | tonumber) >= 1000' results/e22_overload_parity.json
    jq -e '.rows[0].unrefunded == "0"' results/e22_overload_parity.json
    # The knee sweep must show goodput monotone non-increasing past the
    # knee (the level where goodput peaks), bounded retry amplification
    # (the token-bucket retry budget throttles retry storms), zero
    # unrefunded queries at every offered load, and the managed fabric
    # (brownout + controller) shedding less than the static open loop at
    # the top of the sweep.
    jq -e '[.rows[] | .["goodput %"] | tonumber] as $g | ($g | index(max)) as $k
           | [range($k; ($g | length) - 1)] | all(. as $i | $g[$i] + 1e-9 >= $g[$i + 1])' \
        results/e22_overload_knee.json
    jq -e '[.rows[] | .["retry amp"] | tonumber] | all(. <= 4.0)' results/e22_overload_knee.json
    jq -e '[.rows[] | select(.unrefunded != "0")] | length == 0' results/e22_overload_knee.json
    jq -e '.rows[-1] | (.["managed shed %"] | tonumber) < (.["open shed %"] | tonumber)' \
        results/e22_overload_knee.json
    # All four shaped arrival patterns ran and conserved prepaid volume.
    jq -e '.rows | length == 4' results/e22_overload_shaped.json
    jq -e '[.rows[] | select(.unrefunded != "0")] | length == 0' results/e22_overload_shaped.json
    # Wall-clock closed loop: every issued request is accounted for.
    jq -e '.rows[0] | (.issued | tonumber) == (.served | tonumber) + (.shed | tonumber) + (.lost | tonumber)' \
        results/e22_overload_wall.json
}

banner() { printf '\n==== smoke: %s ====\n' "$*"; }

experiments=(e15 e16 e17 e18 e19 e20 e21 e22)
target=${1:-all}

if [ "$target" = all ]; then
    for exp in "${experiments[@]}"; do
        banner "$exp"
        "smoke_$exp"
    done
elif declare -F "smoke_$target" >/dev/null; then
    banner "$target"
    "smoke_$target"
else
    echo "smoke: unknown experiment '$target' (expected one of: ${experiments[*]} all)" >&2
    exit 1
fi

printf '\nsmoke: PASS (%s)\n' "$target"
