#!/usr/bin/env bash
# Reproduce the full CI gate (.github/workflows/ci.yml) offline, in the
# same order CI runs it: fmt, clippy, release build, tier-1 + workspace
# tests, warning-free rustdoc, the experiment smokes with their jq
# assertions, and the bench smoke + regression gate.
#
# Usage:
#   scripts/ci_local.sh           # the whole gate
#   scripts/ci_local.sh lint      # one stage: lint|build|test|docs|smoke|bench
#
# Requires: the repo's pinned stable Rust toolchain and `jq`. No network:
# every dependency is vendored under shims/ (CARGO_NET_OFFLINE below
# enforces it, exactly like CI).

set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_TERM_COLOR=${CARGO_TERM_COLOR:-always}
export CARGO_NET_OFFLINE=true

stage=${1:-all}
run_stage() { [ "$stage" = all ] || [ "$stage" = "$1" ]; }

banner() { printf '\n==== %s ====\n' "$*"; }

if ! command -v jq >/dev/null 2>&1; then
    echo "ci_local: jq is required (CI asserts on experiment artifacts with it)" >&2
    exit 1
fi

if run_stage lint; then
    banner "lint: rustfmt"
    cargo fmt --all --check
    banner "lint: clippy (deny warnings)"
    cargo clippy --workspace --all-targets -- -D warnings
fi

if run_stage build; then
    banner "build (release)"
    cargo build --release
fi

if run_stage test; then
    banner "tier-1 tests"
    cargo test -q
    banner "workspace tests"
    cargo test --workspace -q
fi

if run_stage docs; then
    banner "rustdoc (deny warnings)"
    RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps
fi

if run_stage smoke; then
    banner "e15 serving smoke"
    cargo run --release -p tinymlops_bench --bin e15_serving
    banner "e16 sharding smoke + asserts"
    cargo run --release -p tinymlops_bench --bin e16_sharding -- --quick
    jq -e '.rows | length >= 4' results/e16_sharding_fleet.json
    jq -e '.rows[-1].node == "fleet"' results/e16_sharding_fleet.json
    jq -e '.rows[0].unrefunded == "0"' results/e16_sharding_refunds.json
    banner "e17 live serving smoke + asserts"
    cargo run --release -p tinymlops_bench --bin e17_live_serving -- --quick
    jq -e '.rows | length == 3' results/e17_live_parity.json
    jq -e '.rows[-1].backend == "identical" and .rows[-1].served == "yes"' results/e17_live_parity.json
    jq -e '.rows[-1].unrefunded == "0"' results/e17_live_parity.json
    jq -e '.rows | length == 2' results/e17_live_throughput.json
    jq -e '.rows[0].unrefunded == "0"' results/e17_live_wallmode.json
    banner "e18 live migration smoke + asserts"
    cargo run --release -p tinymlops_bench --bin e18_migration -- --quick
    jq -e '.rows | length >= 1' results/e18_migration_handoff.json
    jq -e '[.rows[] | select(.new_home_serves == "yes")] | length >= 1' results/e18_migration_handoff.json
    jq -e '[.rows[] | select(.unrefunded != "0" or .census != "equal")] | length == 0' results/e18_migration_handoff.json
    jq -e '.rows[-1].identical == "yes"' results/e18_migration_parity.json
    jq -e '.rows[0]["victim load after"] == "0"' results/e18_migration_drain.json
    jq -e '[.rows[] | select(.capped != "yes")] | length == 0' results/e18_migration_bounded.json
    jq -e '.rows[0].unrefunded == "0"' results/e18_migration_wall.json
    banner "e19 observability smoke + asserts"
    cargo run --release -p tinymlops_bench --bin e19_observability -- --quick
    jq -e '.rows | length == 3' results/e19_observe_parity.json
    jq -e '[.rows[] | select(.identical == "NO")] | length == 0' results/e19_observe_parity.json
    jq -e '.rows[0]["trace events"] == "0" and .rows[0].windows == "0"' results/e19_observe_parity.json
    jq -e '.rows[1]["trace events"] == .rows[2]["trace events"]' results/e19_observe_parity.json
    jq -e '[.rows[] | select(.within != "yes")] | length == 0' results/e19_observe_hist.json
    jq -e '.rows | length >= 1' results/e19_observe_windows.json
    jq -e '[.rows[] | select(.["span kind"] == "handoff")][0].events == "2"' results/e19_observe_trace.json
    jq -e 'length >= 1 and ([.[] | select(.name == "handoff")] | length == 2)' results/e19_trace.json
    banner "e20 fault-injection smoke + asserts"
    cargo run --release -p tinymlops_bench --bin e20_faults -- --quick
    jq -e '.rows[0].unrefunded == "0" and .rows[0].census == "exact" and .rows[0].chains == "verified"' results/e20_faults_crash.json
    jq -e '(.rows[0]["failover sheds"] | tonumber) > 0' results/e20_faults_crash.json
    jq -e '.rows[-1].identical == "yes"' results/e20_faults_parity.json
    jq -e '.rows[-1].identical == "yes"' results/e20_faults_identity.json
    jq -e '.rows[-1].brownout_wins == "yes" and .rows[-1].p99_held == "yes"' results/e20_faults_brownout.json
    jq -e '(.rows[-1].succeeded | tonumber) > 0 and (.rows[-1].deadline_denied | tonumber) > 0' results/e20_faults_retry.json
    jq -e '.rows[0].panic_contained == "yes"' results/e20_faults_panic.json
    banner "e21 autoscale smoke + asserts"
    cargo run --release -p tinymlops_bench --bin e21_autoscale -- --quick
    jq -e '.rows[-1].slo_held == "yes" and .rows[-1].controller_wins == "yes"' results/e21_autoscale_elastic.json
    jq -e '(.rows[-1].joins | tonumber) >= 1 and (.rows[-1].drains | tonumber) >= 1' results/e21_autoscale_elastic.json
    jq -e '.rows[0].slo_held == "NO"' results/e21_autoscale_elastic.json
    jq -e '.rows[0].identical == "yes" and (.rows[0].joins | tonumber) >= 1' results/e21_autoscale_parity.json
    jq -e '.rows[-1].identical == "yes"' results/e21_autoscale_identity.json
fi

if run_stage bench; then
    banner "b01 kernel bench smoke + regression gate"
    cargo run --release -p tinymlops_bench --bin b01_kernels -- --quick
    jq -e '.schema_version == 1 and (.runs | length >= 1)' results/BENCH_kernels.json
    # Fused-inference groups must be present in the newest run, the fused
    # int8 forward must beat f32, and the vpmaddwd dot must beat the
    # autovectorized kernel at batch >= 8.
    jq -e '.runs[-1].entries | map(.group) | (index("dot_i8_maddwd") != null) and (index("qmodel_fused") != null) and (index("xnor_serving") != null)' results/BENCH_kernels.json
    jq -e '[.runs[-1].entries[] | select(.id == "qmodel_fused_int8_fused")][0].speedup_vs_baseline > 1' results/BENCH_kernels.json
    jq -e '[.runs[-1].entries[] | select(.id | (startswith("dot_i8_b8x") or startswith("dot_i8_b32x")) and endswith("_maddwd"))] | length >= 1 and all(.speedup_vs_baseline > 1)' results/BENCH_kernels.json
    cargo run --release -p tinymlops_bench --bin b01_compare
fi

banner "ci_local: PASS (stage: $stage)"
