#!/usr/bin/env bash
# Reproduce the full CI gate (.github/workflows/ci.yml) offline, in the
# same order CI runs it: fmt, clippy, release build, tier-1 + workspace
# tests, warning-free rustdoc, the experiment smokes with their jq
# assertions, and the bench smoke + regression gate.
#
# Usage:
#   scripts/ci_local.sh           # the whole gate
#   scripts/ci_local.sh lint      # one stage: lint|build|test|docs|smoke|bench
#
# Requires: the repo's pinned stable Rust toolchain and `jq`. No network:
# every dependency is vendored under shims/ (CARGO_NET_OFFLINE below
# enforces it, exactly like CI).

set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_TERM_COLOR=${CARGO_TERM_COLOR:-always}
export CARGO_NET_OFFLINE=true

stage=${1:-all}
run_stage() { [ "$stage" = all ] || [ "$stage" = "$1" ]; }

banner() { printf '\n==== %s ====\n' "$*"; }

if ! command -v jq >/dev/null 2>&1; then
    echo "ci_local: jq is required (CI asserts on experiment artifacts with it)" >&2
    exit 1
fi

if run_stage lint; then
    banner "lint: rustfmt"
    cargo fmt --all --check
    banner "lint: clippy (deny warnings)"
    cargo clippy --workspace --all-targets -- -D warnings
fi

if run_stage build; then
    banner "build (release)"
    cargo build --release
fi

if run_stage test; then
    banner "tier-1 tests"
    cargo test -q
    banner "workspace tests"
    cargo test --workspace -q
fi

if run_stage docs; then
    banner "rustdoc (deny warnings)"
    RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps
fi

if run_stage smoke; then
    # The smoke + jq assertion pairs live in scripts/smoke.sh, shared
    # verbatim with the CI test job (e15 through e22, in order).
    scripts/smoke.sh all
fi

if run_stage bench; then
    banner "b01 kernel bench smoke + regression gate"
    cargo run --release -p tinymlops_bench --bin b01_kernels -- --quick
    jq -e '.schema_version == 1 and (.runs | length >= 1)' results/BENCH_kernels.json
    # Fused-inference groups must be present in the newest run, the fused
    # int8 forward must beat f32, and the vpmaddwd dot must beat the
    # autovectorized kernel at batch >= 8.
    jq -e '.runs[-1].entries | map(.group) | (index("dot_i8_maddwd") != null) and (index("qmodel_fused") != null) and (index("xnor_serving") != null)' results/BENCH_kernels.json
    jq -e '[.runs[-1].entries[] | select(.id == "qmodel_fused_int8_fused")][0].speedup_vs_baseline > 1' results/BENCH_kernels.json
    jq -e '[.runs[-1].entries[] | select(.id | (startswith("dot_i8_b8x") or startswith("dot_i8_b32x")) and endswith("_maddwd"))] | length >= 1 and all(.speedup_vs_baseline > 1)' results/BENCH_kernels.json
    # Overload-serving groups: the ingest-queue handoff and closed-loop
    # serving benches must be present, and the lock-free queue must not
    # lose to the mutex baseline it replaced.
    jq -e '.runs[-1].entries | map(.group) | (index("ingest_queue") != null) and (index("serving_closed_loop") != null)' results/BENCH_kernels.json
    jq -e '[.runs[-1].entries[] | select(.id == "ingest_queue_handoff_lockfree")][0].speedup_vs_baseline >= 1' results/BENCH_kernels.json
    # Hard ns/op gate on the queue groups only — their workloads are
    # long-running enough to be meaningful on a shared runner.
    cargo run --release -p tinymlops_bench --bin b01_compare -- --fail-on-regression 50 --groups ingest_queue,serving_closed_loop
fi

banner "ci_local: PASS (stage: $stage)"
