//! Federated keyword spotting (the §I "virtual assistants" scenario):
//! wake-word models improve from user audio that never leaves the device.
//!
//! Demonstrates §III-D end to end:
//!   1. non-iid client data (every household sounds different),
//!   2. FedAvg vs FedProx under that heterogeneity,
//!   3. update compression to spare the radio budget,
//!   4. secure aggregation (the server never sees raw updates),
//!   5. per-user personalization on top of the global model.
//!
//! ```sh
//! cargo run --release --example keyword_spotting_federated
//! ```

use tinymlops::fed::{
    mean_gain, partition_dirichlet, personalize, Compression, FlConfig, FlServer, LocalTrainConfig,
};
use tinymlops::nn::data::keyword_features_noisy;
use tinymlops::nn::model::mlp;
use tinymlops::nn::train::evaluate;
use tinymlops::tensor::TensorRng;

fn main() {
    let seed = 21u64;
    let classes = 8; // eight keywords
                     // Noisy audio: without it every method saturates and there is
                     // nothing to compare.
    let data = keyword_features_noisy(2400, classes, 1.4, seed);
    let (train, test) = data.split(0.85, 0);
    println!(
        "keyword dataset: {} train / {} test examples, {} keywords, {} features",
        train.len(),
        test.len(),
        classes,
        train.feature_dim()
    );

    // 1. Heavily skewed households: Dirichlet(0.2).
    let clients = partition_dirichlet(&train, 12, 0.2, seed);
    let skew = tinymlops::fed::partition::label_skew(&clients, &train);
    println!("12 households, label skew (TV distance) {skew:.3}");

    // 2. FedAvg vs FedProx over the same partition.
    let base = mlp(&[16, 24, classes], &mut TensorRng::seed(seed));
    let run = |prox_mu: f32, compression: Compression, secure: bool| {
        let mut server = FlServer::new(
            base.clone(),
            clients.clone(),
            FlConfig {
                participation: 0.7,
                availability: 0.9,
                local: LocalTrainConfig {
                    epochs: 2,
                    prox_mu,
                    ..Default::default()
                },
                compression,
                secure_agg: secure,
                server_lr: 1.0,
                seed,
            },
        );
        let stats = server.run(15, &test);
        let last = stats.last().expect("rounds ran").clone();
        (last, server)
    };

    let (fedavg, _) = run(0.0, Compression::None, false);
    let (fedprox, _) = run(0.5, Compression::None, false);
    println!(
        "after 15 rounds on non-iid data: FedAvg acc {:.3} | FedProx(μ=0.5) acc {:.3}",
        fedavg.accuracy, fedprox.accuracy
    );

    // 3. Compression: radio bytes per round.
    for compression in [
        Compression::None,
        Compression::TopK { frac: 0.1 },
        Compression::Ternary,
        Compression::Sign,
    ] {
        let (stats, _) = run(0.5, compression, false);
        println!(
            "  {:<8} → {:>9} uplink bytes/round, final acc {:.3}",
            compression.name(),
            stats.uplink_bytes,
            stats.accuracy
        );
    }

    // 4. Secure aggregation changes nothing functionally.
    let (secure, server) = run(0.5, Compression::None, true);
    println!(
        "secure aggregation: acc {:.3} (masks cancel, server sees only sums)",
        secure.accuracy
    );

    // 5. Personalization: each household fine-tunes the global model.
    let reports = personalize(&server.global, &clients, &test, 4, 0.05, seed);
    let gain = mean_gain(&reports);
    println!(
        "personalization over {} households: mean local-accuracy gain {:+.3}",
        reports.len(),
        gain
    );
    let global_acc = evaluate(&server.global, &test);
    println!("global model generality: {global_acc:.3} on the shared test set");
}
