//! A "paid vision API on the edge" scenario: the §III-C pay-per-query
//! business model plus the §V/§VI protection stack, end to end on one
//! untrusted device.
//!
//! Walkthrough:
//!   1. the vendor encrypts the model for the device and signs the capsule,
//!   2. the user buys a prepaid package (voucher), goes offline, queries,
//!   3. quota enforcement denies at zero; sync detects rollback fraud,
//!   4. an attacker mounts an extraction attack; prediction poisoning and
//!      PRADA-style detection respond,
//!   5. a payment-authorizing backend demands a sum-check proof of an
//!      unmodified model run.
//!
//! ```sh
//! cargo run --release --example secure_vision_api
//! ```

use tinymlops::ipp::{extraction_attack, ExtractConfig, Poisoner};
use tinymlops::meter::{QuotaManager, RateCard, SyncServer, VoucherIssuer};
use tinymlops::nn::data::synth_digits;
use tinymlops::nn::model::mlp;
use tinymlops::nn::train::{evaluate, fit, FitConfig};
use tinymlops::nn::Adam;
use tinymlops::observe::{PradaDetector, StealingVerdict};
use tinymlops::quant::DistillConfig;
use tinymlops::quant::{QuantScheme, QuantizedModel};
use tinymlops::tensor::TensorRng;
use tinymlops::verify::VerifiableModel;

fn main() {
    let seed = 33u64;
    // Vendor trains the "vision" model.
    let data = synth_digits(1500, 0.08, seed);
    let (train, test) = data.split(0.85, 0);
    let mut rng = TensorRng::seed(seed);
    let mut model = mlp(&[64, 32, 10], &mut rng);
    let mut opt = Adam::new(0.005);
    fit(
        &mut model,
        &train,
        &mut opt,
        &FitConfig {
            epochs: 15,
            batch_size: 32,
            ..Default::default()
        },
    );
    println!("vendor model accuracy: {:.3}", evaluate(&model, &test));

    // 1. Encrypt for device 42.
    let master = [9u8; 32];
    let enc = tinymlops::ipp::encrypt_model(&model, &master, 42, [1u8; 12]);
    println!(
        "model encrypted for device 42 ({} bytes on flash)",
        enc.sealed.wire_len()
    );
    let device_model = tinymlops::ipp::decrypt_model(&enc, &master).expect("device unwraps");

    // 2. Prepaid package: 100 queries at the paper's $1.50/1k rate.
    let device_key = tinymlops::ipp::encrypt::device_key(&master, 42);
    let mut issuer = VoucherIssuer::new([7u8; 32]);
    let voucher = issuer.issue(100, 42);
    let mut quota = QuotaManager::new(device_key);
    quota.credit(voucher.quota, voucher.serial, 0);
    let mut backend = SyncServer::new();
    backend.provision(42, device_key);

    // Offline inference burns quota.
    let mut served = 0u64;
    for start in (0..100).step_by(20) {
        let x = test.x.slice_rows(start, start + 20);
        if quota.consume(20, served).is_ok() {
            let _ = device_model.predict(&x);
            served += 20;
        }
    }
    println!(
        "served {served} offline queries; balance {}",
        quota.balance()
    );

    // 3. Denial at zero + rollback detection at sync.
    let denied = quota.consume(1, 999).is_err();
    println!("101st query denied: {denied}");
    backend.sync(42, quota.log()).expect("honest sync");
    let rates = RateCard::cloud_vision_like();
    let invoice = tinymlops::meter::Invoice::compute(42, backend.billed(42), &rates);
    println!(
        "invoice for {} queries: {}",
        invoice.queries,
        invoice.amount_display()
    );
    // The fraudster restores a pre-purchase snapshot:
    let fresh = QuotaManager::new(device_key);
    let fraud = backend.sync(42, fresh.log());
    println!("rollback sync rejected: {}", fraud.is_err());

    // 4. Extraction attack vs defenses.
    let transfer = synth_digits(1000, 0.2, seed + 1);
    for poisoner in [
        Poisoner::None,
        Poisoner::Round { decimals: 1 },
        Poisoner::LabelOnly,
    ] {
        let report = extraction_attack(
            &device_model,
            poisoner,
            &transfer,
            &test,
            &ExtractConfig {
                query_budget: 1000,
                distill: DistillConfig {
                    epochs: 25,
                    ..Default::default()
                },
                surrogate_widths: vec![64, 24, 10],
                seed,
            },
        );
        println!(
            "extraction vs {:<10} → surrogate agreement {:.3}, task acc {:.3}",
            report.defense, report.agreement, report.surrogate_accuracy
        );
    }
    // PRADA-style detection of the synthetic query train.
    let mut det = PradaDetector::new(10, 256, 40, 6.0);
    let mut alarm_at = None;
    for i in 0..1200 {
        let base = i as f32 * 0.01;
        let q: Vec<f32> = (0..64).map(|d| (base + d as f32 * 0.015) % 1.0).collect();
        // The detector keys on the class the *model* assigns the query.
        let qt = tinymlops::tensor::Tensor::from_vec(q.clone(), &[1, 64]);
        let class = device_model.predict(&qt)[0];
        if det.observe(&q, class) == StealingVerdict::Attack && alarm_at.is_none() {
            alarm_at = Some(i);
        }
    }
    println!(
        "PRADA-style detector alarm after {:?} synthetic queries",
        alarm_at
    );

    // 5. Verifiable execution gate before payment authorization (§VI).
    let q = QuantizedModel::quantize(&device_model, &train.x, QuantScheme::Int8).expect("int8");
    let vm = VerifiableModel::from_quantized(&q).expect("provable");
    let batch = test.x.slice_rows(0, 4);
    let (y, proof) = vm.prove(&batch);
    println!(
        "inference proof: {} bytes for a 4-image batch; backend verification: {:?}",
        proof.size_bytes(),
        vm.verify(&batch, &y, &proof).is_ok()
    );
    let mut forged = y.clone();
    forged.data_mut()[0] += 3.0;
    println!(
        "forged 'authorized' output rejected: {}",
        vm.verify(&batch, &forged, &proof).is_err()
    );
}
