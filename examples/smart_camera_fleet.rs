//! Smart-surveillance fleet scenario (one of the paper's §I motivating
//! applications): a vendor operates hundreds of heterogeneous cameras.
//!
//! Demonstrates, across the fragmented fleet of §IV:
//!   1. publishing a detector and auto-generating optimized variants,
//!   2. per-device variant selection as battery/connectivity churns,
//!   3. edge-cloud split planning for the weakest devices,
//!   4. marketplace offload for over-deadline workloads,
//!   5. drift monitoring when scene statistics change.
//!
//! ```sh
//! cargo run --release --example smart_camera_fleet
//! ```

use tinymlops::core::{Platform, PlatformConfig};
use tinymlops::deploy::{best_split, local_execution, Marketplace, Requirements, Workload};
use tinymlops::device::{DeviceClass, NetworkKind, NumericScheme};
use tinymlops::nn::data::synth_digits;
use tinymlops::nn::model::mlp;
use tinymlops::nn::profile::profile;
use tinymlops::nn::train::{evaluate, fit, FitConfig};
use tinymlops::nn::Adam;
use tinymlops::observe::{DriftDetector, DriftStatus, KsDetector};
use tinymlops::registry::SemVer;
use tinymlops::tensor::TensorRng;

fn main() {
    let seed = 7u64;
    let mut platform = Platform::new(&PlatformConfig {
        fleet_size: 200,
        seed,
        signer_height: 6,
    });

    // 1. Train and publish the "object detector" (synthetic 10-class task).
    let data = synth_digits(1500, 0.08, seed);
    let (train, test) = data.split(0.85, 0);
    let mut rng = TensorRng::seed(seed);
    let mut model = mlp(&[64, 48, 10], &mut rng);
    let mut opt = Adam::new(0.005);
    fit(
        &mut model,
        &train,
        &mut opt,
        &FitConfig {
            epochs: 15,
            batch_size: 32,
            ..Default::default()
        },
    );
    println!("detector accuracy: {:.3}", evaluate(&model, &test));
    let (_base, variants) = platform
        .publish(
            "camera-detector",
            &model,
            SemVer::new(1, 0, 0),
            &train,
            &test,
        )
        .expect("publish");
    println!("registry holds 1 base + {} variants", variants.len());

    // 2. Roll out under a tight latency budget, then churn the fleet and
    //    watch selections change with state.
    let req = Requirements {
        max_latency_ms: 5.0,
        max_download_ms: 60_000.0,
        min_accuracy: 0.5,
        max_energy_mj: f64::INFINITY,
    };
    let before = platform.rollout_plan("camera-detector", &req);
    for _ in 0..10 {
        platform.fleet.step();
    }
    let after = platform.rollout_plan("camera-detector", &req);
    let changed = before
        .iter()
        .zip(&after)
        .filter(|(a, b)| match (a, b) {
            (Some(x), Some(y)) => x.record.id != y.record.id,
            (None, None) => false,
            _ => true,
        })
        .count();
    let served = after.iter().filter(|s| s.is_some()).count();
    println!(
        "rollout: {served}/200 cameras served; {changed} selections changed after state churn"
    );

    // 3. Edge-cloud split planning for the high-resolution enhancement
    //    pipeline (a bottleneck feature extractor), M0-class camera.
    let enhance = mlp(&[1024, 64, 512, 256, 10], &mut TensorRng::seed(seed + 1));
    let prof = profile(&enhance, &[1024]);
    let m0_rate = DeviceClass::McuM0.profile().macs_per_sec;
    println!("edge-cloud split (M0-class camera, cloud = 1e11 MACs/s):");
    for kind in [NetworkKind::Ble, NetworkKind::Cellular, NetworkKind::Wifi] {
        let plan = best_split(&prof, 1024 * 4, m0_rate, 1e11, &kind.model()).expect("plan");
        println!(
            "  {:<9} → run {:>2}/{} layers on-device, total {:>8.2} ms",
            kind.name(),
            plan.split,
            prof.len(),
            plan.total_ms
        );
    }

    // 4. Marketplace offload: a burst workload misses the local deadline on
    //    weak cameras; the market places it on a gateway.
    let weak = platform
        .fleet
        .devices
        .iter()
        .find(|d| d.profile.class == DeviceClass::McuM0)
        .expect("fleet has M0 cameras")
        .clone();
    let market = Marketplace::spawn(platform.fleet.devices.clone());
    let burst = Workload {
        macs: 80_000_000,
        input_bytes: 8192,
        scheme: NumericScheme::Int8,
        deadline_ms: 500.0,
    };
    match (local_execution(&weak, &burst), market.place(&burst)) {
        (None, Ok(bid)) => println!(
            "burst workload: infeasible locally on camera {}, marketplace node {} delivers in {:.1} ms for {} µ$",
            weak.id, bid.node, bid.latency_ms, bid.price_microdollars
        ),
        (Some(local), Ok(bid)) => println!(
            "burst workload: local {:.1} ms vs marketplace {:.1} ms ({} µ$)",
            local.latency_ms, bid.latency_ms, bid.price_microdollars
        ),
        (_, Err(e)) => println!("marketplace could not place workload: {e}"),
    }
    market.shutdown();

    // 5. Scene drift: night-time illumination shift trips the detector.
    let mut det = KsDetector::new(64, 0.001);
    for r in 0..test.len().min(300) {
        let mean = test.x.row(r).iter().sum::<f32>() / 64.0;
        det.observe(f64::from(mean));
    }
    let night = test.with_covariate_shift(-0.3); // darker frames
    let mut fired_at = None;
    for r in 0..night.len().min(300) {
        let mean = night.x.row(r).iter().sum::<f32>() / 64.0;
        if det.observe(f64::from(mean)) == DriftStatus::Drift && fired_at.is_none() {
            fired_at = Some(r);
        }
    }
    match fired_at {
        Some(r) => println!("scene drift detected after {r} night-time frames"),
        None => println!("scene drift NOT detected (unexpected)"),
    }
}
