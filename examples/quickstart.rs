//! Quickstart: run the full TinyMLOps lifecycle (paper Figure 1) once and
//! print the per-stage outcomes.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tinymlops::core::{run_lifecycle, LifecycleConfig};

fn main() {
    let cfg = LifecycleConfig {
        fleet_size: 60,
        dataset_size: 1200,
        fl_clients: 8,
        fl_rounds: 5,
        seed: 42,
    };
    println!(
        "TinyMLOps quickstart — Figure-1 lifecycle (seed {})",
        cfg.seed
    );
    println!("{:-<78}", "");
    let report = run_lifecycle(&cfg).expect("lifecycle should complete");
    for stage in &report.stages {
        println!(
            "  [{}] {:<18} {}",
            if stage.ok { "ok" } else { "!!" },
            stage.stage,
            stage.detail
        );
    }
    println!("{:-<78}", "");
    println!(
        "base model accuracy {:.3}; all stages ok: {}",
        report.base_accuracy,
        report.all_ok()
    );
}
