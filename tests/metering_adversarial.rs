//! Adversarial integration tests for the §III-C metering stack: every
//! fraud path the paper worries about ("secure offline way on untrusted
//! hardware") must be caught at sync time.

use tinymlops::meter::{
    audit::{AuditLog, EntryKind},
    QuotaManager, RateCard, SyncServer, VoucherIssuer, VoucherLedger,
};

const DEVICE_KEY: [u8; 32] = [11u8; 32];

fn provisioned_backend() -> SyncServer {
    let mut s = SyncServer::new();
    s.provision(1, DEVICE_KEY);
    s
}

#[test]
fn honest_device_lifecycle_bills_correctly() {
    let mut backend = provisioned_backend();
    let mut issuer = VoucherIssuer::new([2u8; 32]);
    let mut ledger = VoucherLedger::new();
    let mut quota = QuotaManager::new(DEVICE_KEY);

    // Two purchase/consume/sync cycles.
    let mut t = 0u64;
    for cycle in 0..2 {
        let v = issuer.issue(1500, 1);
        ledger.register(v.serial).unwrap();
        quota.credit(v.quota, v.serial, t);
        for _ in 0..15 {
            quota.consume(100, t).unwrap();
            t += 1;
        }
        let outcome = backend.sync(1, quota.log()).unwrap();
        assert_eq!(outcome.new_queries, 1500, "cycle {cycle}");
    }
    let invoice =
        tinymlops::meter::Invoice::compute(1, backend.billed(1), &RateCard::cloud_vision_like());
    assert_eq!(invoice.queries, 3000);
    // 3000 − 1000 free = 2000 billable at $1.50/1k.
    assert_eq!(invoice.amount_display(), "$3.00");
}

#[test]
fn understating_usage_breaks_the_chain() {
    let mut backend = provisioned_backend();
    let mut quota = QuotaManager::new(DEVICE_KEY);
    quota.credit(100, 1, 0);
    for t in 0..10 {
        quota.consume(10, t).unwrap();
    }
    backend.sync(1, quota.log()).unwrap();

    // Attacker fabricates a log claiming only 1 query, sealed with a
    // guessed key.
    let mut forged = AuditLog::new([0u8; 32]);
    forged.append(EntryKind::Query, 1, 0);
    assert!(backend.sync(1, &forged).is_err());
}

#[test]
fn rollback_to_presync_state_is_a_fork() {
    let mut backend = provisioned_backend();
    let mut quota = QuotaManager::new(DEVICE_KEY);
    quota.credit(50, 1, 0);
    quota.consume(50, 1).unwrap();
    backend.sync(1, quota.log()).unwrap();

    // Restore the device image from before the consumption.
    let mut restored = QuotaManager::new(DEVICE_KEY);
    restored.credit(50, 1, 0); // replays the same voucher state
    assert!(
        backend.sync(1, restored.log()).is_err(),
        "restored snapshot must not reconcile"
    );
}

#[test]
fn voucher_cloning_across_devices_is_caught() {
    let mut issuer = VoucherIssuer::new([2u8; 32]);
    let mut ledger = VoucherLedger::new();
    let v = issuer.issue(1000, 0); // bearer voucher
                                   // Device A redeems and syncs.
    ledger.register(v.serial).unwrap();
    // Device B presents the same serial.
    assert!(ledger.register(v.serial).is_err());
}

#[test]
fn quota_denial_is_exact_not_approximate() {
    let mut quota = QuotaManager::new(DEVICE_KEY);
    quota.credit(7, 1, 0);
    assert!(quota.consume(7, 1).is_ok());
    assert!(quota.consume(1, 2).is_err());
    // Audit trail shows exactly 7 queries, no phantom denials.
    assert_eq!(quota.log().query_count(), 7);
    quota.log().verify(&DEVICE_KEY).unwrap();
}
