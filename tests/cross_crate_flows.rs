//! Integration tests spanning multiple crates — the seams DESIGN.md calls
//! out: registry→deploy, quant→verify, ipp→observe, meter→crypto, fed→nn.

use tinymlops::deploy::{select_variant, Capsule, CapsuleMeta, Pipeline, Requirements};
use tinymlops::device::{default_mix, Fleet};
use tinymlops::ipp::{decrypt_model, encrypt_model, Poisoner, StaticWatermark};
use tinymlops::nn::data::synth_digits;
use tinymlops::nn::model::mlp;
use tinymlops::nn::train::{evaluate, fit, FitConfig};
use tinymlops::nn::Adam;
use tinymlops::quant::{QuantScheme, QuantizedModel};
use tinymlops::registry::{OptimizationPipeline, Registry, SemVer};
use tinymlops::tensor::TensorRng;
use tinymlops::verify::VerifiableModel;

fn trained_model() -> (
    tinymlops::nn::Sequential,
    tinymlops::nn::Dataset,
    tinymlops::nn::Dataset,
) {
    let data = synth_digits(1000, 0.08, 1234);
    let (train, test) = data.split(0.85, 0);
    let mut rng = TensorRng::seed(9);
    let mut model = mlp(&[64, 32, 10], &mut rng);
    let mut opt = Adam::new(0.005);
    fit(
        &mut model,
        &train,
        &mut opt,
        &FitConfig {
            epochs: 12,
            batch_size: 32,
            ..Default::default()
        },
    );
    (model, train, test)
}

/// Registry → deploy: variants produced by the pipeline are selectable for
/// every device class that has a supported scheme, and the artifact loaded
/// from the registry actually runs.
#[test]
fn registry_variants_deploy_across_fleet() {
    let (model, train, test) = trained_model();
    let registry = Registry::new();
    OptimizationPipeline::standard()
        .process_base(
            &registry,
            "m",
            &model,
            SemVer::new(1, 0, 0),
            &train,
            &test,
            0,
        )
        .unwrap();
    let family = registry.family_at("m", SemVer::new(1, 0, 0));
    let fleet = Fleet::generate(60, &default_mix(), 3);
    let req = Requirements {
        max_latency_ms: 1e6,
        max_download_ms: f64::INFINITY,
        min_accuracy: 0.0,
        max_energy_mj: f64::INFINITY,
    };
    let mut served = 0;
    for device in &fleet.devices {
        if let Ok(sel) = select_variant(&family, device, &req) {
            served += 1;
            // The artifact must load and predict.
            if sel.record.format.name() == "f32" {
                let m = registry.load_model(sel.record.id).unwrap();
                assert_eq!(m.predict(&test.x.slice_rows(0, 4)).len(), 4);
            }
        }
    }
    assert!(served >= 55, "nearly all devices served, got {served}/60");
}

/// Quant → verify: the registry's int8 variant is exactly the model the
/// proof system verifies — registry bytes → QuantizedModel → proof.
#[test]
fn registry_int8_artifact_is_provable() {
    let (model, train, test) = trained_model();
    let registry = Registry::new();
    OptimizationPipeline::standard()
        .process_base(
            &registry,
            "m",
            &model,
            SemVer::new(1, 0, 0),
            &train,
            &test,
            0,
        )
        .unwrap();
    let int8 = registry
        .all()
        .into_iter()
        .find(|r| r.format.name() == "int8")
        .unwrap();
    let bytes = registry.artifact(int8.id).unwrap();
    let q: QuantizedModel = serde_json::from_slice(&bytes).unwrap();
    let vm = VerifiableModel::from_quantized(&q).unwrap();
    let x = test.x.slice_rows(0, 6);
    let (y, proof) = vm.prove(&x);
    vm.verify(&x, &y, &proof).unwrap();
}

/// IPP → quant: a watermark embedded in f32 survives the int8 pipeline the
/// registry would apply (the §V "TinyMLOps platforms have to keep track of
/// the different versions … to associate different watermarks" flow).
#[test]
fn watermark_survives_int8_quantization() {
    let (mut model, train, _) = trained_model();
    let wm = StaticWatermark::random(32, 404);
    wm.embed(&mut model, &train, 0.05, 6, 0.01, 0);
    assert_eq!(wm.ber(&model), 0.0);
    // Quantize weights (fake-quant keeps the architecture, so the
    // white-box extraction still applies).
    let quantized = tinymlops::quant::fake_quantize(&model, 8);
    let ber = wm.ber(&quantized);
    assert!(ber < 0.1, "int8 rounding should keep BER low, got {ber}");
}

/// Capsule ↔ crypto: a capsule signed by one vendor chain verifies with
/// its root across serialization, and an attacker's re-signed capsule
/// does not.
#[test]
fn capsule_signing_chain_of_trust() {
    let (model, _, _) = trained_model();
    let mut vendor = tinymlops::crypto::MerkleSigner::generate(
        &mut tinymlops::crypto::Drbg::from_u64(5, b"vendor"),
        3,
    );
    let root = vendor.public_key();
    let capsule = Capsule::build(
        CapsuleMeta {
            name: "m".into(),
            version: "1.0.0".into(),
            scheme: "f32".into(),
            target: "any".into(),
        },
        &Pipeline::standard_classifier(0.0, 1.0),
        model.to_bytes().unwrap(),
        &mut vendor,
    )
    .unwrap();
    let wire = capsule.to_bytes();
    let parsed = Capsule::from_bytes(&wire).unwrap();
    parsed.verify(&root).unwrap();

    // Attacker swaps the model and re-signs with their own chain.
    let mut attacker = tinymlops::crypto::MerkleSigner::generate(
        &mut tinymlops::crypto::Drbg::from_u64(666, b"attacker"),
        3,
    );
    let evil = Capsule::build(
        parsed.meta.clone(),
        &Pipeline::standard_classifier(0.0, 1.0),
        parsed.model_bytes.clone(),
        &mut attacker,
    )
    .unwrap();
    assert!(evil.verify(&root).is_err(), "foreign signature rejected");
}

/// IPP → nn: encryption round-trips through model serialization without
/// touching behaviour, and the poisoned API still matches argmax.
#[test]
fn protected_serving_preserves_top1() {
    let (model, _, test) = trained_model();
    let enc = encrypt_model(&model, &[3u8; 32], 1, [1u8; 12]);
    let served = decrypt_model(&enc, &[3u8; 32]).unwrap();
    let x = test.x.slice_rows(0, 32);
    let clean = served.predict_proba(&x);
    for poisoner in [
        Poisoner::Round { decimals: 1 },
        Poisoner::TopOnly,
        Poisoner::LabelOnly,
        Poisoner::ReverseSigmoid { beta: 0.8 },
    ] {
        let out = poisoner.apply(&clean);
        assert_eq!(
            out.argmax_rows(),
            clean.argmax_rows(),
            "{} must not change answers for honest users",
            poisoner.name()
        );
    }
}

/// Quantized accuracy ordering across the whole pipeline (the E1 shape, as
/// an invariant): f32 ≥ int8 ≥ int2 up to small noise, and sizes strictly
/// shrink.
#[test]
fn quantization_accuracy_and_size_shape() {
    let (model, train, test) = trained_model();
    let f32_acc = evaluate(&model, &test);
    let acc = |s: QuantScheme| {
        QuantizedModel::quantize(&model, &train.x, s)
            .unwrap()
            .accuracy(&test.x, &test.y)
    };
    let size = |s: QuantScheme| {
        QuantizedModel::quantize(&model, &train.x, s)
            .unwrap()
            .size_bytes()
    };
    assert!(acc(QuantScheme::Int8) > f32_acc - 0.03);
    assert!(acc(QuantScheme::Int8) >= acc(QuantScheme::Int2) - 0.02);
    assert!(size(QuantScheme::Int8) > size(QuantScheme::Int4));
    assert!(size(QuantScheme::Int4) > size(QuantScheme::Int2));
    assert!(size(QuantScheme::Int2) > size(QuantScheme::Binary));
}
