//! Offline shim for `rayon`: ordered parallel map / for-each over slices,
//! implemented with scoped OS threads. Only the adapters this workspace
//! uses are provided (`par_iter`, `par_iter_mut`, `par_chunks_mut`,
//! `map`, `enumerate`, `for_each`, `collect`).

use std::thread;

pub mod prelude {
    //! Glob-import surface, mirroring `rayon::prelude`.
    pub use crate::{ParallelSlice, ParallelSliceMut};
}

fn pool_size(work_items: usize) -> usize {
    if work_items < 2 {
        return 1;
    }
    thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(8)
        .min(work_items)
}

/// `par_iter` on shared slices (and, via deref, `Vec`).
pub trait ParallelSlice<T: Sync> {
    /// Parallel shared iterator.
    fn par_iter(&self) -> ParIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { items: self }
    }
}

/// `par_iter_mut` / `par_chunks_mut` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel exclusive iterator.
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T>;
    /// Parallel iterator over contiguous mutable chunks of `size`.
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
        ParIterMut { items: self }
    }

    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
        assert!(size > 0, "par_chunks_mut: zero chunk size");
        ParChunksMut { items: self, size }
    }
}

/// Parallel iterator over `&T`.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Map each element; results keep slice order.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Run `f` on every element in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        let _: Vec<()> = self.map(f).collect();
    }
}

/// Mapped parallel iterator; terminal `collect` preserves order.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    /// Evaluate in parallel and collect in slice order.
    pub fn collect<R, C>(self) -> C
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
        C: FromIterator<R>,
    {
        let n = self.items.len();
        let workers = pool_size(n);
        if workers == 1 {
            return self.items.iter().map(&self.f).collect();
        }
        let chunk = n.div_ceil(workers);
        let f = &self.f;
        let per_chunk: Vec<Vec<R>> = thread::scope(|s| {
            let handles: Vec<_> = self
                .items
                .chunks(chunk)
                .map(|c| s.spawn(move || c.iter().map(f).collect::<Vec<R>>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        per_chunk.into_iter().flatten().collect()
    }
}

/// Parallel iterator over `&mut T`.
pub struct ParIterMut<'a, T> {
    items: &'a mut [T],
}

impl<'a, T: Send> ParIterMut<'a, T> {
    /// Run `f` on every element in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync,
    {
        let n = self.items.len();
        let workers = pool_size(n);
        if workers == 1 {
            self.items.iter_mut().for_each(f);
            return;
        }
        let chunk = n.div_ceil(workers);
        let f = &f;
        thread::scope(|s| {
            for c in self.items.chunks_mut(chunk) {
                s.spawn(move || c.iter_mut().for_each(f));
            }
        });
    }
}

/// Parallel iterator over mutable chunks.
pub struct ParChunksMut<'a, T> {
    items: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pair each chunk with its index.
    pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
        ParChunksMutEnumerate(self)
    }

    /// Run `f` on every chunk in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, c)| f(c));
    }
}

/// Enumerated mutable-chunk iterator.
pub struct ParChunksMutEnumerate<'a, T>(ParChunksMut<'a, T>);

impl<'a, T: Send> ParChunksMutEnumerate<'a, T> {
    /// Run `f` on every `(index, chunk)` pair in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        let mut work: Vec<(usize, &mut [T])> =
            self.0.items.chunks_mut(self.0.size).enumerate().collect();
        let workers = pool_size(work.len());
        if workers == 1 {
            work.into_iter().for_each(f);
            return;
        }
        let per_worker = work.len().div_ceil(workers);
        let f = &f;
        thread::scope(|s| {
            while !work.is_empty() {
                let batch: Vec<(usize, &mut [T])> =
                    work.drain(..per_worker.min(work.len())).collect();
                s.spawn(move || batch.into_iter().for_each(f));
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let data: Vec<u64> = (0..10_000).collect();
        let out: Vec<u64> = data.par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..10_000).map(|x| x * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn for_each_mut_touches_everything() {
        let mut data = vec![1u32; 5000];
        data.par_iter_mut().for_each(|x| *x += 1);
        assert!(data.iter().all(|&x| x == 2));
    }

    #[test]
    fn chunked_enumerate_covers_all_rows() {
        let mut data = vec![0usize; 12 * 7];
        data.par_chunks_mut(7).enumerate().for_each(|(i, chunk)| {
            for v in chunk {
                *v = i;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i / 7);
        }
    }
}
