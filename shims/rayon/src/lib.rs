//! Offline shim for `rayon`: ordered parallel map / for-each over slices
//! plus `join`, executed on a persistent worker pool ([`pool`]) instead of
//! spawning OS threads per region. Only the adapters this workspace uses
//! are provided (`par_iter`, `par_iter_mut`, `par_chunks_mut`, `map`,
//! `enumerate`, `for_each`, `collect`, `join`).
//!
//! Ordering guarantees (documented in `shims/README.md`): every adapter
//! assigns each element/chunk a fixed index and each task writes only its
//! own output slot, so results are bit-identical to a sequential run
//! regardless of worker count or scheduling. Side effects still interleave
//! nondeterministically, as with real rayon.

pub mod pool;

pub use pool::join;

use pool::run_region;

pub mod prelude {
    //! Glob-import surface, mirroring `rayon::prelude`.
    pub use crate::{ParallelSlice, ParallelSliceMut};
}

/// Pointer wrapper for handing disjoint `&mut` slots to pool tasks. Each
/// index is claimed exactly once (see [`pool`]), so no two tasks alias.
struct SendPtr<T>(*mut T);

// SAFETY: tasks access disjoint offsets; the region completes before the
// borrow the pointer came from ends.
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// The wrapped pointer. Closures must call this (capturing the whole
    /// wrapper) rather than touch `.0` — edition-2021 precise captures
    /// would otherwise capture the bare `*mut T`, which is not `Sync`.
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Contiguous index blocks: enough per-task work to amortize dispatch,
/// enough blocks (4 per thread) for the atomic-index claim to balance
/// uneven task costs.
fn block_size(n: usize) -> usize {
    n.div_ceil(pool::effective_threads() * 4).max(1)
}

/// `par_iter` on shared slices (and, via deref, `Vec`).
pub trait ParallelSlice<T: Sync> {
    /// Parallel shared iterator.
    fn par_iter(&self) -> ParIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { items: self }
    }
}

/// `par_iter_mut` / `par_chunks_mut` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel exclusive iterator.
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T>;
    /// Parallel iterator over contiguous mutable chunks of `size`.
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
        ParIterMut { items: self }
    }

    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
        assert!(size > 0, "par_chunks_mut: zero chunk size");
        ParChunksMut { items: self, size }
    }
}

/// Parallel iterator over `&T`.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Map each element; results keep slice order.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Run `f` on every element in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        let items = self.items;
        let n = items.len();
        let bs = block_size(n);
        run_region(n.div_ceil(bs), &|bi| {
            for item in &items[bi * bs..((bi + 1) * bs).min(n)] {
                f(item);
            }
        });
    }
}

/// Mapped parallel iterator; terminal `collect` preserves order.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    /// Evaluate in parallel and collect in slice order.
    pub fn collect<R, C>(self) -> C
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
        C: FromIterator<R>,
    {
        let items = self.items;
        let n = items.len();
        let mut slots: Vec<Option<R>> = Vec::new();
        slots.resize_with(n, || None);
        let out = SendPtr(slots.as_mut_ptr());
        let f = &self.f;
        let bs = block_size(n);
        run_region(n.div_ceil(bs), &|bi| {
            // One index drives a slice read and a disjoint slot write.
            #[allow(clippy::needless_range_loop)]
            for i in bi * bs..((bi + 1) * bs).min(n) {
                // SAFETY: slot `i` belongs to exactly one block/task.
                unsafe { *out.get().add(i) = Some(f(&items[i])) };
            }
        });
        slots
            .into_iter()
            .map(|s| s.expect("every index executed"))
            .collect()
    }
}

/// Parallel iterator over `&mut T`.
pub struct ParIterMut<'a, T> {
    items: &'a mut [T],
}

impl<'a, T: Send> ParIterMut<'a, T> {
    /// Run `f` on every element in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync,
    {
        let n = self.items.len();
        let base = SendPtr(self.items.as_mut_ptr());
        let bs = block_size(n);
        run_region(n.div_ceil(bs), &|bi| {
            for i in bi * bs..((bi + 1) * bs).min(n) {
                // SAFETY: element `i` belongs to exactly one block/task,
                // and the region outlives no borrows (blocks until done).
                f(unsafe { &mut *base.get().add(i) });
            }
        });
    }
}

/// Parallel iterator over mutable chunks.
pub struct ParChunksMut<'a, T> {
    items: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pair each chunk with its index.
    pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
        ParChunksMutEnumerate(self)
    }

    /// Run `f` on every chunk in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, c)| f(c));
    }
}

/// Enumerated mutable-chunk iterator.
pub struct ParChunksMutEnumerate<'a, T>(ParChunksMut<'a, T>);

impl<'a, T: Send> ParChunksMutEnumerate<'a, T> {
    /// Run `f` on every `(index, chunk)` pair in parallel. One chunk is
    /// one pool task — chunks (GEMM M-tile slabs, QDense batch rows) are
    /// already the caller's unit of useful work.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        let n = self.0.items.len();
        let size = self.0.size;
        let chunks = n.div_ceil(size);
        let base = SendPtr(self.0.items.as_mut_ptr());
        run_region(chunks, &|ci| {
            let start = ci * size;
            let len = size.min(n - start);
            // SAFETY: chunk `ci` covers `[start, start + len)`, disjoint
            // from every other chunk; one task per chunk.
            let chunk = unsafe { std::slice::from_raw_parts_mut(base.get().add(start), len) };
            f((ci, chunk));
        });
    }
}

#[cfg(test)]
mod tests {
    use super::pool::{with_dispatch, Dispatch};
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let data: Vec<u64> = (0..10_000).collect();
        let out: Vec<u64> = data.par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..10_000).map(|x| x * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn for_each_mut_touches_everything() {
        let mut data = vec![1u32; 5000];
        data.par_iter_mut().for_each(|x| *x += 1);
        assert!(data.iter().all(|&x| x == 2));
    }

    #[test]
    fn for_each_shared_visits_everything() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let data: Vec<u64> = (0..4001).collect();
        let sum = AtomicU64::new(0);
        data.par_iter().for_each(|&x| {
            sum.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4000 * 4001 / 2);
    }

    #[test]
    fn chunked_enumerate_covers_all_rows() {
        let mut data = vec![0usize; 12 * 7];
        data.par_chunks_mut(7).enumerate().for_each(|(i, chunk)| {
            for v in chunk {
                *v = i;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i / 7);
        }
    }

    #[test]
    fn every_dispatch_mode_agrees() {
        let data: Vec<i64> = (0..2500).map(|i| i * 3 - 700).collect();
        let run = || -> Vec<i64> { data.par_iter().map(|x| x.wrapping_mul(17) ^ 5).collect() };
        let pooled = run();
        let spawned = with_dispatch(Dispatch::Spawn, run);
        let sequential = with_dispatch(Dispatch::Sequential, run);
        assert_eq!(pooled, sequential);
        assert_eq!(spawned, sequential);
    }
}
