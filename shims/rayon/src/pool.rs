//! The persistent worker pool behind every parallel region.
//!
//! The first shim generation spawned OS threads per `par_iter`/
//! `par_chunks_mut` region; the packed GEMM enters a region per call, so
//! a training loop paid thread-spawn cost thousands of times. This module
//! replaces that with one lazily-created global pool:
//!
//! * **Atomic-index dispatch** — a region is `n` independent index tasks
//!   behind one type-erased `Fn(usize)`; workers (and the submitting
//!   thread, which always participates) claim indices with a single
//!   `fetch_add`, so there is no per-item queue or allocation.
//! * **Concurrent + nested regions** — regions are queued; a worker that
//!   opens a nested region services it itself while idle workers help,
//!   so serving-node threads can each run pooled GEMMs concurrently.
//! * **Deterministic results** — every index is executed exactly once and
//!   writes only its own output slot, so results are bit-identical to a
//!   sequential run regardless of worker count or scheduling.
//! * **Panic propagation** — a panicking task is caught on the worker,
//!   carried back, and re-thrown on the submitting thread, matching
//!   `std::thread::scope` semantics closely enough for tests.
//!
//! Dispatch can be redirected per thread via [`with_dispatch`] — the
//! benchmark harness uses [`Dispatch::Spawn`] to measure the pool against
//! the old spawn-per-region backend, and tests use
//! [`Dispatch::Sequential`] as the bit-for-bit reference.

use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;

/// How the current thread executes parallel regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dispatch {
    /// Persistent worker pool (the default).
    Pool,
    /// Scoped OS threads spawned per region — the pre-pool backend, kept
    /// as the benchmark baseline for pool-vs-spawn comparisons.
    Spawn,
    /// Run inline on the calling thread. The reference for bit-for-bit
    /// equivalence tests, and the forced mode when the pool would be a
    /// pure loss (1 thread configured).
    Sequential,
}

thread_local! {
    static DISPATCH: Cell<Dispatch> = const { Cell::new(Dispatch::Pool) };
}

/// Run `f` with this thread's parallel regions executed via `mode`.
/// Restores the previous mode afterwards (also on panic); nestable.
pub fn with_dispatch<R>(mode: Dispatch, f: impl FnOnce() -> R) -> R {
    DISPATCH.with(|d| {
        let prev = d.replace(mode);
        struct Restore<'a>(&'a Cell<Dispatch>, Dispatch);
        impl Drop for Restore<'_> {
            fn drop(&mut self) {
                self.0.set(self.1);
            }
        }
        let _restore = Restore(d, prev);
        f()
    })
}

static CONFIGURED_THREADS: OnceLock<usize> = OnceLock::new();
static GLOBAL: OnceLock<Option<Pool>> = OnceLock::new();

/// Fix the global pool's thread count (total parallelism, including the
/// submitting thread) before its first use. Returns `false` when the pool
/// or an earlier configuration already decided the count. Benchmarks use
/// this to get a multi-worker pool on single-core CI hosts.
pub fn configure_threads(threads: usize) -> bool {
    GLOBAL.get().is_none() && CONFIGURED_THREADS.set(threads.max(1)).is_ok()
}

/// Total parallelism a region fans out to: the configured override,
/// `TINYMLOPS_POOL_THREADS` / `RAYON_NUM_THREADS`, or the host's
/// available parallelism, capped at 8 (this workspace's kernels stop
/// scaling before that on the fleets we target).
pub fn effective_threads() -> usize {
    if let Some(&n) = CONFIGURED_THREADS.get() {
        return n.clamp(1, 64);
    }
    for var in ["TINYMLOPS_POOL_THREADS", "RAYON_NUM_THREADS"] {
        if let Some(n) = std::env::var(var)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            if n >= 1 {
                return n.min(64);
            }
        }
    }
    thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(8)
}

fn global() -> Option<&'static Pool> {
    GLOBAL
        .get_or_init(|| {
            let threads = effective_threads();
            (threads > 1).then(|| Pool::with_threads(threads))
        })
        .as_ref()
}

/// Execute `task(0)`, …, `task(n - 1)` exactly once each, in parallel when
/// the current dispatch mode and pool allow it. Blocks until every index
/// has finished; panics from tasks are re-thrown here.
pub fn run_region(n: usize, task: &(dyn Fn(usize) + Sync)) {
    if n == 0 {
        return;
    }
    let mode = DISPATCH.with(Cell::get);
    if n == 1 || mode == Dispatch::Sequential {
        for i in 0..n {
            task(i);
        }
        return;
    }
    if mode == Dispatch::Spawn {
        run_region_spawn(effective_threads(), n, task);
        return;
    }
    match global() {
        Some(pool) => pool.run(n, task),
        None => {
            for i in 0..n {
                task(i);
            }
        }
    }
}

/// The pre-pool backend: chunk the index space and spawn one scoped OS
/// thread per chunk. Public so `b01_kernels` can measure the pool against
/// the spawn cost it removed.
pub fn run_region_spawn(threads: usize, n: usize, task: &(dyn Fn(usize) + Sync)) {
    let workers = threads.clamp(1, n);
    if workers == 1 {
        for i in 0..n {
            task(i);
        }
        return;
    }
    let chunk = n.div_ceil(workers);
    thread::scope(|s| {
        let mut start = chunk; // caller runs the first chunk itself
        while start < n {
            let end = (start + chunk).min(n);
            s.spawn(move || {
                for i in start..end {
                    task(i);
                }
            });
            start = end;
        }
        for i in 0..chunk.min(n) {
            task(i);
        }
    });
}

/// Run two closures, potentially in parallel, returning both results —
/// the `rayon::join` surface, routed through the same pool.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let a = Mutex::new(Some(a));
    let b = Mutex::new(Some(b));
    let ra: Mutex<Option<RA>> = Mutex::new(None);
    let rb: Mutex<Option<RB>> = Mutex::new(None);
    run_region(2, &|i| {
        if i == 0 {
            let f = a.lock().unwrap().take().expect("join task 0 runs once");
            *ra.lock().unwrap() = Some(f());
        } else {
            let f = b.lock().unwrap().take().expect("join task 1 runs once");
            *rb.lock().unwrap() = Some(f());
        }
    });
    (
        ra.into_inner().unwrap().expect("join task 0 completed"),
        rb.into_inner().unwrap().expect("join task 1 completed"),
    )
}

/// Type-erased pointer to a region's task. Valid for the lifetime of the
/// region: the submitting thread blocks inside [`Pool::run`] until every
/// index has completed, keeping the borrow alive for the workers.
#[derive(Clone, Copy)]
struct TaskPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared calls are safe) and the pointer
// outlives all uses (see `TaskPtr` docs / `Pool::run`).
unsafe impl Send for TaskPtr {}
unsafe impl Sync for TaskPtr {}

/// One queued parallel region.
struct Job {
    task: TaskPtr,
    /// Next unclaimed index; claims are `fetch_add`, so overshoot past
    /// `total` is expected and simply means "no work left".
    next: AtomicUsize,
    total: usize,
    /// Completed indices; the region is done when this reaches `total`.
    done: AtomicUsize,
    /// First panic payload from any index, re-thrown by the submitter.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl Job {
    /// Claim and execute indices until none are left. Returns how many
    /// this thread completed.
    fn work(&self) -> usize {
        let mut completed = 0;
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.total {
                return completed;
            }
            let task = self.task;
            // SAFETY: `task` is valid for the whole region (see TaskPtr).
            let result = panic::catch_unwind(AssertUnwindSafe(|| unsafe { (*task.0)(i) }));
            if let Err(payload) = result {
                let mut slot = self.panic.lock().unwrap();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            self.done.fetch_add(1, Ordering::Release);
            completed += 1;
        }
    }

    fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire) >= self.total
    }
}

#[derive(Default)]
struct PoolState {
    /// FIFO of live regions. A job leaves the queue when its submitter
    /// observes completion; workers skip fully-claimed jobs.
    jobs: Vec<Arc<Job>>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Workers sleep here when no job has unclaimed indices.
    work_ready: Condvar,
    /// Submitters sleep here waiting for their job's last index.
    job_done: Condvar,
}

/// A persistent worker pool. One global instance backs every parallel
/// region; tests create private instances to pin the worker count.
pub struct Pool {
    shared: Arc<Shared>,
    workers: Vec<thread::JoinHandle<()>>,
    threads: usize,
}

impl Pool {
    /// A pool with `threads` total parallelism: `threads - 1` workers plus
    /// the submitting thread, which always participates in its own
    /// regions.
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState::default()),
            work_ready: Condvar::new(),
            job_done: Condvar::new(),
        });
        let workers = (1..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("tinymlops-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        Pool {
            shared,
            workers,
            threads,
        }
    }

    /// Total parallelism (workers + submitter).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Execute a region on this pool (see [`run_region`] for semantics).
    pub fn run(&self, n: usize, task: &(dyn Fn(usize) + Sync)) {
        if n == 0 {
            return;
        }
        if n == 1 || self.threads == 1 {
            for i in 0..n {
                task(i);
            }
            return;
        }
        // SAFETY: lifetime erasure only — this method does not return
        // until every index has run, so the pointer never outlives `task`
        // (see `TaskPtr`).
        let task_erased: &(dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(task) };
        let job = Arc::new(Job {
            task: TaskPtr(task_erased as *const _),
            next: AtomicUsize::new(0),
            total: n,
            done: AtomicUsize::new(0),
            panic: Mutex::new(None),
        });
        {
            let mut state = self.shared.state.lock().unwrap();
            state.jobs.push(Arc::clone(&job));
        }
        self.shared.work_ready.notify_all();
        // Participate, then wait for indices claimed by workers.
        job.work();
        let mut state = self.shared.state.lock().unwrap();
        while !job.is_done() {
            state = self.shared.job_done.wait(state).unwrap();
        }
        state.jobs.retain(|j| !Arc::ptr_eq(j, &job));
        drop(state);
        let payload = job.panic.lock().unwrap().take();
        if let Some(payload) = payload {
            panic::resume_unwind(payload);
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().unwrap();
            state.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut state = shared.state.lock().unwrap();
    loop {
        if state.shutdown {
            return;
        }
        // First job with unclaimed indices, FIFO.
        let job = state
            .jobs
            .iter()
            .find(|j| j.next.load(Ordering::Relaxed) < j.total)
            .cloned();
        match job {
            Some(job) => {
                drop(state);
                job.work();
                // Re-acquire before notifying: a submitter checks
                // `is_done` under this lock, so notifying while holding it
                // closes the check-then-wait window (no lost wakeups).
                state = shared.state.lock().unwrap();
                if job.is_done() {
                    shared.job_done.notify_all();
                }
            }
            None => {
                state = shared.work_ready.wait(state).unwrap();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_runs_every_index_exactly_once() {
        let pool = Pool::with_threads(4);
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        pool.run(1000, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn pool_is_reusable_across_many_regions() {
        let pool = Pool::with_threads(3);
        let total = AtomicUsize::new(0);
        for _ in 0..200 {
            pool.run(17, &|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 200 * 17);
    }

    #[test]
    fn nested_regions_complete() {
        let pool = Pool::with_threads(4);
        let total = AtomicUsize::new(0);
        pool.run(8, &|_| {
            // A nested region submitted from a worker must be serviced
            // even with every other worker busy in the outer region.
            pool.run(8, &|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn concurrent_submitters_share_the_pool() {
        let pool = Arc::new(Pool::with_threads(4));
        let total = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let pool = Arc::clone(&pool);
                let total = Arc::clone(&total);
                thread::spawn(move || {
                    for _ in 0..50 {
                        pool.run(13, &|_| {
                            total.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(total.load(Ordering::Relaxed), 4 * 50 * 13);
    }

    #[test]
    fn panics_propagate_to_the_submitter() {
        let pool = Pool::with_threads(4);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(64, &|i| {
                assert!(i != 40, "task 40 fails");
            });
        }));
        assert!(result.is_err(), "the region must re-throw the task panic");
        // And the pool still works afterwards.
        let total = AtomicUsize::new(0);
        pool.run(16, &|_| {
            total.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "ok".to_string());
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn spawn_backend_covers_all_indices() {
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        run_region_spawn(4, 100, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn dispatch_modes_are_scoped_and_restored() {
        assert_eq!(DISPATCH.with(Cell::get), Dispatch::Pool);
        with_dispatch(Dispatch::Sequential, || {
            assert_eq!(DISPATCH.with(Cell::get), Dispatch::Sequential);
            with_dispatch(Dispatch::Spawn, || {
                assert_eq!(DISPATCH.with(Cell::get), Dispatch::Spawn);
            });
            assert_eq!(DISPATCH.with(Cell::get), Dispatch::Sequential);
        });
        assert_eq!(DISPATCH.with(Cell::get), Dispatch::Pool);
    }
}
