//! Recursive-descent JSON parser producing a [`Value`] tree.

use crate::{Error, Map, Number, Value};

pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8, Error> {
        let b = self
            .peek()
            .ok_or_else(|| Error::msg("unexpected end of input"))?;
        self.pos += 1;
        Ok(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        let got = self.bump()?;
        if got != b {
            return Err(Error::msg(format!(
                "expected `{}`, got `{}` at byte {}",
                b as char,
                got as char,
                self.pos - 1
            )));
        }
        Ok(())
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error::msg(format!(
                "unexpected `{}` at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::msg("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b']' => return Ok(Value::Array(items)),
                c => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]`, got `{}` at byte {}",
                        c as char,
                        self.pos - 1
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b'}' => return Ok(Value::Object(map)),
                c => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}`, got `{}` at byte {}",
                        c as char,
                        self.pos - 1
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: consume a run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::msg(format!("invalid utf-8 in string: {e}")))?,
            );
            match self.bump()? {
                b'"' => return Ok(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let code = self.hex4()?;
                        // Surrogate pairs.
                        let c = if (0xd800..0xdc00).contains(&code) {
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let low = self.hex4()?;
                            let combined = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                            char::from_u32(combined)
                        } else {
                            char::from_u32(code)
                        };
                        out.push(c.ok_or_else(|| Error::msg("invalid \\u escape"))?);
                    }
                    c => return Err(Error::msg(format!("invalid escape `\\{}`", c as char))),
                },
                c => return Err(Error::msg(format!("raw control byte 0x{c:02x} in string"))),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self.bump()?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::msg("invalid hex digit in \\u escape"))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| Error::msg(format!("invalid number bytes: {e}")))?;
        let number = if is_float {
            Number::Float(
                text.parse::<f64>()
                    .map_err(|e| Error::msg(format!("bad number `{text}`: {e}")))?,
            )
        } else if text.starts_with('-') {
            match text.parse::<i64>() {
                Ok(v) => Number::NegInt(v),
                Err(_) => Number::Float(
                    text.parse::<f64>()
                        .map_err(|e| Error::msg(format!("bad number `{text}`: {e}")))?,
                ),
            }
        } else {
            match text.parse::<u64>() {
                Ok(v) => Number::PosInt(v),
                Err(_) => Number::Float(
                    text.parse::<f64>()
                        .map_err(|e| Error::msg(format!("bad number `{text}`: {e}")))?,
                ),
            }
        };
        Ok(Value::Number(number))
    }
}
