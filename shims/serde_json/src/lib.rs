//! Offline shim for `serde_json`: JSON text parsing/printing over the
//! serde shim's [`Value`] tree, plus `to_value`/`from_value` and the
//! `json!` macro.

mod parse;
mod print;

pub use serde::value::{Map, Number, Value};

/// Error produced by any serde_json entry point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.to_string())
    }
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Rebuild a deserializable type from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T, Error> {
    T::from_value(&value).map_err(Error::from)
}

/// Serialize to compact JSON text.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    Ok(print::compact(&value.to_value()))
}

/// Serialize to pretty-printed JSON text.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    Ok(print::pretty(&value.to_value()))
}

/// Serialize to compact JSON bytes.
pub fn to_vec<T: serde::Serialize>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Serialize to pretty-printed JSON bytes.
pub fn to_vec_pretty<T: serde::Serialize>(value: &T) -> Result<Vec<u8>, Error> {
    to_string_pretty(value).map(String::into_bytes)
}

/// Parse JSON text into a deserializable type.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let tree = parse::parse(text)?;
    T::from_value(&tree).map_err(Error::from)
}

/// Parse JSON bytes into a deserializable type.
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let text = std::str::from_utf8(bytes).map_err(|e| Error::msg(format!("invalid utf-8: {e}")))?;
    from_str(text)
}

/// Build a [`Value`] from a JSON-shaped literal or any serializable
/// expression. A token-tree muncher so nested literals (`null`, `-2`,
/// arrays, objects) compose like in the upstream crate.
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => { $crate::json_internal!($($tt)+) };
}

/// Implementation detail of [`json!`].
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // ---- array elements: accumulate exprs in [..], munch the rest ----
    (@array [$($elems:expr,)*]) => { vec![$($elems,)*] };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null),] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true),] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false),] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($arr:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($arr)*]),] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($obj:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($obj)*}),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last),])
    };
    (@array [$($elems:expr,)*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    // ---- object entries: key tokens accumulate in (..), then `:` value ----
    (@object $object:ident () () ()) => {};
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        $object.insert(($($key)+).to_string(), $value);
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        $object.insert(($($key)+).to_string(), $value);
    };
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(true)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(false)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: [$($arr:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!([$($arr)*])) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: {$($obj:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!({$($obj)*})) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) ($($rest)*));
    };

    // ---- entry points ----
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([]) => { $crate::Value::Array(vec![]) };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array($crate::json_internal!(@array [] $($tt)+))
    };
    ({}) => { $crate::Value::Object($crate::Map::new()) };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Object({
            let mut object = $crate::Map::new();
            $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
            object
        })
    };
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! value serializes")
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        let v = json!({ "a": 1, "b": [true, null], "c": "s" });
        assert_eq!(v["a"].as_u64(), Some(1));
        assert_eq!(v["b"][0].as_bool(), Some(true));
        assert!(v["b"][1].is_null());
        assert_eq!(v["c"].as_str(), Some("s"));
        let n = 5u64;
        assert_eq!(json!(n + 1).as_u64(), Some(6));
    }

    #[test]
    fn text_round_trip() {
        let v = json!({ "x": [1, -2, 2.5], "s": "he\"llo\n", "big": 18446744073709551615u64 });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
        assert_eq!(back["big"].as_u64(), Some(u64::MAX));
    }

    #[test]
    fn pretty_parses_back() {
        let v = json!({ "rows": [{ "a": 1 }, { "a": 2 }] });
        let text = String::from_utf8(to_vec_pretty(&v).unwrap()).unwrap();
        assert!(text.contains('\n'));
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn float_precision_survives() {
        let x = 0.1f32 + 0.7f32;
        let text = to_string(&x).unwrap();
        let back: f32 = from_str(&text).unwrap();
        assert_eq!(back, x, "f32 shortest round-trip");
    }
}
