//! JSON text rendering (compact and pretty).

use crate::{Number, Value};

/// Compact rendering (no whitespace).
pub fn compact(v: &Value) -> String {
    let mut out = String::new();
    write_value(v, None, 0, &mut out);
    out
}

/// Pretty rendering (two-space indent).
pub fn pretty(v: &Value) -> String {
    let mut out = String::new();
    write_value(v, Some(2), 0, &mut out);
    out
}

fn newline(indent: Option<usize>, level: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_value(v: &Value, indent: Option<usize>, level: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(indent, level + 1, out);
                write_value(item, indent, level + 1, out);
            }
            newline(indent, level, out);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(indent, level + 1, out);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, indent, level + 1, out);
            }
            newline(indent, level, out);
            out.push('}');
        }
    }
}

fn write_number(n: Number, out: &mut String) {
    match n {
        Number::PosInt(v) => out.push_str(&v.to_string()),
        Number::NegInt(v) => out.push_str(&v.to_string()),
        Number::Float(v) => {
            if v.is_finite() {
                // Rust's Display prints the shortest exact round-trip form.
                let text = v.to_string();
                out.push_str(&text);
                // Keep it a JSON *number* that parses back as float when it
                // matters: integral floats print bare (serde_json prints
                // `1.0`; both parse fine).
            } else {
                // JSON has no inf/nan; mirror serde_json by emitting null.
                out.push_str("null");
            }
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
