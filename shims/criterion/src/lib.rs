//! Offline shim for `criterion`: a minimal wall-clock micro-benchmark
//! harness with the `criterion_group!`/`criterion_main!` entry points.
//! It runs each benchmark for a bounded number of iterations and prints
//! mean ns/iter — enough to keep `cargo bench` working without the
//! upstream crate's statistics machinery.

use std::time::Instant;

/// Benchmark harness configuration and runner.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Register and immediately run one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples_ns: Vec::new(),
        };
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        let mean = if b.samples_ns.is_empty() {
            0.0
        } else {
            b.samples_ns.iter().sum::<f64>() / b.samples_ns.len() as f64
        };
        println!(
            "bench {id:<40} {mean:>14.1} ns/iter ({} samples)",
            b.samples_ns.len()
        );
        self
    }
}

/// Per-benchmark timing context.
pub struct Bencher {
    samples_ns: Vec<f64>,
}

/// How much setup output to batch per timing pass (shim: ignored).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

impl Bencher {
    /// Time `f` once per iteration.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        let start = Instant::now();
        std::hint::black_box(f());
        self.samples_ns.push(start.elapsed().as_nanos() as f64);
    }

    /// Time `routine` on a fresh `setup()` output, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        std::hint::black_box(routine(input));
        self.samples_ns.push(start.elapsed().as_nanos() as f64);
    }
}

/// Group benchmark functions into a single runnable entry point.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit a `main` that runs every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut ran = 0u32;
        Criterion::default()
            .sample_size(3)
            .bench_function("noop", |b| {
                b.iter(|| ());
                ran += 1;
            });
        assert_eq!(ran, 3);
    }

    #[test]
    fn iter_batched_uses_setup_output() {
        let mut b = Bencher {
            samples_ns: Vec::new(),
        };
        b.iter_batched(|| 21u64, |x| x * 2, BatchSize::SmallInput);
        assert_eq!(b.samples_ns.len(), 1);
    }
}
