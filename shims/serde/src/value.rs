//! The self-describing value tree: [`Value`], [`Number`], ordered [`Map`].

/// A JSON-shaped number preserving 64-bit integer precision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Floating point.
    Float(f64),
}

impl Number {
    /// Lossy f64 view.
    #[must_use]
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(v) => v as f64,
            Number::NegInt(v) => v as f64,
            Number::Float(v) => v,
        }
    }

    /// Exact u64 view when representable.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(v) => Some(v),
            Number::NegInt(v) => u64::try_from(v).ok(),
            Number::Float(v) => {
                if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 {
                    Some(v as u64)
                } else {
                    None
                }
            }
        }
    }

    /// Exact i64 view when representable.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(v) => i64::try_from(v).ok(),
            Number::NegInt(v) => Some(v),
            Number::Float(v) => {
                if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 {
                    Some(v as i64)
                } else {
                    None
                }
            }
        }
    }
}

/// An insertion-ordered string-keyed map (the `Object` payload).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// New empty map.
    #[must_use]
    pub fn new() -> Self {
        Map::default()
    }

    /// Build from ordered entries (later duplicates replace earlier ones).
    #[must_use]
    pub fn from_entries(entries: Vec<(String, Value)>) -> Self {
        let mut m = Map::new();
        for (k, v) in entries {
            m.insert(k, v);
        }
        m
    }

    /// Insert or replace, returning any previous value.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Look up by key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Mutable lookup by key.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Whether a key exists.
    #[must_use]
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Entry count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        Map::from_entries(iter.into_iter().collect())
    }
}

/// The self-describing value tree (JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / null.
    Null,
    /// Boolean.
    Bool(bool),
    /// Number.
    Number(Number),
    /// UTF-8 string.
    String(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// String-keyed object.
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    /// Object view.
    #[must_use]
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Array view.
    #[must_use]
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Mutable array view.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// String view.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Bool view.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Number views.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// Exact u64 view.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// Exact i64 view.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// Whether this is `Null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// Member access; yields `Null` for missing keys or non-objects.
    fn index(&self, key: &str) -> &Value {
        self.as_object().and_then(|m| m.get(key)).unwrap_or(&NULL)
    }
}

impl std::ops::IndexMut<&str> for Value {
    /// Member access for writes; inserts `Null` for missing keys.
    /// Panics when `self` is not an object.
    fn index_mut(&mut self, key: &str) -> &mut Value {
        let Value::Object(m) = self else {
            panic!("cannot index non-object value with string key {key:?}");
        };
        if !m.contains_key(key) {
            m.insert(key.to_string(), Value::Null);
        }
        m.get_mut(key).expect("just inserted")
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    /// Element access; yields `Null` out of bounds or for non-arrays.
    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl std::ops::IndexMut<usize> for Value {
    /// Element access for writes. Panics for non-arrays or out of bounds.
    fn index_mut(&mut self, idx: usize) -> &mut Value {
        let Value::Array(a) = self else {
            panic!("cannot index non-array value with {idx}");
        };
        &mut a[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_insertion_order_and_replaces() {
        let mut m = Map::new();
        m.insert("b".into(), Value::Null);
        m.insert("a".into(), Value::Bool(true));
        m.insert("b".into(), Value::Bool(false));
        let keys: Vec<&String> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, ["b", "a"]);
        assert_eq!(m.get("b"), Some(&Value::Bool(false)));
    }

    #[test]
    fn number_views_preserve_precision() {
        let big = u64::MAX - 3;
        assert_eq!(Number::PosInt(big).as_u64(), Some(big));
        assert_eq!(Number::NegInt(-5).as_i64(), Some(-5));
        assert_eq!(Number::Float(2.5).as_u64(), None);
    }

    #[test]
    fn index_chains() {
        let mut v = Value::Object(Map::from_entries(vec![(
            "rows".into(),
            Value::Array(vec![Value::Object(Map::new())]),
        )]));
        assert!(v["rows"][0]["x"].is_null());
        v["rows"][0]["x"] = Value::Bool(true);
        assert_eq!(v["rows"][0]["x"], Value::Bool(true));
    }
}
