//! Offline shim for `serde`: a self-describing value model plus
//! `Serialize`/`Deserialize` traits and derive macros.
//!
//! The real serde serializes through a visitor; this shim goes through an
//! owned [`Value`] tree instead (every type this workspace serializes is
//! small enough for that to be fine). `serde_json` renders that tree as
//! JSON text with the same external shape real serde would produce:
//! structs as objects, newtype structs transparent, enums externally
//! tagged.

mod impls;
pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{Map, Number, Value};

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Build the value tree for `self`.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild `Self`, failing with a message on shape mismatch.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

/// Deserialization error: a human-readable shape-mismatch message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Build an error from any message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}
