//! `Serialize`/`Deserialize` implementations for std types.

use crate::value::{Map, Number, Value};
use crate::{DeError, Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::custom("expected bool"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::custom("expected char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom("expected single-char string")),
        }
    }
}

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_u64().ok_or_else(|| {
                    DeError::custom(concat!("expected ", stringify!($t)))
                })?;
                <$t>::try_from(n)
                    .map_err(|_| DeError::custom(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}

ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_i64().ok_or_else(|| {
                    DeError::custom(concat!("expected ", stringify!($t)))
                })?;
                <$t>::try_from(n)
                    .map_err(|_| DeError::custom(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}

ser_de_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::custom("expected f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| DeError::custom("expected f32"))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let arr = v
            .as_array()
            .ok_or_else(|| DeError::custom("expected array"))?;
        if arr.len() != N {
            return Err(DeError::custom(format!(
                "expected array of length {N}, got {}",
                arr.len()
            )));
        }
        let items: Vec<T> = arr.iter().map(T::from_value).collect::<Result<_, _>>()?;
        items
            .try_into()
            .map_err(|_| DeError::custom("array length changed during conversion"))
    }
}

macro_rules! ser_de_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let arr = v.as_array().ok_or_else(|| DeError::custom("expected tuple array"))?;
                let expected = [$($idx),+].len();
                if arr.len() != expected {
                    return Err(DeError::custom("tuple arity mismatch"));
                }
                Ok(($($name::from_value(&arr[$idx])?,)+))
            }
        }
    )*};
}

ser_de_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(Map::from_entries(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        ))
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::custom("expected object map"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so serialization is deterministic.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(Map::from_entries(entries))
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::custom("expected object map"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(_: &Value) -> Result<Self, DeError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_containers() {
        let v: Vec<(u32, f32)> = vec![(1, 0.5), (2, -1.25)];
        let tree = v.to_value();
        let back: Vec<(u32, f32)> = Deserialize::from_value(&tree).unwrap();
        assert_eq!(v, back);

        let arr = [3u8; 32];
        let back: [u8; 32] = Deserialize::from_value(&arr.to_value()).unwrap();
        assert_eq!(arr, back);

        let mut m = BTreeMap::new();
        m.insert("accuracy".to_string(), 0.93f64);
        let back: BTreeMap<String, f64> = Deserialize::from_value(&m.to_value()).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn option_null_round_trip() {
        let some: Option<u64> = Some(u64::MAX);
        let none: Option<u64> = None;
        assert_eq!(
            Option::<u64>::from_value(&some.to_value()).unwrap(),
            Some(u64::MAX),
            "u64::MAX must survive (integer precision)"
        );
        assert_eq!(Option::<u64>::from_value(&none.to_value()).unwrap(), None);
    }

    #[test]
    fn integer_range_checks() {
        let big = Value::Number(Number::PosInt(300));
        assert!(u8::from_value(&big).is_err());
        assert_eq!(u16::from_value(&big).unwrap(), 300);
        let neg = Value::Number(Number::NegInt(-1));
        assert!(u64::from_value(&neg).is_err());
        assert_eq!(i32::from_value(&neg).unwrap(), -1);
    }
}
