//! Offline shim for `parking_lot`: non-poisoning `Mutex`/`RwLock` wrappers
//! over the standard library primitives. Only the API surface this
//! workspace uses is provided.

use std::sync::{Mutex as StdMutex, MutexGuard, RwLock as StdRwLock};
use std::sync::{RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` never returns a poison error (matching
/// `parking_lot::Mutex` semantics: a panicked holder does not poison).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose guards never surface poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
