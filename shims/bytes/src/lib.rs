//! Offline shim for `bytes`: a growable byte buffer plus the little-endian
//! `Buf`/`BufMut` cursor traits this workspace's wire formats use.

use std::ops::{Deref, DerefMut};

/// A growable, contiguous byte buffer.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// New empty buffer.
    #[must_use]
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// New empty buffer with reserved capacity.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Copy out the written bytes.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.buf.clone()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

/// Write-side cursor operations (little-endian).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);
    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Append a little-endian u16.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian u32.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian u64.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read-side cursor operations (little-endian). Reading past the end
/// panics, matching the upstream crate's contract — callers bounds-check
/// via [`Buf::remaining`] first.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Advance the cursor by `n` bytes.
    fn advance(&mut self, n: usize);
    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Copy `dest.len()` bytes out, advancing the cursor.
    fn copy_to_slice(&mut self, dest: &mut [u8]) {
        dest.copy_from_slice(&self.chunk()[..dest.len()]);
        self.advance(dest.len());
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }
    /// Read a little-endian u16.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        b.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(b)
    }
    /// Read a little-endian u32.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(b)
    }
    /// Read a little-endian u64.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    fn chunk(&self) -> &[u8] {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_round_trip() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u16_le(0x0102);
        b.put_u32_le(0xdead_beef);
        b.put_u64_le(42);
        b.put_slice(&[9, 9]);
        let bytes = b.to_vec();
        let mut r: &[u8] = &bytes;
        assert_eq!(r.remaining(), 16);
        assert_eq!(r.get_u16_le(), 0x0102);
        assert_eq!(r.get_u32_le(), 0xdead_beef);
        assert_eq!(r.get_u64_le(), 42);
        assert_eq!(r.chunk(), &[9, 9]);
        r.advance(2);
        assert_eq!(r.remaining(), 0);
    }
}
