//! Sampling strategies over explicit value sets.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Uniform choice among a fixed set of values.
pub struct Select<T>(Vec<T>);

/// `prop::sample::select(values)` — draw one of the given values.
pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
    assert!(!values.is_empty(), "select: empty choice set");
    Select(values)
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0[rng.below(self.0.len() as u64) as usize].clone()
    }
}
