//! Deterministic RNG for case generation.

/// xoshiro256++ seeded from the test name (fnv-1a).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Deterministic generator for a named test.
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self::from_seed(h)
    }

    /// Deterministic generator from a numeric seed.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in [0, bound).
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        self.next_u64() % bound
    }
}
