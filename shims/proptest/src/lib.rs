//! Offline shim for `proptest`: deterministic random-input property
//! testing with the strategy/assert subset this workspace uses.
//!
//! Each `proptest!` test runs a fixed number of seeded cases (no
//! shrinking). Failures panic with the case index so a run is
//! reproducible by construction — the seed derives from the test name.

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Arbitrary, Strategy};
pub use test_runner::TestRng;

/// Cases run per property.
pub const NUM_CASES: u32 = 64;

/// Maximum generate attempts when `prop_assume!` rejects cases.
pub const MAX_REJECTS: u32 = NUM_CASES * 20;

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; try another case.
    Reject,
    /// The property failed.
    Fail(String),
}

pub mod prelude {
    //! Glob-import surface, mirroring `proptest::prelude`.
    pub use crate as prop;
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{TestCaseError, TestRng};
}

/// Define property tests: each `fn name(x in strategy, ...) { body }`
/// becomes a `#[test]` running [`NUM_CASES`] seeded cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat_param in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut rng = $crate::TestRng::from_name(stringify!($name));
            let mut passed: u32 = 0;
            let mut attempts: u32 = 0;
            while passed < $crate::NUM_CASES {
                attempts += 1;
                assert!(
                    attempts <= $crate::MAX_REJECTS,
                    "proptest: too many rejected cases in {}",
                    stringify!($name)
                );
                $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    Ok(()) => passed += 1,
                    Err($crate::TestCaseError::Reject) => continue,
                    Err($crate::TestCaseError::Fail(msg)) => panic!(
                        "proptest property {} failed on case {}: {}",
                        stringify!($name),
                        passed,
                        msg
                    ),
                }
            }
        }
    )*};
}

/// Assert a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    }};
}

/// Assert inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = &$left;
        let right = &$right;
        if *left == *right {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

/// Reject the current case (inputs don't satisfy a precondition).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn assume_filters(v in 0u32..100) {
            prop_assume!(v % 2 == 0);
            prop_assert!(v % 2 == 0, "v={v} should be even");
        }

        #[test]
        fn tuples_and_vecs(ops in crate::collection::vec((any::<bool>(), 1u64..50), 0..80)) {
            prop_assert!(ops.len() < 80);
            for (_, amount) in &ops {
                prop_assert!((1..50).contains(amount));
            }
        }

        #[test]
        fn mapped_strategy(x in (0.0f32..1.0).prop_map(|v| v * 2.0)) {
            prop_assert!((0.0..2.0).contains(&x));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::from_name("t");
        let mut b = TestRng::from_name("t");
        let s = 0u64..1000;
        for _ in 0..32 {
            assert_eq!(
                Strategy::generate(&s, &mut a),
                Strategy::generate(&s, &mut b)
            );
        }
    }
}
