//! Strategies: how to draw a value of some type from the test RNG.

use crate::test_runner::TestRng;

/// A recipe for generating values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produce a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u64;
                let v = if span == u64::MAX { rng.next_u64() } else { rng.below(span + 1) };
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (self.end - self.start) * rng.next_f64() as $t
            }
        }
    )*};
}

float_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy over a type's whole domain, via [`Arbitrary`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// The `any::<T>()` entry point.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Arbitrary + Copy + Default, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let mut out = [T::default(); N];
        for slot in &mut out {
            *slot = T::arbitrary(rng);
        }
        out
    }
}
