//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for vectors whose length is drawn from `sizes`.
pub struct VecStrategy<S> {
    element: S,
    sizes: std::ops::Range<usize>,
}

/// `proptest::collection::vec(element, len_range)`.
pub fn vec<S: Strategy>(element: S, sizes: std::ops::Range<usize>) -> VecStrategy<S> {
    assert!(sizes.start < sizes.end, "empty vec size range");
    VecStrategy { element, sizes }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.sizes.end - self.sizes.start) as u64;
        let len = self.sizes.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
