//! Offline shim for `serde_derive`: hand-rolled `#[derive(Serialize)]` /
//! `#[derive(Deserialize)]` without syn/quote.
//!
//! Supports exactly the shapes this workspace declares: non-generic named
//! structs (with `#[serde(skip)]` fields), tuple structs, and enums with
//! unit / tuple / struct variants (externally tagged, like real serde).

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    skip: bool,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    shape: Shape,
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut is_enum = false;
    // Skip outer attributes and visibility; find `struct` / `enum`.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                i += 1;
                break;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                is_enum = true;
                i += 1;
                break;
            }
            Some(_) => i += 1,
            None => panic!("serde_derive shim: no struct/enum keyword found"),
        }
    }
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive shim: generic type `{name}` is not supported");
        }
    }
    let shape = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if is_enum {
                Shape::Enum(parse_variants(g.stream()))
            } else {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::TupleStruct(count_top_level_fields(g.stream()))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
        other => panic!("serde_derive shim: unexpected body for `{name}`: {other:?}"),
    };
    Input { name, shape }
}

/// Whether an attribute group (the `[...]` part) is `serde(skip)`.
fn is_serde_skip(tokens: &TokenTree) -> bool {
    let TokenTree::Group(g) = tokens else {
        return false;
    };
    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
    match (inner.first(), inner.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) if id.to_string() == "serde" => {
            args.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "skip"))
        }
        _ => false,
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut skip = false;
        // Field attributes (`#[serde(skip)]`, doc comments, ...).
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            if let Some(attr) = tokens.get(i + 1) {
                skip |= is_serde_skip(attr);
            }
            i += 2;
        }
        // Visibility.
        if matches!(tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            panic!(
                "serde_derive shim: expected field name at {:?}",
                tokens.get(i)
            );
        };
        let name = id.to_string();
        i += 1;
        assert!(
            matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':'),
            "serde_derive shim: expected `:` after field `{name}`"
        );
        i += 1;
        // Skip the type up to the next top-level comma. Angle brackets are
        // the only nesting that reaches token level (parens/brackets are
        // already grouped by the tokenizer).
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, skip });
    }
    fields
}

/// Count comma-separated members of a tuple-struct / tuple-variant body.
fn count_top_level_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut depth = 0i32;
    let mut saw_trailing_comma = false;
    for (idx, t) in tokens.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                if idx + 1 == tokens.len() {
                    saw_trailing_comma = true;
                } else {
                    count += 1;
                }
            }
            _ => {}
        }
    }
    let _ = saw_trailing_comma;
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Variant attributes / doc comments.
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_top_level_fields(g.stream());
                i += 1;
                VariantKind::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                i += 1;
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        // Consume up to and including the variant separator.
        while i < tokens.len() {
            if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ---------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::NamedStruct(fields) => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "entries.push((\"{0}\".to_string(), ::serde::Serialize::to_value(&self.{0})));\n",
                    f.name
                ));
            }
            format!(
                "let mut entries: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Object(::serde::Map::from_entries(entries))"
            )
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::String(\"{vname}\".to_string()),\n"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(f0) => ::serde::Value::Object(::serde::Map::from_entries(vec![(\"{vname}\".to_string(), ::serde::Serialize::to_value(f0))])),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::Value::Object(::serde::Map::from_entries(vec![(\"{vname}\".to_string(), ::serde::Value::Array(vec![{}]))])),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{0}\".to_string(), ::serde::Serialize::to_value({0}))",
                                    f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => ::serde::Value::Object(::serde::Map::from_entries(vec![(\"{vname}\".to_string(), ::serde::Value::Object(::serde::Map::from_entries(vec![{}])))])),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}\n}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

fn named_fields_constructor(
    type_path: &str,
    fields: &[Field],
    obj_expr: &str,
    context: &str,
) -> String {
    let mut setters = String::new();
    for f in fields {
        if f.skip {
            setters.push_str(&format!(
                "{}: ::std::default::Default::default(),\n",
                f.name
            ));
        } else {
            setters.push_str(&format!(
                "{0}: match {obj_expr}.get(\"{0}\") {{\n\
                     Some(field_value) => ::serde::Deserialize::from_value(field_value)?,\n\
                     None => return ::std::result::Result::Err(::serde::DeError::custom(\"missing field `{0}` in {context}\")),\n\
                 }},\n",
                f.name
            ));
        }
    }
    format!("{type_path} {{\n{setters}}}")
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::NamedStruct(fields) => {
            let ctor = named_fields_constructor(name, fields, "obj", name);
            format!(
                "let obj = v.as_object().ok_or_else(|| ::serde::DeError::custom(\"expected object for {name}\"))?;\n\
                 ::std::result::Result::Ok({ctor})"
            )
        }
        Shape::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&arr[{i}])?"))
                .collect();
            format!(
                "let arr = v.as_array().ok_or_else(|| ::serde::DeError::custom(\"expected array for {name}\"))?;\n\
                 if arr.len() != {n} {{ return ::std::result::Result::Err(::serde::DeError::custom(\"wrong arity for {name}\")); }}\n\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Shape::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                        ));
                        // Also accept the `{ "Variant": null }` form.
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                        ));
                    }
                    VariantKind::Tuple(1) => tagged_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(::serde::Deserialize::from_value(payload)?)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| {
                                format!("::serde::Deserialize::from_value(&arr[{i}])?")
                            })
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                                 let arr = payload.as_array().ok_or_else(|| ::serde::DeError::custom(\"expected array payload for {name}::{vname}\"))?;\n\
                                 if arr.len() != {n} {{ return ::std::result::Result::Err(::serde::DeError::custom(\"wrong arity for {name}::{vname}\")); }}\n\
                                 ::std::result::Result::Ok({name}::{vname}({}))\n\
                             }},\n",
                            items.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let ctor = named_fields_constructor(
                            &format!("{name}::{vname}"),
                            fields,
                            "obj",
                            &format!("{name}::{vname}"),
                        );
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                                 let obj = payload.as_object().ok_or_else(|| ::serde::DeError::custom(\"expected object payload for {name}::{vname}\"))?;\n\
                                 ::std::result::Result::Ok({ctor})\n\
                             }},\n"
                        ));
                    }
                }
            }
            format!(
                "match v {{\n\
                     ::serde::Value::String(tag) => match tag.as_str() {{\n\
                         {unit_arms}\
                         other => ::std::result::Result::Err(::serde::DeError::custom(format!(\"unknown unit variant `{{other}}` for {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Object(map) if map.len() == 1 => {{\n\
                         let (tag, payload) = map.iter().next().expect(\"len checked\");\n\
                         match tag.as_str() {{\n\
                             {tagged_arms}\
                             other => ::std::result::Result::Err(::serde::DeError::custom(format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                         }}\n\
                     }},\n\
                     _ => ::std::result::Result::Err(::serde::DeError::custom(\"expected externally tagged enum for {name}\")),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
}
