//! Offline shim for `rand`: a deterministic xoshiro256++ generator behind
//! the `StdRng` / `Rng` / `SeedableRng` API subset this workspace uses.
//!
//! Streams are deterministic per seed (the workspace's reproducibility
//! tests rely on that) but are not bit-compatible with upstream `rand`.

/// Low-level generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill a byte slice with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// A range from which [`Rng::gen_range`] can sample.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

/// High-level sampling helpers, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open or inclusive range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        next_f64(self) < p
    }
}

impl<T: RngCore> Rng for T {}

fn next_f64(rng: &mut dyn RngCore) -> f64 {
    // 53 random mantissa bits → uniform in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + (self.end - self.start) * next_f64(rng) as $t
            }
        }
    )*};
}

float_range!(f32, f64);

pub mod rngs {
    //! Named generator types.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for the upstream
    /// `StdRng`; not stream-compatible with it).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same = (0..64)
            .filter(|_| a.gen_range(0u32..10) == c.gen_range(0u32..10))
            .count();
        assert!(same < 64, "different seeds should diverge");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3i64..9);
            assert!((3..9).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let inc = rng.gen_range(0u8..=3);
            assert!(inc <= 3);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 got {hits}/10000");
    }
}
