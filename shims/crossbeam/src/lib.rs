//! Offline shim for `crossbeam`: MPSC channels re-exported under the
//! `crossbeam::channel` API shape this workspace uses.

pub mod channel {
    use std::sync::mpsc;

    /// Sending half of an unbounded channel (clonable).
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error returned when the channel is disconnected on send.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    /// Error returned when the channel is empty and disconnected on recv.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> Sender<T> {
        /// Send a value; errors only when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|e| SendError(e.0))
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, RecvError> {
            self.0.try_recv().map_err(|_| RecvError)
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_across_threads() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            std::thread::spawn(move || tx2.send(7).unwrap());
            assert_eq!(rx.recv(), Ok(7));
            drop(tx);
            assert!(rx.recv().is_err());
        }
    }
}
