//! Offline shim for `crossbeam`: MPSC channels re-exported under the
//! `crossbeam::channel` API shape this workspace uses, plus a bounded
//! lock-free MPMC ring under `crossbeam::queue::ArrayQueue`.

pub mod queue {
    //! Bounded lock-free queues mirroring `crossbeam::queue`.

    use std::cell::UnsafeCell;
    use std::mem::MaybeUninit;
    use std::sync::atomic::{fence, AtomicUsize, Ordering};

    /// One ring slot. `stamp` tracks the slot's lifecycle against the
    /// lap-encoded `head`/`tail` counters (see [`ArrayQueue`]): a slot is
    /// writable by the push holding ticket `t` iff `stamp == t`, becomes
    /// readable when the writer bumps it to `t + 1`, and is re-armed for
    /// the next lap's writer when the reader advances it a whole lap.
    struct Slot<T> {
        stamp: AtomicUsize,
        value: UnsafeCell<MaybeUninit<T>>,
    }

    /// A bounded lock-free multi-producer multi-consumer queue
    /// (Vyukov-style ring buffer), API-compatible with upstream
    /// `crossbeam::queue::ArrayQueue`.
    ///
    /// `head` and `tail` pack `lap * one_lap + index` into one counter,
    /// with `one_lap = (cap + 1).next_power_of_two()`. The `+ 1` keeps a
    /// written slot's stamp (`ticket + 1`) from ever colliding with the
    /// next lap's write ticket (`ticket + one_lap`) — the classic
    /// capacity-1 ambiguity of plain modular tickets. Each operation
    /// claims its ticket with one CAS and then touches only its own
    /// slot. Neither side ever blocks: `push` on a full ring returns the
    /// value back and `pop` on an empty ring returns `None`.
    pub struct ArrayQueue<T> {
        /// Next pop ticket (`lap * one_lap + index`).
        head: AtomicUsize,
        /// Next push ticket (`lap * one_lap + index`).
        tail: AtomicUsize,
        buffer: Box<[Slot<T>]>,
        cap: usize,
        one_lap: usize,
    }

    unsafe impl<T: Send> Send for ArrayQueue<T> {}
    unsafe impl<T: Send> Sync for ArrayQueue<T> {}

    impl<T> ArrayQueue<T> {
        /// Create a queue holding at most `cap` items.
        ///
        /// # Panics
        /// Panics if `cap` is zero.
        #[must_use]
        pub fn new(cap: usize) -> Self {
            assert!(cap > 0, "ArrayQueue capacity must be non-zero");
            let buffer: Box<[Slot<T>]> = (0..cap)
                .map(|i| Slot {
                    stamp: AtomicUsize::new(i),
                    value: UnsafeCell::new(MaybeUninit::uninit()),
                })
                .collect();
            ArrayQueue {
                head: AtomicUsize::new(0),
                tail: AtomicUsize::new(0),
                buffer,
                cap,
                one_lap: (cap + 1).next_power_of_two(),
            }
        }

        /// Attempt to enqueue; returns `Err(value)` when the queue is full.
        pub fn push(&self, value: T) -> Result<(), T> {
            let mut tail = self.tail.load(Ordering::Relaxed);
            loop {
                let index = tail & (self.one_lap - 1);
                let lap = tail & !(self.one_lap - 1);
                let slot = &self.buffer[index];
                let stamp = slot.stamp.load(Ordering::Acquire);
                if stamp == tail {
                    // Slot is ours to claim this lap.
                    let next_tail = if index + 1 < self.cap {
                        tail + 1
                    } else {
                        lap.wrapping_add(self.one_lap)
                    };
                    match self.tail.compare_exchange_weak(
                        tail,
                        next_tail,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            unsafe { (*slot.value.get()).write(value) };
                            slot.stamp.store(tail + 1, Ordering::Release);
                            return Ok(());
                        }
                        Err(current) => tail = current,
                    }
                } else if stamp.wrapping_add(self.one_lap) == tail + 1 {
                    // The slot still holds last lap's value. Full only if
                    // head also trails by a whole lap; otherwise that pop
                    // is mid-flight — yield (on a single hardware thread
                    // a pure spin would burn the whole time slice the
                    // peer needs to finish).
                    fence(Ordering::SeqCst);
                    let head = self.head.load(Ordering::Relaxed);
                    if head.wrapping_add(self.one_lap) == tail {
                        return Err(value);
                    }
                    std::thread::yield_now();
                    tail = self.tail.load(Ordering::Relaxed);
                } else {
                    // Our ticket view is stale — reload and retry.
                    std::thread::yield_now();
                    tail = self.tail.load(Ordering::Relaxed);
                }
            }
        }

        /// Attempt to dequeue; returns `None` when the queue is empty.
        pub fn pop(&self) -> Option<T> {
            let mut head = self.head.load(Ordering::Relaxed);
            loop {
                let index = head & (self.one_lap - 1);
                let lap = head & !(self.one_lap - 1);
                let slot = &self.buffer[index];
                let stamp = slot.stamp.load(Ordering::Acquire);
                if stamp == head + 1 {
                    // Slot holds a value written for this lap.
                    let next_head = if index + 1 < self.cap {
                        head + 1
                    } else {
                        lap.wrapping_add(self.one_lap)
                    };
                    match self.head.compare_exchange_weak(
                        head,
                        next_head,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            let value = unsafe { (*slot.value.get()).assume_init_read() };
                            slot.stamp
                                .store(head.wrapping_add(self.one_lap), Ordering::Release);
                            return Some(value);
                        }
                        Err(current) => head = current,
                    }
                } else if stamp == head {
                    // Slot not written this lap. Empty only if tail
                    // hasn't moved past us; otherwise a push is
                    // mid-flight — yield so the writer can finish.
                    fence(Ordering::SeqCst);
                    let tail = self.tail.load(Ordering::Relaxed);
                    if tail == head {
                        return None;
                    }
                    std::thread::yield_now();
                    head = self.head.load(Ordering::Relaxed);
                } else {
                    // Our ticket view is stale — reload and retry.
                    std::thread::yield_now();
                    head = self.head.load(Ordering::Relaxed);
                }
            }
        }

        /// Number of items currently buffered (consistent snapshot).
        #[must_use]
        pub fn len(&self) -> usize {
            loop {
                let tail = self.tail.load(Ordering::SeqCst);
                let head = self.head.load(Ordering::SeqCst);
                // Re-read tail: if unchanged, (head, tail) is a consistent
                // pair and the difference is exact at that instant.
                if self.tail.load(Ordering::SeqCst) == tail {
                    let hix = head & (self.one_lap - 1);
                    let tix = tail & (self.one_lap - 1);
                    return if hix < tix {
                        tix - hix
                    } else if hix > tix {
                        self.cap - hix + tix
                    } else if tail == head {
                        0
                    } else {
                        self.cap
                    };
                }
            }
        }

        /// Whether the queue holds no items.
        #[must_use]
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Whether the queue is at capacity.
        #[must_use]
        pub fn is_full(&self) -> bool {
            self.len() == self.cap
        }

        /// Maximum number of buffered items.
        #[must_use]
        pub fn capacity(&self) -> usize {
            self.cap
        }
    }

    impl<T> Drop for ArrayQueue<T> {
        fn drop(&mut self) {
            while self.pop().is_some() {}
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::sync::Arc;

        #[test]
        fn fifo_single_thread() {
            let q = ArrayQueue::new(4);
            for i in 0..4 {
                q.push(i).unwrap();
            }
            assert_eq!(q.push(99), Err(99));
            assert!(q.is_full());
            for i in 0..4 {
                assert_eq!(q.pop(), Some(i));
            }
            assert_eq!(q.pop(), None);
            assert!(q.is_empty());
        }

        #[test]
        fn wraps_around_many_laps() {
            let q = ArrayQueue::new(3);
            for i in 0..1000 {
                q.push(i).unwrap();
                assert_eq!(q.pop(), Some(i));
            }
            assert!(q.is_empty());
            assert_eq!(q.capacity(), 3);
        }

        #[test]
        fn capacity_one() {
            let q = ArrayQueue::new(1);
            q.push(7).unwrap();
            assert_eq!(q.push(8), Err(8));
            assert_eq!(q.pop(), Some(7));
            assert_eq!(q.pop(), None);
            q.push(9).unwrap();
            assert_eq!(q.pop(), Some(9));
        }

        #[test]
        fn per_producer_fifo_under_contention() {
            const PRODUCERS: u64 = 4;
            const PER: u64 = 5_000;
            let q = Arc::new(ArrayQueue::new(8));
            let mut handles = Vec::new();
            for p in 0..PRODUCERS {
                let q = Arc::clone(&q);
                handles.push(std::thread::spawn(move || {
                    for i in 0..PER {
                        let mut item = p << 32 | i;
                        loop {
                            match q.push(item) {
                                Ok(()) => break,
                                Err(back) => {
                                    item = back;
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                }));
            }
            let mut last = vec![None; PRODUCERS as usize];
            let mut seen = 0u64;
            while seen < PRODUCERS * PER {
                if let Some(item) = q.pop() {
                    let (p, i) = ((item >> 32) as usize, item & 0xffff_ffff);
                    if let Some(prev) = last[p] {
                        assert!(i > prev, "producer {p} reordered: {i} after {prev}");
                    }
                    last[p] = Some(i);
                    seen += 1;
                } else {
                    std::thread::yield_now();
                }
            }
            for h in handles {
                h.join().unwrap();
            }
            assert!(q.is_empty());
        }

        #[test]
        fn mpmc_conserves_items() {
            const PRODUCERS: usize = 3;
            const CONSUMERS: usize = 3;
            const PER: usize = 4_000;
            let q = Arc::new(ArrayQueue::new(16));
            let produced = Arc::new(AtomicUsize::new(0));
            let consumed_sum = Arc::new(AtomicUsize::new(0));
            let mut handles = Vec::new();
            for _ in 0..PRODUCERS {
                let (q, produced) = (Arc::clone(&q), Arc::clone(&produced));
                handles.push(std::thread::spawn(move || {
                    for _ in 0..PER {
                        let v = produced.fetch_add(1, Ordering::Relaxed) + 1;
                        let mut item = v;
                        while let Err(back) = q.push(item) {
                            item = back;
                            std::thread::yield_now();
                        }
                    }
                }));
            }
            let total: usize = (1..=PRODUCERS * PER).sum();
            let taken = Arc::new(AtomicUsize::new(0));
            for _ in 0..CONSUMERS {
                let (q, sum, taken) = (
                    Arc::clone(&q),
                    Arc::clone(&consumed_sum),
                    Arc::clone(&taken),
                );
                handles.push(std::thread::spawn(move || loop {
                    if taken.load(Ordering::Relaxed) >= PRODUCERS * PER {
                        break;
                    }
                    if let Some(v) = q.pop() {
                        sum.fetch_add(v, Ordering::Relaxed);
                        taken.fetch_add(1, Ordering::Relaxed);
                    } else {
                        std::thread::yield_now();
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(consumed_sum.load(Ordering::Relaxed), total);
            assert!(q.is_empty());
        }

        #[test]
        fn drop_releases_buffered_items() {
            let counter = Arc::new(AtomicUsize::new(0));
            struct Probe(Arc<AtomicUsize>);
            impl Drop for Probe {
                fn drop(&mut self) {
                    self.0.fetch_add(1, Ordering::Relaxed);
                }
            }
            let q = ArrayQueue::new(8);
            for _ in 0..5 {
                assert!(q.push(Probe(Arc::clone(&counter))).is_ok());
            }
            drop(q.pop());
            assert_eq!(counter.load(Ordering::Relaxed), 1);
            drop(q);
            assert_eq!(counter.load(Ordering::Relaxed), 5);
        }
    }
}

pub mod channel {
    use std::sync::mpsc;

    /// Sending half of an unbounded channel (clonable).
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error returned when the channel is disconnected on send.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    /// Error returned when the channel is empty and disconnected on recv.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> Sender<T> {
        /// Send a value; errors only when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|e| SendError(e.0))
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, RecvError> {
            self.0.try_recv().map_err(|_| RecvError)
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_across_threads() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            std::thread::spawn(move || tx2.send(7).unwrap());
            assert_eq!(rx.recv(), Ok(7));
            drop(tx);
            assert!(rx.recv().is_err());
        }
    }
}
