//! Datasets and synthetic data generators.
//!
//! The sandbox has no MNIST/TIMIT, so per DESIGN.md's substitution table we
//! generate procedural tasks with the same *shape* as the paper's examples:
//! small-image 10-class recognition ([`synth_digits`]), low-dimensional
//! sensor classification ([`gaussian_blobs`], [`two_moons`], [`spirals`])
//! and keyword-spotting-style audio features ([`keyword_features`]).
//! Drift-injection helpers feed the §III-B observability experiments.

use serde::{Deserialize, Serialize};
use tinymlops_tensor::{Tensor, TensorRng};

/// A labelled classification dataset: features `[n, d…]`, labels `0..k`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    /// Feature tensor; first dimension indexes examples.
    pub x: Tensor,
    /// Integer class labels, one per example.
    pub y: Vec<usize>,
    /// Number of classes.
    pub num_classes: usize,
}

impl Dataset {
    /// Build a dataset, checking label/feature counts agree.
    #[must_use]
    pub fn new(x: Tensor, y: Vec<usize>, num_classes: usize) -> Self {
        assert_eq!(x.rows(), y.len(), "one label per feature row");
        assert!(y.iter().all(|&c| c < num_classes), "label out of range");
        Dataset { x, y, num_classes }
    }

    /// Number of examples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// True when the dataset holds no examples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Feature dimensionality (product of trailing dims).
    #[must_use]
    pub fn feature_dim(&self) -> usize {
        self.x.cols()
    }

    /// Split into `(train, test)` with `train_frac` of examples in train,
    /// after a seeded shuffle.
    #[must_use]
    pub fn split(&self, train_frac: f32, seed: u64) -> (Dataset, Dataset) {
        let n = self.len();
        let n_train = ((n as f32) * train_frac).round() as usize;
        let perm = TensorRng::seed(seed).permutation(n);
        let take = |idx: &[usize]| -> Dataset {
            let cols = self.x.cols();
            let mut xd = Vec::with_capacity(idx.len() * cols);
            let mut yd = Vec::with_capacity(idx.len());
            for &i in idx {
                xd.extend_from_slice(self.x.row(i));
                yd.push(self.y[i]);
            }
            let mut shape = self.x.shape().to_vec();
            shape[0] = idx.len();
            Dataset::new(Tensor::from_vec(xd, &shape), yd, self.num_classes)
        };
        (take(&perm[..n_train]), take(&perm[n_train..]))
    }

    /// Select the examples at `indices` (used by federated partitioners).
    #[must_use]
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let cols = self.x.cols();
        let mut xd = Vec::with_capacity(indices.len() * cols);
        let mut yd = Vec::with_capacity(indices.len());
        for &i in indices {
            xd.extend_from_slice(self.x.row(i));
            yd.push(self.y[i]);
        }
        let mut shape = self.x.shape().to_vec();
        shape[0] = indices.len();
        Dataset::new(Tensor::from_vec(xd, &shape), yd, self.num_classes)
    }

    /// Iterate over shuffled mini-batches as `(x, y)` pairs.
    #[must_use]
    pub fn batches(&self, batch_size: usize, seed: u64) -> Vec<(Tensor, Vec<usize>)> {
        let perm = TensorRng::seed(seed).permutation(self.len());
        perm.chunks(batch_size)
            .map(|chunk| {
                let b = self.subset(chunk);
                (b.x, b.y)
            })
            .collect()
    }

    /// Per-class example counts (used to measure non-iid skew).
    #[must_use]
    pub fn class_histogram(&self) -> Vec<usize> {
        let mut h = vec![0usize; self.num_classes];
        for &c in &self.y {
            h[c] += 1;
        }
        h
    }

    /// Apply an additive shift to every feature — the covariate-drift
    /// injection used by experiment E4.
    #[must_use]
    pub fn with_covariate_shift(&self, delta: f32) -> Dataset {
        Dataset {
            x: self.x.map(|v| v + delta),
            y: self.y.clone(),
            num_classes: self.num_classes,
        }
    }

    /// Add Gaussian feature noise (sensor degradation drift).
    #[must_use]
    pub fn with_noise(&self, std: f32, seed: u64) -> Dataset {
        let noise = TensorRng::seed(seed).normal(self.x.shape(), 0.0, std);
        Dataset {
            x: self.x.add(&noise).expect("same shape"),
            y: self.y.clone(),
            num_classes: self.num_classes,
        }
    }

    /// Concatenate two datasets with identical feature shapes.
    #[must_use]
    pub fn concat(&self, other: &Dataset) -> Dataset {
        assert_eq!(self.x.cols(), other.x.cols());
        assert_eq!(self.num_classes, other.num_classes);
        let mut xd = self.x.data().to_vec();
        xd.extend_from_slice(other.x.data());
        let mut yd = self.y.clone();
        yd.extend_from_slice(&other.y);
        let mut shape = self.x.shape().to_vec();
        shape[0] = self.len() + other.len();
        Dataset::new(Tensor::from_vec(xd, &shape), yd, self.num_classes)
    }
}

/// Isotropic Gaussian class clusters in `dim` dimensions.
#[must_use]
pub fn gaussian_blobs(n: usize, classes: usize, dim: usize, spread: f32, seed: u64) -> Dataset {
    let mut rng = TensorRng::seed(seed);
    // Class centers on a scaled hypercube corner pattern.
    let centers: Vec<Vec<f32>> = (0..classes)
        .map(|c| {
            (0..dim)
                .map(|d| if (c >> (d % 8)) & 1 == 1 { 2.0 } else { -2.0 } * (1.0 + 0.1 * d as f32))
                .collect()
        })
        .collect();
    let mut xd = Vec::with_capacity(n * dim);
    let mut yd = Vec::with_capacity(n);
    for i in 0..n {
        let c = i % classes;
        for center in centers[c].iter().take(dim) {
            xd.push(center + spread * rng.next_gaussian());
        }
        yd.push(c);
    }
    Dataset::new(Tensor::from_vec(xd, &[n, dim]), yd, classes)
}

/// The classic two-interleaved-half-moons binary task.
#[must_use]
pub fn two_moons(n: usize, noise: f32, seed: u64) -> Dataset {
    let mut rng = TensorRng::seed(seed);
    let mut xd = Vec::with_capacity(n * 2);
    let mut yd = Vec::with_capacity(n);
    for i in 0..n {
        let c = i % 2;
        let t = rng.next_f32() * std::f32::consts::PI;
        let (mut x, mut y) = if c == 0 {
            (t.cos(), t.sin())
        } else {
            (1.0 - t.cos(), 0.5 - t.sin())
        };
        x += noise * rng.next_gaussian();
        y += noise * rng.next_gaussian();
        xd.push(x);
        xd.push(y);
        yd.push(c);
    }
    Dataset::new(Tensor::from_vec(xd, &[n, 2]), yd, 2)
}

/// `classes` interleaved spirals — a hard low-dimensional benchmark.
#[must_use]
pub fn spirals(n: usize, classes: usize, noise: f32, seed: u64) -> Dataset {
    let mut rng = TensorRng::seed(seed);
    let mut xd = Vec::with_capacity(n * 2);
    let mut yd = Vec::with_capacity(n);
    for i in 0..n {
        let c = i % classes;
        let t = 0.3 + rng.next_f32() * 2.2; // radius parameter
        let angle = t * 3.0 + (c as f32) * 2.0 * std::f32::consts::PI / classes as f32;
        xd.push(t * angle.cos() + noise * rng.next_gaussian());
        xd.push(t * angle.sin() + noise * rng.next_gaussian());
        yd.push(c);
    }
    Dataset::new(Tensor::from_vec(xd, &[n, 2]), yd, classes)
}

/// 8×8 glyph bitmaps for the digits 0–9 (1 bit per pixel, row-major).
const DIGIT_GLYPHS: [[u8; 8]; 10] = [
    // 0
    [
        0b00111100, 0b01100110, 0b01100110, 0b01101110, 0b01110110, 0b01100110, 0b01100110,
        0b00111100,
    ],
    // 1
    [
        0b00011000, 0b00111000, 0b00011000, 0b00011000, 0b00011000, 0b00011000, 0b00011000,
        0b01111110,
    ],
    // 2
    [
        0b00111100, 0b01100110, 0b00000110, 0b00001100, 0b00011000, 0b00110000, 0b01100000,
        0b01111110,
    ],
    // 3
    [
        0b00111100, 0b01100110, 0b00000110, 0b00011100, 0b00000110, 0b00000110, 0b01100110,
        0b00111100,
    ],
    // 4
    [
        0b00001100, 0b00011100, 0b00111100, 0b01101100, 0b01111110, 0b00001100, 0b00001100,
        0b00001100,
    ],
    // 5
    [
        0b01111110, 0b01100000, 0b01100000, 0b01111100, 0b00000110, 0b00000110, 0b01100110,
        0b00111100,
    ],
    // 6
    [
        0b00111100, 0b01100110, 0b01100000, 0b01111100, 0b01100110, 0b01100110, 0b01100110,
        0b00111100,
    ],
    // 7
    [
        0b01111110, 0b00000110, 0b00001100, 0b00011000, 0b00110000, 0b00110000, 0b00110000,
        0b00110000,
    ],
    // 8
    [
        0b00111100, 0b01100110, 0b01100110, 0b00111100, 0b01100110, 0b01100110, 0b01100110,
        0b00111100,
    ],
    // 9
    [
        0b00111100, 0b01100110, 0b01100110, 0b01100110, 0b00111110, 0b00000110, 0b01100110,
        0b00111100,
    ],
];

/// Procedural "MNIST-like" digits: 8×8 glyphs with per-example random
/// sub-pixel shift, pixel dropout and Gaussian noise. Flattened to 64
/// features in `[0,1]`.
#[must_use]
pub fn synth_digits(n: usize, noise: f32, seed: u64) -> Dataset {
    let mut rng = TensorRng::seed(seed);
    let mut xd = Vec::with_capacity(n * 64);
    let mut yd = Vec::with_capacity(n);
    for i in 0..n {
        let c = i % 10;
        let glyph = &DIGIT_GLYPHS[c];
        // Random integer shift in {-1, 0, 1}².
        let dy = rng.next_usize(3) as isize - 1;
        let dx = rng.next_usize(3) as isize - 1;
        for y in 0..8isize {
            for x in 0..8isize {
                let sy = y - dy;
                let sx = x - dx;
                let bit = if (0..8).contains(&sy) && (0..8).contains(&sx) {
                    (glyph[sy as usize] >> (7 - sx)) & 1
                } else {
                    0
                };
                let mut v = bit as f32;
                // Pixel dropout: 3% of on-pixels flicker off.
                if v > 0.5 && rng.next_f32() < 0.03 {
                    v = 0.0;
                }
                v += noise * rng.next_gaussian();
                xd.push(v.clamp(0.0, 1.0));
            }
        }
        yd.push(c);
    }
    Dataset::new(Tensor::from_vec(xd, &[n, 64]), yd, 10)
}

/// Like [`synth_digits`] but shaped `[n, 1, 8, 8]` for convolutional models.
#[must_use]
pub fn synth_digits_2d(n: usize, noise: f32, seed: u64) -> Dataset {
    let d = synth_digits(n, noise, seed);
    Dataset {
        x: d.x.reshape(&[n, 1, 8, 8]).expect("64 = 1*8*8"),
        y: d.y,
        num_classes: 10,
    }
}

/// Synthetic keyword-spotting features: each class is a mixture of sine
/// "formants"; features are 16 band energies of a 64-sample frame — the
/// shape of a real KWS front-end without shipping audio.
#[must_use]
pub fn keyword_features(n: usize, classes: usize, seed: u64) -> Dataset {
    keyword_features_noisy(n, classes, 0.25, seed)
}

/// [`keyword_features`] with a controllable audio-noise level — high noise
/// (≥1.0) makes the task genuinely hard, which federated/personalization
/// experiments need to show meaningful differences.
#[must_use]
pub fn keyword_features_noisy(n: usize, classes: usize, noise: f32, seed: u64) -> Dataset {
    let mut rng = TensorRng::seed(seed);
    let bands = 16;
    let frame = 64;
    let mut xd = Vec::with_capacity(n * bands);
    let mut yd = Vec::with_capacity(n);
    for i in 0..n {
        let c = i % classes;
        // Two class-specific formant frequencies (bins).
        let f1 = 2.0 + (c as f32) * 1.7;
        let f2 = 5.0 + (c as f32) * 2.3;
        let phase = rng.next_f32() * std::f32::consts::TAU;
        let gain = 0.8 + 0.4 * rng.next_f32();
        let samples: Vec<f32> = (0..frame)
            .map(|t| {
                let t = t as f32 / frame as f32;
                gain * ((std::f32::consts::TAU * f1 * t + phase).sin()
                    + 0.6 * (std::f32::consts::TAU * f2 * t).sin())
                    + noise * rng.next_gaussian()
            })
            .collect();
        // Goertzel-style band energies.
        for b in 0..bands {
            let freq = b as f32 + 0.5;
            let (mut re, mut im) = (0.0f32, 0.0f32);
            for (t, &s) in samples.iter().enumerate() {
                let ang = std::f32::consts::TAU * freq * t as f32 / frame as f32;
                re += s * ang.cos();
                im += s * ang.sin();
            }
            xd.push(((re * re + im * im) / frame as f32).ln_1p());
        }
        yd.push(c);
    }
    Dataset::new(Tensor::from_vec(xd, &[n, bands]), yd, classes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blobs_have_balanced_classes() {
        let d = gaussian_blobs(300, 3, 4, 0.5, 1);
        assert_eq!(d.class_histogram(), vec![100, 100, 100]);
        assert_eq!(d.feature_dim(), 4);
    }

    #[test]
    fn split_partitions_everything() {
        let d = gaussian_blobs(100, 2, 3, 0.5, 2);
        let (tr, te) = d.split(0.8, 0);
        assert_eq!(tr.len(), 80);
        assert_eq!(te.len(), 20);
    }

    #[test]
    fn split_is_deterministic() {
        let d = gaussian_blobs(50, 2, 3, 0.5, 3);
        let (a, _) = d.split(0.5, 7);
        let (b, _) = d.split(0.5, 7);
        assert_eq!(a.y, b.y);
    }

    #[test]
    fn subset_picks_rows() {
        let d = gaussian_blobs(10, 2, 2, 0.1, 4);
        let s = d.subset(&[0, 5]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.x.row(1), d.x.row(5));
        assert_eq!(s.y[1], d.y[5]);
    }

    #[test]
    fn batches_cover_dataset() {
        let d = gaussian_blobs(25, 5, 2, 0.1, 5);
        let batches = d.batches(8, 0);
        let total: usize = batches.iter().map(|(_, y)| y.len()).sum();
        assert_eq!(total, 25);
        assert_eq!(batches.len(), 4); // 8+8+8+1
    }

    #[test]
    fn digits_are_in_unit_range_with_ten_classes() {
        let d = synth_digits(200, 0.05, 6);
        assert_eq!(d.num_classes, 10);
        assert_eq!(d.feature_dim(), 64);
        assert!(d.x.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        // Every class appears.
        assert!(d.class_histogram().iter().all(|&c| c == 20));
    }

    #[test]
    fn digits_classes_are_distinguishable() {
        // Mean images of distinct digits should differ meaningfully.
        let d = synth_digits(500, 0.02, 7);
        let mean_img = |cls: usize| -> Vec<f32> {
            let idx: Vec<usize> = (0..d.len()).filter(|&i| d.y[i] == cls).collect();
            let sub = d.subset(&idx);
            let mut m = vec![0.0f32; 64];
            for r in 0..sub.len() {
                for (mm, v) in m.iter_mut().zip(sub.x.row(r)) {
                    *mm += v;
                }
            }
            m.iter().map(|v| v / sub.len() as f32).collect()
        };
        let m0 = mean_img(0);
        let m1 = mean_img(1);
        let dist: f32 = m0
            .iter()
            .zip(&m1)
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f32>()
            .sqrt();
        assert!(dist > 1.0, "digit means too close: {dist}");
    }

    #[test]
    fn digits_2d_shape() {
        let d = synth_digits_2d(10, 0.0, 8);
        assert_eq!(d.x.shape(), &[10, 1, 8, 8]);
    }

    #[test]
    fn keyword_features_class_separation() {
        let d = keyword_features(200, 4, 9);
        assert_eq!(d.feature_dim(), 16);
        // Features of the same class should correlate more than across
        // classes: check mean vectors differ.
        let mean_of = |cls: usize| -> Vec<f32> {
            let idx: Vec<usize> = (0..d.len()).filter(|&i| d.y[i] == cls).collect();
            let sub = d.subset(&idx);
            (0..16)
                .map(|j| (0..sub.len()).map(|r| sub.x.row(r)[j]).sum::<f32>() / sub.len() as f32)
                .collect()
        };
        let m0 = mean_of(0);
        let m3 = mean_of(3);
        let dist: f32 = m0.iter().zip(&m3).map(|(a, b)| (a - b).powi(2)).sum();
        assert!(dist > 0.5, "keyword classes too close: {dist}");
    }

    #[test]
    fn covariate_shift_moves_means() {
        let d = gaussian_blobs(50, 2, 2, 0.1, 10);
        let shifted = d.with_covariate_shift(3.0);
        assert!((shifted.x.mean() - d.x.mean() - 3.0).abs() < 1e-4);
    }

    #[test]
    fn concat_appends() {
        let a = gaussian_blobs(10, 2, 2, 0.1, 11);
        let b = gaussian_blobs(6, 2, 2, 0.1, 12);
        let c = a.concat(&b);
        assert_eq!(c.len(), 16);
        assert_eq!(c.x.row(10), b.x.row(0));
    }

    #[test]
    fn moons_and_spirals_generate() {
        let m = two_moons(100, 0.05, 13);
        assert_eq!(m.num_classes, 2);
        let s = spirals(90, 3, 0.02, 14);
        assert_eq!(s.num_classes, 3);
        assert_eq!(s.class_histogram(), vec![30, 30, 30]);
    }
}
