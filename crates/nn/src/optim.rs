//! Optimizers: SGD (with momentum and weight decay) and Adam.
//!
//! Optimizers keep their state (velocities, moments) keyed by parameter
//! index, so one optimizer instance must stay paired with one model — the
//! same contract as every mainstream framework.

use crate::model::Sequential;

/// A gradient-descent update rule over a [`Sequential`]'s parameters.
pub trait Optimizer {
    /// Apply one update step from the accumulated gradients, then leave the
    /// gradients untouched (call [`Sequential::zero_grad`] afterwards).
    fn step(&mut self, model: &mut Sequential);
}

/// Stochastic gradient descent with momentum and decoupled weight decay.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    /// L2 weight decay (0 disables).
    pub weight_decay: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Plain SGD.
    #[must_use]
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
            velocity: Vec::new(),
        }
    }

    /// SGD with momentum.
    #[must_use]
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            weight_decay: 0.0,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, model: &mut Sequential) {
        let mut idx = 0;
        for layer in &mut model.layers {
            for (p, g) in layer.params_mut() {
                if self.velocity.len() <= idx {
                    self.velocity.push(vec![0.0; p.len()]);
                }
                if let Some(g) = g {
                    let v = &mut self.velocity[idx];
                    let pd = p.data_mut();
                    for ((pv, gv), vv) in pd.iter_mut().zip(g.data()).zip(v.iter_mut()) {
                        let grad = gv + self.weight_decay * *pv;
                        *vv = self.momentum * *vv + grad;
                        *pv -= self.lr * *vv;
                    }
                }
                idx += 1;
            }
        }
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Adam with standard defaults (β₁=0.9, β₂=0.999, ε=1e-8).
    #[must_use]
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, model: &mut Sequential) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let mut idx = 0;
        for layer in &mut model.layers {
            for (p, g) in layer.params_mut() {
                if self.m.len() <= idx {
                    self.m.push(vec![0.0; p.len()]);
                    self.v.push(vec![0.0; p.len()]);
                }
                if let Some(g) = g {
                    let m = &mut self.m[idx];
                    let v = &mut self.v[idx];
                    let pd = p.data_mut();
                    for i in 0..pd.len() {
                        let gi = g.data()[i];
                        m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * gi;
                        v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * gi * gi;
                        let m_hat = m[i] / bc1;
                        let v_hat = v[i] / bc2;
                        pd[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
                    }
                }
                idx += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Dense, Layer};
    use crate::loss::cross_entropy;
    use tinymlops_tensor::{Tensor, TensorRng};

    fn toy_problem() -> (Sequential, Tensor, Vec<usize>) {
        let mut rng = TensorRng::seed(21);
        let model = Sequential::new(vec![
            Layer::Dense(Dense::new(2, 8, &mut rng)),
            Layer::Tanh,
            Layer::Dense(Dense::new(8, 2, &mut rng)),
        ]);
        // XOR-ish: class = x0*x1 > 0.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..64 {
            let a = rng.next_f32() * 2.0 - 1.0;
            let b = rng.next_f32() * 2.0 - 1.0;
            xs.push(a);
            xs.push(b);
            ys.push(usize::from(a * b > 0.0));
        }
        (model, Tensor::from_vec(xs, &[64, 2]), ys)
    }

    fn train_with(opt: &mut dyn Optimizer, iters: usize) -> f32 {
        let (mut model, x, y) = toy_problem();
        let mut loss = 0.0;
        for _ in 0..iters {
            model.zero_grad();
            let logits = model.forward_train(&x);
            let (l, grad) = cross_entropy(&logits, &y);
            model.backward(&grad);
            opt.step(&mut model);
            loss = l;
        }
        loss
    }

    #[test]
    fn sgd_converges_on_xor() {
        let mut opt = Sgd::with_momentum(0.3, 0.9);
        let loss = train_with(&mut opt, 300);
        assert!(loss < 0.25, "SGD final loss {loss}");
    }

    #[test]
    fn adam_converges_on_xor() {
        let mut opt = Adam::new(0.02);
        let loss = train_with(&mut opt, 300);
        assert!(loss < 0.2, "Adam final loss {loss}");
    }

    #[test]
    fn momentum_accelerates_over_plain_sgd() {
        let mut plain = Sgd::new(0.05);
        let mut mom = Sgd::with_momentum(0.05, 0.9);
        let loss_plain = train_with(&mut plain, 120);
        let loss_mom = train_with(&mut mom, 120);
        assert!(
            loss_mom < loss_plain + 0.05,
            "momentum {loss_mom} vs plain {loss_plain}"
        );
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let (mut model, x, y) = toy_problem();
        let before = model.flat_params().iter().map(|v| v * v).sum::<f32>();
        let mut opt = Sgd::new(0.01);
        opt.weight_decay = 0.5;
        for _ in 0..50 {
            model.zero_grad();
            let logits = model.forward_train(&x);
            let (_, grad) = cross_entropy(&logits, &y);
            model.backward(&grad);
            opt.step(&mut model);
        }
        let after = model.flat_params().iter().map(|v| v * v).sum::<f32>();
        assert!(
            after < before,
            "decay should shrink norm: {after} vs {before}"
        );
    }

    #[test]
    fn step_without_gradients_is_noop() {
        let (mut model, _, _) = toy_problem();
        let before = model.flat_params();
        let mut opt = Adam::new(0.1);
        model.zero_grad();
        opt.step(&mut model);
        assert_eq!(model.flat_params(), before);
    }
}
