//! Training loops and evaluation helpers.

use crate::data::Dataset;
use crate::loss::cross_entropy;
use crate::model::Sequential;
use crate::optim::Optimizer;

/// Configuration for [`fit`].
#[derive(Debug, Clone)]
pub struct FitConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Base seed for batch shuffling (advanced per epoch).
    pub seed: u64,
    /// Print nothing; callers collect the returned history.
    pub verbose: bool,
}

impl Default for FitConfig {
    fn default() -> Self {
        FitConfig {
            epochs: 10,
            batch_size: 32,
            seed: 0,
            verbose: false,
        }
    }
}

/// One epoch of mini-batch SGD with cross-entropy; returns the mean loss.
pub fn train_epoch(
    model: &mut Sequential,
    data: &Dataset,
    opt: &mut dyn Optimizer,
    batch_size: usize,
    seed: u64,
) -> f32 {
    let mut total = 0.0f32;
    let mut count = 0usize;
    for (x, y) in data.batches(batch_size, seed) {
        model.zero_grad();
        let logits = model.forward_train(&x);
        let (loss, grad) = cross_entropy(&logits, &y);
        model.backward(&grad);
        opt.step(model);
        total += loss * y.len() as f32;
        count += y.len();
    }
    if count == 0 {
        0.0
    } else {
        total / count as f32
    }
}

/// Train for `cfg.epochs`; returns per-epoch mean losses.
pub fn fit(
    model: &mut Sequential,
    data: &Dataset,
    opt: &mut dyn Optimizer,
    cfg: &FitConfig,
) -> Vec<f32> {
    (0..cfg.epochs)
        .map(|e| {
            train_epoch(
                model,
                data,
                opt,
                cfg.batch_size,
                cfg.seed.wrapping_add(e as u64),
            )
        })
        .collect()
}

/// Classification accuracy of `model` on `data`, in `[0,1]`.
#[must_use]
pub fn evaluate(model: &Sequential, data: &Dataset) -> f32 {
    if data.is_empty() {
        return 0.0;
    }
    let pred = model.predict(&data.x);
    let correct = pred.iter().zip(&data.y).filter(|(p, y)| p == y).count();
    correct as f32 / data.len() as f32
}

/// Mean cross-entropy of `model` on `data` (no gradients).
#[must_use]
pub fn eval_loss(model: &Sequential, data: &Dataset) -> f32 {
    if data.is_empty() {
        return 0.0;
    }
    let logits = model.forward(&data.x);
    cross_entropy(&logits, &data.y).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{gaussian_blobs, synth_digits};
    use crate::model::mlp;
    use crate::optim::{Adam, Sgd};
    use tinymlops_tensor::TensorRng;

    #[test]
    fn fit_learns_blobs() {
        let data = gaussian_blobs(400, 3, 4, 0.6, 42);
        let (train, test) = data.split(0.8, 0);
        let mut rng = TensorRng::seed(0);
        let mut model = mlp(&[4, 16, 3], &mut rng);
        let mut opt = Adam::new(0.01);
        let losses = fit(
            &mut model,
            &train,
            &mut opt,
            &FitConfig {
                epochs: 15,
                batch_size: 32,
                ..Default::default()
            },
        );
        assert!(losses.last().unwrap() < &losses[0], "loss should decrease");
        let acc = evaluate(&model, &test);
        assert!(acc > 0.95, "blobs accuracy {acc}");
    }

    #[test]
    fn fit_learns_synth_digits() {
        let data = synth_digits(1500, 0.08, 7);
        let (train, test) = data.split(0.85, 1);
        let mut rng = TensorRng::seed(1);
        let mut model = mlp(&[64, 32, 10], &mut rng);
        let mut opt = Adam::new(0.005);
        fit(
            &mut model,
            &train,
            &mut opt,
            &FitConfig {
                epochs: 25,
                batch_size: 32,
                ..Default::default()
            },
        );
        let acc = evaluate(&model, &test);
        assert!(acc > 0.9, "digit accuracy {acc}");
    }

    #[test]
    fn evaluate_on_empty_dataset_is_zero() {
        let data = gaussian_blobs(10, 2, 2, 0.5, 3);
        let empty = data.subset(&[]);
        let mut rng = TensorRng::seed(2);
        let model = mlp(&[2, 2], &mut rng);
        assert_eq!(evaluate(&model, &empty), 0.0);
        assert_eq!(eval_loss(&model, &empty), 0.0);
    }

    #[test]
    fn train_epoch_returns_finite_loss() {
        let data = gaussian_blobs(64, 2, 3, 0.5, 4);
        let mut rng = TensorRng::seed(3);
        let mut model = mlp(&[3, 8, 2], &mut rng);
        let mut opt = Sgd::new(0.1);
        let loss = train_epoch(&mut model, &data, &mut opt, 16, 0);
        assert!(loss.is_finite() && loss > 0.0);
    }
}
