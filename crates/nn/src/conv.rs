//! 2-D convolution and max-pooling.
//!
//! Naive direct convolution — at TinyML scale (8×8 – 32×32 inputs, a few
//! thousand channels·pixels) the direct loop beats im2col's allocation
//! traffic, and it quantizes transparently in `tinymlops-quant`.
//! Layout: `[batch, channels, height, width]`.

use serde::{Deserialize, Serialize};
use tinymlops_tensor::{Tensor, TensorRng};

/// 2-D convolution, stride 1, optional zero padding.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Conv2d {
    /// Kernels, `[c_out, c_in, kh, kw]`.
    pub w: Tensor,
    /// Per-output-channel bias, `[c_out]`.
    pub b: Tensor,
    /// Zero-padding applied on all four sides.
    pub padding: usize,
    /// Accumulated kernel gradient.
    #[serde(skip)]
    pub grad_w: Option<Tensor>,
    /// Accumulated bias gradient.
    #[serde(skip)]
    pub grad_b: Option<Tensor>,
    #[serde(skip)]
    cache_input: Option<Tensor>,
}

impl Conv2d {
    /// Kaiming-initialized convolution.
    #[must_use]
    pub fn new(c_in: usize, c_out: usize, k: usize, padding: usize, rng: &mut TensorRng) -> Self {
        let fan_in = c_in * k * k;
        let std = (2.0 / fan_in as f32).sqrt();
        Conv2d {
            w: rng.normal(&[c_out, c_in, k, k], 0.0, std),
            b: Tensor::zeros(&[c_out]),
            padding,
            grad_w: None,
            grad_b: None,
            cache_input: None,
        }
    }

    fn dims(&self) -> (usize, usize, usize) {
        let s = self.w.shape();
        (s[0], s[1], s[2]) // (c_out, c_in, k) — kernels are square
    }

    /// Output spatial size for an input of side `h`.
    #[must_use]
    pub fn out_side(&self, h: usize) -> usize {
        let (_, _, k) = self.dims();
        h + 2 * self.padding + 1 - k
    }

    /// Inference forward pass.
    #[must_use]
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let (c_out, c_in, k) = self.dims();
        let sh = x.shape();
        assert_eq!(sh.len(), 4, "conv input must be [b,c,h,w], got {sh:?}");
        let (batch, cin_x, h, w) = (sh[0], sh[1], sh[2], sh[3]);
        assert_eq!(cin_x, c_in, "conv channel mismatch");
        let p = self.padding;
        let oh = h + 2 * p + 1 - k;
        let ow = w + 2 * p + 1 - k;
        let mut out = Tensor::zeros(&[batch, c_out, oh, ow]);
        let xd = x.data();
        let wd = self.w.data();
        let bd = self.b.data();
        let od = out.data_mut();
        for bi in 0..batch {
            for co in 0..c_out {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = bd[co];
                        for ci in 0..c_in {
                            for ky in 0..k {
                                let iy = (oy + ky) as isize - p as isize;
                                if iy < 0 || iy >= h as isize {
                                    continue;
                                }
                                for kx in 0..k {
                                    let ix = (ox + kx) as isize - p as isize;
                                    if ix < 0 || ix >= w as isize {
                                        continue;
                                    }
                                    let xi = ((bi * c_in + ci) * h + iy as usize) * w + ix as usize;
                                    let wi = ((co * c_in + ci) * k + ky) * k + kx;
                                    acc += xd[xi] * wd[wi];
                                }
                            }
                        }
                        od[((bi * c_out + co) * oh + oy) * ow + ox] = acc;
                    }
                }
            }
        }
        out
    }

    pub(crate) fn forward_train(&mut self, x: &Tensor) -> Tensor {
        self.cache_input = Some(x.clone());
        self.forward(x)
    }

    pub(crate) fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self
            .cache_input
            .take()
            .expect("conv backward without forward");
        let (c_out, c_in, k) = self.dims();
        let sh = x.shape();
        let (batch, h, w) = (sh[0], sh[2], sh[3]);
        let p = self.padding;
        let osh = grad_out.shape();
        let (oh, ow) = (osh[2], osh[3]);
        let mut gw = Tensor::zeros(self.w.shape());
        let mut gb = Tensor::zeros(self.b.shape());
        let mut gx = Tensor::zeros(x.shape());
        let xd = x.data();
        let wd = self.w.data();
        let god = grad_out.data();
        let gwd = gw.data_mut();
        {
            let gbd = gb.data_mut();
            for bi in 0..batch {
                for co in 0..c_out {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            gbd[co] += god[((bi * c_out + co) * oh + oy) * ow + ox];
                        }
                    }
                }
            }
        }
        let gxd = gx.data_mut();
        for bi in 0..batch {
            for co in 0..c_out {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = god[((bi * c_out + co) * oh + oy) * ow + ox];
                        if g == 0.0 {
                            continue;
                        }
                        for ci in 0..c_in {
                            for ky in 0..k {
                                let iy = (oy + ky) as isize - p as isize;
                                if iy < 0 || iy >= h as isize {
                                    continue;
                                }
                                for kx in 0..k {
                                    let ix = (ox + kx) as isize - p as isize;
                                    if ix < 0 || ix >= w as isize {
                                        continue;
                                    }
                                    let xi = ((bi * c_in + ci) * h + iy as usize) * w + ix as usize;
                                    let wi = ((co * c_in + ci) * k + ky) * k + kx;
                                    gwd[wi] += g * xd[xi];
                                    gxd[xi] += g * wd[wi];
                                }
                            }
                        }
                    }
                }
            }
        }
        match &mut self.grad_w {
            Some(acc) => acc.axpy(1.0, &gw).expect("conv grad shape"),
            None => self.grad_w = Some(gw),
        }
        match &mut self.grad_b {
            Some(acc) => acc.axpy(1.0, &gb).expect("conv bias grad shape"),
            None => self.grad_b = Some(gb),
        }
        gx
    }

    pub(crate) fn params_mut(&mut self) -> Vec<(&mut Tensor, &mut Option<Tensor>)> {
        vec![
            (&mut self.w, &mut self.grad_w),
            (&mut self.b, &mut self.grad_b),
        ]
    }

    pub(crate) fn params(&self) -> Vec<&Tensor> {
        vec![&self.w, &self.b]
    }
}

/// 2×2 max pooling with stride 2. Odd trailing rows/columns are dropped.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MaxPool2d {
    #[serde(skip)]
    cache: Option<(Vec<usize>, Vec<usize>)>, // (input shape, argmax indices)
}

impl Default for MaxPool2d {
    fn default() -> Self {
        Self::new()
    }
}

impl MaxPool2d {
    /// New 2×2/stride-2 pool.
    #[must_use]
    pub fn new() -> Self {
        MaxPool2d { cache: None }
    }

    /// Inference forward pass.
    #[must_use]
    pub fn forward(&self, x: &Tensor) -> Tensor {
        self.pool(x).0
    }

    fn pool(&self, x: &Tensor) -> (Tensor, Vec<usize>) {
        let sh = x.shape();
        assert_eq!(sh.len(), 4, "pool input must be [b,c,h,w]");
        let (batch, c, h, w) = (sh[0], sh[1], sh[2], sh[3]);
        let (oh, ow) = (h / 2, w / 2);
        let mut out = Tensor::zeros(&[batch, c, oh, ow]);
        let mut arg = vec![0usize; batch * c * oh * ow];
        let xd = x.data();
        let od = out.data_mut();
        for bi in 0..batch {
            for ci in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0;
                        for dy in 0..2 {
                            for dx in 0..2 {
                                let iy = oy * 2 + dy;
                                let ix = ox * 2 + dx;
                                let xi = ((bi * c + ci) * h + iy) * w + ix;
                                if xd[xi] > best {
                                    best = xd[xi];
                                    best_idx = xi;
                                }
                            }
                        }
                        let oi = ((bi * c + ci) * oh + oy) * ow + ox;
                        od[oi] = best;
                        arg[oi] = best_idx;
                    }
                }
            }
        }
        (out, arg)
    }

    pub(crate) fn forward_train(&mut self, x: &Tensor) -> Tensor {
        let (out, arg) = self.pool(x);
        self.cache = Some((x.shape().to_vec(), arg));
        out
    }

    pub(crate) fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (in_shape, arg) = self.cache.take().expect("pool backward without forward");
        let mut gx = Tensor::zeros(&in_shape);
        let gxd = gx.data_mut();
        for (oi, &xi) in arg.iter().enumerate() {
            gxd[xi] += grad_out.data()[oi];
        }
        gx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_identity_kernel_passes_through() {
        let mut c = Conv2d::new(1, 1, 1, 0, &mut TensorRng::seed(1));
        c.w = Tensor::from_vec(vec![1.0], &[1, 1, 1, 1]);
        c.b = Tensor::zeros(&[1]);
        let x = Tensor::from_vec((0..9).map(|i| i as f32).collect(), &[1, 1, 3, 3]);
        let y = c.forward(&x);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn conv_known_3x3_sum_kernel() {
        let mut c = Conv2d::new(1, 1, 3, 0, &mut TensorRng::seed(1));
        c.w = Tensor::full(&[1, 1, 3, 3], 1.0);
        c.b = Tensor::zeros(&[1]);
        let x = Tensor::full(&[1, 1, 3, 3], 2.0);
        let y = c.forward(&x);
        assert_eq!(y.shape(), &[1, 1, 1, 1]);
        assert_eq!(y.data(), &[18.0]);
    }

    #[test]
    fn conv_padding_preserves_size() {
        let c = Conv2d::new(1, 2, 3, 1, &mut TensorRng::seed(2));
        let x = Tensor::zeros(&[1, 1, 8, 8]);
        let y = c.forward(&x);
        assert_eq!(y.shape(), &[1, 2, 8, 8]);
    }

    #[test]
    fn conv_gradient_check_small() {
        let mut rng = TensorRng::seed(3);
        let mut c = Conv2d::new(1, 1, 2, 0, &mut rng);
        let x = rng.uniform(&[1, 1, 3, 3], -1.0, 1.0);
        let y = c.forward_train(&x);
        let _gx = c.backward(&y.clone()); // loss = sum(y²)/2
        let analytic = c.grad_w.clone().unwrap();
        let eps = 1e-3;
        for idx in 0..c.w.len() {
            let orig = c.w.data()[idx];
            c.w.data_mut()[idx] = orig + eps;
            let lp: f32 = c.forward(&x).data().iter().map(|v| v * v).sum::<f32>() / 2.0;
            c.w.data_mut()[idx] = orig - eps;
            let lm: f32 = c.forward(&x).data().iter().map(|v| v * v).sum::<f32>() / 2.0;
            c.w.data_mut()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - analytic.data()[idx]).abs() < 1e-2,
                "gw[{idx}]: {numeric} vs {}",
                analytic.data()[idx]
            );
        }
    }

    #[test]
    fn conv_input_gradient_check() {
        let mut rng = TensorRng::seed(4);
        let mut c = Conv2d::new(1, 1, 2, 0, &mut rng);
        let x = rng.uniform(&[1, 1, 3, 3], -1.0, 1.0);
        let y = c.forward_train(&x);
        let gx = c.backward(&y);
        let eps = 1e-3;
        for idx in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lp: f32 = c.forward(&xp).data().iter().map(|v| v * v).sum::<f32>() / 2.0;
            let lm: f32 = c.forward(&xm).data().iter().map(|v| v * v).sum::<f32>() / 2.0;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - gx.data()[idx]).abs() < 1e-2,
                "gx[{idx}]: {numeric} vs {}",
                gx.data()[idx]
            );
        }
    }

    #[test]
    fn pool_takes_max_and_routes_gradient() {
        let mut p = MaxPool2d::new();
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, //
                5.0, 6.0, 7.0, 8.0, //
                9.0, 10.0, 11.0, 12.0, //
                13.0, 14.0, 15.0, 16.0,
            ],
            &[1, 1, 4, 4],
        );
        let y = p.forward_train(&x);
        assert_eq!(y.data(), &[6.0, 8.0, 14.0, 16.0]);
        let g = p.backward(&Tensor::full(&[1, 1, 2, 2], 1.0));
        // Gradient lands only on the max positions.
        let nonzero: Vec<usize> = g
            .data()
            .iter()
            .enumerate()
            .filter(|(_, &v)| v != 0.0)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(nonzero, vec![5, 7, 13, 15]);
    }

    #[test]
    fn pool_drops_odd_edges() {
        let p = MaxPool2d::new();
        let x = Tensor::zeros(&[1, 1, 5, 5]);
        assert_eq!(p.forward(&x).shape(), &[1, 1, 2, 2]);
    }
}
