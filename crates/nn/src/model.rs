//! The [`Sequential`] model container.

use crate::layer::{ActCache, Layer};
use crate::NnError;
use serde::{Deserialize, Serialize};
use tinymlops_tensor::Tensor;

/// A feed-forward stack of layers.
///
/// ```
/// use tinymlops_nn::{Sequential, Layer, Dense};
/// use tinymlops_tensor::{Tensor, TensorRng};
/// let mut rng = TensorRng::seed(0);
/// let model = Sequential::new(vec![
///     Layer::Dense(Dense::new(4, 8, &mut rng)),
///     Layer::Relu,
///     Layer::Dense(Dense::new(8, 3, &mut rng)),
/// ]);
/// let logits = model.forward(&Tensor::zeros(&[2, 4]));
/// assert_eq!(logits.shape(), &[2, 3]);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sequential {
    /// The layer stack, applied in order.
    pub layers: Vec<Layer>,
    #[serde(skip)]
    caches: Vec<ActCache>,
}

impl Sequential {
    /// Build a model from layers.
    #[must_use]
    pub fn new(layers: Vec<Layer>) -> Self {
        let caches = layers.iter().map(|_| ActCache::default()).collect();
        Sequential { layers, caches }
    }

    /// Inference forward pass (dropout off, no caches written).
    #[must_use]
    pub fn forward(&self, x: &Tensor) -> Tensor {
        self.layers.iter().fold(x.clone(), |h, l| l.forward(&h))
    }

    /// Forward pass returning every intermediate activation (input first,
    /// logits last) — used by the edge/cloud split solver and distillation.
    #[must_use]
    pub fn forward_collect(&self, x: &Tensor) -> Vec<Tensor> {
        let mut acts = Vec::with_capacity(self.layers.len() + 1);
        acts.push(x.clone());
        for l in &self.layers {
            let next = l.forward(acts.last().expect("non-empty"));
            acts.push(next);
        }
        acts
    }

    /// Run only layers `[from, to)` — the device side or cloud side of a
    /// split deployment (§IV "split a model between edge and cloud").
    #[must_use]
    pub fn forward_range(&self, x: &Tensor, from: usize, to: usize) -> Tensor {
        self.layers[from..to]
            .iter()
            .fold(x.clone(), |h, l| l.forward(&h))
    }

    /// Training forward pass; caches activations for [`Sequential::backward`].
    pub fn forward_train(&mut self, x: &Tensor) -> Tensor {
        if self.caches.len() != self.layers.len() {
            self.caches = self.layers.iter().map(|_| ActCache::default()).collect();
        }
        let mut h = x.clone();
        for (l, c) in self.layers.iter_mut().zip(self.caches.iter_mut()) {
            h = l.forward_train(&h, c);
        }
        h
    }

    /// Backpropagate `grad_logits`, accumulating parameter gradients.
    pub fn backward(&mut self, grad_logits: &Tensor) {
        let mut g = grad_logits.clone();
        for (l, c) in self
            .layers
            .iter_mut()
            .rev()
            .zip(self.caches.iter_mut().rev())
        {
            g = l.backward(&g, c);
        }
    }

    /// Clear all accumulated gradients.
    pub fn zero_grad(&mut self) {
        for l in &mut self.layers {
            for (_, g) in l.params_mut() {
                *g = None;
            }
        }
    }

    /// Class prediction for a batch: row-wise argmax over logits.
    #[must_use]
    pub fn predict(&self, x: &Tensor) -> Vec<usize> {
        self.forward(x).argmax_rows()
    }

    /// Softmax probabilities for a batch.
    #[must_use]
    pub fn predict_proba(&self, x: &Tensor) -> Tensor {
        self.forward(x).softmax_rows()
    }

    /// Total number of trainable parameters.
    #[must_use]
    pub fn num_params(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.params().iter().map(|p| p.len()).sum::<usize>())
            .sum()
    }

    /// All parameters flattened into one vector (stable order).
    #[must_use]
    pub fn flat_params(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_params());
        for l in &self.layers {
            for p in l.params() {
                out.extend_from_slice(p.data());
            }
        }
        out
    }

    /// Load parameters from a flat vector (inverse of
    /// [`Sequential::flat_params`]).
    pub fn set_flat_params(&mut self, flat: &[f32]) -> Result<(), NnError> {
        if flat.len() != self.num_params() {
            return Err(NnError::ShapeMismatch(format!(
                "flat params: expected {}, got {}",
                self.num_params(),
                flat.len()
            )));
        }
        let mut off = 0;
        for l in &mut self.layers {
            for (p, _) in l.params_mut() {
                let n = p.len();
                p.data_mut().copy_from_slice(&flat[off..off + n]);
                off += n;
            }
        }
        Ok(())
    }

    /// All accumulated gradients flattened (zeros where a parameter has no
    /// gradient yet). Order matches [`Sequential::flat_params`].
    #[must_use]
    pub fn flat_grads(&mut self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_params());
        for l in &mut self.layers {
            for (p, g) in l.params_mut() {
                match g {
                    Some(t) => out.extend_from_slice(t.data()),
                    None => out.extend(std::iter::repeat_n(0.0, p.len())),
                }
            }
        }
        out
    }

    /// Serialize to a compact JSON byte blob (architecture + weights).
    pub fn to_bytes(&self) -> Result<Vec<u8>, NnError> {
        serde_json::to_vec(self).map_err(|e| NnError::Serialization(e.to_string()))
    }

    /// Deserialize a model previously produced by [`Sequential::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, NnError> {
        let mut m: Sequential =
            serde_json::from_slice(bytes).map_err(|e| NnError::Serialization(e.to_string()))?;
        m.caches = m.layers.iter().map(|_| ActCache::default()).collect();
        Ok(m)
    }

    /// Approximate in-memory size of the weights in bytes (f32 storage).
    #[must_use]
    pub fn param_bytes(&self) -> usize {
        self.num_params() * 4
    }
}

/// Convenience constructor: an MLP with ReLU activations between the given
/// layer widths, e.g. `mlp(&[64, 32, 10], rng)` = Dense(64→32)+ReLU+Dense(32→10).
#[must_use]
pub fn mlp(widths: &[usize], rng: &mut tinymlops_tensor::TensorRng) -> Sequential {
    assert!(
        widths.len() >= 2,
        "mlp needs at least input and output widths"
    );
    let mut layers = Vec::new();
    for i in 0..widths.len() - 1 {
        layers.push(Layer::Dense(crate::layer::Dense::new(
            widths[i],
            widths[i + 1],
            rng,
        )));
        if i + 2 < widths.len() {
            layers.push(Layer::Relu);
        }
    }
    Sequential::new(layers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Dense;
    use tinymlops_tensor::TensorRng;

    fn small_model(seed: u64) -> Sequential {
        let mut rng = TensorRng::seed(seed);
        mlp(&[4, 8, 3], &mut rng)
    }

    #[test]
    fn forward_shape() {
        let m = small_model(1);
        let y = m.forward(&Tensor::zeros(&[5, 4]));
        assert_eq!(y.shape(), &[5, 3]);
    }

    #[test]
    fn forward_collect_has_all_activations() {
        let m = small_model(1);
        let acts = m.forward_collect(&Tensor::zeros(&[2, 4]));
        assert_eq!(acts.len(), m.layers.len() + 1);
        assert_eq!(acts.last().unwrap().shape(), &[2, 3]);
    }

    #[test]
    fn forward_range_composes_to_full_forward() {
        let m = small_model(2);
        let x = TensorRng::seed(7).uniform(&[3, 4], -1.0, 1.0);
        let mid = m.forward_range(&x, 0, 2);
        let out = m.forward_range(&mid, 2, m.layers.len());
        let full = m.forward(&x);
        for (a, b) in out.data().iter().zip(full.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn flat_params_round_trip() {
        let mut m = small_model(3);
        let flat = m.flat_params();
        assert_eq!(flat.len(), m.num_params());
        let mut scaled: Vec<f32> = flat.iter().map(|v| v * 2.0).collect();
        m.set_flat_params(&scaled).unwrap();
        assert_eq!(m.flat_params(), scaled);
        scaled.push(0.0);
        assert!(m.set_flat_params(&scaled).is_err());
    }

    #[test]
    fn num_params_counts_dense() {
        let m = small_model(4);
        assert_eq!(m.num_params(), 4 * 8 + 8 + 8 * 3 + 3);
    }

    #[test]
    fn serialization_round_trip_preserves_outputs() {
        let m = small_model(5);
        let x = TensorRng::seed(9).uniform(&[2, 4], -1.0, 1.0);
        let bytes = m.to_bytes().unwrap();
        let m2 = Sequential::from_bytes(&bytes).unwrap();
        assert_eq!(m.forward(&x), m2.forward(&x));
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(Sequential::from_bytes(b"not json").is_err());
    }

    #[test]
    fn training_reduces_loss_on_tiny_problem() {
        // Learn y = argmax over a fixed linear map: sanity-check the full
        // forward/backward/step loop end to end.
        let mut rng = TensorRng::seed(6);
        let mut m = Sequential::new(vec![Layer::Dense(Dense::new(2, 2, &mut rng))]);
        let x = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0, -1.0, 0.0], &[4, 2]);
        let y = vec![0usize, 1, 1, 1];
        let mut last = f32::INFINITY;
        for _ in 0..200 {
            m.zero_grad();
            let logits = m.forward_train(&x);
            let (loss, grad) = crate::loss::cross_entropy(&logits, &y);
            m.backward(&grad);
            // Plain SGD step.
            for l in &mut m.layers {
                for (p, g) in l.params_mut() {
                    if let Some(g) = g {
                        p.axpy(-0.5, g).unwrap();
                    }
                }
            }
            last = loss;
        }
        assert!(last < 0.1, "loss should shrink, got {last}");
        assert_eq!(m.predict(&x), y);
    }

    #[test]
    fn zero_grad_clears_accumulators() {
        let mut m = small_model(8);
        let x = Tensor::zeros(&[1, 4]);
        let y = m.forward_train(&x);
        m.backward(&y);
        assert!(
            m.flat_grads().iter().any(|&g| g != 0.0) || m.flat_grads().iter().all(|&g| g == 0.0)
        );
        m.zero_grad();
        assert!(m.flat_grads().iter().all(|&g| g == 0.0));
    }
}
