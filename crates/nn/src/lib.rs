//! Neural-network training and inference substrate.
//!
//! The paper assumes "the ML model is a deep neural network" (§I). This
//! crate is the runtime that every operational subsystem wraps: define a
//! [`Sequential`] model from [`Layer`]s, train it with [`optim`] against a
//! [`loss`], and ship it. Federated learning (`tinymlops-fed`),
//! quantization (`tinymlops-quant`), watermarking (`tinymlops-ipp`) and
//! verifiable execution (`tinymlops-verify`) all operate on these models.
//!
//! Design choices:
//! * Layers are an **enum**, not trait objects — models serialize with
//!   serde, clone cheaply, and ship across the simulated fleet.
//! * Training caches live inside the layer and are `#[serde(skip)]`ped;
//!   a serialized model is pure architecture + weights.
//! * Parameters are reachable as flat `f32` vectors
//!   ([`Sequential::flat_params`]) because federated averaging, watermark
//!   embedding and quantization all want the "bag of weights" view.

pub mod conv;
pub mod data;
pub mod layer;
pub mod loss;
pub mod model;
pub mod optim;
pub mod profile;
pub mod train;

pub use conv::{Conv2d, MaxPool2d};
pub use data::Dataset;
pub use layer::{Dense, Dropout, Layer};
pub use loss::{cross_entropy, mse, Loss};
pub use model::Sequential;
pub use optim::{Adam, Optimizer, Sgd};
pub use profile::LayerProfile;
pub use train::{evaluate, fit, train_epoch, FitConfig};

/// Errors from model construction and execution.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// Input shape does not match what a layer expects.
    ShapeMismatch(String),
    /// Model (de)serialization failed.
    Serialization(String),
}

impl std::fmt::Display for NnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NnError::ShapeMismatch(msg) => write!(f, "shape mismatch: {msg}"),
            NnError::Serialization(msg) => write!(f, "serialization: {msg}"),
        }
    }
}

impl std::error::Error for NnError {}
