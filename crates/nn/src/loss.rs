//! Loss functions returning `(loss, grad_wrt_logits)` pairs.

use tinymlops_tensor::Tensor;

/// A differentiable training objective.
pub trait Loss {
    /// Compute the mean loss and its gradient with respect to `logits`.
    fn compute(&self, logits: &Tensor, targets: &[usize]) -> (f32, Tensor);
}

/// Softmax cross-entropy against integer class labels.
///
/// Returns the mean loss over the batch and `∂L/∂logits` (already divided
/// by the batch size, so optimizer steps are batch-size invariant).
#[must_use]
pub fn cross_entropy(logits: &Tensor, targets: &[usize]) -> (f32, Tensor) {
    let batch = logits.rows();
    assert_eq!(batch, targets.len(), "one label per row");
    let probs = logits.softmax_rows();
    let mut grad = probs.clone();
    let mut loss = 0.0f32;
    let inv_b = 1.0 / batch as f32;
    for (r, &t) in targets.iter().enumerate() {
        let p = probs.row(r)[t].max(1e-12);
        loss -= p.ln();
        let row = grad.row_mut(r);
        row[t] -= 1.0;
        for v in row.iter_mut() {
            *v *= inv_b;
        }
    }
    (loss * inv_b, grad)
}

/// Mean squared error against dense targets of the same shape.
#[must_use]
pub fn mse(pred: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert_eq!(pred.shape(), target.shape(), "mse shapes must match");
    let n = pred.len() as f32;
    let diff = pred.sub(target).expect("shapes checked");
    let loss = diff.norm_sq() / n;
    let grad = diff.scale(2.0 / n);
    (loss, grad)
}

/// Soft-label cross-entropy with temperature — the knowledge-distillation
/// objective (§II "knowledge distillation", §V student–teacher stealing).
///
/// `teacher_probs` are the soft targets (already softmaxed at temperature
/// `t`); the student's logits are softened by the same temperature. The
/// returned gradient includes the standard `t²` correction so distillation
/// and hard-label losses can be mixed.
#[must_use]
pub fn distillation(student_logits: &Tensor, teacher_probs: &Tensor, t: f32) -> (f32, Tensor) {
    assert_eq!(student_logits.shape(), teacher_probs.shape());
    let batch = student_logits.rows() as f32;
    let soft = student_logits.scale(1.0 / t).softmax_rows();
    let mut loss = 0.0f32;
    for r in 0..student_logits.rows() {
        for (p_teacher, p_student) in teacher_probs.row(r).iter().zip(soft.row(r)) {
            if *p_teacher > 0.0 {
                loss -= p_teacher * p_student.max(1e-12).ln();
            }
        }
    }
    // ∂L/∂logits = (softened_student − teacher) · t² / (t · batch) = t/batch · diff
    let grad = soft
        .sub(teacher_probs)
        .expect("shapes checked")
        .scale(t / batch);
    (loss / batch, grad)
}

/// Struct adapters so losses can be passed as trait objects.
pub struct CrossEntropy;

impl Loss for CrossEntropy {
    fn compute(&self, logits: &Tensor, targets: &[usize]) -> (f32, Tensor) {
        cross_entropy(logits, targets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_entropy_perfect_prediction_is_near_zero() {
        let logits = Tensor::from_vec(vec![20.0, 0.0, 0.0, 0.0, 20.0, 0.0], &[2, 3]);
        let (loss, _) = cross_entropy(&logits, &[0, 1]);
        assert!(loss < 1e-6);
    }

    #[test]
    fn cross_entropy_uniform_is_log_k() {
        let logits = Tensor::zeros(&[1, 4]);
        let (loss, _) = cross_entropy(&logits, &[2]);
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_gradient_matches_numeric() {
        let logits = Tensor::from_vec(vec![0.2, -0.5, 1.0], &[1, 3]);
        let (_, grad) = cross_entropy(&logits, &[1]);
        let eps = 1e-3;
        for i in 0..3 {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let numeric = (cross_entropy(&lp, &[1]).0 - cross_entropy(&lm, &[1]).0) / (2.0 * eps);
            assert!(
                (numeric - grad.data()[i]).abs() < 1e-3,
                "grad[{i}]: {numeric} vs {}",
                grad.data()[i]
            );
        }
    }

    #[test]
    fn cross_entropy_grad_rows_sum_to_zero() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]);
        let (_, grad) = cross_entropy(&logits, &[0, 2]);
        for r in 0..2 {
            let s: f32 = grad.row(r).iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn mse_basics() {
        let p = Tensor::vector(&[1.0, 2.0]);
        let t = Tensor::vector(&[0.0, 0.0]);
        let (loss, grad) = mse(&p, &t);
        assert!((loss - 2.5).abs() < 1e-6);
        assert_eq!(grad.data(), &[1.0, 2.0]);
    }

    #[test]
    fn distillation_zero_when_matching_teacher() {
        let logits = Tensor::from_vec(vec![2.0, 0.0], &[1, 2]);
        let teacher = logits.scale(1.0 / 2.0).softmax_rows();
        let (_, grad) = distillation(&logits, &teacher, 2.0);
        assert!(grad.norm() < 1e-6);
    }

    #[test]
    fn distillation_gradient_matches_numeric() {
        let logits = Tensor::from_vec(vec![0.5, -0.2, 0.1], &[1, 3]);
        let teacher = Tensor::from_vec(vec![0.6, 0.3, 0.1], &[1, 3]);
        let t = 3.0;
        let (_, grad) = distillation(&logits, &teacher, t);
        let eps = 1e-3;
        for i in 0..3 {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let numeric =
                (distillation(&lp, &teacher, t).0 - distillation(&lm, &teacher, t).0) / (2.0 * eps);
            // The t² correction is intentionally included in grad but not in
            // the scalar loss, so compare against t²-scaled numeric.
            assert!(
                (numeric * t * t - grad.data()[i]).abs() < 2e-2,
                "grad[{i}]: {numeric} vs {}",
                grad.data()[i]
            );
        }
    }
}
