//! Core layers: dense, activations, dropout, flatten.
//!
//! The [`Layer`] enum dispatches forward/backward without trait objects so
//! models stay `Clone + Serialize`. Each variant keeps its own training
//! cache (`#[serde(skip)]`) — a serialized model carries only weights.

use crate::conv::{Conv2d, MaxPool2d};
use serde::{Deserialize, Serialize};
use tinymlops_tensor::{Tensor, TensorRng};

/// A fully-connected layer computing `y = x·Wᵀ + b`.
///
/// `x: [batch, in]`, `W: [out, in]`, `b: [out]`, `y: [batch, out]`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dense {
    /// Weight matrix, `[out, in]`.
    pub w: Tensor,
    /// Bias vector, `[out]`.
    pub b: Tensor,
    /// Accumulated weight gradient.
    #[serde(skip)]
    pub grad_w: Option<Tensor>,
    /// Accumulated bias gradient.
    #[serde(skip)]
    pub grad_b: Option<Tensor>,
    #[serde(skip)]
    cache_input: Option<Tensor>,
}

impl Dense {
    /// Kaiming-initialized dense layer.
    #[must_use]
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut TensorRng) -> Self {
        Dense {
            w: rng.kaiming(out_dim, in_dim),
            b: Tensor::zeros(&[out_dim]),
            grad_w: None,
            grad_b: None,
            cache_input: None,
        }
    }

    /// Construct from explicit weights (tests, deserialization, attacks).
    #[must_use]
    pub fn from_params(w: Tensor, b: Tensor) -> Self {
        assert_eq!(w.shape().len(), 2, "Dense weight must be a matrix");
        assert_eq!(w.shape()[0], b.len(), "bias length must equal out_dim");
        Dense {
            w,
            b,
            grad_w: None,
            grad_b: None,
            cache_input: None,
        }
    }

    /// Input dimension.
    #[must_use]
    pub fn in_dim(&self) -> usize {
        self.w.shape()[1]
    }

    /// Output dimension.
    #[must_use]
    pub fn out_dim(&self) -> usize {
        self.w.shape()[0]
    }

    fn forward(&self, x: &Tensor) -> Tensor {
        let y = x.matmul_nt(&self.w).expect("dense shape checked by caller");
        y.add_row_vector(&self.b).expect("bias shape invariant")
    }

    fn forward_train(&mut self, x: &Tensor) -> Tensor {
        self.cache_input = Some(x.clone());
        self.forward(x)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self
            .cache_input
            .take()
            .expect("backward called without forward_train");
        // grad_w[out,in] = grad_outᵀ[out,batch] · x[batch,in]
        let gw = grad_out.transpose().matmul(&x).expect("grad_w shapes");
        let gb = grad_out.sum_rows();
        accumulate(&mut self.grad_w, gw);
        accumulate(&mut self.grad_b, gb);
        // grad_in[batch,in] = grad_out[batch,out] · W[out,in]
        grad_out.matmul(&self.w).expect("grad_in shapes")
    }
}

fn accumulate(slot: &mut Option<Tensor>, g: Tensor) {
    match slot {
        Some(acc) => acc.axpy(1.0, &g).expect("gradient shape invariant"),
        None => *slot = Some(g),
    }
}

/// Inverted dropout: scales activations by `1/(1-p)` at training time so
/// inference is a no-op.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dropout {
    /// Drop probability in `[0,1)`.
    pub p: f32,
    #[serde(skip)]
    mask: Option<Tensor>,
    /// Deterministic counter-based mask seed (advanced every batch).
    pub seed: u64,
    #[serde(skip)]
    counter: u64,
}

impl Dropout {
    /// Dropout with drop-probability `p`.
    #[must_use]
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0,1)");
        Dropout {
            p,
            mask: None,
            seed,
            counter: 0,
        }
    }

    fn forward_train(&mut self, x: &Tensor) -> Tensor {
        let mut rng = TensorRng::seed(self.seed.wrapping_add(self.counter));
        self.counter = self.counter.wrapping_add(1);
        let keep = 1.0 - self.p;
        let mask = Tensor::from_vec(
            (0..x.len())
                .map(|_| {
                    if rng.next_f32() < keep {
                        1.0 / keep
                    } else {
                        0.0
                    }
                })
                .collect(),
            x.shape(),
        );
        let y = x.mul(&mask).expect("mask shape matches input");
        self.mask = Some(mask);
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self.mask.take().expect("backward without forward_train");
        grad_out.mul(&mask).expect("mask shape matches grad")
    }
}

/// A network layer. Forward semantics are per-variant; see each struct.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Layer {
    /// Fully-connected layer.
    Dense(Dense),
    /// Rectified linear unit.
    Relu,
    /// Leaky ReLU with the given negative slope.
    LeakyRelu(f32),
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// Squaring activation `x ↦ x²` — the arithmetic-friendly activation
    /// used by SafetyNets-style verifiable networks (§VI).
    Square,
    /// Inverted dropout (training only).
    Dropout(Dropout),
    /// 2-D convolution.
    Conv2d(Conv2d),
    /// 2×2 max pooling.
    MaxPool2d(MaxPool2d),
    /// Collapse `[batch, …]` to `[batch, features]`.
    Flatten,
}

/// Activation cache for stateless layers (input needed by backward).
#[derive(Debug, Clone, Default)]
pub struct ActCache {
    input: Option<Tensor>,
}

impl Layer {
    /// Inference-mode forward pass (dropout disabled, no caches).
    #[must_use]
    pub fn forward(&self, x: &Tensor) -> Tensor {
        match self {
            Layer::Dense(d) => d.forward(x),
            Layer::Relu => x.map(|v| v.max(0.0)),
            Layer::LeakyRelu(a) => {
                let a = *a;
                x.map(move |v| if v >= 0.0 { v } else { a * v })
            }
            Layer::Tanh => x.map(f32::tanh),
            Layer::Sigmoid => x.map(|v| 1.0 / (1.0 + (-v).exp())),
            Layer::Square => x.map(|v| v * v),
            Layer::Dropout(_) => x.clone(),
            Layer::Conv2d(c) => c.forward(x),
            Layer::MaxPool2d(p) => p.forward(x),
            Layer::Flatten => {
                let batch = x.rows();
                let feat = x.len() / batch.max(1);
                x.reshape(&[batch, feat]).expect("flatten preserves count")
            }
        }
    }

    /// Training-mode forward pass; caches whatever backward needs.
    pub fn forward_train(&mut self, x: &Tensor, cache: &mut ActCache) -> Tensor {
        match self {
            Layer::Dense(d) => d.forward_train(x),
            Layer::Dropout(d) => d.forward_train(x),
            Layer::Conv2d(c) => c.forward_train(x),
            Layer::MaxPool2d(p) => p.forward_train(x),
            Layer::Relu | Layer::LeakyRelu(_) | Layer::Tanh | Layer::Sigmoid | Layer::Square => {
                cache.input = Some(x.clone());
                self.forward(x)
            }
            Layer::Flatten => {
                cache.input = Some(x.clone());
                self.forward(x)
            }
        }
    }

    /// Backward pass: gradient w.r.t. input, accumulating parameter grads.
    pub fn backward(&mut self, grad_out: &Tensor, cache: &mut ActCache) -> Tensor {
        match self {
            Layer::Dense(d) => d.backward(grad_out),
            Layer::Dropout(d) => d.backward(grad_out),
            Layer::Conv2d(c) => c.backward(grad_out),
            Layer::MaxPool2d(p) => p.backward(grad_out),
            Layer::Relu => {
                let x = cache.input.take().expect("relu cache");
                Tensor::from_vec(
                    x.data()
                        .iter()
                        .zip(grad_out.data())
                        .map(|(&xi, &g)| if xi > 0.0 { g } else { 0.0 })
                        .collect(),
                    grad_out.shape(),
                )
            }
            Layer::LeakyRelu(a) => {
                let a = *a;
                let x = cache.input.take().expect("leaky relu cache");
                Tensor::from_vec(
                    x.data()
                        .iter()
                        .zip(grad_out.data())
                        .map(|(&xi, &g)| if xi >= 0.0 { g } else { a * g })
                        .collect(),
                    grad_out.shape(),
                )
            }
            Layer::Tanh => {
                let x = cache.input.take().expect("tanh cache");
                Tensor::from_vec(
                    x.data()
                        .iter()
                        .zip(grad_out.data())
                        .map(|(&xi, &g)| {
                            let t = xi.tanh();
                            g * (1.0 - t * t)
                        })
                        .collect(),
                    grad_out.shape(),
                )
            }
            Layer::Sigmoid => {
                let x = cache.input.take().expect("sigmoid cache");
                Tensor::from_vec(
                    x.data()
                        .iter()
                        .zip(grad_out.data())
                        .map(|(&xi, &g)| {
                            let s = 1.0 / (1.0 + (-xi).exp());
                            g * s * (1.0 - s)
                        })
                        .collect(),
                    grad_out.shape(),
                )
            }
            Layer::Square => {
                let x = cache.input.take().expect("square cache");
                Tensor::from_vec(
                    x.data()
                        .iter()
                        .zip(grad_out.data())
                        .map(|(&xi, &g)| 2.0 * xi * g)
                        .collect(),
                    grad_out.shape(),
                )
            }
            Layer::Flatten => {
                let x = cache.input.take().expect("flatten cache");
                grad_out
                    .reshape(x.shape())
                    .expect("flatten backward preserves count")
            }
        }
    }

    /// Mutable references to this layer's parameters and their gradient
    /// slots, in a stable order.
    pub fn params_mut(&mut self) -> Vec<(&mut Tensor, &mut Option<Tensor>)> {
        match self {
            Layer::Dense(d) => vec![(&mut d.w, &mut d.grad_w), (&mut d.b, &mut d.grad_b)],
            Layer::Conv2d(c) => c.params_mut(),
            _ => vec![],
        }
    }

    /// Immutable references to this layer's parameters.
    #[must_use]
    pub fn params(&self) -> Vec<&Tensor> {
        match self {
            Layer::Dense(d) => vec![&d.w, &d.b],
            Layer::Conv2d(c) => c.params(),
            _ => vec![],
        }
    }

    /// Short human-readable layer name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Layer::Dense(_) => "dense",
            Layer::Relu => "relu",
            Layer::LeakyRelu(_) => "leaky_relu",
            Layer::Tanh => "tanh",
            Layer::Sigmoid => "sigmoid",
            Layer::Square => "square",
            Layer::Dropout(_) => "dropout",
            Layer::Conv2d(_) => "conv2d",
            Layer::MaxPool2d(_) => "maxpool2d",
            Layer::Flatten => "flatten",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TensorRng {
        TensorRng::seed(99)
    }

    #[test]
    fn dense_forward_known_values() {
        let d = Dense::from_params(
            Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]),
            Tensor::vector(&[1.0, -1.0]),
        );
        let x = Tensor::from_vec(vec![2.0, 3.0], &[1, 2]);
        let y = Layer::Dense(d).forward(&x);
        assert_eq!(y.data(), &[3.0, 2.0]);
    }

    #[test]
    fn relu_clamps_negative() {
        let y = Layer::Relu.forward(&Tensor::vector(&[-1.0, 2.0]));
        assert_eq!(y.data(), &[0.0, 2.0]);
    }

    #[test]
    fn square_activation() {
        let y = Layer::Square.forward(&Tensor::vector(&[-3.0, 2.0]));
        assert_eq!(y.data(), &[9.0, 4.0]);
    }

    /// Numeric gradient check for a Dense layer: perturb each weight and
    /// compare the analytic gradient to finite differences of a scalar loss.
    #[test]
    fn dense_gradient_check() {
        let mut r = rng();
        let mut layer = Layer::Dense(Dense::new(3, 2, &mut r));
        let x = r.uniform(&[4, 3], -1.0, 1.0);
        // Loss = sum(y²)/2 ⇒ grad_out = y.
        let mut cache = ActCache::default();
        let y = layer.forward_train(&x, &mut cache);
        let _ = layer.backward(&y, &mut cache);
        let analytic = match &layer {
            Layer::Dense(d) => d.grad_w.clone().unwrap(),
            _ => unreachable!(),
        };
        let eps = 1e-3;
        if let Layer::Dense(d) = &mut layer {
            for idx in 0..d.w.len() {
                let orig = d.w.data()[idx];
                d.w.data_mut()[idx] = orig + eps;
                let y_plus = Layer::Dense(d.clone()).forward(&x);
                let l_plus: f32 = y_plus.data().iter().map(|v| v * v).sum::<f32>() / 2.0;
                d.w.data_mut()[idx] = orig - eps;
                let y_minus = Layer::Dense(d.clone()).forward(&x);
                let l_minus: f32 = y_minus.data().iter().map(|v| v * v).sum::<f32>() / 2.0;
                d.w.data_mut()[idx] = orig;
                let numeric = (l_plus - l_minus) / (2.0 * eps);
                let got = analytic.data()[idx];
                assert!(
                    (numeric - got).abs() < 2e-2 * (1.0 + numeric.abs()),
                    "dw[{idx}] numeric {numeric} vs analytic {got}"
                );
            }
        }
    }

    #[test]
    fn activation_gradient_checks() {
        let acts = [
            Layer::Relu,
            Layer::LeakyRelu(0.1),
            Layer::Tanh,
            Layer::Sigmoid,
            Layer::Square,
        ];
        let x = Tensor::vector(&[0.3, -0.7, 1.2, 0.01]);
        for mut layer in acts {
            let mut cache = ActCache::default();
            let y = layer.forward_train(&x, &mut cache);
            let grad_in = layer.backward(&Tensor::full(&[4], 1.0), &mut cache);
            let eps = 1e-3;
            for i in 0..x.len() {
                // Skip kink points of piecewise-linear activations.
                if x.data()[i].abs() < 2.0 * eps {
                    continue;
                }
                let mut xp = x.clone();
                xp.data_mut()[i] += eps;
                let mut xm = x.clone();
                xm.data_mut()[i] -= eps;
                let numeric = (layer.forward(&xp).sum() - layer.forward(&xm).sum()) / (2.0 * eps);
                assert!(
                    (numeric - grad_in.data()[i]).abs() < 1e-2,
                    "{} grad[{i}]: numeric {numeric} vs {}",
                    layer.name(),
                    grad_in.data()[i]
                );
            }
            let _ = y;
        }
    }

    #[test]
    fn dropout_inference_is_identity() {
        let d = Layer::Dropout(Dropout::new(0.5, 7));
        let x = Tensor::vector(&[1.0, 2.0, 3.0]);
        assert_eq!(d.forward(&x), x);
    }

    #[test]
    fn dropout_train_scales_survivors() {
        let mut d = Layer::Dropout(Dropout::new(0.5, 7));
        let x = Tensor::full(&[1000], 1.0);
        let mut cache = ActCache::default();
        let y = d.forward_train(&x, &mut cache);
        // Survivors are scaled to 2.0; mean stays ≈ 1.
        for &v in y.data() {
            assert!(v == 0.0 || (v - 2.0).abs() < 1e-6);
        }
        assert!((y.mean() - 1.0).abs() < 0.15);
    }

    #[test]
    fn flatten_collapses_trailing_dims() {
        let x = Tensor::zeros(&[2, 3, 4]);
        let y = Layer::Flatten.forward(&x);
        assert_eq!(y.shape(), &[2, 12]);
    }

    #[test]
    fn dense_param_count() {
        let mut r = rng();
        let mut l = Layer::Dense(Dense::new(4, 3, &mut r));
        let n: usize = l.params().iter().map(|p| p.len()).sum();
        assert_eq!(n, 4 * 3 + 3);
        assert_eq!(l.params_mut().len(), 2);
    }

    #[test]
    fn gradients_accumulate_across_batches() {
        let mut r = rng();
        let mut l = Layer::Dense(Dense::new(2, 2, &mut r));
        let x = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]);
        let g = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]);
        let mut cache = ActCache::default();
        l.forward_train(&x, &mut cache);
        l.backward(&g, &mut cache);
        let g1 = match &l {
            Layer::Dense(d) => d.grad_w.clone().unwrap(),
            _ => unreachable!(),
        };
        l.forward_train(&x, &mut cache);
        l.backward(&g, &mut cache);
        let g2 = match &l {
            Layer::Dense(d) => d.grad_w.clone().unwrap(),
            _ => unreachable!(),
        };
        for (a, b) in g1.data().iter().zip(g2.data()) {
            assert!((2.0 * a - b).abs() < 1e-6);
        }
    }
}
