//! Static model profiling: per-layer FLOPs, parameter and activation sizes.
//!
//! The deployment layer (§III-A model selection, §IV edge/cloud split)
//! needs to know *before running anything* how expensive each layer is and
//! how many bytes cross the wire if the model is cut at a given point.

use crate::layer::Layer;
use crate::model::Sequential;
use serde::{Deserialize, Serialize};

/// Static cost profile of one layer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LayerProfile {
    /// Layer name (e.g. `dense`, `conv2d`).
    pub name: String,
    /// Multiply-accumulate operations for a batch-1 forward pass.
    pub macs: u64,
    /// Trainable parameter count.
    pub params: u64,
    /// Elements in this layer's output (batch 1).
    pub output_len: u64,
    /// Output shape (batch dimension omitted).
    pub output_shape: Vec<usize>,
}

/// Profile every layer of `model` for a single example with the given
/// per-example input shape (no batch dimension), e.g. `&[64]` or `&[1,8,8]`.
#[must_use]
pub fn profile(model: &Sequential, input_shape: &[usize]) -> Vec<LayerProfile> {
    let mut shape = input_shape.to_vec();
    let mut out = Vec::with_capacity(model.layers.len());
    for layer in &model.layers {
        let (macs, params, new_shape) = match layer {
            Layer::Dense(d) => {
                let in_dim = d.in_dim() as u64;
                let out_dim = d.out_dim() as u64;
                (
                    in_dim * out_dim,
                    in_dim * out_dim + out_dim,
                    vec![d.out_dim()],
                )
            }
            Layer::Conv2d(c) => {
                let s = c.w.shape(); // [c_out, c_in, k, k]
                let (c_out, c_in, k) = (s[0], s[1], s[2]);
                assert_eq!(shape.len(), 3, "conv needs [c,h,w] input, got {shape:?}");
                let (h, w) = (shape[1], shape[2]);
                let oh = h + 2 * c.padding + 1 - k;
                let ow = w + 2 * c.padding + 1 - k;
                let macs = (c_out * c_in * k * k * oh * ow) as u64;
                let params = (c_out * c_in * k * k + c_out) as u64;
                (macs, params, vec![c_out, oh, ow])
            }
            Layer::MaxPool2d(_) => {
                assert_eq!(shape.len(), 3, "pool needs [c,h,w] input");
                let new = vec![shape[0], shape[1] / 2, shape[2] / 2];
                let elems: usize = new.iter().product();
                (elems as u64 * 4, 0, new) // 4 comparisons per output
            }
            Layer::Flatten => {
                let elems: usize = shape.iter().product();
                (0, 0, vec![elems])
            }
            // Element-wise layers: one op per element, no params.
            _ => {
                let elems: usize = shape.iter().product();
                (elems as u64, 0, shape.clone())
            }
        };
        let output_len: usize = new_shape.iter().product();
        out.push(LayerProfile {
            name: layer.name().to_string(),
            macs,
            params,
            output_len: output_len as u64,
            output_shape: new_shape.clone(),
        });
        shape = new_shape;
    }
    out
}

/// Total MACs for a batch-1 forward pass.
#[must_use]
pub fn total_macs(model: &Sequential, input_shape: &[usize]) -> u64 {
    profile(model, input_shape).iter().map(|l| l.macs).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::{Conv2d, MaxPool2d};
    use crate::layer::Dense;
    use crate::model::mlp;
    use tinymlops_tensor::TensorRng;

    #[test]
    fn mlp_profile_counts() {
        let mut rng = TensorRng::seed(0);
        let m = mlp(&[64, 32, 10], &mut rng);
        let p = profile(&m, &[64]);
        assert_eq!(p.len(), 3); // dense, relu, dense
        assert_eq!(p[0].macs, 64 * 32);
        assert_eq!(p[0].params, 64 * 32 + 32);
        assert_eq!(p[1].name, "relu");
        assert_eq!(p[1].macs, 32);
        assert_eq!(p[2].output_shape, vec![10]);
        assert_eq!(total_macs(&m, &[64]), 64 * 32 + 32 + 32 * 10);
    }

    #[test]
    fn conv_profile_matches_formula() {
        let mut rng = TensorRng::seed(1);
        let m = Sequential::new(vec![
            Layer::Conv2d(Conv2d::new(1, 4, 3, 1, &mut rng)),
            Layer::Relu,
            Layer::MaxPool2d(MaxPool2d::new()),
            Layer::Flatten,
            Layer::Dense(Dense::new(4 * 4 * 4, 10, &mut rng)),
        ]);
        let p = profile(&m, &[1, 8, 8]);
        assert_eq!(p[0].output_shape, vec![4, 8, 8]); // padding keeps size
        assert_eq!(p[0].macs, (4 * 9 * 64) as u64);
        assert_eq!(p[2].output_shape, vec![4, 4, 4]);
        assert_eq!(p[3].output_shape, vec![64]);
        assert_eq!(p[4].output_shape, vec![10]);
    }

    use crate::model::Sequential;

    #[test]
    fn profile_matches_real_forward_shapes() {
        let mut rng = TensorRng::seed(2);
        let m = Sequential::new(vec![
            Layer::Conv2d(Conv2d::new(1, 2, 3, 0, &mut rng)),
            Layer::Relu,
            Layer::Flatten,
            Layer::Dense(Dense::new(2 * 6 * 6, 5, &mut rng)),
        ]);
        let p = profile(&m, &[1, 8, 8]);
        let x = tinymlops_tensor::Tensor::zeros(&[1, 1, 8, 8]);
        let acts = m.forward_collect(&x);
        for (i, lp) in p.iter().enumerate() {
            assert_eq!(
                acts[i + 1].len() as u64,
                lp.output_len,
                "layer {i} ({}) output size",
                lp.name
            );
        }
    }
}
