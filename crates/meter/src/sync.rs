//! Device ↔ backend reconciliation with fork/rollback detection.
//!
//! A purely-software meter on untrusted hardware cannot *prevent* a user
//! from restoring an old device snapshot to regain quota (§III-C's "not
//! trivial" problem, cf. offline CBDC payments). It can make the fraud
//! **detectable**: the server remembers each device's last reported chain
//! head; an honest device always presents a log whose prefix ends in that
//! head, while a rolled-back device presents a history in which the
//! remembered head no longer exists.

use crate::audit::AuditLog;
use crate::MeterError;
use std::collections::HashMap;
use tinymlops_crypto::Digest;

/// Result of a successful sync.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyncOutcome {
    /// Queries consumed since the previous checkpoint.
    pub new_queries: u64,
    /// Length of the log at this checkpoint.
    pub log_len: u64,
}

/// Backend state: per-device chain heads and verification keys.
#[derive(Default)]
pub struct SyncServer {
    /// device → (last seq, last head link, queries billed so far).
    state: HashMap<u32, (u64, Digest, u64)>,
    keys: HashMap<u32, [u8; 32]>,
}

impl SyncServer {
    /// New empty backend.
    #[must_use]
    pub fn new() -> Self {
        SyncServer::default()
    }

    /// Register a device's audit key (provisioning step).
    pub fn provision(&mut self, device_id: u32, key: [u8; 32]) {
        self.keys.insert(device_id, key);
    }

    /// Reconcile a device's full audit log.
    ///
    /// Checks, in order: chain integrity under the provisioned key, then
    /// continuity with the previously reported head (fork/rollback
    /// detection), then computes the billable delta.
    pub fn sync(&mut self, device_id: u32, log: &AuditLog) -> Result<SyncOutcome, MeterError> {
        let key = self
            .keys
            .get(&device_id)
            .ok_or(MeterError::BadVoucher("unprovisioned device"))?;
        log.verify(key)?;
        // Bill the net count: refunded (shed-after-admission) queries are
        // chain entries too, so they survive verification and reduce the
        // invoice instead of being silently burned.
        let total_queries = log.net_query_count();
        let entry_count = log.len() as u64;
        match self.state.get(&device_id) {
            None => {}
            Some(&(last_seq, last_head, _)) => {
                // The previously-reported head must still be present at the
                // same position. Truncation/rollback removes or moves it.
                let idx = last_seq as usize;
                let ok = idx < log.len() && log.entries()[idx].link == last_head;
                if !ok {
                    return Err(MeterError::ForkDetected);
                }
            }
        }
        let billed_before = self.state.get(&device_id).map_or(0, |s| s.2);
        if entry_count == 0 {
            return Ok(SyncOutcome {
                new_queries: 0,
                log_len: 0,
            });
        }
        let head = log.head();
        self.state
            .insert(device_id, (entry_count - 1, head, total_queries));
        Ok(SyncOutcome {
            new_queries: total_queries.saturating_sub(billed_before),
            log_len: entry_count,
        })
    }

    /// Total queries billed for a device across all syncs.
    #[must_use]
    pub fn billed(&self, device_id: u32) -> u64 {
        self.state.get(&device_id).map_or(0, |s| s.2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::EntryKind;

    fn key() -> [u8; 32] {
        [9u8; 32]
    }

    fn server() -> SyncServer {
        let mut s = SyncServer::new();
        s.provision(1, key());
        s
    }

    #[test]
    fn honest_incremental_syncs() {
        let mut srv = server();
        let mut log = AuditLog::new(key());
        for t in 0..10 {
            log.append(EntryKind::Query, 1, t);
        }
        let o1 = srv.sync(1, &log).unwrap();
        assert_eq!(o1.new_queries, 10);
        for t in 10..15 {
            log.append(EntryKind::Query, 1, t);
        }
        let o2 = srv.sync(1, &log).unwrap();
        assert_eq!(o2.new_queries, 5);
        assert_eq!(srv.billed(1), 15);
    }

    #[test]
    fn rollback_after_sync_is_detected() {
        let mut srv = server();
        let mut log = AuditLog::new(key());
        for t in 0..10 {
            log.append(EntryKind::Query, 1, t);
        }
        srv.sync(1, &log).unwrap();
        // User restores the pre-usage snapshot (empty log) and consumes
        // "fresh" quota.
        let mut rolled_back = AuditLog::new(key());
        for t in 0..3 {
            rolled_back.append(EntryKind::Query, 1, t);
        }
        assert_eq!(srv.sync(1, &rolled_back), Err(MeterError::ForkDetected));
    }

    #[test]
    fn tampered_log_rejected_before_fork_check() {
        let mut srv = server();
        let mut log = AuditLog::new(key());
        log.append(EntryKind::Query, 5, 0);
        srv.sync(1, &log).unwrap();
        // Device edits its own history to claim fewer queries.
        let mut forged = AuditLog::new(key());
        forged.append(EntryKind::Query, 1, 0);
        // Forged chain is internally valid but its head differs from the
        // recorded one → fork detected.
        assert!(srv.sync(1, &forged).is_err());
    }

    #[test]
    fn refunds_reduce_the_billable_delta() {
        let mut srv = server();
        let mut log = AuditLog::new(key());
        for t in 0..10 {
            log.append(EntryKind::Query, 1, t);
        }
        log.append(EntryKind::Refund, 3, 10);
        let o = srv.sync(1, &log).unwrap();
        assert_eq!(o.new_queries, 7, "10 consumed − 3 refunded");
        assert_eq!(srv.billed(1), 7);
    }

    #[test]
    fn unprovisioned_device_rejected() {
        let mut srv = SyncServer::new();
        let log = AuditLog::new(key());
        assert!(srv.sync(99, &log).is_err());
    }

    #[test]
    fn first_sync_with_empty_log_is_fine() {
        let mut srv = server();
        let log = AuditLog::new(key());
        let o = srv.sync(1, &log).unwrap();
        assert_eq!(o.new_queries, 0);
    }

    #[test]
    fn wrong_key_chain_rejected() {
        let mut srv = server();
        let mut log = AuditLog::new([8u8; 32]); // sealed under wrong key
        log.append(EntryKind::Query, 1, 0);
        assert!(matches!(
            srv.sync(1, &log),
            Err(MeterError::ChainBroken { .. })
        ));
    }
}
