//! Prepaid vouchers: issued online, redeemable offline, double-spend
//! detected at the next sync.
//!
//! The voucher is an HMAC-authenticated `(serial, quota, device)` triple.
//! A device can redeem it while offline (adding quota locally); because
//! serials are single-use *per the server's ledger*, redeeming a copied
//! voucher on two devices — or replaying it — surfaces as soon as either
//! device syncs.

use crate::MeterError;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use tinymlops_crypto::hmac_sha256;

/// A prepaid-quota voucher.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Voucher {
    /// Unique serial number.
    pub serial: u64,
    /// Number of prepaid queries this voucher grants.
    pub quota: u64,
    /// Device the voucher is bound to (0 = bearer voucher).
    pub device_id: u32,
    /// HMAC over serial ‖ quota ‖ device.
    pub mac: [u8; 32],
}

fn voucher_mac(key: &[u8; 32], serial: u64, quota: u64, device_id: u32) -> [u8; 32] {
    let mut msg = Vec::with_capacity(20);
    msg.extend_from_slice(&serial.to_le_bytes());
    msg.extend_from_slice(&quota.to_le_bytes());
    msg.extend_from_slice(&device_id.to_le_bytes());
    hmac_sha256(key, &msg)
}

/// Server-side voucher mint.
#[derive(Debug)]
pub struct VoucherIssuer {
    key: [u8; 32],
    next_serial: u64,
}

impl VoucherIssuer {
    /// New issuer with a signing key.
    #[must_use]
    pub fn new(key: [u8; 32]) -> Self {
        VoucherIssuer {
            key,
            next_serial: 1,
        }
    }

    /// Issue a voucher for `quota` queries bound to `device_id`.
    pub fn issue(&mut self, quota: u64, device_id: u32) -> Voucher {
        let serial = self.next_serial;
        self.next_serial += 1;
        Voucher {
            serial,
            quota,
            device_id,
            mac: voucher_mac(&self.key, serial, quota, device_id),
        }
    }

    /// Verify authenticity (not spend status) of a voucher.
    pub fn verify(&self, v: &Voucher) -> Result<(), MeterError> {
        let want = voucher_mac(&self.key, v.serial, v.quota, v.device_id);
        if tinymlops_crypto::ct_eq(&want, &v.mac) {
            Ok(())
        } else {
            Err(MeterError::BadVoucher("authentication failed"))
        }
    }
}

/// Server-side ledger of redeemed serials (double-spend detection).
#[derive(Debug, Default)]
pub struct VoucherLedger {
    redeemed: HashSet<u64>,
}

impl VoucherLedger {
    /// New empty ledger.
    #[must_use]
    pub fn new() -> Self {
        VoucherLedger::default()
    }

    /// Register a redemption reported at sync. Errors when the serial was
    /// already spent (cloned voucher / replay).
    pub fn register(&mut self, serial: u64) -> Result<(), MeterError> {
        if self.redeemed.insert(serial) {
            Ok(())
        } else {
            Err(MeterError::BadVoucher("double spend"))
        }
    }

    /// Number of serials spent so far.
    #[must_use]
    pub fn spent(&self) -> usize {
        self.redeemed.len()
    }
}

/// Device-side validation before redeeming: check binding and MAC (the
/// device holds the same key, derived per-device via HKDF in deployment).
pub fn validate_for_device(
    voucher: &Voucher,
    key: &[u8; 32],
    device_id: u32,
) -> Result<(), MeterError> {
    let want = voucher_mac(key, voucher.serial, voucher.quota, voucher.device_id);
    if !tinymlops_crypto::ct_eq(&want, &voucher.mac) {
        return Err(MeterError::BadVoucher("authentication failed"));
    }
    if voucher.device_id != 0 && voucher.device_id != device_id {
        return Err(MeterError::BadVoucher("bound to another device"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> [u8; 32] {
        [3u8; 32]
    }

    #[test]
    fn issue_verify_round_trip() {
        let mut issuer = VoucherIssuer::new(key());
        let v = issuer.issue(1000, 7);
        issuer.verify(&v).unwrap();
        validate_for_device(&v, &key(), 7).unwrap();
    }

    #[test]
    fn serials_are_unique_and_increasing() {
        let mut issuer = VoucherIssuer::new(key());
        let a = issuer.issue(10, 1);
        let b = issuer.issue(10, 1);
        assert!(b.serial > a.serial);
    }

    #[test]
    fn forged_quota_is_rejected() {
        let mut issuer = VoucherIssuer::new(key());
        let mut v = issuer.issue(10, 1);
        v.quota = 1_000_000; // user edits the voucher
        assert!(issuer.verify(&v).is_err());
        assert!(validate_for_device(&v, &key(), 1).is_err());
    }

    #[test]
    fn wrong_device_binding_rejected() {
        let mut issuer = VoucherIssuer::new(key());
        let v = issuer.issue(10, 1);
        assert!(validate_for_device(&v, &key(), 2).is_err());
    }

    #[test]
    fn bearer_voucher_works_on_any_device() {
        let mut issuer = VoucherIssuer::new(key());
        let v = issuer.issue(10, 0);
        validate_for_device(&v, &key(), 5).unwrap();
        validate_for_device(&v, &key(), 9).unwrap();
    }

    #[test]
    fn double_spend_detected_at_sync() {
        let mut ledger = VoucherLedger::new();
        ledger.register(42).unwrap();
        assert_eq!(
            ledger.register(42),
            Err(MeterError::BadVoucher("double spend"))
        );
        assert_eq!(ledger.spent(), 1);
    }
}
