//! Rate cards and invoice generation.
//!
//! §III-C cites Google Cloud Vision: *"$1.50 per 1,000 requests"*. The
//! billing engine turns reconciled audit logs into invoices at such rates,
//! with volume tiers because real rate cards have them.

use serde::{Deserialize, Serialize};

/// A tiered per-1000-queries rate card. Amounts are in micro-dollars to
/// keep billing exact in integer arithmetic (no floating-point money).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RateCard {
    /// `(threshold, price_per_1k_microdollars)` — the price applies to
    /// queries *beyond* the threshold, evaluated in order. The first tier
    /// must start at 0.
    pub tiers: Vec<(u64, u64)>,
    /// Free quota per billing period.
    pub free_queries: u64,
}

impl RateCard {
    /// The paper's example: flat $1.50 per 1 000 requests, first 1 000 free
    /// (Cloud Vision's actual free tier).
    #[must_use]
    pub fn cloud_vision_like() -> Self {
        RateCard {
            tiers: vec![(0, 1_500_000)], // $1.50 = 1.5e6 µ$
            free_queries: 1000,
        }
    }

    /// Cost of `queries` in micro-dollars.
    #[must_use]
    pub fn cost_microdollars(&self, queries: u64) -> u64 {
        let billable = queries.saturating_sub(self.free_queries);
        if billable == 0 {
            return 0;
        }
        let mut total: u64 = 0;
        for (i, &(threshold, price)) in self.tiers.iter().enumerate() {
            let upper = self
                .tiers
                .get(i + 1)
                .map_or(u64::MAX, |&(next_threshold, _)| next_threshold);
            if billable <= threshold {
                break;
            }
            let in_tier = billable.min(upper) - threshold;
            // ceil(in_tier * price / 1000) charged pro-rata per query.
            total += in_tier * price / 1000;
        }
        total
    }
}

/// An invoice for one device over one billing period.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Invoice {
    /// Device billed.
    pub device_id: u32,
    /// Queries reconciled this period.
    pub queries: u64,
    /// Amount due, micro-dollars.
    pub amount_microdollars: u64,
}

impl Invoice {
    /// Build an invoice from a reconciled query count.
    #[must_use]
    pub fn compute(device_id: u32, queries: u64, rates: &RateCard) -> Self {
        Invoice {
            device_id,
            queries,
            amount_microdollars: rates.cost_microdollars(queries),
        }
    }

    /// Dollar amount as a display string (exact, no float rounding).
    #[must_use]
    pub fn amount_display(&self) -> String {
        let dollars = self.amount_microdollars / 1_000_000;
        let cents = (self.amount_microdollars % 1_000_000) / 10_000;
        format!("${dollars}.{cents:02}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rate_one_thousand_queries() {
        let r = RateCard::cloud_vision_like();
        // First 1000 free, next 1000 at $1.50/1k.
        assert_eq!(r.cost_microdollars(1000), 0);
        assert_eq!(r.cost_microdollars(2000), 1_500_000);
    }

    #[test]
    fn per_query_proration() {
        let r = RateCard::cloud_vision_like();
        // 1 billable query = $0.0015 = 1500 µ$.
        assert_eq!(r.cost_microdollars(1001), 1500);
    }

    #[test]
    fn tiered_pricing() {
        // First 10k billable at $1.50/1k, beyond at $1.00/1k.
        let r = RateCard {
            tiers: vec![(0, 1_500_000), (10_000, 1_000_000)],
            free_queries: 0,
        };
        assert_eq!(r.cost_microdollars(10_000), 15_000_000);
        assert_eq!(r.cost_microdollars(12_000), 15_000_000 + 2_000_000);
    }

    #[test]
    fn invoice_display() {
        let r = RateCard::cloud_vision_like();
        let inv = Invoice::compute(3, 2000, &r);
        assert_eq!(inv.amount_display(), "$1.50");
        assert_eq!(inv.queries, 2000);
    }

    #[test]
    fn zero_usage_zero_invoice() {
        let r = RateCard::cloud_vision_like();
        let inv = Invoice::compute(1, 0, &r);
        assert_eq!(inv.amount_microdollars, 0);
        assert_eq!(inv.amount_display(), "$0.00");
    }
}
