//! Prepaid quota enforcement.

use crate::audit::{AuditLog, EntryKind};
use crate::MeterError;
use serde::{Deserialize, Serialize};

/// Result of a quota check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QuotaStatus {
    /// Queries remain.
    Ok {
        /// Remaining prepaid queries.
        remaining: u64,
    },
    /// Balance is zero; queries are denied until a top-up.
    Exhausted,
}

/// Local prepaid-query balance, coupled to the audit log: every consume
/// appends a chain entry, so the balance is always reconstructible from
/// (redemptions − consumed) and auditable by the backend.
#[derive(Debug)]
pub struct QuotaManager {
    balance: u64,
    log: AuditLog,
}

impl QuotaManager {
    /// New manager with zero balance and an empty audit chain.
    #[must_use]
    pub fn new(device_key: [u8; 32]) -> Self {
        QuotaManager {
            balance: 0,
            log: AuditLog::new(device_key),
        }
    }

    /// Current balance.
    #[must_use]
    pub fn balance(&self) -> u64 {
        self.balance
    }

    /// Current quota status.
    #[must_use]
    pub fn status(&self) -> QuotaStatus {
        if self.balance > 0 {
            QuotaStatus::Ok {
                remaining: self.balance,
            }
        } else {
            QuotaStatus::Exhausted
        }
    }

    /// Add `n` prepaid queries (called by voucher redemption; `serial`
    /// lands in the audit trail).
    pub fn credit(&mut self, n: u64, serial: u64, time_ms: u64) {
        self.balance += n;
        self.log.append(EntryKind::Redeem, serial, time_ms);
    }

    /// Consume quota for `n` queries, appending to the audit chain.
    /// Denies (without partial consumption) when the balance is short —
    /// the §III-C "deny access" behaviour.
    pub fn consume(&mut self, n: u64, time_ms: u64) -> Result<QuotaStatus, MeterError> {
        if self.balance < n {
            return Err(MeterError::QuotaExhausted);
        }
        self.balance -= n;
        self.log.append(EntryKind::Query, n, time_ms);
        Ok(self.status())
    }

    /// Return `n` prepaid queries to the balance because admitted work was
    /// shed downstream before being served (NoRoute, deadline expiry).
    /// Appends a `Refund` entry so the chain stays tamper-evident and the
    /// backend bills the net count — prepaid queries are never silently
    /// burned by a shed the platform caused.
    pub fn refund(&mut self, n: u64, time_ms: u64) {
        self.balance += n;
        self.log.append(EntryKind::Refund, n, time_ms);
    }

    /// Record a node-to-node handoff of this whole quota partition (live
    /// tenant migration). The entry seals the re-homing into the chain:
    /// balance and history are unchanged, but a verifier can see exactly
    /// when the account moved and between which serving nodes, and a
    /// tamperer without the key cannot forge or relocate the move.
    pub fn handoff(&mut self, from_node: u32, to_node: u32, time_ms: u64) {
        self.log.append(
            EntryKind::Handoff,
            crate::audit::handoff_payload(from_node, to_node),
            time_ms,
        );
    }

    /// Record an emergency failover of this quota partition: the home
    /// node died and a surviving node adopted the account. Same shape as
    /// [`QuotaManager::handoff`] but domain-separated in the chain, so
    /// billing can distinguish planned migrations from recoveries and a
    /// verifier sees exactly which node absorbed the account.
    pub fn failover(&mut self, from_node: u32, to_node: u32, time_ms: u64) {
        self.log.append(
            EntryKind::Failover,
            crate::audit::handoff_payload(from_node, to_node),
            time_ms,
        );
    }

    /// Borrow the audit log (for sync/billing).
    #[must_use]
    pub fn log(&self) -> &AuditLog {
        &self.log
    }

    /// Record a server-acknowledged checkpoint in the chain.
    pub fn checkpoint(&mut self, time_ms: u64) {
        self.log
            .append(EntryKind::Checkpoint, self.balance, time_ms);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr() -> QuotaManager {
        QuotaManager::new([1u8; 32])
    }

    #[test]
    fn consume_until_denied() {
        let mut m = mgr();
        m.credit(3, 42, 0);
        assert_eq!(m.consume(1, 1).unwrap(), QuotaStatus::Ok { remaining: 2 });
        assert_eq!(m.consume(2, 2).unwrap(), QuotaStatus::Exhausted);
        assert_eq!(m.consume(1, 3), Err(MeterError::QuotaExhausted));
        assert_eq!(m.balance(), 0);
    }

    #[test]
    fn short_balance_denies_without_partial_burn() {
        let mut m = mgr();
        m.credit(5, 1, 0);
        assert!(m.consume(10, 1).is_err());
        assert_eq!(m.balance(), 5, "denied consume must not burn quota");
    }

    #[test]
    fn every_consume_is_audited() {
        let mut m = mgr();
        m.credit(10, 9, 0);
        for t in 0..7 {
            m.consume(1, t).unwrap();
        }
        assert_eq!(m.log().query_count(), 7);
        m.log().verify(&[1u8; 32]).unwrap();
    }

    #[test]
    fn balance_reconstructible_from_log() {
        let mut m = mgr();
        m.credit(100, 5, 0);
        m.consume(30, 1).unwrap();
        m.consume(20, 2).unwrap();
        let credited: u64 = 100; // known from the voucher ledger
        let consumed = m.log().query_count();
        assert_eq!(m.balance(), credited - consumed);
    }

    #[test]
    fn refund_restores_balance_and_stays_verifiable() {
        let mut m = mgr();
        m.credit(10, 1, 0);
        m.consume(4, 1).unwrap();
        m.refund(2, 2);
        assert_eq!(m.balance(), 8, "consumed 4, refunded 2");
        assert_eq!(m.log().query_count(), 4);
        assert_eq!(m.log().refund_count(), 2);
        assert_eq!(m.log().net_query_count(), 2);
        m.log().verify(&[1u8; 32]).unwrap();
    }

    #[test]
    fn handoff_preserves_balance_and_verifies() {
        let mut m = mgr();
        m.credit(10, 1, 0);
        m.consume(3, 1).unwrap();
        m.handoff(0, 2, 5);
        m.consume(2, 6).unwrap();
        assert_eq!(m.balance(), 5, "handoff moves, never mints or burns");
        assert_eq!(m.log().handoff_count(), 1);
        assert_eq!(m.log().query_count(), 5, "queries span the handoff");
        m.log().verify(&[1u8; 32]).unwrap();
    }

    #[test]
    fn failover_preserves_balance_and_verifies() {
        let mut m = mgr();
        m.credit(10, 1, 0);
        m.consume(3, 1).unwrap();
        m.failover(0, 2, 5);
        m.consume(2, 6).unwrap();
        assert_eq!(m.balance(), 5, "failover moves, never mints or burns");
        assert_eq!(m.log().failover_count(), 1);
        assert_eq!(m.log().handoff_count(), 0);
        assert_eq!(m.log().query_count(), 5, "queries span the failover");
        m.log().verify(&[1u8; 32]).unwrap();
    }

    #[test]
    fn zero_consume_is_fine() {
        let mut m = mgr();
        m.credit(1, 1, 0);
        assert!(m.consume(0, 0).is_ok());
        assert_eq!(m.balance(), 1);
    }
}
