//! Offline-first pay-per-query metering (paper §III-C).
//!
//! §III-C: *"We could offer prepaid packages where the user purchases the
//! right to perform a certain number of model calls. The application then
//! needs to keep track of how many requests the user has executed and will
//! deny access if this exceeds the number of requests the user has paid
//! for. Doing this in a secure offline way on untrusted hardware is however
//! not trivial and would be a very useful feature for a TinyMLOps
//! solution."*
//!
//! The device is untrusted, so prevention is impossible without hardware;
//! what a software TinyMLOps layer *can* deliver is **tamper evidence**:
//!
//! * [`quota`] — prepaid packages and local enforcement (deny at zero).
//! * [`audit`] — a hash-chained, HMAC-sealed audit log: every metered query
//!   appends an entry; editing, reordering or truncating the history
//!   breaks the chain.
//! * [`voucher`] — HMAC-signed prepaid vouchers with server-side
//!   double-spend detection at sync time.
//! * [`sync`] — fork/rollback detection: the backend remembers each
//!   device's last chain head; a device that restores an old snapshot
//!   cannot extend the chain it previously reported.
//! * [`billing`] — rate cards (the paper cites Google Cloud Vision's $1.50
//!   per 1 000 requests) and invoice reconciliation from audit logs.

pub mod audit;
pub mod billing;
pub mod quota;
pub mod sync;
pub mod voucher;

pub use audit::{handoff_nodes, handoff_payload, AuditEntry, AuditLog, EntryKind};
pub use billing::{Invoice, RateCard};
pub use quota::{QuotaManager, QuotaStatus};
pub use sync::{SyncOutcome, SyncServer};
pub use voucher::{Voucher, VoucherIssuer, VoucherLedger};

/// Errors from metering operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MeterError {
    /// Quota exhausted: the query must be denied (§III-C).
    QuotaExhausted,
    /// Audit chain failed verification (tampering or corruption).
    ChainBroken {
        /// Sequence number where verification failed.
        at_seq: u64,
    },
    /// A voucher failed authentication or was already redeemed.
    BadVoucher(&'static str),
    /// A device presented a history inconsistent with the server's record.
    ForkDetected,
}

impl std::fmt::Display for MeterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MeterError::QuotaExhausted => write!(f, "quota exhausted"),
            MeterError::ChainBroken { at_seq } => write!(f, "audit chain broken at seq {at_seq}"),
            MeterError::BadVoucher(why) => write!(f, "bad voucher: {why}"),
            MeterError::ForkDetected => write!(f, "device history fork detected (rollback?)"),
        }
    }
}

impl std::error::Error for MeterError {}
