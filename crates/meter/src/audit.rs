//! Hash-chained, HMAC-sealed audit log.
//!
//! Every metered event appends an entry whose hash covers the previous
//! entry's hash — editing, inserting, reordering or truncating history
//! breaks the chain. Sealing each link with a device-specific HMAC key
//! means a tamperer without the key cannot even *re-mint* a consistent
//! forged chain.

use serde::{Deserialize, Serialize};
use tinymlops_crypto::{hmac_sha256, Digest};

use crate::MeterError;

/// What kind of event an audit entry records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EntryKind {
    /// A metered model query.
    Query,
    /// A voucher redemption adding quota.
    Redeem,
    /// A sync checkpoint acknowledged by the server.
    Checkpoint,
    /// Prepaid queries returned to the balance because admitted work was
    /// shed downstream (NoRoute / deadline) before being served. Refunds
    /// are chain entries, not edits: billing reconciles the *net* count,
    /// and a tamperer cannot mint refunds without the sealing key.
    Refund,
    /// The whole quota partition (balance + this chain) moved between
    /// serving nodes in a live migration. The payload packs the source
    /// and destination node ids (`from << 32 | to`), so billing can see
    /// *where* every span of queries was metered and a tamperer cannot
    /// silently re-home an account: the handoff is part of the sealed
    /// history itself.
    Handoff,
    /// The account was evacuated to a surviving node after its home node
    /// died (emergency handoff, no source cooperation beyond the sealed
    /// chain itself). Payload packs `(from, to)` like [`EntryKind::Handoff`]
    /// but under a distinct domain-separation byte, so billing can tell a
    /// planned migration from a failover and a tamperer cannot relabel one
    /// as the other.
    Failover,
}

/// Pack a `(from, to)` node pair into a [`EntryKind::Handoff`] or
/// [`EntryKind::Failover`] payload.
#[must_use]
pub fn handoff_payload(from: u32, to: u32) -> u64 {
    (u64::from(from) << 32) | u64::from(to)
}

/// Unpack a [`EntryKind::Handoff`] / [`EntryKind::Failover`] payload into
/// its `(from, to)` pair.
#[must_use]
pub fn handoff_nodes(payload: u64) -> (u32, u32) {
    ((payload >> 32) as u32, payload as u32)
}

/// One link in the audit chain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditEntry {
    /// Monotonic sequence number (0-based).
    pub seq: u64,
    /// Event kind.
    pub kind: EntryKind,
    /// Small payload (e.g. voucher serial, query count).
    pub payload: u64,
    /// Simulated timestamp (ms).
    pub time_ms: u64,
    /// HMAC over (seq ‖ kind ‖ payload ‖ time ‖ prev_link).
    pub link: [u8; 32],
}

fn entry_mac(
    key: &[u8; 32],
    seq: u64,
    kind: EntryKind,
    payload: u64,
    time_ms: u64,
    prev: &Digest,
) -> Digest {
    let mut msg = Vec::with_capacity(8 + 1 + 8 + 8 + 32);
    msg.extend_from_slice(&seq.to_le_bytes());
    msg.push(match kind {
        EntryKind::Query => 0,
        EntryKind::Redeem => 1,
        EntryKind::Checkpoint => 2,
        EntryKind::Refund => 3,
        EntryKind::Handoff => 4,
        EntryKind::Failover => 5,
    });
    msg.extend_from_slice(&payload.to_le_bytes());
    msg.extend_from_slice(&time_ms.to_le_bytes());
    msg.extend_from_slice(prev);
    hmac_sha256(key, &msg)
}

/// An append-only audit log sealed under a device key.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AuditLog {
    entries: Vec<AuditEntry>,
    #[serde(skip)]
    key: [u8; 32],
}

const GENESIS: Digest = [0u8; 32];

impl AuditLog {
    /// New empty log sealed under `key` (derive per-device via HKDF).
    #[must_use]
    pub fn new(key: [u8; 32]) -> Self {
        AuditLog {
            entries: Vec::new(),
            key,
        }
    }

    /// Re-attach the sealing key after deserialization.
    pub fn set_key(&mut self, key: [u8; 32]) {
        self.key = key;
    }

    /// Append an event; returns the new head link.
    pub fn append(&mut self, kind: EntryKind, payload: u64, time_ms: u64) -> Digest {
        let seq = self.entries.len() as u64;
        let prev = self.head();
        let link = entry_mac(&self.key, seq, kind, payload, time_ms, &prev);
        self.entries.push(AuditEntry {
            seq,
            kind,
            payload,
            time_ms,
            link,
        });
        link
    }

    /// Current head link (genesis hash when empty).
    #[must_use]
    pub fn head(&self) -> Digest {
        self.entries.last().map_or(GENESIS, |e| e.link)
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no events are recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries (read-only).
    #[must_use]
    pub fn entries(&self) -> &[AuditEntry] {
        &self.entries
    }

    /// Verify the whole chain under `key`. O(n) HMACs.
    pub fn verify(&self, key: &[u8; 32]) -> Result<(), MeterError> {
        let mut prev = GENESIS;
        for (i, e) in self.entries.iter().enumerate() {
            if e.seq != i as u64 {
                return Err(MeterError::ChainBroken { at_seq: i as u64 });
            }
            let want = entry_mac(key, e.seq, e.kind, e.payload, e.time_ms, &prev);
            if !tinymlops_crypto::ct_eq(&want, &e.link) {
                return Err(MeterError::ChainBroken { at_seq: e.seq });
            }
            prev = e.link;
        }
        Ok(())
    }

    /// Count of query events (for billing reconciliation).
    #[must_use]
    pub fn query_count(&self) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.kind == EntryKind::Query)
            .map(|e| e.payload)
            .sum()
    }

    /// Count of refunded queries (admitted work shed before service).
    #[must_use]
    pub fn refund_count(&self) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.kind == EntryKind::Refund)
            .map(|e| e.payload)
            .sum()
    }

    /// Billable queries: consumed minus refunded. This is the number the
    /// backend invoices against — shed-then-refunded work costs nothing.
    #[must_use]
    pub fn net_query_count(&self) -> u64 {
        self.query_count().saturating_sub(self.refund_count())
    }

    /// Count of node-to-node handoff entries (live tenant migrations).
    #[must_use]
    pub fn handoff_count(&self) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.kind == EntryKind::Handoff)
            .count() as u64
    }

    /// Count of emergency-failover entries (account evacuated off a dead
    /// node).
    #[must_use]
    pub fn failover_count(&self) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.kind == EntryKind::Failover)
            .count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> [u8; 32] {
        [7u8; 32]
    }

    fn sample_log(n: usize) -> AuditLog {
        let mut log = AuditLog::new(key());
        for i in 0..n {
            log.append(EntryKind::Query, 1, i as u64 * 10);
        }
        log
    }

    #[test]
    fn verify_accepts_honest_chain() {
        let log = sample_log(100);
        log.verify(&key()).unwrap();
        assert_eq!(log.query_count(), 100);
    }

    #[test]
    fn edit_breaks_chain() {
        let mut log = sample_log(50);
        log.entries[20].payload = 0; // understate usage
        let err = log.verify(&key()).unwrap_err();
        assert_eq!(err, MeterError::ChainBroken { at_seq: 20 });
    }

    #[test]
    fn reorder_breaks_chain() {
        let mut log = sample_log(10);
        log.entries.swap(3, 4);
        assert!(log.verify(&key()).is_err());
    }

    #[test]
    fn deletion_breaks_chain() {
        let mut log = sample_log(10);
        log.entries.remove(5);
        assert!(log.verify(&key()).is_err());
    }

    #[test]
    fn truncation_is_internally_valid_but_changes_head() {
        // Pure truncation keeps a valid prefix — that's exactly why the
        // sync server must remember heads (see sync.rs).
        let mut log = sample_log(10);
        let head_before = log.head();
        log.entries.truncate(5);
        log.verify(&key()).unwrap();
        assert_ne!(log.head(), head_before);
    }

    #[test]
    fn forger_without_key_cannot_remint() {
        let mut log = sample_log(10);
        // Attacker edits and recomputes links with a guessed key.
        let fake_key = [8u8; 32];
        log.entries[2].payload = 0;
        let mut prev = GENESIS;
        for e in &mut log.entries {
            e.link = entry_mac(&fake_key, e.seq, e.kind, e.payload, e.time_ms, &prev);
            prev = e.link;
        }
        assert!(log.verify(&key()).is_err(), "verifier uses the real key");
    }

    #[test]
    fn empty_log_verifies() {
        let log = AuditLog::new(key());
        log.verify(&key()).unwrap();
        assert_eq!(log.head(), GENESIS);
        assert!(log.is_empty());
    }

    #[test]
    fn mixed_kinds_count_only_queries() {
        let mut log = AuditLog::new(key());
        log.append(EntryKind::Redeem, 1000, 0);
        log.append(EntryKind::Query, 3, 1);
        log.append(EntryKind::Checkpoint, 0, 2);
        log.append(EntryKind::Query, 2, 3);
        assert_eq!(log.query_count(), 5);
    }

    #[test]
    fn refunds_are_chained_and_net_out_of_billing() {
        let mut log = AuditLog::new(key());
        log.append(EntryKind::Redeem, 1000, 0);
        log.append(EntryKind::Query, 5, 1);
        log.append(EntryKind::Refund, 2, 2);
        log.verify(&key()).unwrap();
        assert_eq!(log.query_count(), 5);
        assert_eq!(log.refund_count(), 2);
        assert_eq!(log.net_query_count(), 3);
        // A forged refund (understating usage) breaks the chain.
        let mut forged = log.clone();
        forged.entries[2].payload = 5;
        assert!(forged.verify(&key()).is_err());
    }

    #[test]
    fn handoff_entries_are_chained_and_billing_neutral() {
        let mut log = AuditLog::new(key());
        log.append(EntryKind::Redeem, 1000, 0);
        log.append(EntryKind::Query, 5, 1);
        log.append(EntryKind::Handoff, handoff_payload(2, 0), 2);
        log.append(EntryKind::Query, 3, 3);
        log.verify(&key()).unwrap();
        assert_eq!(log.handoff_count(), 1);
        assert_eq!(log.query_count(), 8, "queries span the handoff");
        assert_eq!(log.net_query_count(), 8, "handoffs are billing-neutral");
        assert_eq!(handoff_nodes(handoff_payload(2, 0)), (2, 0));
        // Re-homing the account by editing the handoff breaks the chain.
        let mut forged = log.clone();
        forged.entries[2].payload = handoff_payload(2, 1);
        assert!(forged.verify(&key()).is_err());
    }

    #[test]
    fn handoff_kind_is_domain_separated() {
        // Same payload/time, different kind ⇒ different link: a tamperer
        // cannot relabel a Query as a Handoff (or vice versa) in place.
        let mut as_query = AuditLog::new(key());
        as_query.append(EntryKind::Query, 7, 9);
        let mut as_handoff = AuditLog::new(key());
        as_handoff.append(EntryKind::Handoff, 7, 9);
        assert_ne!(as_query.head(), as_handoff.head());
        let mut relabeled = as_query.clone();
        relabeled.entries[0].kind = EntryKind::Handoff;
        assert!(relabeled.verify(&key()).is_err());
    }

    #[test]
    fn failover_entries_are_chained_and_billing_neutral() {
        let mut log = AuditLog::new(key());
        log.append(EntryKind::Redeem, 1000, 0);
        log.append(EntryKind::Query, 5, 1);
        log.append(EntryKind::Failover, handoff_payload(1, 2), 2);
        log.append(EntryKind::Query, 3, 3);
        log.verify(&key()).unwrap();
        assert_eq!(log.failover_count(), 1);
        assert_eq!(log.handoff_count(), 0, "failover is not a handoff");
        assert_eq!(log.query_count(), 8, "queries span the failover");
        assert_eq!(log.net_query_count(), 8, "failovers are billing-neutral");
        // Re-homing the account by editing the failover breaks the chain.
        let mut forged = log.clone();
        forged.entries[2].payload = handoff_payload(1, 0);
        assert!(forged.verify(&key()).is_err());
    }

    #[test]
    fn failover_kind_is_domain_separated_from_handoff() {
        // Same (from, to) payload and time, different kind ⇒ different
        // link: a tamperer cannot pass an emergency failover off as a
        // planned migration (or vice versa) in place.
        let mut as_handoff = AuditLog::new(key());
        as_handoff.append(EntryKind::Handoff, handoff_payload(3, 1), 9);
        let mut as_failover = AuditLog::new(key());
        as_failover.append(EntryKind::Failover, handoff_payload(3, 1), 9);
        assert_ne!(as_handoff.head(), as_failover.head());
        let mut relabeled = as_handoff.clone();
        relabeled.entries[0].kind = EntryKind::Failover;
        assert!(relabeled.verify(&key()).is_err());
    }

    #[test]
    fn refund_kind_is_domain_separated_from_query() {
        // Same payload/time, different kind ⇒ different link: a tamperer
        // cannot relabel a Query entry as a Refund in place.
        let mut as_query = AuditLog::new(key());
        as_query.append(EntryKind::Query, 7, 9);
        let mut as_refund = AuditLog::new(key());
        as_refund.append(EntryKind::Refund, 7, 9);
        assert_ne!(as_query.head(), as_refund.head());
        let mut relabeled = as_query.clone();
        relabeled.entries[0].kind = EntryKind::Refund;
        assert!(relabeled.verify(&key()).is_err());
    }
}
