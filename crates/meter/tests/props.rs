//! Property-based tests: metering invariants under arbitrary usage and
//! tampering patterns.

use proptest::prelude::*;
use tinymlops_meter::audit::{AuditLog, EntryKind};
use tinymlops_meter::{QuotaManager, RateCard, SyncServer};

proptest! {
    /// Balance always equals credited − consumed, and never goes negative,
    /// for any interleaving of credits and consume attempts.
    #[test]
    fn quota_balance_invariant(ops in proptest::collection::vec((any::<bool>(), 1u64..50), 0..80)) {
        let mut q = QuotaManager::new([1u8; 32]);
        let mut credited = 0u64;
        let mut consumed = 0u64;
        for (i, (credit, amount)) in ops.iter().enumerate() {
            if *credit {
                q.credit(*amount, i as u64, i as u64);
                credited += amount;
            } else if q.consume(*amount, i as u64).is_ok() {
                consumed += amount;
            }
            prop_assert_eq!(q.balance(), credited - consumed);
        }
        prop_assert_eq!(q.log().query_count(), consumed);
        q.log().verify(&[1u8; 32]).unwrap();
    }

    /// Any single-field corruption of any entry breaks chain verification.
    #[test]
    fn any_single_edit_is_caught(
        len in 2usize..40,
        idx_seed in any::<usize>(),
        field in 0u8..3,
        delta in 1u64..1000,
    ) {
        let key = [2u8; 32];
        let mut log = AuditLog::new(key);
        for t in 0..len as u64 {
            log.append(EntryKind::Query, 1 + t % 3, t * 10);
        }
        let idx = idx_seed % len;
        // Tamper through the serialized form (the attacker edits flash).
        let mut json: serde_json::Value = serde_json::to_value(&log).unwrap();
        match field {
            0 => json["entries"][idx]["payload"] = serde_json::json!(delta + 10_000),
            1 => json["entries"][idx]["time_ms"] = serde_json::json!(delta + 10_000),
            _ => json["entries"][idx]["seq"] = serde_json::json!(delta + 10_000),
        }
        let tampered: AuditLog = serde_json::from_value(json).unwrap();
        prop_assert!(tampered.verify(&key).is_err());
    }

    /// Sync accepts exactly the honest extension pattern: any prefix-
    /// preserving growth reconciles, any truncation is a fork.
    #[test]
    fn sync_accepts_extensions_rejects_truncations(
        first in 1usize..30,
        extra in 1usize..30,
        cut in 1usize..30,
    ) {
        let key = [3u8; 32];
        let mut server = SyncServer::new();
        server.provision(1, key);
        let mut log = AuditLog::new(key);
        for t in 0..first as u64 {
            log.append(EntryKind::Query, 1, t);
        }
        server.sync(1, &log).unwrap();
        // Honest extension always reconciles.
        for t in 0..extra as u64 {
            log.append(EntryKind::Query, 1, first as u64 + t);
        }
        let outcome = server.sync(1, &log).unwrap();
        prop_assert_eq!(outcome.new_queries, extra as u64);
        // A rebuilt shorter history never does.
        let cut = cut.min(first + extra - 1);
        let mut rolled = AuditLog::new(key);
        for t in 0..cut as u64 {
            rolled.append(EntryKind::Query, 1, t);
        }
        prop_assert!(server.sync(1, &rolled).is_err());
    }

    /// Billing is monotone in usage and exact at tier boundaries.
    #[test]
    fn billing_monotone(q1 in 0u64..200_000, q2 in 0u64..200_000) {
        let rates = RateCard::cloud_vision_like();
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(rates.cost_microdollars(lo) <= rates.cost_microdollars(hi));
        // Exactness: billable × 1500 µ$ per query.
        let billable = hi.saturating_sub(1000);
        prop_assert_eq!(rates.cost_microdollars(hi), billable * 1500);
    }
}
