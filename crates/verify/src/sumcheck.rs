//! Sum-check protocol for quantized matmul claims.
//!
//! Claim: `C = X·Aᵀ` for integer matrices `A [m×n]` (weights), `X [b×n]`
//! (quantized input batch) and `C [b×m]` (accumulators) — the exact
//! arithmetic of `tinymlops-quant`'s integer kernel, embedded in the
//! Goldilocks field.
//!
//! Reduction: Fiat–Shamir picks `(r_b, r_m)`; the verifier evaluates
//! `C̃(r_b, r_m)` itself (O(bm)), then a log₂(n)-round sum-check over the
//! shared dimension reduces the claim to evaluations `Ã(r_m, r')` and
//! `X̃(r_b, r')`, which the verifier computes in O(mn) and O(bn).
//! Soundness: each round is a degree-2 polynomial identity; cheating
//! survives with probability ≤ 2·log₂(n)/|F| ≈ 2⁻⁵⁸ per layer.
//!
//! Verifier cost O(mn + bn + bm) vs re-execution O(b·m·n): the O(mn) term
//! is paid **once per batch**, which is where SafetyNets' "cheap" comes
//! from (experiment E13 sweeps `b` to show the crossover).

use crate::field::Fp;
use crate::mle::{fold_variable, matrix_mle_eval, num_vars, row_folded_table};
use crate::transcript::Transcript;
use crate::VerifyError;
use serde::{Deserialize, Serialize};

/// A non-interactive sum-check proof for one matmul.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatMulProof {
    /// Per-round quadratic evaluations `(g(0), g(1), g(2))`.
    pub rounds: Vec<[Fp; 3]>,
}

impl MatMulProof {
    /// Proof size in bytes (3 field elements per round).
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.rounds.len() * 3 * 8
    }
}

/// Prover-side cost counters (for experiment tables).
#[derive(Debug, Clone, Copy, Default)]
pub struct ProverTimings {
    /// Field multiplications spent building the folded tables.
    pub table_mults: u64,
    /// Field multiplications spent in sum-check rounds.
    pub round_mults: u64,
}

fn absorb_header(t: &mut Transcript, c: &[Fp], m: usize, n: usize, b: usize) {
    t.absorb(
        b"dims",
        &[
            m as u8,
            n as u8,
            b as u8,
            (m >> 8) as u8,
            (n >> 8) as u8,
            (b >> 8) as u8,
        ],
    );
    t.absorb_fps(b"claimed-output", c);
}

/// Pad a row-major `[rows×cols]` integer matrix into a power-of-two field
/// matrix.
fn to_field_padded(data: &[i64], rows: usize, cols: usize) -> (Vec<Fp>, usize, usize) {
    let r2 = rows.next_power_of_two();
    let c2 = cols.next_power_of_two();
    let mut out = vec![Fp::ZERO; r2 * c2];
    for r in 0..rows {
        for c in 0..cols {
            out[r * c2 + c] = Fp::from_i64(data[r * cols + c]);
        }
    }
    (out, r2, c2)
}

/// Generate the proof that `c[b×m] = x[b×n] · a[m×n]ᵀ` (integer inputs).
#[must_use]
pub fn prove_matmul(
    a: &[i64],
    x: &[i64],
    c: &[i64],
    m: usize,
    n: usize,
    b: usize,
    transcript: &mut Transcript,
) -> (MatMulProof, ProverTimings) {
    let mut timings = ProverTimings::default();
    let (af, m2, n2a) = to_field_padded(a, m, n);
    let (xf, b2, n2x) = to_field_padded(x, b, n);
    let (cf, _cb2, _cm2) = to_field_padded(c, b, m);
    debug_assert_eq!(n2a, n2x);
    let n2 = n2a;
    absorb_header(transcript, &cf, m, n, b);
    let r_b = transcript.challenges_fp(b"r-batch", num_vars(b2));
    let r_m = transcript.challenges_fp(b"r-row", num_vars(m2));
    // Prover tables: t_a[j] = Ã(r_m, j), t_x[j] = X̃(r_b, j).
    let mut t_a = row_folded_table(&af, m2, n2, &r_m);
    let mut t_x = row_folded_table(&xf, b2, n2, &r_b);
    timings.table_mults += (m2 * n2 + b2 * n2) as u64;
    let rounds_count = num_vars(n2);
    let mut rounds = Vec::with_capacity(rounds_count);
    let two = Fp::new(2);
    for _ in 0..rounds_count {
        let half = t_a.len() / 2;
        let (mut g0, mut g1, mut g2) = (Fp::ZERO, Fp::ZERO, Fp::ZERO);
        for i in 0..half {
            let a0 = t_a[2 * i];
            let a1 = t_a[2 * i + 1];
            let x0 = t_x[2 * i];
            let x1 = t_x[2 * i + 1];
            g0 = g0.add(a0.mul(x0));
            g1 = g1.add(a1.mul(x1));
            // g(2): extrapolate each factor linearly, 2·f(1) − f(0).
            let a2 = two.mul(a1).sub(a0);
            let x2 = two.mul(x1).sub(x0);
            g2 = g2.add(a2.mul(x2));
        }
        timings.round_mults += 3 * half as u64;
        transcript.absorb_fps(b"round", &[g0, g1, g2]);
        let r = transcript.challenge_fp(b"challenge");
        fold_variable(&mut t_a, r);
        fold_variable(&mut t_x, r);
        rounds.push([g0, g1, g2]);
    }
    (MatMulProof { rounds }, timings)
}

/// Evaluate the quadratic through `(0,g0) (1,g1) (2,g2)` at `t`.
fn quadratic_eval(g: &[Fp; 3], t: Fp) -> Fp {
    // Lagrange over {0,1,2}: L0 = (t−1)(t−2)/2, L1 = −t(t−2), L2 = t(t−1)/2.
    let one = Fp::ONE;
    let two = Fp::new(2);
    let inv2 = two.inv();
    let l0 = t.sub(one).mul(t.sub(two)).mul(inv2);
    let l1 = t.mul(t.sub(two)).neg();
    let l2 = t.mul(t.sub(one)).mul(inv2);
    g[0].mul(l0).add(g[1].mul(l1)).add(g[2].mul(l2))
}

/// Verify a matmul proof. The verifier holds `a`, `x` and the claimed `c`
/// and never performs the O(b·m·n) multiplication.
#[allow(clippy::too_many_arguments)]
pub fn verify_matmul(
    a: &[i64],
    x: &[i64],
    c: &[i64],
    m: usize,
    n: usize,
    b: usize,
    transcript: &mut Transcript,
    proof: &MatMulProof,
) -> Result<(), VerifyError> {
    let (af, m2, n2) = to_field_padded(a, m, n);
    let (xf, b2, _) = to_field_padded(x, b, n);
    let (cf, cb2, cm2) = to_field_padded(c, b, m);
    absorb_header(transcript, &cf, m, n, b);
    let r_b = transcript.challenges_fp(b"r-batch", num_vars(b2));
    let r_m = transcript.challenges_fp(b"r-row", num_vars(m2));
    // The verifier's own evaluation of the claimed output — O(bm).
    let mut claim = matrix_mle_eval(&cf, cb2, cm2, &r_b, &r_m);
    let rounds_count = num_vars(n2);
    if proof.rounds.len() != rounds_count {
        return Err(VerifyError::Malformed("wrong round count"));
    }
    let mut r_shared = Vec::with_capacity(rounds_count);
    for (round, g) in proof.rounds.iter().enumerate() {
        if g[0].add(g[1]) != claim {
            return Err(VerifyError::SumcheckRound { round });
        }
        transcript.absorb_fps(b"round", g);
        let r = transcript.challenge_fp(b"challenge");
        claim = quadratic_eval(g, r);
        r_shared.push(r);
    }
    // Final check: claim == Ã(r_m, r') · X̃(r_b, r').
    let a_eval = matrix_mle_eval(&af, m2, n2, &r_m, &r_shared);
    let x_eval = matrix_mle_eval(&xf, b2, n2, &r_b, &r_shared);
    if a_eval.mul(x_eval) != claim {
        return Err(VerifyError::FinalCheck);
    }
    Ok(())
}

/// Reference integer matmul `c = x·aᵀ` used by tests and the prover.
#[must_use]
pub fn int_matmul(a: &[i64], x: &[i64], m: usize, n: usize, b: usize) -> Vec<i64> {
    let mut c = vec![0i64; b * m];
    for bi in 0..b {
        for r in 0..m {
            let mut s = 0i64;
            for j in 0..n {
                s += x[bi * n + j] * a[r * n + j];
            }
            c[bi * m + r] = s;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(m: usize, n: usize, b: usize, seed: i64) -> (Vec<i64>, Vec<i64>, Vec<i64>) {
        let a: Vec<i64> = (0..m * n)
            .map(|i| ((i as i64 * 31 + seed) % 255) - 127)
            .collect();
        let x: Vec<i64> = (0..b * n)
            .map(|i| ((i as i64 * 17 + seed * 3) % 255) - 127)
            .collect();
        let c = int_matmul(&a, &x, m, n, b);
        (a, x, c)
    }

    #[test]
    fn honest_proof_verifies() {
        for &(m, n, b) in &[(4, 8, 2), (10, 64, 5), (32, 32, 1), (3, 7, 3)] {
            let (a, x, c) = sample(m, n, b, 1);
            let mut pt = Transcript::new(b"matmul");
            let (proof, _) = prove_matmul(&a, &x, &c, m, n, b, &mut pt);
            let mut vt = Transcript::new(b"matmul");
            verify_matmul(&a, &x, &c, m, n, b, &mut vt, &proof)
                .unwrap_or_else(|e| panic!("({m},{n},{b}): {e}"));
        }
    }

    #[test]
    fn tampered_output_rejected() {
        let (a, x, mut c) = sample(8, 16, 4, 2);
        let mut pt = Transcript::new(b"matmul");
        let (proof, _) = prove_matmul(&a, &x, &c, 8, 16, 4, &mut pt);
        c[5] += 1; // device lies about one accumulator
        let mut vt = Transcript::new(b"matmul");
        assert!(verify_matmul(&a, &x, &c, 8, 16, 4, &mut vt, &proof).is_err());
    }

    #[test]
    fn proof_for_wrong_computation_rejected() {
        // Prover computes with modified weights but claims the registry's.
        let (a, x, _) = sample(8, 16, 2, 3);
        let mut a_evil = a.clone();
        a_evil[0] += 1;
        let c_evil = int_matmul(&a_evil, &x, 8, 16, 2);
        let mut pt = Transcript::new(b"matmul");
        let (proof, _) = prove_matmul(&a_evil, &x, &c_evil, 8, 16, 2, &mut pt);
        let mut vt = Transcript::new(b"matmul");
        assert!(
            verify_matmul(&a, &x, &c_evil, 8, 16, 2, &mut vt, &proof).is_err(),
            "†running a different model must not verify against the registered one"
        );
    }

    #[test]
    fn tampered_round_polynomial_rejected() {
        let (a, x, c) = sample(4, 16, 2, 4);
        let mut pt = Transcript::new(b"matmul");
        let (mut proof, _) = prove_matmul(&a, &x, &c, 4, 16, 2, &mut pt);
        proof.rounds[1][0] = proof.rounds[1][0].add(Fp::ONE);
        let mut vt = Transcript::new(b"matmul");
        assert!(verify_matmul(&a, &x, &c, 4, 16, 2, &mut vt, &proof).is_err());
    }

    #[test]
    fn wrong_round_count_rejected() {
        let (a, x, c) = sample(4, 16, 2, 5);
        let mut pt = Transcript::new(b"matmul");
        let (mut proof, _) = prove_matmul(&a, &x, &c, 4, 16, 2, &mut pt);
        proof.rounds.pop();
        let mut vt = Transcript::new(b"matmul");
        assert_eq!(
            verify_matmul(&a, &x, &c, 4, 16, 2, &mut vt, &proof),
            Err(VerifyError::Malformed("wrong round count"))
        );
    }

    #[test]
    fn proof_is_logarithmic_in_width() {
        let (a, x, c) = sample(4, 256, 2, 6);
        let mut pt = Transcript::new(b"matmul");
        let (proof, _) = prove_matmul(&a, &x, &c, 4, 256, 2, &mut pt);
        assert_eq!(proof.rounds.len(), 8); // log2(256)
        assert_eq!(proof.size_bytes(), 8 * 3 * 8);
    }

    #[test]
    fn negative_values_work() {
        let a: Vec<i64> = vec![-127, 100, -50, 25, 0, -1];
        let x: Vec<i64> = vec![-128, 127, -64, 3, 2, 1];
        let c = int_matmul(&a, &x, 2, 3, 2);
        let mut pt = Transcript::new(b"matmul");
        let (proof, _) = prove_matmul(&a, &x, &c, 2, 3, 2, &mut pt);
        let mut vt = Transcript::new(b"matmul");
        verify_matmul(&a, &x, &c, 2, 3, 2, &mut vt, &proof).unwrap();
    }

    #[test]
    fn quadratic_eval_interpolates() {
        // g(t) = 3t² − 2t + 5 → g(0)=5, g(1)=6, g(2)=13.
        let g = [Fp::from_i64(5), Fp::from_i64(6), Fp::from_i64(13)];
        assert_eq!(quadratic_eval(&g, Fp::from_i64(3)), Fp::from_i64(26));
        assert_eq!(quadratic_eval(&g, Fp::ZERO), Fp::from_i64(5));
    }
}
