//! Verifiable execution on untrusted devices (paper §VI).
//!
//! §VI: *"This allows an agent to provably (and cheaply) verify that an
//! untrusted party has performed the computations correctly … the most
//! interesting approaches evaluate the model and provide a small (in terms
//! of number of bits) mathematical proof of the correctness of the
//! result."* Two routes, exactly as the paper lays out:
//!
//! 1. **Interactive proofs** ([`sumcheck`], [`snet`]) — SafetyNets-style:
//!    every dense layer of a *quantized* network is an exact integer
//!    matmul, which embeds losslessly in the Goldilocks prime field
//!    ([`field`]). The device proves each layer's accumulator matrix with
//!    the sum-check protocol over multilinear extensions ([`mle`]); the
//!    verifier checks in time sublinear in the matmul (amortized over a
//!    batch) and never re-executes it. Fiat–Shamir ([`transcript`]) makes
//!    it non-interactive.
//! 2. **Secure Processing Environments** ([`spe`]) — MLCapsule-style
//!    simulated enclave: measured code identity, sealed storage, HMAC
//!    attestation reports, and a calibrated slowdown factor (the paper
//!    quotes ~2× for MobileNet-class models).
//!
//! Experiment E13 reports prover overhead, proof size and verifier-vs-
//! re-execution time from these modules.

pub mod field;
pub mod mle;
pub mod snet;
pub mod spe;
pub mod sumcheck;
pub mod transcript;

pub use field::Fp;
pub use snet::{InferenceProof, VerifiableModel};
pub use spe::{AttestationReport, Enclave};
pub use sumcheck::{MatMulProof, ProverTimings};
pub use transcript::Transcript;

/// Errors from verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// A sum-check round was inconsistent with the running claim.
    SumcheckRound {
        /// Which round failed.
        round: usize,
    },
    /// The final multilinear-extension check failed.
    FinalCheck,
    /// Claimed outputs do not match the proven accumulators.
    OutputMismatch,
    /// Proof structure malformed (wrong round count, etc.).
    Malformed(&'static str),
    /// Enclave attestation failed.
    Attestation(&'static str),
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::SumcheckRound { round } => write!(f, "sum-check failed at round {round}"),
            VerifyError::FinalCheck => write!(f, "final MLE evaluation check failed"),
            VerifyError::OutputMismatch => write!(f, "claimed outputs mismatch accumulators"),
            VerifyError::Malformed(why) => write!(f, "malformed proof: {why}"),
            VerifyError::Attestation(why) => write!(f, "attestation failed: {why}"),
        }
    }
}

impl std::error::Error for VerifyError {}
