//! Verifiable inference over a quantized dense network (SafetyNets-style).
//!
//! The device runs the int8 network and produces, per dense layer, the
//! integer accumulator matrix plus a sum-check proof that it equals
//! `X_q·W_qᵀ`. The verifier — who holds the registered model and the input
//! batch — re-derives every *elementwise* step (quantization, dequant,
//! ReLU) in O(batch·width) and checks every *matmul* via sum-check instead
//! of re-executing it.
//!
//! §VI caveat, faithfully inherited: this proves *the registered model
//! produced this output for this input*; it does not attest the input
//! itself ("it is still possible that … the user has provided a forged
//! input to the model").

use crate::sumcheck::{prove_matmul, verify_matmul, MatMulProof};
use crate::transcript::Transcript;
use crate::VerifyError;
use serde::{Deserialize, Serialize};
use tinymlops_quant::qmodel::QLayer;
use tinymlops_quant::{QDense, QuantizedModel};
use tinymlops_tensor::Tensor;

/// Elementwise activation between provable layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ActKind {
    /// No activation (final layer).
    None,
    /// Rectified linear unit.
    Relu,
}

/// A quantized dense network with proof support.
pub struct VerifiableModel {
    layers: Vec<(QDense, ActKind)>,
}

/// Proof of one batched inference.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InferenceProof {
    /// Claimed integer accumulators per layer (`[batch × out]`).
    pub accs: Vec<Vec<i32>>,
    /// Sum-check proof per layer.
    pub matmuls: Vec<MatMulProof>,
    /// Batch size proven.
    pub batch: usize,
}

impl InferenceProof {
    /// Total proof size in bytes (accumulators + sum-check rounds).
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.accs.iter().map(|a| a.len() * 4).sum::<usize>()
            + self
                .matmuls
                .iter()
                .map(MatMulProof::size_bytes)
                .sum::<usize>()
            + 8
    }
}

impl VerifiableModel {
    /// Build from an int8-quantized model. Dense layers become provable;
    /// ReLU passthroughs become elementwise checks; anything else is
    /// rejected (the §VI proof system covers dense int8 chains).
    pub fn from_quantized(model: &QuantizedModel) -> Result<Self, VerifyError> {
        let mut layers: Vec<(QDense, ActKind)> = Vec::new();
        for layer in &model.layers {
            match layer {
                QLayer::Dense(d) => layers.push((d.clone(), ActKind::None)),
                QLayer::Passthrough(p) => match p.name() {
                    "relu" => {
                        let Some(last) = layers.last_mut() else {
                            return Err(VerifyError::Malformed("activation before first layer"));
                        };
                        last.1 = ActKind::Relu;
                    }
                    "flatten" => {}
                    other => {
                        let _ = other;
                        return Err(VerifyError::Malformed(
                            "only relu/flatten passthroughs are provable",
                        ));
                    }
                },
                QLayer::BinaryDense(_) => {
                    return Err(VerifyError::Malformed(
                        "binary layers need a different arithmetization",
                    ))
                }
            }
        }
        if layers.is_empty() {
            return Err(VerifyError::Malformed("no dense layers"));
        }
        Ok(VerifiableModel { layers })
    }

    /// Number of provable layers.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Plain (unproven) forward pass — the baseline for overhead numbers.
    #[must_use]
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let batch = x.rows();
        let mut h = x.clone();
        for (layer, act) in &self.layers {
            let xq = layer.quantize_input(&h);
            let acc = layer.int_accumulate(&xq, batch);
            h = layer.dequantize_acc(&acc, batch);
            if *act == ActKind::Relu {
                h.map_inplace(|v| v.max(0.0));
            }
        }
        h
    }

    /// Run inference *and* produce the proof.
    #[must_use]
    pub fn prove(&self, x: &Tensor) -> (Tensor, InferenceProof) {
        let batch = x.rows();
        let mut transcript = Transcript::new(b"tinymlops.inference");
        let mut h = x.clone();
        let mut accs = Vec::with_capacity(self.layers.len());
        let mut matmuls = Vec::with_capacity(self.layers.len());
        for (layer, act) in &self.layers {
            let xq = layer.quantize_input(&h);
            let acc = layer.int_accumulate(&xq, batch);
            let w = layer.unpack_matrix();
            let w64: Vec<i64> = w.iter().map(|&v| i64::from(v)).collect();
            let x64: Vec<i64> = xq.iter().map(|&v| i64::from(v)).collect();
            let c64: Vec<i64> = acc.iter().map(|&v| i64::from(v)).collect();
            let (proof, _) = prove_matmul(
                &w64,
                &x64,
                &c64,
                layer.out_dim,
                layer.in_dim,
                batch,
                &mut transcript,
            );
            matmuls.push(proof);
            h = layer.dequantize_acc(&acc, batch);
            if *act == ActKind::Relu {
                h.map_inplace(|v| v.max(0.0));
            }
            accs.push(acc);
        }
        (
            h,
            InferenceProof {
                accs,
                matmuls,
                batch,
            },
        )
    }

    /// Verify a proof against the registered model, the input batch and
    /// the claimed output. No O(m·n·b) matmul is executed.
    pub fn verify(
        &self,
        x: &Tensor,
        claimed_output: &Tensor,
        proof: &InferenceProof,
    ) -> Result<(), VerifyError> {
        let batch = x.rows();
        if proof.batch != batch
            || proof.accs.len() != self.layers.len()
            || proof.matmuls.len() != self.layers.len()
        {
            return Err(VerifyError::Malformed("structure mismatch"));
        }
        let mut transcript = Transcript::new(b"tinymlops.inference");
        let mut h = x.clone();
        for (i, (layer, act)) in self.layers.iter().enumerate() {
            let acc = &proof.accs[i];
            if acc.len() != batch * layer.out_dim {
                return Err(VerifyError::Malformed("accumulator shape"));
            }
            // Elementwise (cheap, O(b·n)): reproduce the exact kernel input.
            let xq = layer.quantize_input(&h);
            // Sum-check (replaces the O(b·m·n) matmul).
            let w = layer.unpack_matrix();
            let w64: Vec<i64> = w.iter().map(|&v| i64::from(v)).collect();
            let x64: Vec<i64> = xq.iter().map(|&v| i64::from(v)).collect();
            let c64: Vec<i64> = acc.iter().map(|&v| i64::from(v)).collect();
            verify_matmul(
                &w64,
                &x64,
                &c64,
                layer.out_dim,
                layer.in_dim,
                batch,
                &mut transcript,
                &proof.matmuls[i],
            )?;
            // Elementwise dequant + activation from the *proven* accs.
            h = layer.dequantize_acc(acc, batch);
            if *act == ActKind::Relu {
                h.map_inplace(|v| v.max(0.0));
            }
        }
        // The claimed output must match the derived one bit-for-bit (both
        // sides run the identical deterministic dequant chain).
        if h != *claimed_output {
            return Err(VerifyError::OutputMismatch);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinymlops_nn::data::synth_digits;
    use tinymlops_nn::model::mlp;
    use tinymlops_nn::train::{fit, FitConfig};
    use tinymlops_nn::Adam;
    use tinymlops_quant::QuantScheme;
    use tinymlops_tensor::TensorRng;

    fn verifiable_digits_model() -> (VerifiableModel, Tensor) {
        let data = synth_digits(600, 0.08, 50);
        let (train, test) = data.split(0.9, 0);
        let mut rng = TensorRng::seed(3);
        let mut model = mlp(&[64, 24, 10], &mut rng);
        let mut opt = Adam::new(0.005);
        fit(
            &mut model,
            &train,
            &mut opt,
            &FitConfig {
                epochs: 8,
                batch_size: 32,
                ..Default::default()
            },
        );
        let q = QuantizedModel::quantize(&model, &train.x, QuantScheme::Int8).unwrap();
        let vm = VerifiableModel::from_quantized(&q).unwrap();
        (vm, test.x.slice_rows(0, 8))
    }

    #[test]
    fn prove_verify_round_trip() {
        let (vm, x) = verifiable_digits_model();
        let (y, proof) = vm.prove(&x);
        vm.verify(&x, &y, &proof).unwrap();
        assert_eq!(vm.depth(), 2);
        assert!(proof.size_bytes() > 0);
    }

    #[test]
    fn proof_output_matches_plain_forward() {
        let (vm, x) = verifiable_digits_model();
        let plain = vm.forward(&x);
        let (proven, _) = vm.prove(&x);
        assert_eq!(plain, proven, "proving must not change the computation");
    }

    #[test]
    fn tampered_output_rejected() {
        let (vm, x) = verifiable_digits_model();
        let (y, proof) = vm.prove(&x);
        let mut forged = y.clone();
        // The §VI scenario: flip the prediction to trick a downstream
        // payment-authorization step.
        forged.data_mut()[0] += 10.0;
        assert_eq!(
            vm.verify(&x, &forged, &proof),
            Err(VerifyError::OutputMismatch)
        );
    }

    #[test]
    fn tampered_accumulator_rejected() {
        let (vm, x) = verifiable_digits_model();
        let (y, mut proof) = vm.prove(&x);
        proof.accs[0][3] += 1;
        assert!(vm.verify(&x, &y, &proof).is_err());
    }

    #[test]
    fn different_input_rejected() {
        let (vm, x) = verifiable_digits_model();
        let (y, proof) = vm.prove(&x);
        let other = x.map(|v| v * 0.5);
        assert!(vm.verify(&other, &y, &proof).is_err());
    }

    #[test]
    fn wrong_batch_size_rejected() {
        let (vm, x) = verifiable_digits_model();
        let (y, proof) = vm.prove(&x);
        let smaller = x.slice_rows(0, 4);
        let y_small = y.slice_rows(0, 4);
        assert_eq!(
            vm.verify(&smaller, &y_small, &proof),
            Err(VerifyError::Malformed("structure mismatch"))
        );
    }

    #[test]
    fn binary_models_rejected_with_reason() {
        let data = synth_digits(200, 0.05, 51);
        let mut rng = TensorRng::seed(5);
        let mut model = mlp(&[64, 8, 10], &mut rng);
        let mut opt = Adam::new(0.01);
        fit(
            &mut model,
            &data,
            &mut opt,
            &FitConfig {
                epochs: 2,
                batch_size: 32,
                ..Default::default()
            },
        );
        let q = QuantizedModel::quantize(&model, &data.x, QuantScheme::Binary).unwrap();
        assert!(VerifiableModel::from_quantized(&q).is_err());
    }
}
