//! Simulated Secure Processing Environment (MLCapsule-style).
//!
//! §VI: *"Alternative solutions for verifiable execution require the
//! support of Secure Processing Environments (SPE) such as Intel SGX or
//! ARM TrustZone … An especially promising approach in this area is
//! MLCapsule which provides a proof-of-concept on Intel SGX. Modern neural
//! networks … have an overhead of around 2X when implemented using their
//! approach."*
//!
//! DESIGN.md substitution: no SGX in the sandbox, so the enclave is
//! simulated with real cryptography (sealed model storage, measured code
//! identity, HMAC attestation) and a *calibrated cost model* — a
//! configurable slowdown factor (default 2.0 per the MLCapsule figure)
//! plus a per-call boundary-crossing cost. Experiment E13/E10 report
//! predicted enclave latencies from this model.

use crate::VerifyError;
use tinymlops_crypto::{hmac_sha256, sha256, Digest, SealedBox};
use tinymlops_nn::Sequential;
use tinymlops_tensor::Tensor;

/// An attestation report binding (model, input, output) to the enclave key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttestationReport {
    /// Measurement (hash) of the loaded model.
    pub measurement: Digest,
    /// Hash of the input batch.
    pub input_digest: Digest,
    /// Hash of the produced output.
    pub output_digest: Digest,
    /// Caller-supplied freshness nonce.
    pub nonce: u64,
    /// HMAC over all of the above under the enclave's attestation key.
    pub mac: Digest,
}

/// A simulated enclave holding one sealed model.
pub struct Enclave {
    sealed: SealedBox,
    storage_key: [u8; 32],
    attestation_key: [u8; 32],
    measurement: Digest,
    /// Multiplicative compute slowdown inside the enclave (MLCapsule ≈ 2).
    pub slowdown: f64,
    /// Fixed per-call boundary-crossing cost in milliseconds.
    pub call_overhead_ms: f64,
}

fn tensor_digest(t: &Tensor) -> Digest {
    let mut bytes = Vec::with_capacity(t.len() * 4);
    for v in t.data() {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    sha256(&bytes)
}

fn report_mac(key: &[u8; 32], r: &AttestationReport) -> Digest {
    let mut msg = Vec::with_capacity(32 * 3 + 8);
    msg.extend_from_slice(&r.measurement);
    msg.extend_from_slice(&r.input_digest);
    msg.extend_from_slice(&r.output_digest);
    msg.extend_from_slice(&r.nonce.to_le_bytes());
    hmac_sha256(key, &msg)
}

impl Enclave {
    /// Provision an enclave: seal the model under the enclave storage key
    /// and record its measurement.
    #[must_use]
    pub fn provision(
        model: &Sequential,
        storage_key: [u8; 32],
        attestation_key: [u8; 32],
        slowdown: f64,
    ) -> Self {
        let bytes = model.to_bytes().expect("model serializes");
        let measurement = sha256(&bytes);
        let sealed = SealedBox::seal(&storage_key, [0x5e; 12], b"enclave-model", &bytes);
        Enclave {
            sealed,
            storage_key,
            attestation_key,
            measurement,
            slowdown,
            call_overhead_ms: 0.05,
        }
    }

    /// The enclave's code+data identity.
    #[must_use]
    pub fn measurement(&self) -> Digest {
        self.measurement
    }

    /// Run inference inside the enclave: unseal, execute, attest.
    /// Returns the output, the attestation report, and the *simulated*
    /// enclave latency for a baseline latency of `base_ms`.
    pub fn infer(
        &self,
        x: &Tensor,
        nonce: u64,
        base_ms: f64,
    ) -> Result<(Tensor, AttestationReport, f64), VerifyError> {
        let bytes = self
            .sealed
            .open(&self.storage_key, b"enclave-model")
            .map_err(|_| VerifyError::Attestation("unseal failed"))?;
        // Integrity: the sealed blob must still match the measurement.
        if sha256(&bytes) != self.measurement {
            return Err(VerifyError::Attestation("measurement mismatch"));
        }
        let model =
            Sequential::from_bytes(&bytes).map_err(|_| VerifyError::Attestation("model decode"))?;
        let y = model.forward(x);
        let mut report = AttestationReport {
            measurement: self.measurement,
            input_digest: tensor_digest(x),
            output_digest: tensor_digest(&y),
            nonce,
            mac: [0u8; 32],
        };
        report.mac = report_mac(&self.attestation_key, &report);
        let simulated_ms = base_ms * self.slowdown + self.call_overhead_ms;
        Ok((y, report, simulated_ms))
    }

    /// Verify an attestation report (relying-party side).
    pub fn verify_report(
        report: &AttestationReport,
        attestation_key: &[u8; 32],
        expected_measurement: &Digest,
        expected_nonce: u64,
    ) -> Result<(), VerifyError> {
        if report.measurement != *expected_measurement {
            return Err(VerifyError::Attestation("unexpected measurement"));
        }
        if report.nonce != expected_nonce {
            return Err(VerifyError::Attestation("stale nonce (replay?)"));
        }
        let want = report_mac(attestation_key, report);
        if !tinymlops_crypto::ct_eq(&want, &report.mac) {
            return Err(VerifyError::Attestation("bad mac"));
        }
        Ok(())
    }

    /// Partial-SPE latency model (§V "evaluate only a part of the model on
    /// the trusted environment"): first `k` of `total` layers run inside.
    /// `per_layer_ms` are baseline per-layer latencies.
    #[must_use]
    pub fn partial_latency_ms(&self, per_layer_ms: &[f64], k: usize) -> f64 {
        let inside: f64 = per_layer_ms[..k.min(per_layer_ms.len())].iter().sum();
        let outside: f64 = per_layer_ms[k.min(per_layer_ms.len())..].iter().sum();
        inside * self.slowdown + outside + if k > 0 { self.call_overhead_ms } else { 0.0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinymlops_nn::model::mlp;
    use tinymlops_tensor::TensorRng;

    fn enclave() -> (Enclave, Sequential) {
        let model = mlp(&[4, 8, 2], &mut TensorRng::seed(1));
        let e = Enclave::provision(&model, [1u8; 32], [2u8; 32], 2.0);
        (e, model)
    }

    #[test]
    fn infer_matches_plain_model_and_attests() {
        let (e, model) = enclave();
        let x = TensorRng::seed(2).uniform(&[3, 4], -1.0, 1.0);
        let (y, report, ms) = e.infer(&x, 42, 10.0).unwrap();
        assert_eq!(y, model.forward(&x));
        Enclave::verify_report(&report, &[2u8; 32], &e.measurement(), 42).unwrap();
        assert!((ms - 20.05).abs() < 1e-9, "2x slowdown + crossing: {ms}");
    }

    #[test]
    fn report_rejects_wrong_key() {
        let (e, _) = enclave();
        let x = Tensor::zeros(&[1, 4]);
        let (_, report, _) = e.infer(&x, 1, 1.0).unwrap();
        assert!(Enclave::verify_report(&report, &[9u8; 32], &e.measurement(), 1).is_err());
    }

    #[test]
    fn report_rejects_replayed_nonce() {
        let (e, _) = enclave();
        let x = Tensor::zeros(&[1, 4]);
        let (_, report, _) = e.infer(&x, 7, 1.0).unwrap();
        assert!(matches!(
            Enclave::verify_report(&report, &[2u8; 32], &e.measurement(), 8),
            Err(VerifyError::Attestation("stale nonce (replay?)"))
        ));
    }

    #[test]
    fn report_rejects_swapped_model() {
        let (e, _) = enclave();
        let other = mlp(&[4, 8, 2], &mut TensorRng::seed(99));
        let other_measurement = sha256(&other.to_bytes().unwrap());
        let x = Tensor::zeros(&[1, 4]);
        let (_, report, _) = e.infer(&x, 1, 1.0).unwrap();
        assert!(Enclave::verify_report(&report, &[2u8; 32], &other_measurement, 1).is_err());
    }

    #[test]
    fn tampered_report_fields_fail_mac() {
        let (e, _) = enclave();
        let x = Tensor::zeros(&[1, 4]);
        let (_, mut report, _) = e.infer(&x, 1, 1.0).unwrap();
        report.output_digest[0] ^= 1;
        assert!(matches!(
            Enclave::verify_report(&report, &[2u8; 32], &e.measurement(), 1),
            Err(VerifyError::Attestation("bad mac"))
        ));
    }

    #[test]
    fn partial_spe_interpolates_between_extremes() {
        let (e, _) = enclave();
        let layers = [10.0, 10.0, 10.0, 10.0];
        let none = e.partial_latency_ms(&layers, 0);
        let all = e.partial_latency_ms(&layers, 4);
        let half = e.partial_latency_ms(&layers, 2);
        assert!((none - 40.0).abs() < 1e-9);
        assert!((all - (80.0 + e.call_overhead_ms)).abs() < 1e-9);
        assert!(none < half && half < all, "{none} < {half} < {all}");
    }
}
