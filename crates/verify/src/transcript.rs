//! Fiat–Shamir transcript over SHA-256.
//!
//! Turns the interactive sum-check into a non-interactive proof: every
//! prover message is absorbed; verifier challenges are squeezed from the
//! running hash, so the prover cannot adapt messages to future challenges.

use crate::field::{Fp, P};
use tinymlops_crypto::Sha256;

/// A running Fiat–Shamir transcript.
#[derive(Clone)]
pub struct Transcript {
    state: [u8; 32],
    counter: u64,
}

impl Transcript {
    /// Start a transcript under a domain-separation label.
    #[must_use]
    pub fn new(label: &[u8]) -> Self {
        let mut h = Sha256::new();
        h.update(b"tinymlops.transcript.v1");
        h.update(label);
        Transcript {
            state: h.finalize(),
            counter: 0,
        }
    }

    /// Absorb labelled bytes.
    pub fn absorb(&mut self, label: &[u8], data: &[u8]) {
        let mut h = Sha256::new();
        h.update(&self.state);
        h.update(&(label.len() as u64).to_le_bytes());
        h.update(label);
        h.update(&(data.len() as u64).to_le_bytes());
        h.update(data);
        self.state = h.finalize();
    }

    /// Absorb a field element.
    pub fn absorb_fp(&mut self, label: &[u8], v: Fp) {
        self.absorb(label, &v.as_u64().to_le_bytes());
    }

    /// Absorb a slice of field elements.
    pub fn absorb_fps(&mut self, label: &[u8], vs: &[Fp]) {
        let mut bytes = Vec::with_capacity(vs.len() * 8);
        for v in vs {
            bytes.extend_from_slice(&v.as_u64().to_le_bytes());
        }
        self.absorb(label, &bytes);
    }

    /// Squeeze a uniformly-distributed field challenge (rejection-sampled
    /// so the distribution over `[0, P)` is exact).
    pub fn challenge_fp(&mut self, label: &[u8]) -> Fp {
        loop {
            let mut h = Sha256::new();
            h.update(&self.state);
            h.update(label);
            h.update(&self.counter.to_le_bytes());
            self.counter += 1;
            let digest = h.finalize();
            let v = u64::from_le_bytes(digest[..8].try_into().expect("8 bytes"));
            if v < P {
                // Fold the squeeze back in so successive challenges chain.
                self.state = digest;
                return Fp::new(v);
            }
        }
    }

    /// Squeeze `n` challenges.
    pub fn challenges_fp(&mut self, label: &[u8], n: usize) -> Vec<Fp> {
        (0..n).map(|_| self.challenge_fp(label)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_absorptions() {
        let mut a = Transcript::new(b"test");
        let mut b = Transcript::new(b"test");
        a.absorb(b"x", b"hello");
        b.absorb(b"x", b"hello");
        assert_eq!(a.challenge_fp(b"c").as_u64(), b.challenge_fp(b"c").as_u64());
    }

    #[test]
    fn different_data_different_challenges() {
        let mut a = Transcript::new(b"test");
        let mut b = Transcript::new(b"test");
        a.absorb(b"x", b"hello");
        b.absorb(b"x", b"world");
        assert_ne!(a.challenge_fp(b"c"), b.challenge_fp(b"c"));
    }

    #[test]
    fn label_separation_matters() {
        let mut a = Transcript::new(b"proto-a");
        let mut b = Transcript::new(b"proto-b");
        assert_ne!(a.challenge_fp(b"c"), b.challenge_fp(b"c"));
    }

    #[test]
    fn successive_challenges_differ() {
        let mut t = Transcript::new(b"test");
        let c1 = t.challenge_fp(b"c");
        let c2 = t.challenge_fp(b"c");
        assert_ne!(c1, c2);
    }

    #[test]
    fn challenges_are_valid_field_elements() {
        let mut t = Transcript::new(b"bounds");
        for _ in 0..100 {
            assert!(t.challenge_fp(b"c").as_u64() < P);
        }
    }

    #[test]
    fn absorbing_after_squeeze_changes_future() {
        let mut a = Transcript::new(b"test");
        let mut b = Transcript::new(b"test");
        let _ = a.challenge_fp(b"c");
        let _ = b.challenge_fp(b"c");
        a.absorb(b"m", b"1");
        b.absorb(b"m", b"2");
        assert_ne!(a.challenge_fp(b"d"), b.challenge_fp(b"d"));
    }
}
