//! Multilinear extensions over the boolean hypercube.
//!
//! A vector `v` of length `2^k` defines the unique multilinear polynomial
//! `ṽ : F^k → F` with `ṽ(b) = v[b]` for boolean points. Sum-check reduces
//! matmul claims to evaluations of these extensions at random points.
//! Index convention: bit 0 of the index is the **first** variable.

use crate::field::Fp;

/// Pad a vector with zeros to the next power of two.
#[must_use]
pub fn pad_pow2(mut v: Vec<Fp>) -> Vec<Fp> {
    let n = v.len().max(1).next_power_of_two();
    v.resize(n, Fp::ZERO);
    v
}

/// Number of variables for a (padded) vector length.
#[must_use]
pub fn num_vars(len: usize) -> usize {
    len.next_power_of_two().trailing_zeros() as usize
}

/// Evaluate the MLE of `values` (length 2^k) at `point` (length k) in
/// O(2^k) time and O(2^k) scratch, by successive variable folding.
#[must_use]
pub fn mle_eval(values: &[Fp], point: &[Fp]) -> Fp {
    assert_eq!(
        values.len(),
        1usize << point.len(),
        "values length must be 2^point-len"
    );
    let mut table = values.to_vec();
    for &r in point {
        let half = table.len() / 2;
        for i in 0..half {
            // f(r, rest) = (1−r)·f(0, rest) + r·f(1, rest)
            let f0 = table[2 * i];
            let f1 = table[2 * i + 1];
            table[i] = f0.add(r.mul(f1.sub(f0)));
        }
        table.truncate(half);
    }
    table[0]
}

/// Fold the first variable of a table at challenge `r`, halving it.
pub fn fold_variable(table: &mut Vec<Fp>, r: Fp) {
    let half = table.len() / 2;
    for i in 0..half {
        let f0 = table[2 * i];
        let f1 = table[2 * i + 1];
        table[i] = f0.add(r.mul(f1.sub(f0)));
    }
    table.truncate(half);
}

/// The equality polynomial table: `eq(r, b)` for all boolean `b` — the
/// Lagrange basis over the hypercube, built in O(2^k).
#[must_use]
pub fn eq_table(point: &[Fp]) -> Vec<Fp> {
    let mut table = vec![Fp::ONE];
    for &r in point {
        // Variable k lands at index bit k (matching mle_eval's fold order):
        // the already-built low bits keep their positions, the new
        // variable doubles the table into a high half.
        let half = table.len();
        let mut next = vec![Fp::ZERO; half * 2];
        for (i, &t) in table.iter().enumerate() {
            next[i] = t.mul(Fp::ONE.sub(r));
            next[i + half] = t.mul(r);
        }
        table = next;
    }
    table
}

/// Evaluate the MLE of a row-major matrix `[rows × cols]` (each dim padded
/// to powers of two) at `(r_row, r_col)`: `Σ_{i,j} eq(r_row,i)·eq(r_col,j)·M[i,j]`.
#[must_use]
pub fn matrix_mle_eval(matrix: &[Fp], rows: usize, cols: usize, r_row: &[Fp], r_col: &[Fp]) -> Fp {
    assert_eq!(1usize << r_row.len(), rows.next_power_of_two());
    assert_eq!(1usize << r_col.len(), cols.next_power_of_two());
    let eq_r = eq_table(r_row);
    let eq_c = eq_table(r_col);
    let mut acc = Fp::ZERO;
    for i in 0..rows {
        let w = eq_r[i];
        if w == Fp::ZERO {
            continue;
        }
        let row = &matrix[i * cols..(i + 1) * cols];
        let mut row_acc = Fp::ZERO;
        for (j, &m) in row.iter().enumerate() {
            row_acc = row_acc.add(eq_c[j].mul(m));
        }
        acc = acc.add(w.mul(row_acc));
    }
    acc
}

/// Build the partial table `t[j] = M̃(r_row, j)` for all (padded) columns j
/// — the prover's precomputation for a matmul sum-check; O(rows·cols).
#[must_use]
pub fn row_folded_table(matrix: &[Fp], rows: usize, cols: usize, r_row: &[Fp]) -> Vec<Fp> {
    let padded_cols = cols.next_power_of_two();
    let eq_r = eq_table(r_row);
    let mut out = vec![Fp::ZERO; padded_cols];
    for i in 0..rows {
        let w = eq_r[i];
        if w == Fp::ZERO {
            continue;
        }
        let row = &matrix[i * cols..(i + 1) * cols];
        for (j, &m) in row.iter().enumerate() {
            out[j] = out[j].add(w.mul(m));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(v: i64) -> Fp {
        Fp::from_i64(v)
    }

    #[test]
    fn mle_agrees_on_boolean_points() {
        let values: Vec<Fp> = (0..8).map(fp).collect();
        for b in 0..8usize {
            let point: Vec<Fp> = (0..3).map(|k| fp(((b >> k) & 1) as i64)).collect();
            assert_eq!(mle_eval(&values, &point), values[b], "point {b:03b}");
        }
    }

    #[test]
    fn mle_is_multilinear() {
        // f(r) must be linear in each coordinate: f(t) = (1−t)f(0)+t·f(1).
        let values: Vec<Fp> = [3, -1, 4, 1, -5, 9, 2, 6].iter().map(|&v| fp(v)).collect();
        let r1 = fp(12345);
        let r2 = fp(678);
        let at = |t: Fp| mle_eval(&values, &[t, r1, r2]);
        let t = fp(99);
        let lhs = at(t);
        let rhs = Fp::ONE.sub(t).mul(at(Fp::ZERO)).add(t.mul(at(Fp::ONE)));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn eq_table_is_lagrange_basis() {
        let point = [fp(7), fp(13)];
        let table = eq_table(&point);
        assert_eq!(table.len(), 4);
        // Σ_b eq(r,b) = 1 for any r.
        let sum: Fp = table.iter().copied().sum();
        assert_eq!(sum, Fp::ONE);
        // eq(r, b) at boolean r is a delta.
        let bool_point = [Fp::ONE, Fp::ZERO]; // b = (1,0) → index 0b01 = 1
        let t2 = eq_table(&bool_point);
        assert_eq!(t2[1], Fp::ONE);
        assert_eq!(t2[0], Fp::ZERO);
    }

    #[test]
    fn mle_eval_equals_eq_inner_product() {
        let values: Vec<Fp> = (0..16).map(|v| fp(v * v - 7)).collect();
        let point = [fp(3), fp(1412), fp(-9), fp(77)];
        let via_fold = mle_eval(&values, &point);
        let eq = eq_table(&point);
        let via_eq: Fp = values.iter().zip(&eq).map(|(&v, &e)| v.mul(e)).sum();
        assert_eq!(via_fold, via_eq);
    }

    #[test]
    fn matrix_mle_matches_vector_mle() {
        // A 4×4 matrix flattened row-major: M̃(r_i, r_j) via the matrix
        // helper equals the MLE of the flat vector at (r_j ‖ r_i)
        // (column bits are the low-order index bits).
        let m: Vec<Fp> = (0..16).map(|v| fp(v + 1)).collect();
        let r_row = [fp(5), fp(-3)];
        let r_col = [fp(11), fp(2)];
        let a = matrix_mle_eval(&m, 4, 4, &r_row, &r_col);
        let mut point = r_col.to_vec();
        point.extend_from_slice(&r_row);
        let b = mle_eval(&m, &point);
        assert_eq!(a, b);
    }

    #[test]
    fn row_folded_table_consistency() {
        // t[j] = M̃(r_row, j); evaluating t's MLE at r_col must equal the
        // full matrix MLE at (r_row, r_col).
        let m: Vec<Fp> = (0..32).map(|v| fp(3 * v - 11)).collect();
        let (rows, cols) = (4, 8);
        let r_row = [fp(9), fp(-2)];
        let r_col = [fp(4), fp(0), fp(123)];
        let table = row_folded_table(&m, rows, cols, &r_row);
        let via_table = mle_eval(&table, &r_col);
        let direct = matrix_mle_eval(&m, rows, cols, &r_row, &r_col);
        assert_eq!(via_table, direct);
    }

    #[test]
    fn fold_variable_matches_eval_prefix() {
        let values: Vec<Fp> = (0..8).map(|v| fp(v * 7 + 1)).collect();
        let point = [fp(42), fp(-5), fp(19)];
        let mut table = values.clone();
        fold_variable(&mut table, point[0]);
        fold_variable(&mut table, point[1]);
        fold_variable(&mut table, point[2]);
        assert_eq!(table[0], mle_eval(&values, &point));
    }

    #[test]
    fn padding_preserves_prefix() {
        let v = pad_pow2(vec![fp(1), fp(2), fp(3)]);
        assert_eq!(v.len(), 4);
        assert_eq!(v[3], Fp::ZERO);
        assert_eq!(num_vars(3), 2);
        assert_eq!(num_vars(8), 3);
    }
}
