//! The Goldilocks prime field, `p = 2^64 − 2^32 + 1`.
//!
//! Chosen because (a) every `i64` TinyML accumulator embeds injectively,
//! (b) reduction needs only `u128` arithmetic, no big integers, and (c) it
//! is the field real proof systems (Plonky2 etc.) use at this scale.

use serde::{Deserialize, Serialize};

/// Field modulus: 2^64 − 2^32 + 1.
pub const P: u64 = 0xFFFF_FFFF_0000_0001;

/// An element of the Goldilocks field (canonical representative < P).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Fp(u64);

impl Fp {
    /// Additive identity.
    pub const ZERO: Fp = Fp(0);
    /// Multiplicative identity.
    pub const ONE: Fp = Fp(1);

    /// Construct from a canonical or non-canonical u64.
    #[must_use]
    pub fn new(v: u64) -> Self {
        Fp(if v >= P { v - P } else { v })
    }

    /// Embed a signed integer (negative values wrap to `P − |v|`).
    #[must_use]
    pub fn from_i64(v: i64) -> Self {
        if v >= 0 {
            Fp::new(v as u64)
        } else {
            Fp::new(P.wrapping_sub(v.unsigned_abs()))
        }
    }

    /// Canonical u64 representative.
    #[must_use]
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Recover a small signed integer (|v| < 2^62) from its embedding.
    #[must_use]
    pub fn to_i64(self) -> i64 {
        if self.0 > P / 2 {
            -((P - self.0) as i64)
        } else {
            self.0 as i64
        }
    }

    /// Field addition.
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn add(self, rhs: Fp) -> Fp {
        let (sum, over) = self.0.overflowing_add(rhs.0);
        let mut s = sum;
        if over || s >= P {
            s = s.wrapping_sub(P);
        }
        Fp(s)
    }

    /// Field subtraction.
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn sub(self, rhs: Fp) -> Fp {
        if self.0 >= rhs.0 {
            Fp(self.0 - rhs.0)
        } else {
            // self + P − rhs: the u64 intermediate may exceed 2^64 but the
            // true result is < P, so wrapping arithmetic is exact.
            Fp(self.0.wrapping_add(P).wrapping_sub(rhs.0))
        }
    }

    /// Field multiplication via u128 + Goldilocks reduction.
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn mul(self, rhs: Fp) -> Fp {
        reduce128(u128::from(self.0) * u128::from(rhs.0))
    }

    /// Field negation.
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn neg(self) -> Fp {
        if self.0 == 0 {
            Fp(0)
        } else {
            Fp(P - self.0)
        }
    }

    /// Exponentiation by squaring.
    #[must_use]
    pub fn pow(self, mut e: u64) -> Fp {
        let mut base = self;
        let mut acc = Fp::ONE;
        while e > 0 {
            if e & 1 == 1 {
                acc = acc.mul(base);
            }
            base = base.mul(base);
            e >>= 1;
        }
        acc
    }

    /// Multiplicative inverse (panics on zero).
    #[must_use]
    pub fn inv(self) -> Fp {
        assert!(self.0 != 0, "zero has no inverse");
        self.pow(P - 2)
    }
}

/// Reduce a 128-bit product modulo P using the Goldilocks identity
/// `2^64 ≡ 2^32 − 1 (mod p)`.
fn reduce128(x: u128) -> Fp {
    let lo = x as u64;
    let hi = (x >> 64) as u64;
    let hi_lo = hi & 0xFFFF_FFFF; // low 32 bits of hi
    let hi_hi = hi >> 32; // high 32 bits of hi
                          // x = lo + 2^64·hi_lo' where hi = hi_hi·2^32 + hi_lo
                          // 2^64 ≡ 2^32 − 1, 2^96 ≡ −1 (mod p)
    let mut t = lo;
    // subtract hi_hi (2^96 term ≡ −1)
    if t >= hi_hi {
        t -= hi_hi;
    } else {
        t = t.wrapping_add(P).wrapping_sub(hi_hi);
    }
    // add hi_lo · (2^32 − 1)
    let mid = hi_lo * 0xFFFF_FFFF; // < 2^64, no overflow: (2^32−1)² < 2^64
    let (sum, over) = t.overflowing_add(mid);
    let mut s = sum;
    if over || s >= P {
        s = s.wrapping_sub(P);
    }
    if s >= P {
        s -= P;
    }
    Fp(s)
}

impl std::ops::Add for Fp {
    type Output = Fp;
    fn add(self, rhs: Fp) -> Fp {
        Fp::add(self, rhs)
    }
}

impl std::ops::Sub for Fp {
    type Output = Fp;
    fn sub(self, rhs: Fp) -> Fp {
        Fp::sub(self, rhs)
    }
}

impl std::ops::Mul for Fp {
    type Output = Fp;
    fn mul(self, rhs: Fp) -> Fp {
        Fp::mul(self, rhs)
    }
}

impl std::ops::Neg for Fp {
    type Output = Fp;
    fn neg(self) -> Fp {
        Fp::neg(self)
    }
}

impl std::iter::Sum for Fp {
    fn sum<I: Iterator<Item = Fp>>(iter: I) -> Fp {
        iter.fold(Fp::ZERO, Fp::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_canonicalize() {
        assert_eq!(Fp::new(P), Fp::ZERO);
        assert_eq!(Fp::new(P + 5), Fp::new(5));
    }

    #[test]
    fn signed_embedding_round_trips() {
        for v in [-1_000_000i64, -1, 0, 1, 123_456_789] {
            assert_eq!(Fp::from_i64(v).to_i64(), v);
        }
    }

    #[test]
    fn add_sub_inverse() {
        let a = Fp::new(0xDEAD_BEEF_CAFE_F00D % P);
        let b = Fp::new(0x1234_5678_9ABC_DEF0);
        assert_eq!(a.add(b).sub(b), a);
        assert_eq!(a.sub(a), Fp::ZERO);
        assert_eq!(a.add(a.neg()), Fp::ZERO);
    }

    #[test]
    fn mul_matches_small_integers() {
        assert_eq!(Fp::new(7).mul(Fp::new(6)), Fp::new(42));
        assert_eq!(Fp::from_i64(-3).mul(Fp::from_i64(5)).to_i64(), -15);
    }

    #[test]
    fn mul_near_modulus() {
        // (P−1)² = P² − 2P + 1 ≡ 1 (mod P): (−1)·(−1) = 1.
        let pm1 = Fp::new(P - 1);
        assert_eq!(pm1.mul(pm1), Fp::ONE);
    }

    #[test]
    fn field_axioms_sampled() {
        // Distributivity and associativity over pseudo-random samples.
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            Fp::new(x)
        };
        for _ in 0..200 {
            let (a, b, c) = (next(), next(), next());
            assert_eq!(a.mul(b.add(c)), a.mul(b).add(a.mul(c)));
            assert_eq!(a.mul(b).mul(c), a.mul(b.mul(c)));
            assert_eq!(a.add(b), b.add(a));
        }
    }

    #[test]
    fn inverse_works() {
        for v in [1u64, 2, 3, 0xFFFF_FFFF, P - 2] {
            let a = Fp::new(v);
            assert_eq!(a.mul(a.inv()), Fp::ONE, "inv of {v}");
        }
    }

    #[test]
    #[should_panic(expected = "zero has no inverse")]
    fn zero_inverse_panics() {
        let _ = Fp::ZERO.inv();
    }

    #[test]
    fn pow_fermat() {
        let a = Fp::new(123_456_789);
        assert_eq!(a.pow(P - 1), Fp::ONE, "Fermat's little theorem");
    }

    #[test]
    fn i32_products_accumulate_exactly() {
        // The proof system's core assumption: int8 matmul accumulators
        // (≤ 127·127·n) embed and add exactly in the field.
        let mut acc_int: i64 = 0;
        let mut acc_fp = Fp::ZERO;
        for i in 0..10_000i64 {
            let a = ((i * 37) % 255) - 127;
            let b = ((i * 91) % 255) - 127;
            acc_int += a * b;
            acc_fp = acc_fp.add(Fp::from_i64(a).mul(Fp::from_i64(b)));
        }
        assert_eq!(acc_fp.to_i64(), acc_int);
    }
}
