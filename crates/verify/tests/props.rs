//! Property-based tests: proof-system invariants over random instances.

use proptest::prelude::*;
use tinymlops_verify::field::{Fp, P};
use tinymlops_verify::mle::{eq_table, mle_eval};
use tinymlops_verify::sumcheck::{int_matmul, prove_matmul, verify_matmul};
use tinymlops_verify::Transcript;

proptest! {
    /// Field axioms hold for arbitrary elements.
    #[test]
    fn field_axioms(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let (a, b, c) = (Fp::new(a % P), Fp::new(b % P), Fp::new(c % P));
        prop_assert_eq!(a.add(b), b.add(a));
        prop_assert_eq!(a.mul(b), b.mul(a));
        prop_assert_eq!(a.mul(b.add(c)), a.mul(b).add(a.mul(c)));
        prop_assert_eq!(a.add(b).add(c), a.add(b.add(c)));
        prop_assert_eq!(a.mul(b).mul(c), a.mul(b.mul(c)));
        prop_assert_eq!(a.sub(a), Fp::ZERO);
        if a != Fp::ZERO {
            prop_assert_eq!(a.mul(a.inv()), Fp::ONE);
        }
    }

    /// Signed embedding round-trips and respects ring operations.
    #[test]
    fn signed_embedding_homomorphic(a in -1_000_000i64..1_000_000, b in -1_000_000i64..1_000_000) {
        prop_assert_eq!(Fp::from_i64(a).add(Fp::from_i64(b)).to_i64(), a + b);
        prop_assert_eq!(Fp::from_i64(a).mul(Fp::from_i64(b)).to_i64(), a * b);
    }

    /// The MLE interpolates its table exactly on every boolean point.
    #[test]
    fn mle_interpolates(values in proptest::collection::vec(-1000i64..1000, 1..17)) {
        let k = values.len().next_power_of_two().trailing_zeros() as usize;
        let mut padded: Vec<Fp> = values.iter().map(|&v| Fp::from_i64(v)).collect();
        padded.resize(1 << k, Fp::ZERO);
        for idx in 0..padded.len() {
            let point: Vec<Fp> = (0..k)
                .map(|bit| Fp::from_i64(((idx >> bit) & 1) as i64))
                .collect();
            prop_assert_eq!(mle_eval(&padded, &point), padded[idx]);
        }
    }

    /// eq-table rows always sum to one (partition of unity).
    #[test]
    fn eq_table_partition_of_unity(point in proptest::collection::vec(-5000i64..5000, 0..6)) {
        let fp_point: Vec<Fp> = point.iter().map(|&v| Fp::from_i64(v)).collect();
        let table = eq_table(&fp_point);
        let sum = table.into_iter().fold(Fp::ZERO, Fp::add);
        prop_assert_eq!(sum, Fp::ONE);
    }

    /// Completeness: honest proofs over random int8 matrices always verify.
    #[test]
    fn sumcheck_completeness(
        m in 1usize..10,
        n in 1usize..20,
        b in 1usize..5,
        seed in any::<i64>(),
    ) {
        let a: Vec<i64> = (0..m * n).map(|i| ((i as i64).wrapping_mul(31).wrapping_add(seed)) % 128).collect();
        let x: Vec<i64> = (0..b * n).map(|i| ((i as i64).wrapping_mul(17).wrapping_sub(seed)) % 128).collect();
        let c = int_matmul(&a, &x, m, n, b);
        let mut pt = Transcript::new(b"prop");
        let (proof, _) = prove_matmul(&a, &x, &c, m, n, b, &mut pt);
        let mut vt = Transcript::new(b"prop");
        prop_assert!(verify_matmul(&a, &x, &c, m, n, b, &mut vt, &proof).is_ok());
    }

    /// Soundness: perturbing any output cell makes verification fail.
    #[test]
    fn sumcheck_soundness(
        m in 1usize..8,
        n in 1usize..16,
        b in 1usize..4,
        cell in any::<usize>(),
        delta in 1i64..1000,
    ) {
        let a: Vec<i64> = (0..m * n).map(|i| (i as i64 * 7) % 100 - 50).collect();
        let x: Vec<i64> = (0..b * n).map(|i| (i as i64 * 13) % 100 - 50).collect();
        let mut c = int_matmul(&a, &x, m, n, b);
        let mut pt = Transcript::new(b"prop");
        let (proof, _) = prove_matmul(&a, &x, &c, m, n, b, &mut pt);
        let idx = cell % c.len();
        c[idx] += delta;
        let mut vt = Transcript::new(b"prop");
        prop_assert!(verify_matmul(&a, &x, &c, m, n, b, &mut vt, &proof).is_err());
    }
}
