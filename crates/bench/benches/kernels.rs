//! Criterion micro-benchmarks for the workspace's hot kernels.
//!
//! `cargo bench --workspace` runs these; the per-experiment tables live in
//! `src/bin/` instead (they measure scenario-level behaviour, not kernels).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use tinymlops_crypto::{sha256, Drbg, MerkleSigner, SealedBox};
use tinymlops_fed::{local_train, LocalTrainConfig};
use tinymlops_meter::audit::{AuditLog, EntryKind};
use tinymlops_nn::data::gaussian_blobs;
use tinymlops_nn::model::mlp;
use tinymlops_quant::{BinaryDense, QDense};
use tinymlops_tensor::{Tensor, TensorRng};
use tinymlops_verify::sumcheck::{int_matmul, prove_matmul, verify_matmul};
use tinymlops_verify::Transcript;

fn bench_gemm(c: &mut Criterion) {
    let mut rng = TensorRng::seed(1);
    let a = rng.uniform(&[64, 64], -1.0, 1.0);
    let b = rng.uniform(&[64, 64], -1.0, 1.0);
    c.bench_function("gemm_f32_64x64x64", |bench| {
        bench.iter(|| black_box(a.matmul(black_box(&b)).unwrap()))
    });

    let w = rng.uniform(&[64, 64], -1.0, 1.0);
    let bias = Tensor::zeros(&[64]);
    let x = rng.uniform(&[64, 64], -1.0, 1.0);
    let q8 = QDense::quantize(&w, &bias, 8, 1.0 / 127.0);
    c.bench_function("qdense_int8_64x64x64", |bench| {
        bench.iter(|| black_box(q8.forward(black_box(&x))))
    });
    let q2 = QDense::quantize(&w, &bias, 2, 1.0 / 127.0);
    c.bench_function("qdense_int2_64x64x64", |bench| {
        bench.iter(|| black_box(q2.forward(black_box(&x))))
    });
    let qb = BinaryDense::quantize(&w, &bias);
    c.bench_function("binary_xnor_64x64x64", |bench| {
        bench.iter(|| black_box(qb.forward(black_box(&x))))
    });
}

fn bench_crypto(c: &mut Criterion) {
    let data = vec![0xabu8; 16 * 1024];
    c.bench_function("sha256_16KiB", |bench| {
        bench.iter(|| black_box(sha256(black_box(&data))))
    });
    let key = [7u8; 32];
    c.bench_function("sealedbox_seal_open_16KiB", |bench| {
        bench.iter(|| {
            let boxed = SealedBox::seal(&key, [1u8; 12], b"", black_box(&data));
            black_box(boxed.open(&key, b"").unwrap())
        })
    });
    c.bench_function("merkle_sign_verify", |bench| {
        bench.iter_batched(
            || MerkleSigner::generate(&mut Drbg::from_u64(1, b"bench"), 1),
            |mut signer| {
                let root = signer.public_key();
                let sig = signer.sign(b"capsule").unwrap();
                MerkleSigner::verify(&root, b"capsule", &sig).unwrap();
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_sumcheck(c: &mut Criterion) {
    let (m, n, b) = (64usize, 128usize, 8usize);
    let a: Vec<i64> = (0..m * n).map(|i| ((i as i64 * 37) % 255) - 127).collect();
    let x: Vec<i64> = (0..b * n).map(|i| ((i as i64 * 91) % 255) - 127).collect();
    let cc = int_matmul(&a, &x, m, n, b);
    c.bench_function("sumcheck_prove_64x128_b8", |bench| {
        bench.iter(|| {
            let mut t = Transcript::new(b"bench");
            black_box(prove_matmul(&a, &x, &cc, m, n, b, &mut t))
        })
    });
    let mut t = Transcript::new(b"bench");
    let (proof, _) = prove_matmul(&a, &x, &cc, m, n, b, &mut t);
    c.bench_function("sumcheck_verify_64x128_b8", |bench| {
        bench.iter(|| {
            let mut t = Transcript::new(b"bench");
            verify_matmul(&a, &x, &cc, m, n, b, &mut t, &proof).unwrap();
        })
    });
    c.bench_function("int_matmul_reexec_64x128_b8", |bench| {
        bench.iter(|| black_box(int_matmul(&a, &x, m, n, b)))
    });
}

fn bench_metering(c: &mut Criterion) {
    c.bench_function("audit_append_1k", |bench| {
        bench.iter(|| {
            let mut log = AuditLog::new([1u8; 32]);
            for t in 0..1000 {
                log.append(EntryKind::Query, 1, t);
            }
            black_box(log)
        })
    });
    let mut log = AuditLog::new([1u8; 32]);
    for t in 0..1000 {
        log.append(EntryKind::Query, 1, t);
    }
    c.bench_function("audit_verify_1k", |bench| {
        bench.iter(|| log.verify(&[1u8; 32]).unwrap())
    });
}

fn bench_federated(c: &mut Criterion) {
    let data = gaussian_blobs(128, 3, 8, 0.5, 1);
    let model = mlp(&[8, 16, 3], &mut TensorRng::seed(1));
    c.bench_function("fl_local_train_128ex", |bench| {
        bench.iter(|| black_box(local_train(&model, &data, &LocalTrainConfig::default())))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_gemm, bench_crypto, bench_sumcheck, bench_metering, bench_federated
}
criterion_main!(benches);
