//! Shared experiment-harness utilities: table rendering, JSON result
//! emission and wall-clock timing.
//!
//! Every experiment binary (`src/bin/e*.rs`, `src/bin/f1_platform.rs`)
//! prints a human-readable table *and* writes the same rows as JSON under
//! `results/` so EXPERIMENTS.md numbers are regenerable and diffable.

use std::time::Instant;
use tinymlops_registry::{ModelFormat, ModelId, ModelRecord, SemVer};

/// Render an aligned ASCII table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::from("| ");
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:<width$} | ", c, width = widths[i]));
        }
        s
    };
    let header_cells: Vec<String> = headers.iter().map(|h| (*h).to_string()).collect();
    println!("{}", line(&header_cells));
    let total: usize = widths.iter().map(|w| w + 3).sum::<usize>() + 1;
    println!("{:-<total$}", "");
    for row in rows {
        println!("{}", line(row));
    }
}

/// Write experiment rows as JSON under `results/<name>.json` (best effort:
/// prints a warning instead of failing the experiment if the FS is
/// read-only).
pub fn save_json(name: &str, headers: &[&str], rows: &[Vec<String>]) {
    let objects: Vec<serde_json::Value> = rows
        .iter()
        .map(|row| {
            let mut obj = serde_json::Map::new();
            for (h, c) in headers.iter().zip(row) {
                obj.insert((*h).to_string(), serde_json::Value::String(c.clone()));
            }
            serde_json::Value::Object(obj)
        })
        .collect();
    let payload = serde_json::json!({ "experiment": name, "rows": objects });
    let _ = std::fs::create_dir_all("results");
    let path = format!("results/{name}.json");
    match std::fs::write(&path, serde_json::to_vec_pretty(&payload).expect("json")) {
        Ok(()) => println!("[saved {path}]"),
        Err(e) => eprintln!("[warn: could not save {path}: {e}]"),
    }
}

/// The shared synthetic model family used by serving benchmarks and the
/// sharding experiment: one fat f32, one mid int8, one small int2 record
/// (40 KB / 10 KB / 2.5 KB). One definition, so `b01_kernels`'
/// `serving_sharded` datapoint and `e16_sharding`'s affinity A/B measure
/// the same catalog.
#[must_use]
pub fn synthetic_family(name: &str, base_id: u64) -> Vec<ModelRecord> {
    [
        (ModelFormat::F32, 40_000u64, 0.96),
        (ModelFormat::Quantized { bits: 8 }, 10_000, 0.95),
        (ModelFormat::Quantized { bits: 2 }, 2_500, 0.88),
    ]
    .into_iter()
    .enumerate()
    .map(|(i, (format, size, acc))| {
        let mut metrics = std::collections::BTreeMap::new();
        metrics.insert("accuracy".into(), acc);
        ModelRecord {
            id: ModelId(base_id + i as u64),
            name: name.into(),
            version: SemVer::new(1, 0, 0),
            format,
            parent: None,
            artifact: [0; 32],
            size_bytes: size,
            macs: 100_000,
            metrics,
            tags: vec![],
            created_ms: 0,
        }
    })
    .collect()
}

/// [`synthetic_family`] plus an int1 (XNOR) record: the activation-
/// binarization-aware binary variant the brownout ladder's deepest level
/// serves (1-bit body + f32 head ≈ 1.3 KB; accuracy from the
/// `e01_bitwidth` E1b measurement, above the ~0.70 weight-only-trained
/// baseline on the same kernel). A separate constructor so historical
/// experiments keep their 3-record catalogs byte-identical.
#[must_use]
pub fn synthetic_family_xnor(name: &str, base_id: u64) -> Vec<ModelRecord> {
    let mut family = synthetic_family(name, base_id);
    let mut metrics = std::collections::BTreeMap::new();
    metrics.insert("accuracy".into(), 0.82);
    family.push(ModelRecord {
        id: ModelId(base_id + family.len() as u64),
        name: name.into(),
        version: SemVer::new(1, 0, 0),
        format: ModelFormat::Quantized { bits: 1 },
        parent: None,
        artifact: [0; 32],
        size_bytes: 1_300,
        macs: 100_000,
        metrics,
        tags: vec!["aware:activation-binarized".into()],
        created_ms: 0,
    });
    family
}

/// Time a closure, returning `(result, milliseconds)`.
pub fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1000.0)
}

/// Time a closure repeated `n` times, returning mean milliseconds.
pub fn time_ms_n(n: usize, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..n {
        f();
    }
    start.elapsed().as_secs_f64() * 1000.0 / n as f64
}

/// Format a float with fixed precision.
#[must_use]
pub fn fmt(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

/// Format bytes human-readably.
#[must_use]
pub fn fmt_bytes(b: u64) -> String {
    if b >= 1024 * 1024 {
        format!("{:.1} MiB", b as f64 / (1024.0 * 1024.0))
    } else if b >= 1024 {
        format!("{:.1} KiB", b as f64 / 1024.0)
    } else {
        format!("{b} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_helpers() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(fmt_bytes(100), "100 B");
        assert_eq!(fmt_bytes(2048), "2.0 KiB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.0 MiB");
    }

    #[test]
    fn timers_run() {
        let (v, ms) = time_ms(|| 42);
        assert_eq!(v, 42);
        assert!(ms >= 0.0);
        assert!(time_ms_n(3, || {}) >= 0.0);
    }
}
