//! E21 — autonomous fleet controller: telemetry-driven migration and
//! elastic scaling against a standby pool.
//!
//! PR 9's `serve::controller` closes the loop the observability plane
//! opened: a `FleetController` on the fabric's logical clock samples
//! every node at a fixed control interval and actuates the primitives
//! earlier PRs built — live migrations for hot tenants, node join /
//! drain against standby capacity, brownout floors — under hysteresis
//! and cooldowns. Sections:
//!
//! * (a) **flash crowd + diurnal ramp absorbed** — a stepped mid-day
//!   ramp with a flash crowd on its peak overruns three active nodes;
//!   the controller must scale up into the standby pool (≥ 1 join),
//!   hold the SLO gates (p99 + shed-rate), and scale back down in the
//!   quiet tail (≥ 1 drain) — elasticity inside one stream.
//! * (b) **controller beats static provisioning** — the identical
//!   stream against the identical hardware with the controller off
//!   breaches the shed-rate gate and serves strictly less.
//! * (c) **backend parity** — a controlled run (joins, drains, hot
//!   moves and all) replays bit-identically on the threaded backend:
//!   same report, same migration records, same control log.
//! * (d) **off is off** — an armed controller whose thresholds can
//!   never trip is byte-identical to a disabled one.
//!
//! `--quick` shrinks the streams to CI-smoke size (same JSON schema).

use tinymlops_bench::{fmt, print_table, save_json, synthetic_family};
use tinymlops_device::{ClassMix, DeviceClass, Fleet};
use tinymlops_serve::testkit::{assert_conservation, assert_sim_live_parity};
use tinymlops_serve::{
    ControlAction, ControllerConfig, FabricConfig, GatewayConfig, LoadPlan, Request, ServeConfig,
    ServeFabric, TenantSpec,
};

const SEED: u64 = 21;
const TENANTS: u32 = 12;
const PREPAID: u64 = 10_000_000;
/// SLO gates for the controlled run (section a).
const P99_GATE_MS: f64 = 30.0;
const SHED_GATE: f64 = 0.02;

/// A homogeneous device mix: every partition (active or standby) gets
/// comparable capacity, so node weight 1.0 is truthful and controller
/// placement reasons about load, not accidental hardware skew.
fn uniform_mix() -> ClassMix {
    [
        (DeviceClass::McuM7, 1.0),
        (DeviceClass::McuM7, 0.0),
        (DeviceClass::McuM7, 0.0),
        (DeviceClass::McuM7, 0.0),
        (DeviceClass::McuM7, 0.0),
        (DeviceClass::McuM7, 0.0),
    ]
}

fn fabric(cfg: &FabricConfig, fleet_size: usize) -> ServeFabric {
    let partitions = cfg.node_weights.len() + cfg.controller.standby_weights.len();
    let fleets = Fleet::generate(fleet_size, &uniform_mix(), SEED).partition(partitions);
    let mut f = ServeFabric::new(cfg, fleets);
    f.install_family("kws", synthetic_family("kws", 0));
    f.install_family("vision", synthetic_family("vision", 100));
    f
}

fn plan(seed: u64, rps: f64, duration_us: u64, deadline_us: u64) -> LoadPlan {
    LoadPlan {
        tenants: (0..TENANTS)
            .map(|i| TenantSpec {
                id: i + 1,
                // Tenant 1 carries a triple share — the skew that gives
                // the controller a hot tenant worth moving.
                rate_rps: rps * if i == 0 { 3.0 } else { 1.0 } / f64::from(TENANTS + 2),
                model: if i % 2 == 0 { "kws" } else { "vision" }.into(),
                prepaid_queries: PREPAID,
                deadline_us,
            })
            .collect(),
        duration_us,
        seed,
        feature_dim: 0,
    }
}

/// The diurnal workload: a low baseline over the whole day, a stepped
/// mid-day ramp, and a flash crowd right on the peak. The tail (the
/// last ~45%) is baseline-only so the controller has a quiet window to
/// scale back down *inside the stream*.
fn diurnal_stream(duration_us: u64, deadline_us: u64, scale: f64) -> Vec<Request> {
    let mut stream = plan(SEED, 800.0 * scale, duration_us, deadline_us).generate();
    // (offset fraction x1000, rate, length fraction x1000)
    let segments: [(u64, f64, u64); 4] = [
        (50, 2_000.0, 150),
        (200, 4_000.0, 200),
        (400, 8_000.0, 250),
        (450, 3_000.0, 100), // the flash crowd on the plateau
    ];
    for (i, (off, rps, len)) in segments.into_iter().enumerate() {
        let seg = plan(
            SEED + 1 + i as u64,
            rps * scale,
            duration_us * len / 1000,
            deadline_us,
        );
        let offset = duration_us * off / 1000;
        stream.extend(seg.generate().into_iter().map(|mut r| {
            r.arrival_us += offset;
            r
        }));
    }
    stream.sort_by_key(|r| r.arrival_us);
    for (i, r) in stream.iter_mut().enumerate() {
        r.id = i as u64;
    }
    stream
}

fn controlled_cfg(enabled: bool) -> FabricConfig {
    FabricConfig {
        node_weights: vec![1.0; 3],
        serve: ServeConfig {
            gateway: GatewayConfig {
                max_pending_per_tenant: 64,
                max_total_pending: 64,
            },
            ..Default::default()
        },
        controller: ControllerConfig {
            enabled,
            interval_us: 100_000,
            tenant_cooldown_us: 250_000,
            scale_cooldown_us: 300_000,
            // Both runs keep the same standby pool so the device fleets
            // (and so per-node capacity) are identical; "off" just
            // leaves the spares dark.
            standby_weights: vec![1.0, 1.0],
            ..ControllerConfig::enabled()
        },
        ..Default::default()
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!(
        "E21: autonomous fleet controller (elastic scaling + hot-tenant moves){}",
        if quick { " [quick]" } else { "" }
    );

    let fleet_size = if quick { 30 } else { 60 };
    let duration_us = if quick { 2_500_000 } else { 5_000_000 };
    // Rates scale with per-node device count so the ramp straddles the
    // 3-active-node capacity in both modes.
    let scale = if quick { 1.0 } else { 1.4 };
    let deadline_us = 60_000;
    let stream = diurnal_stream(duration_us, deadline_us, scale);
    let base_plan = plan(SEED, 800.0 * scale, duration_us, deadline_us);

    // E21a: the controlled run. Elasticity must happen *and* hold SLOs.
    let cfg_on = controlled_cfg(true);
    let mut on = fabric(&cfg_on, fleet_size);
    on.provision(&base_plan);
    let (report_on, records_on) = on.run_migrating(&stream, &[]).expect("controlled run");
    let joins = report_on
        .control
        .iter()
        .filter(|r| matches!(r.action, ControlAction::Join { .. }))
        .count();
    let drains = report_on
        .control
        .iter()
        .filter(|r| matches!(r.action, ControlAction::Drain { .. }))
        .count();
    let moves = report_on
        .control
        .iter()
        .filter(|r| matches!(r.action, ControlAction::Migrate { .. }))
        .count();
    assert!(joins >= 1, "the ramp must push the controller to scale up");
    assert!(
        drains >= 1,
        "the quiet tail must let the controller scale back down"
    );
    assert_eq!(
        on.standby().len(),
        cfg_on.controller.standby_weights.len() + joins - drains,
        "every drained node is back in the standby pool"
    );
    let shed_rate_on = report_on.fleet.shed_total as f64 / stream.len() as f64;
    assert!(
        report_on.fleet.p99_ms <= P99_GATE_MS,
        "p99 SLO breached under control: {} ms > {} ms",
        report_on.fleet.p99_ms,
        P99_GATE_MS
    );
    assert!(
        shed_rate_on <= SHED_GATE,
        "shed-rate SLO breached under control: {shed_rate_on:.4} > {SHED_GATE}"
    );
    assert_conservation(
        &on,
        &report_on,
        stream.len() as u64,
        u64::from(TENANTS) * PREPAID,
    );
    assert!(
        records_on.len() >= moves,
        "every controller-initiated hot-tenant move must surface as a migration record"
    );

    // E21b: identical stream, identical hardware, controller off.
    let cfg_off = controlled_cfg(false);
    let mut off = fabric(&cfg_off, fleet_size);
    off.provision(&base_plan);
    let report_off = off.run(&stream).expect("static run");
    let shed_rate_off = report_off.fleet.shed_total as f64 / stream.len() as f64;
    assert!(
        shed_rate_off > SHED_GATE,
        "static provisioning must breach the shed gate ({shed_rate_off:.4})"
    );
    let controller_wins = report_on.fleet.served > report_off.fleet.served;
    assert!(
        controller_wins,
        "the controller must serve strictly more ({} vs {})",
        report_on.fleet.served, report_off.fleet.served
    );

    let headers_a = [
        "policy",
        "served",
        "shed",
        "shed rate",
        "p99 ms",
        "joins",
        "drains",
        "moves",
        "slo_held",
        "controller_wins",
    ];
    let rows_a = vec![
        vec![
            "static (off)".into(),
            report_off.fleet.served.to_string(),
            report_off.fleet.shed_total.to_string(),
            fmt(shed_rate_off, 4),
            fmt(report_off.fleet.p99_ms, 2),
            "0".into(),
            "0".into(),
            "0".into(),
            if shed_rate_off <= SHED_GATE && report_off.fleet.p99_ms <= P99_GATE_MS {
                "yes"
            } else {
                "NO"
            }
            .into(),
            "-".into(),
        ],
        vec![
            "controlled".into(),
            report_on.fleet.served.to_string(),
            report_on.fleet.shed_total.to_string(),
            fmt(shed_rate_on, 4),
            fmt(report_on.fleet.p99_ms, 2),
            joins.to_string(),
            drains.to_string(),
            moves.to_string(),
            "yes".into(),
            if controller_wins { "yes" } else { "NO" }.into(),
        ],
    ];
    print_table(
        "E21a/b diurnal ramp + flash crowd: controlled vs static",
        &headers_a,
        &rows_a,
    );
    save_json("e21_autoscale_elastic", &headers_a, &rows_a);

    // E21c: backend parity on a controlled run — CI-smoke sized either
    // way, since the live backend runs real threads.
    let parity_duration = 1_500_000;
    let parity_stream = diurnal_stream(parity_duration, deadline_us, 1.0);
    let parity_plan = plan(SEED, 800.0, parity_duration, deadline_us);
    let outcome = assert_sim_live_parity(
        || {
            let mut f = fabric(&cfg_on, 30);
            f.provision(&parity_plan);
            f
        },
        &parity_stream,
        &[],
    );
    let parity_joins = outcome
        .report
        .control
        .iter()
        .filter(|r| matches!(r.action, ControlAction::Join { .. }))
        .count();
    assert!(
        parity_joins >= 1,
        "the parity run must exercise real controller decisions"
    );
    let headers_c = ["stream", "control records", "joins", "identical"];
    let rows_c = vec![vec![
        parity_stream.len().to_string(),
        outcome.report.control.len().to_string(),
        parity_joins.to_string(),
        "yes".into(),
    ]];
    print_table("E21c sim ≡ live parity (controlled)", &headers_c, &rows_c);
    save_json("e21_autoscale_parity", &headers_c, &rows_c);

    // E21d: an armed-but-untrippable controller must be byte-identical
    // to a disabled one — the control plane costs nothing until it acts.
    let mut idle_cfg = controlled_cfg(true);
    idle_cfg.controller.high_pressure = f64::INFINITY;
    idle_cfg.controller.high_shed_rate = f64::INFINITY;
    idle_cfg.controller.low_pressure = -1.0;
    let run_idle = |cfg: &FabricConfig| {
        let mut f = fabric(cfg, 30);
        f.provision(&parity_plan);
        f.run(&parity_stream).expect("identity run")
    };
    let idle = run_idle(&idle_cfg);
    let dark = run_idle(&cfg_off);
    assert!(
        idle.control.is_empty(),
        "an untrippable controller decides nothing"
    );
    let identical = idle == dark;
    assert!(identical, "armed-but-idle must be byte-identical to off");
    let headers_d = ["policy", "served", "shed", "identical"];
    let rows_d = vec![
        vec![
            "disabled".into(),
            dark.fleet.served.to_string(),
            dark.fleet.shed_total.to_string(),
            "-".into(),
        ],
        vec![
            "armed, untrippable".into(),
            idle.fleet.served.to_string(),
            idle.fleet.shed_total.to_string(),
            if identical { "yes" } else { "NO" }.into(),
        ],
    ];
    print_table("E21d disabled ≡ armed-idle identity", &headers_d, &rows_d);
    save_json("e21_autoscale_identity", &headers_d, &rows_d);

    println!("\nE21 complete: elastic scaling held the SLOs, static provisioning did not.");
}
