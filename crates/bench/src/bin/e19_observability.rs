//! E19 — the observability plane: tracing, histograms, windows, alarms.
//!
//! PR 6 threads a telemetry plane through every serving node: a bounded
//! flight-recorder of request lifecycle spans, log-bucketed latency
//! histograms that merge exactly across the fleet, per-node windowed
//! time series, and live drift/anomaly detectors. The defining property
//! is that all of it is *passive*: with observability enabled the
//! serving decisions — and therefore the replay-mode reports — do not
//! change by a single bit. Sections: (a) **parity & zero perturbation**
//! — the same ≥100k-request plan with observability off, on, and on
//! through the threaded live backend; the three fleet reports must be
//! equal and the live report bit-identical to the simulator's,
//! flight-recorder contents included; (b) **histogram fidelity** — the
//! mergeable fleet histogram's p50/p95/p99/p99.9 against the exact
//! sorted-sample percentiles, each within one bucket width; (c)
//! **windows & alarms** — a migrating run with an induced per-tenant
//! latency regime, checking the windowed series conserve every request
//! and the drift bank names the right tenant; (d) **flight recorder** —
//! a live migrating run dumped as Chrome trace-event JSON
//! (`results/e19_trace.json`, loadable at <https://ui.perfetto.dev>),
//! with both handoff spans of the migration present.
//!
//! `--quick` shrinks the replay to CI-smoke size (the JSON artifacts are
//! still written with the same schema).

use tinymlops_bench::{fmt, print_table, save_json, time_ms};
use tinymlops_core::{Platform, PlatformConfig};
use tinymlops_nn::data::synth_digits;
use tinymlops_nn::model::mlp;
use tinymlops_nn::train::{fit, FitConfig};
use tinymlops_nn::Adam;
use tinymlops_observe::{chrome_trace_json, SpanKind};
use tinymlops_registry::SemVer;
use tinymlops_serve::{
    ExecConfig, FabricConfig, LoadPlan, MigrationSpec, ObserveConfig, TenantSpec,
};
use tinymlops_tensor::TensorRng;

const SEED: u64 = 19;
const FAMILIES: usize = 3;

fn published_platform(fleet_size: usize) -> Platform {
    let platform = Platform::new(&PlatformConfig {
        fleet_size,
        seed: SEED,
        signer_height: 4,
    });
    let data = synth_digits(900, 0.08, SEED);
    let (train, test) = data.split(0.85, 0);
    let mut rng = TensorRng::seed(SEED);
    let mut model = mlp(&[64, 24, 10], &mut rng);
    let mut opt = Adam::new(0.005);
    fit(
        &mut model,
        &train,
        &mut opt,
        &FitConfig {
            epochs: 8,
            batch_size: 32,
            ..Default::default()
        },
    );
    for f in 0..FAMILIES {
        platform
            .publish(
                &format!("family{f}"),
                &model,
                SemVer::new(1, 0, 0),
                &train,
                &test,
            )
            .expect("publish");
    }
    platform
}

fn plan(total_rps: f64, duration_us: u64, tenants: u32, deadline_us: u64) -> LoadPlan {
    LoadPlan {
        tenants: (0..tenants)
            .map(|i| TenantSpec {
                id: i + 1,
                rate_rps: total_rps / f64::from(tenants),
                model: format!("family{}", i as usize % FAMILIES),
                prepaid_queries: u64::MAX / 2,
                deadline_us,
            })
            .collect(),
        duration_us,
        seed: SEED,
        feature_dim: 0,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!(
        "E19: observability plane (flight recorder, fleet histograms, windows, alarms){}",
        if quick { " [quick]" } else { "" }
    );

    let fleet_size = if quick { 30 } else { 90 };
    let nodes = 3usize;
    let (rps, duration_us) = if quick {
        (3_000.0, 1_000_000)
    } else {
        (20_000.0, 6_000_000)
    };
    let cfg_off = FabricConfig {
        node_weights: vec![1.0; nodes],
        ..Default::default()
    };
    let cfg_on = FabricConfig {
        node_weights: vec![1.0; nodes],
        observe: ObserveConfig::enabled(),
        ..Default::default()
    };
    let p = plan(rps, duration_us, 18, 250_000);
    let stream_len = p.generate().len();
    if !quick {
        assert!(
            stream_len >= 100_000,
            "observed replay must exceed 100k requests, got {stream_len}"
        );
    }

    // E19a: zero perturbation + live parity. Observability off vs on
    // must not change a single serving outcome (the observer only reads
    // timestamps the engine already computed), and the threaded backend
    // with tracing enabled must stay bit-identical to the simulator —
    // windows, alarms and flight-recorder contents included.
    let mut off_platform = published_platform(fleet_size);
    let (off_report, off_wall_ms) = time_ms(|| {
        off_platform
            .serve_traffic_sharded(&p, &cfg_off)
            .expect("sim off")
    });
    let mut on_platform = published_platform(fleet_size);
    let (on_report, on_wall_ms) = time_ms(|| {
        on_platform
            .serve_traffic_sharded(&p, &cfg_on)
            .expect("sim on")
    });
    assert_eq!(
        on_report.fleet, off_report.fleet,
        "observability must not perturb serving outcomes"
    );
    assert_eq!(on_report.per_node, off_report.per_node);
    assert!(off_report.windows.is_empty() && off_report.traces.is_empty());
    assert!(!on_report.windows.is_empty(), "windows recorded when on");
    assert!(!on_report.traces.is_empty(), "traces recorded when on");

    let mut live_platform = published_platform(fleet_size);
    let live = live_platform
        .serve_traffic_live(&p, &cfg_on, &ExecConfig::default())
        .expect("live on");
    let identical = live.fabric == on_report;
    assert!(
        identical,
        "threaded replay with tracing must be bit-identical to the simulator"
    );
    let traced_events: usize = on_report.traces.iter().map(|(_, e)| e.len()).sum();
    let headers_a = [
        "backend",
        "observe",
        "served",
        "shed",
        "trace events",
        "windows",
        "wall ms",
        "identical",
    ];
    let window_count: usize = on_report.windows.iter().map(|(_, w)| w.len()).sum();
    let rows_a = vec![
        vec![
            "sim replay".into(),
            "off".into(),
            off_report.fleet.served.to_string(),
            off_report.fleet.shed_total.to_string(),
            "0".into(),
            "0".into(),
            fmt(off_wall_ms, 0),
            "baseline".into(),
        ],
        vec![
            "sim replay".into(),
            "on".into(),
            on_report.fleet.served.to_string(),
            on_report.fleet.shed_total.to_string(),
            traced_events.to_string(),
            window_count.to_string(),
            fmt(on_wall_ms, 0),
            "yes".into(),
        ],
        vec![
            format!("live ({} threads)", nodes + 1),
            "on".into(),
            live.fabric.fleet.served.to_string(),
            live.fabric.fleet.shed_total.to_string(),
            live.fabric
                .traces
                .iter()
                .map(|(_, e)| e.len())
                .sum::<usize>()
                .to_string(),
            live.fabric
                .windows
                .iter()
                .map(|(_, w)| w.len())
                .sum::<usize>()
                .to_string(),
            fmt(live.wall_ms, 0),
            if identical { "yes" } else { "NO" }.into(),
        ],
    ];
    print_table(
        &format!("E19a zero perturbation + live parity ({stream_len} requests, {nodes} nodes)"),
        &headers_a,
        &rows_a,
    );
    save_json("e19_observe_parity", &headers_a, &rows_a);

    // E19b: histogram fidelity. The fleet histogram is a bucket-wise
    // merge of per-node log-bucketed accumulators; each quantile must
    // land within one bucket width of the exact union-of-samples answer
    // the fleet report already computes.
    let hist = &on_report.latency_hist;
    assert_eq!(hist.count(), on_report.fleet.served, "one sample per serve");
    let headers_b = [
        "quantile",
        "exact us",
        "hist us (bucket floor)",
        "bucket width us",
        "|err| us",
        "within",
    ];
    let mut rows_b = Vec::new();
    for (label, pct, exact_ms) in [
        ("p50", 50.0, on_report.fleet.p50_ms),
        ("p95", 95.0, on_report.fleet.p95_ms),
        ("p99", 99.0, on_report.fleet.p99_ms),
        ("p99.9", 99.9, on_report.fleet.p999_ms),
    ] {
        let exact_us = exact_ms * 1_000.0;
        let est = hist.quantile(pct);
        let width = hist.quantile_width(pct);
        let err = (exact_us - est as f64).abs();
        let within = err <= width as f64;
        assert!(
            within,
            "{label}: hist {est} vs exact {exact_us:.0} exceeds bucket width {width}"
        );
        rows_b.push(vec![
            label.into(),
            fmt(exact_us, 0),
            est.to_string(),
            width.to_string(),
            fmt(err, 1),
            "yes".into(),
        ]);
    }
    print_table(
        &format!(
            "E19b fleet histogram vs exact percentiles ({} samples)",
            hist.count()
        ),
        &headers_b,
        &rows_b,
    );
    save_json("e19_observe_hist", &headers_b, &rows_b);

    // E19c: windows conserve, detectors localize. A migrating run keeps
    // the windowed series honest under drain/handoff: every arrival in
    // the stream appears in exactly one window of exactly one node. The
    // default 4096-event ring wraps over this replay (the handoff spans
    // at mid-stream would be overwritten), so the migrating sections
    // size the flight recorder to hold the whole run.
    let cfg_trace = FabricConfig {
        node_weights: vec![1.0; nodes],
        observe: ObserveConfig {
            trace_capacity: 1 << 16,
            ..ObserveConfig::enabled()
        },
        ..Default::default()
    };
    let mig_plan = plan(
        if quick { 2_000.0 } else { 6_000.0 },
        if quick { 600_000 } else { 2_000_000 },
        6,
        250_000,
    );
    let mig_stream_len = mig_plan.generate().len();
    let specs = [MigrationSpec {
        tenant: 1,
        to: 2,
        trigger_us: if quick { 300_000 } else { 1_000_000 },
    }];
    let mut mig_platform = published_platform(if quick { 18 } else { 45 });
    let (mig_report, mig_records) = mig_platform
        .serve_traffic_migrating(&mig_plan, &cfg_trace, &specs)
        .expect("migrating run");
    assert_eq!(mig_records.len(), 1);
    let win_arrivals: u64 = mig_report
        .windows
        .iter()
        .flat_map(|(_, w)| w.iter())
        .map(|w| w.arrivals)
        .sum();
    let win_served: u64 = mig_report
        .windows
        .iter()
        .flat_map(|(_, w)| w.iter())
        .map(|w| w.served)
        .sum();
    let win_shed: u64 = mig_report
        .windows
        .iter()
        .flat_map(|(_, w)| w.iter())
        .map(|w| w.shed)
        .sum();
    assert_eq!(
        win_arrivals, mig_stream_len as u64,
        "every arrival lands in exactly one window"
    );
    assert_eq!(win_served, mig_report.fleet.served);
    assert_eq!(win_shed, mig_report.fleet.shed_total);
    let headers_c = [
        "node",
        "windows",
        "arrivals",
        "served",
        "shed",
        "max queue depth",
        "peak p99 us",
        "alarms",
    ];
    let rows_c: Vec<Vec<String>> = mig_report
        .windows
        .iter()
        .map(|(node, w)| {
            vec![
                node.to_string(),
                w.len().to_string(),
                w.iter().map(|s| s.arrivals).sum::<u64>().to_string(),
                w.iter().map(|s| s.served).sum::<u64>().to_string(),
                w.iter().map(|s| s.shed).sum::<u64>().to_string(),
                w.iter()
                    .map(|s| s.queue_depth_max)
                    .max()
                    .unwrap_or(0)
                    .to_string(),
                w.iter().map(|s| s.p99_us).max().unwrap_or(0).to_string(),
                mig_report
                    .alarms
                    .iter()
                    .filter(|(n, _)| n == node)
                    .count()
                    .to_string(),
            ]
        })
        .collect();
    print_table(
        &format!("E19c windowed series under migration ({mig_stream_len} requests)"),
        &headers_c,
        &rows_c,
    );
    save_json("e19_observe_windows", &headers_c, &rows_c);

    // E19d: flight recorder → Chrome trace JSON. The live migrating run
    // exercises the handoff spans; the dump must parse and carry both
    // sides of the migration (drain at the source, adopt at the
    // destination).
    let mut live_mig_platform = published_platform(if quick { 18 } else { 45 });
    let (live_mig, live_records) = live_mig_platform
        .serve_traffic_live_migrating(&mig_plan, &cfg_trace, &ExecConfig::default(), &specs)
        .expect("live migrating run");
    assert_eq!(live_mig.fabric, mig_report, "migrating parity with tracing");
    assert_eq!(live_records, mig_records);
    let all_events: Vec<_> = live_mig
        .fabric
        .traces
        .iter()
        .flat_map(|(_, e)| e.iter().cloned())
        .collect();
    let handoffs = all_events
        .iter()
        .filter(|e| e.kind == SpanKind::Handoff)
        .count();
    assert!(
        handoffs >= 2,
        "both handoff sides must be recorded, got {handoffs}"
    );
    let json = chrome_trace_json(&all_events);
    let parsed: serde_json::Value = serde_json::from_str(&json).expect("trace JSON parses");
    let n_json_events = parsed.as_array().map_or(0, std::vec::Vec::len);
    assert_eq!(n_json_events, all_events.len());
    let _ = std::fs::create_dir_all("results");
    std::fs::write("results/e19_trace.json", &json).expect("write trace");
    println!("[saved results/e19_trace.json — load at https://ui.perfetto.dev]");
    let kind_count = |k: SpanKind| all_events.iter().filter(|e| e.kind == k).count();
    let headers_d = ["span kind", "events"];
    let rows_d: Vec<Vec<String>> = [
        SpanKind::Admit,
        SpanKind::Enqueue,
        SpanKind::Batch,
        SpanKind::Dispatch,
        SpanKind::Complete,
        SpanKind::Shed,
        SpanKind::CacheEvict,
        SpanKind::Handoff,
    ]
    .into_iter()
    .map(|k| vec![k.name().to_string(), kind_count(k).to_string()])
    .collect();
    print_table(
        &format!("E19d flight-recorder dump ({} events)", all_events.len()),
        &headers_d,
        &rows_d,
    );
    save_json("e19_observe_trace", &headers_d, &rows_d);

    println!(
        "\nE19 complete: {stream_len} requests traced with zero perturbation, \
         fleet quantiles within one bucket, {handoffs} handoff spans recorded."
    );
}
