//! E18 — live tenant migration: drain/handoff between serving nodes with
//! requests in flight, plus bounded-load shard routing.
//!
//! PR 3's fabric could only move tenant accounts *between* runs (pending
//! work had to be zero) and its rendezvous router let a hot tenant
//! overload its home node. This experiment exercises the drain/handoff
//! protocol that lifts both limits. Sections: (a) **handoff** — tenants
//! migrate mid-stream under load (queued work spliced, dispatched work
//! drained in place, quota partition + audit chain handed off atomically
//! under a `meter` `Handoff` entry), bit-identical between the simulator
//! and the threaded `ExecMode::Replay` backend, with exact quota
//! conservation and every chain verifying across the move; (b) **node
//! drain** — every tenant is migrated off one node mid-stream and the
//! emptied node is decommissioned after the run; (c) **bounded load** —
//! a full-affinity tenant pile-up is split across nodes by the
//! configurable load factor, capping every node at its fair share;
//! (d) **wall mode** — a migration executes across live wall-clock node
//! threads and the conservation laws still hold exactly.
//!
//! `--quick` shrinks the replay to CI-smoke size (the JSON artifacts are
//! still written with the same schema).

use tinymlops_bench::{fmt, print_table, save_json, synthetic_family};
use tinymlops_core::{Platform, PlatformConfig};
use tinymlops_device::{default_mix, Fleet};
use tinymlops_nn::data::synth_digits;
use tinymlops_nn::model::mlp;
use tinymlops_nn::train::{fit, FitConfig};
use tinymlops_nn::Adam;
use tinymlops_registry::SemVer;
use tinymlops_serve::{
    ExecConfig, ExecMode, FabricConfig, LoadPlan, MigrationPhase, MigrationSpec, ServeFabric,
    TenantSpec,
};
use tinymlops_tensor::TensorRng;

const SEED: u64 = 18;
const FAMILIES: usize = 3;

fn published_platform(fleet_size: usize) -> Platform {
    let platform = Platform::new(&PlatformConfig {
        fleet_size,
        seed: SEED,
        signer_height: 4,
    });
    let data = synth_digits(900, 0.08, SEED);
    let (train, test) = data.split(0.85, 0);
    let mut rng = TensorRng::seed(SEED);
    let mut model = mlp(&[64, 24, 10], &mut rng);
    let mut opt = Adam::new(0.005);
    fit(
        &mut model,
        &train,
        &mut opt,
        &FitConfig {
            epochs: 8,
            batch_size: 32,
            ..Default::default()
        },
    );
    for f in 0..FAMILIES {
        platform
            .publish(
                &format!("family{f}"),
                &model,
                SemVer::new(1, 0, 0),
                &train,
                &test,
            )
            .expect("publish");
    }
    platform
}

fn plan(total_rps: f64, duration_us: u64, tenants: u32, prepaid: u64) -> LoadPlan {
    // Tenant 1 is deliberately hot (a quarter of all traffic): migrating
    // it mid-stream all but guarantees queued/batched work is in flight
    // at the trigger, so the drain/handoff protocol has something real to
    // splice.
    let cold_rps = total_rps * 0.75 / f64::from(tenants - 1);
    LoadPlan {
        tenants: (0..tenants)
            .map(|i| TenantSpec {
                id: i + 1,
                rate_rps: if i == 0 { total_rps * 0.25 } else { cold_rps },
                model: format!("family{}", i as usize % FAMILIES),
                prepaid_queries: prepaid,
                deadline_us: 250_000,
            })
            .collect(),
        duration_us,
        seed: SEED,
        feature_dim: 0,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!(
        "E18: live tenant migration (in-flight drain/handoff) + bounded-load routing{}",
        if quick { " [quick]" } else { "" }
    );

    let fleet_size = if quick { 30 } else { 90 };
    let (rps, duration_us) = if quick {
        (3_000.0, 1_000_000)
    } else {
        (20_000.0, 6_000_000)
    };
    let tenants = 18u32;
    let prepaid = 1_000_000_000u64;
    let cfg = FabricConfig {
        node_weights: vec![1.0; 3],
        ..Default::default()
    };
    let p = plan(rps, duration_us, tenants, prepaid);
    let stream = p.generate();
    if !quick {
        assert!(
            stream.len() >= 100_000,
            "migration replay must exceed 100k requests, got {}",
            stream.len()
        );
    }

    // E18a: in-flight handoff. Pick three tenants and move each to a node
    // that is not its home, at staggered points in the stream; one of
    // them migrates twice (ping-pong). Run the identical schedule through
    // the simulator and the threaded replay backend.
    let mut sim_platform = published_platform(fleet_size);
    let mut sim_fabric = sim_platform.build_fabric(&p, &cfg).expect("fabric");
    let census_before: u64 = sim_fabric.quota_census().iter().map(|q| q.balance).sum();
    let pick = |fabric: &ServeFabric, tenant: u32| -> MigrationSpec {
        let from = fabric.home_node(tenant).expect("provisioned");
        MigrationSpec {
            tenant,
            to: (from + 1) % 3,
            trigger_us: 0, // set per spec below
        }
    };
    let mid = duration_us / 2;
    let mut specs = vec![
        MigrationSpec {
            trigger_us: duration_us / 4,
            ..pick(&sim_fabric, 1)
        },
        MigrationSpec {
            trigger_us: mid,
            ..pick(&sim_fabric, 7)
        },
        MigrationSpec {
            trigger_us: mid,
            ..pick(&sim_fabric, 13)
        },
    ];
    // Tenant 1 migrates a second time, later in the stream.
    let second_home = specs[0].to;
    specs.push(MigrationSpec {
        tenant: 1,
        to: (second_home + 1) % 3,
        trigger_us: duration_us * 3 / 4,
    });

    let (sim_report, sim_records) = sim_fabric.run_migrating(&stream, &specs).expect("sim run");
    let mut live_platform = published_platform(fleet_size);
    let mut live_fabric = live_platform.build_fabric(&p, &cfg).expect("fabric");
    let (live_report, live_records) = live_fabric
        .run_live_migrating(&stream, &ExecConfig::default(), &specs)
        .expect("live run");
    let identical = live_report.fabric == sim_report && live_records == sim_records;
    assert!(
        identical,
        "threaded migration replay must be bit-identical to the simulator"
    );
    assert_eq!(sim_report.unrefunded_sheds(), 0, "every shed refunded");
    assert!(sim_report.refunds_balance());
    assert_eq!(
        sim_report.fleet.served + sim_report.fleet.shed_total,
        stream.len() as u64
    );
    let inflight_moved: usize = sim_records
        .iter()
        .map(|r| r.spliced + r.drained_in_flight)
        .sum();
    assert!(
        inflight_moved > 0,
        "the hot tenant must migrate with requests actually in flight"
    );
    let census = sim_fabric.quota_census();
    let census_after: u64 = census
        .iter()
        .map(|q| q.balance + q.consumed - q.refunded)
        .sum();
    assert_eq!(
        census_before, census_after,
        "exact quota conservation across the migrations"
    );
    let master = sim_platform.master_key();
    let checked = sim_fabric
        .verify_chains(|t| tinymlops_ipp::encrypt::device_key(&master, t))
        .expect("chains verify across handoffs");
    assert_eq!(checked, tenants as usize);

    let mut rows_a: Vec<Vec<String>> = Vec::new();
    for r in &sim_records {
        assert_eq!(r.phase, MigrationPhase::Resumed);
        // The account lives on the tenant's *final* home (a
        // twice-migrated tenant has interim hops).
        let final_home = sim_fabric.home_node(r.tenant).expect("tenant homed");
        let admitted_end = sim_fabric
            .node_mut(final_home)
            .expect("home exists")
            .plane
            .gateway
            .tenant(r.tenant)
            .expect("account on its home")
            .admitted;
        let new_home_serves = final_home == r.to && admitted_end > r.admitted_before_handoff;
        // The last hop of a twice-migrated tenant owns its final home.
        let is_last_hop = !sim_records
            .iter()
            .any(|later| later.tenant == r.tenant && later.trigger_us > r.trigger_us);
        assert!(
            !is_last_hop || new_home_serves,
            "tenant {} must serve on its new home {}",
            r.tenant,
            r.to
        );
        rows_a.push(vec![
            r.tenant.to_string(),
            r.from.to_string(),
            r.to.to_string(),
            (r.handoff_us / 1000).to_string(),
            r.spliced.to_string(),
            r.drained_in_flight.to_string(),
            r.admitted_before_handoff.to_string(),
            admitted_end.to_string(),
            if is_last_hop && new_home_serves {
                "yes"
            } else if is_last_hop {
                "NO"
            } else {
                "interim"
            }
            .to_string(),
            sim_report.unrefunded_sheds().to_string(),
            if census_before == census_after {
                "equal"
            } else {
                "BROKEN"
            }
            .to_string(),
        ]);
    }
    let headers_a = [
        "tenant",
        "from",
        "to",
        "handoff ms",
        "spliced",
        "drained",
        "admitted@handoff",
        "admitted end",
        "new_home_serves",
        "unrefunded",
        "census",
    ];
    print_table(
        &format!(
            "E18a in-flight drain/handoff ({} requests, {} migrations, sim ≡ live: {})",
            stream.len(),
            sim_records.len(),
            if identical { "yes" } else { "NO" }
        ),
        &headers_a,
        &rows_a,
    );
    save_json("e18_migration_handoff", &headers_a, &rows_a);

    // Parity artifact (structure mirrors e17's).
    let headers_p = ["backend", "served", "shed", "refunds", "identical"];
    let rows_p = vec![
        vec![
            "sim replay".into(),
            sim_report.fleet.served.to_string(),
            sim_report.fleet.shed_total.to_string(),
            sim_report.refunds.to_string(),
            "-".into(),
        ],
        vec![
            "live replay".into(),
            live_report.fabric.fleet.served.to_string(),
            live_report.fabric.fleet.shed_total.to_string(),
            live_report.fabric.refunds.to_string(),
            if identical { "yes" } else { "NO" }.into(),
        ],
    ];
    print_table("E18a sim vs live migration parity", &headers_p, &rows_p);
    save_json("e18_migration_parity", &headers_p, &rows_p);

    // E18b: drain a whole node mid-stream, then decommission it. Every
    // tenant homed on the victim gets a migration spec targeting its
    // next-best surviving node; after the run the node is empty and
    // `remove_node` succeeds with zero pending work.
    let mut drain_platform = published_platform(fleet_size);
    let mut drain_fabric = drain_platform.build_fabric(&p, &cfg).expect("fabric");
    let victim = 2u32;
    let evacuees: Vec<u32> = drain_fabric
        .quota_census()
        .iter()
        .filter(|q| q.node == victim)
        .map(|q| q.tenant)
        .collect();
    let drain_specs: Vec<MigrationSpec> = evacuees
        .iter()
        .enumerate()
        .map(|(i, t)| MigrationSpec {
            tenant: *t,
            to: (i as u32) % 2, // spread over the survivors
            trigger_us: mid,
        })
        .collect();
    let (drain_report, drain_records) = drain_fabric
        .run_migrating(&stream, &drain_specs)
        .expect("drain run");
    assert!(drain_records
        .iter()
        .all(|r| r.phase == MigrationPhase::Resumed));
    assert_eq!(drain_report.unrefunded_sheds(), 0);
    let victim_load = drain_fabric
        .tenant_loads()
        .into_iter()
        .find(|(n, _)| *n == victim)
        .map(|(_, l)| l)
        .unwrap_or(0);
    assert_eq!(victim_load, 0, "victim node fully evacuated");
    let moved = drain_fabric.remove_node(victim).expect("empty node leaves");
    let headers_b = [
        "victim",
        "evacuees",
        "spliced total",
        "drained total",
        "victim load after",
        "rebalanced on leave",
        "unrefunded",
    ];
    let rows_b = vec![vec![
        victim.to_string(),
        evacuees.len().to_string(),
        drain_records
            .iter()
            .map(|r| r.spliced)
            .sum::<usize>()
            .to_string(),
        drain_records
            .iter()
            .map(|r| r.drained_in_flight)
            .sum::<usize>()
            .to_string(),
        victim_load.to_string(),
        moved.to_string(),
        drain_report.unrefunded_sheds().to_string(),
    ]];
    print_table("E18b live node drain + decommission", &headers_b, &rows_b);
    save_json("e18_migration_drain", &headers_b, &rows_b);

    // E18c: bounded-load routing. 48 tenants of ONE family at affinity
    // 1.0 — pure rendezvous sends all of them to a single node. Sweep
    // the load factor and record the hottest node against its cap.
    let hot_tenants = 48u32;
    let factors = [f64::INFINITY, 2.0, 1.25, 1.0];
    let mut rows_c = Vec::new();
    let mut unbounded_max = 0usize;
    for factor in factors {
        let bl_cfg = FabricConfig {
            node_weights: vec![1.0; 3],
            tenant_affinity: 1.0,
            load_factor: factor,
            ..Default::default()
        };
        let fleets = Fleet::generate(30, &default_mix(), SEED).partition(3);
        let mut f = ServeFabric::new(&bl_cfg, fleets);
        f.install_family("hot", synthetic_family("hot", 0));
        for t in 1..=hot_tenants {
            f.register_tenant(t, "hot", [0u8; 32]);
        }
        let max_load = f.tenant_loads().iter().map(|(_, l)| *l).max().unwrap_or(0);
        let cap = f
            .shard_router
            .bounded_caps(hot_tenants as usize, factor)
            .iter()
            .map(|(_, c)| *c)
            .max()
            .unwrap_or(usize::MAX);
        if factor.is_infinite() {
            unbounded_max = max_load;
            assert_eq!(
                max_load, hot_tenants as usize,
                "full affinity piles everyone onto one node"
            );
        } else {
            assert!(
                max_load <= cap,
                "factor {factor}: hottest node {max_load} exceeds cap {cap}"
            );
            assert!(max_load < unbounded_max, "the cap actually split the pile");
        }
        rows_c.push(vec![
            if factor.is_infinite() {
                "unbounded".into()
            } else {
                fmt(factor, 2)
            },
            hot_tenants.to_string(),
            max_load.to_string(),
            if factor.is_infinite() {
                "-".into()
            } else {
                cap.to_string()
            },
            if factor.is_infinite() || max_load <= cap {
                "yes"
            } else {
                "NO"
            }
            .to_string(),
        ]);
    }
    let headers_c = ["load factor", "tenants", "hottest node", "cap", "capped"];
    print_table(
        "E18c bounded-load routing (one family, affinity 1.0)",
        &headers_c,
        &rows_c,
    );
    save_json("e18_migration_bounded", &headers_c, &rows_c);

    // E18d: wall-clock migration — the drain/adopt controls cross live
    // node threads under real time. Outcomes are timing-dependent; the
    // conservation laws and the completed handoff are not.
    let wall_plan = plan(
        if quick { 2_000.0 } else { 8_000.0 },
        if quick { 250_000 } else { 500_000 },
        6,
        1_000_000,
    );
    let wall_stream = wall_plan.generate();
    let mut wall_platform = published_platform(if quick { 12 } else { 30 });
    let mut wall_fabric = wall_platform
        .build_fabric(&wall_plan, &cfg)
        .expect("fabric");
    let wall_from = wall_fabric.home_node(1).expect("provisioned");
    let wall_spec = [MigrationSpec {
        tenant: 1,
        to: (wall_from + 1) % 3,
        trigger_us: wall_plan.duration_us / 2,
    }];
    let (wall_live, wall_records) = wall_fabric
        .run_live_migrating(
            &wall_stream,
            &ExecConfig {
                mode: ExecMode::Wall,
                queue_capacity: 256,
            },
            &wall_spec,
        )
        .expect("wall run");
    assert_eq!(wall_records.len(), 1);
    assert_eq!(wall_records[0].phase, MigrationPhase::Resumed);
    assert_eq!(wall_fabric.home_node(1), Some(wall_spec[0].to));
    let fleet = &wall_live.fabric.fleet;
    assert_eq!(
        fleet.served + fleet.shed_total,
        wall_stream.len() as u64,
        "wall mode: every arrival is served or shed"
    );
    assert!(wall_live.fabric.refunds_balance());
    let wall_census = wall_fabric.quota_census();
    let spent: u64 = wall_census.iter().map(|q| q.consumed - q.refunded).sum();
    let left: u64 = wall_census.iter().map(|q| q.balance).sum();
    assert_eq!(spent + left, 1_000_000 * 6, "wall mode conserves quota");
    let headers_d = [
        "requests",
        "served",
        "shed",
        "queue spliced",
        "migrated home",
        "unrefunded",
        "wall ms",
    ];
    let rows_d = vec![vec![
        wall_stream.len().to_string(),
        fleet.served.to_string(),
        fleet.shed_total.to_string(),
        wall_records[0].queue_spliced.to_string(),
        format!("{} -> {}", wall_records[0].from, wall_records[0].to),
        wall_live.fabric.unrefunded_sheds().to_string(),
        fmt(wall_live.wall_ms, 0),
    ]];
    print_table(
        "E18d wall-clock migration (live threads, real time)",
        &headers_d,
        &rows_d,
    );
    save_json("e18_migration_wall", &headers_d, &rows_d);

    println!(
        "\nE18 complete: {} requests with {} mid-stream migrations, sim ≡ live, \
         quota conserved to the query; bounded load caps the hottest node.",
        stream.len(),
        sim_records.len()
    );
}
