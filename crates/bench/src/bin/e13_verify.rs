//! E13 — §VI: "recent innovations have reduced this overhead to about 5%
//! of the execution time of a model" (SafetyNets) and "MobileNet … an
//! overhead of around 2X" (MLCapsule).
//!
//! Sum-check prover overhead, proof size, verifier-vs-re-execution time
//! across layer sizes and batch sizes; end-to-end quantized-MLP proof;
//! SPE cost model at the 2x factor.

use tinymlops_bench::{fmt, fmt_bytes, print_table, save_json, time_ms_n};
use tinymlops_nn::data::synth_digits;
use tinymlops_nn::model::mlp;
use tinymlops_nn::train::{fit, FitConfig};
use tinymlops_nn::Adam;
use tinymlops_quant::{QuantScheme, QuantizedModel};
use tinymlops_tensor::TensorRng;
use tinymlops_verify::sumcheck::{int_matmul, prove_matmul, verify_matmul};
use tinymlops_verify::{Enclave, Transcript, VerifiableModel};

fn main() {
    let seed = 13u64;
    println!("E13: verifiable execution costs (seed {seed})");

    // (a) Single-layer sum-check across sizes and batches.
    let mut rows = Vec::new();
    for &(m, n) in &[(32usize, 64usize), (64, 128), (128, 256), (256, 512)] {
        for &b in &[1usize, 8, 32, 128] {
            let a: Vec<i64> = (0..m * n).map(|i| ((i as i64 * 37) % 255) - 127).collect();
            let x: Vec<i64> = (0..b * n).map(|i| ((i as i64 * 91) % 255) - 127).collect();
            let c = int_matmul(&a, &x, m, n, b);
            let exec_ms = time_ms_n(20, || {
                let _ = int_matmul(&a, &x, m, n, b);
            });
            let prove_ms = time_ms_n(10, || {
                let mut t = Transcript::new(b"bench");
                let _ = prove_matmul(&a, &x, &c, m, n, b, &mut t);
            });
            let mut t = Transcript::new(b"bench");
            let (proof, _) = prove_matmul(&a, &x, &c, m, n, b, &mut t);
            let verify_ms = time_ms_n(10, || {
                let mut t = Transcript::new(b"bench");
                verify_matmul(&a, &x, &c, m, n, b, &mut t, &proof).expect("verifies");
            });
            rows.push(vec![
                format!("{m}x{n}"),
                b.to_string(),
                fmt(exec_ms, 3),
                fmt(prove_ms, 3),
                fmt(prove_ms / exec_ms * 100.0, 0),
                fmt(verify_ms, 3),
                fmt(exec_ms / verify_ms, 2),
                fmt_bytes(proof.size_bytes() as u64),
            ]);
        }
    }
    let headers = [
        "layer",
        "batch",
        "exec ms",
        "prove ms",
        "prove/exec %",
        "verify ms",
        "re-exec/verify",
        "proof",
    ];
    print_table("E13a sum-check costs per quantized matmul", &headers, &rows);
    save_json("e13_sumcheck", &headers, &rows);

    // (b) End-to-end: quantized digits MLP with proof.
    let data = synth_digits(1000, 0.08, seed);
    let (train, test) = data.split(0.85, 0);
    let mut rng = TensorRng::seed(seed);
    let mut model = mlp(&[64, 32, 10], &mut rng);
    let mut opt = Adam::new(0.005);
    fit(
        &mut model,
        &train,
        &mut opt,
        &FitConfig {
            epochs: 10,
            batch_size: 32,
            ..Default::default()
        },
    );
    let q = QuantizedModel::quantize(&model, &train.x, QuantScheme::Int8).expect("int8");
    let vm = VerifiableModel::from_quantized(&q).expect("provable");
    let mut e2e_rows = Vec::new();
    for &batch in &[1usize, 8, 32, 64] {
        let x = test.x.slice_rows(0, batch);
        let plain_ms = time_ms_n(10, || {
            let _ = vm.forward(&x);
        });
        let prove_ms = time_ms_n(5, || {
            let _ = vm.prove(&x);
        });
        let (y, proof) = vm.prove(&x);
        let verify_ms = time_ms_n(5, || {
            vm.verify(&x, &y, &proof).expect("verifies");
        });
        e2e_rows.push(vec![
            batch.to_string(),
            fmt(plain_ms, 3),
            fmt(prove_ms, 3),
            fmt(prove_ms / plain_ms * 100.0, 0),
            fmt(verify_ms, 3),
            fmt(plain_ms / verify_ms, 2),
            fmt_bytes(proof.size_bytes() as u64),
        ]);
    }
    let e2e_headers = [
        "batch",
        "infer ms",
        "prove ms",
        "prove/infer %",
        "verify ms",
        "infer/verify",
        "proof",
    ];
    print_table(
        "E13b end-to-end provable int8 MLP (64-32-10)",
        &e2e_headers,
        &e2e_rows,
    );
    save_json("e13_e2e", &e2e_headers, &e2e_rows);

    // (c) SPE cost model at the MLCapsule-quoted 2x. Use a batch big
    // enough that the fixed boundary-crossing cost does not dominate
    // (the MobileNet-scale regime MLCapsule measured).
    let enclave = Enclave::provision(&model, [1u8; 32], [2u8; 32], 2.0);
    let x = test.x.slice_rows(0, 128);
    let base_ms = time_ms_n(20, || {
        let _ = model.forward(&x);
    });
    let (_, report, enclave_ms) = enclave.infer(&x, 1, base_ms).expect("enclave");
    Enclave::verify_report(&report, &[2u8; 32], &enclave.measurement(), 1).expect("attest");
    let spe_rows = vec![vec![
        fmt(base_ms, 3),
        fmt(enclave_ms, 3),
        fmt(enclave_ms / base_ms, 2),
        "verified".to_string(),
    ]];
    let spe_headers = ["plain ms", "enclave ms", "factor", "attestation"];
    print_table(
        "E13c SPE (MLCapsule-style, 2x model)",
        &spe_headers,
        &spe_rows,
    );
    save_json("e13_spe", &spe_headers, &spe_rows);
    println!(
        "\nshape check: verifier beats re-execution once batches amortize the weight-MLE \
         evaluation; proofs are KB-scale; prover overhead is the honest cost SafetyNets \
         reports as small-percent on larger models. SPE lands at its configured ~2x."
    );
}
