//! E3 — §III-A: "the number of models that need to be managed by a
//! TinyMLOps system is much larger than the number of models for a
//! corresponding centralized deployment" + "automatically trigger the
//! execution of the optimization pipeline".
//!
//! Registry growth across versions, retrigger latency, and lineage audit.

use tinymlops_bench::{fmt, print_table, save_json, time_ms};
use tinymlops_nn::data::synth_digits;
use tinymlops_nn::model::mlp;
use tinymlops_nn::train::{fit, FitConfig};
use tinymlops_nn::Adam;
use tinymlops_registry::{OptimizationPipeline, Registry, SemVer};
use tinymlops_tensor::TensorRng;

fn main() {
    let seed = 3u64;
    println!("E3: registry growth & pipeline retriggering (seed {seed})");
    let data = synth_digits(1200, 0.08, seed);
    let (train, test) = data.split(0.85, 0);
    let registry = Registry::new();
    let pipeline = OptimizationPipeline::standard();

    let mut rows = Vec::new();
    let mut version = SemVer::new(1, 0, 0);
    for gen in 0..4 {
        // "Retrain" each generation from a different seed.
        let mut rng = TensorRng::seed(seed + gen);
        let mut model = mlp(&[64, 32, 10], &mut rng);
        let mut opt = Adam::new(0.005);
        fit(
            &mut model,
            &train,
            &mut opt,
            &FitConfig {
                epochs: 10,
                batch_size: 32,
                ..Default::default()
            },
        );
        let ((_, variants), ms) = time_ms(|| {
            pipeline
                .process_base(&registry, "kws", &model, version, &train, &test, gen * 1000)
                .expect("pipeline run")
        });
        rows.push(vec![
            version.to_string(),
            format!("{}", 1 + variants.len()),
            format!("{}", registry.count()),
            fmt(ms, 1),
        ]);
        version = version.bump_minor();
    }
    let headers = [
        "base version",
        "records this gen",
        "total records",
        "pipeline ms",
    ];
    print_table("E3 registry growth over retrains", &headers, &rows);
    save_json("e03_registry", &headers, &rows);

    // Lineage audit: every variant traces to its base in ≤ 2 hops; the
    // answer to "what exactly runs on device X" is one query.
    let all = registry.all();
    let variants = all.iter().filter(|r| r.parent.is_some()).count();
    let bases = all.len() - variants;
    let mut lineage_ok = true;
    for r in &all {
        let chain = registry.lineage(r.id).expect("lineage");
        lineage_ok &= chain.len() <= 2 && chain.first().map(|c| c.parent.is_none()) == Some(true);
    }
    println!("\nlineage audit: {bases} bases, {variants} variants, all chains valid: {lineage_ok}");
    println!(
        "centralized deployment would manage {bases} models; TinyMLOps manages {} — \
         a {}x blow-up before per-device watermarks multiply it further (§V).",
        all.len(),
        all.len() / bases.max(1)
    );
}
