//! E1 — §III-A: "inference can work fine with 8 bit, 3 bit, 2 bit or even
//! 1 bit (binary) weights and operations."
//!
//! Accuracy / deployment size / measured kernel latency / estimated MCU
//! latency for the full bit-width menu on synth-digits.

use tinymlops_bench::{fmt, fmt_bytes, print_table, save_json, time_ms_n};
use tinymlops_device::{inference_cost, DeviceClass, NumericScheme};
use tinymlops_nn::data::synth_digits;
use tinymlops_nn::model::mlp;
use tinymlops_nn::profile::total_macs;
use tinymlops_nn::train::{evaluate, fit, FitConfig};
use tinymlops_nn::Adam;
use tinymlops_quant::{
    binary_aware_finetune, export_quantized, BinaryAwareConfig, QuantScheme, QuantizedModel,
};
use tinymlops_tensor::TensorRng;

fn main() {
    let seed = 1u64;
    println!("E1: accuracy/size/latency vs weight bit-width (seed {seed})");
    let data = synth_digits(2000, 0.08, seed);
    let (train, test) = data.split(0.85, 0);
    let mut rng = TensorRng::seed(seed);
    let mut model = mlp(&[64, 32, 10], &mut rng);
    let mut opt = Adam::new(0.005);
    fit(
        &mut model,
        &train,
        &mut opt,
        &FitConfig {
            epochs: 25,
            batch_size: 32,
            ..Default::default()
        },
    );

    let macs = total_macs(&model, &[64]);
    let m4 = DeviceClass::McuM4.profile();
    let batch = test.x.slice_rows(0, 64);
    let mut rows = Vec::new();

    // f32 baseline row.
    let f32_acc = evaluate(&model, &test);
    let f32_ms = time_ms_n(20, || {
        let _ = model.forward(&batch);
    });
    let f32_est = inference_cost(&m4, macs, NumericScheme::F32).map(|c| c.latency_ms);
    rows.push(vec![
        "f32".to_string(),
        "32".to_string(),
        fmt(f64::from(f32_acc), 4),
        fmt_bytes(model.param_bytes() as u64),
        fmt(f32_ms, 3),
        f32_est.map_or("n/a".into(), |v| fmt(v, 3)),
    ]);

    for scheme in QuantScheme::all() {
        let q = QuantizedModel::quantize(&model, &train.x, scheme).expect("dense model");
        let acc = q.accuracy(&test.x, &test.y);
        let ms = time_ms_n(20, || {
            let _ = q.forward(&batch);
        });
        let dev_scheme = match scheme {
            QuantScheme::Int8 => NumericScheme::Int8,
            QuantScheme::Int4 => NumericScheme::Int4,
            QuantScheme::Int2 => NumericScheme::Int2,
            QuantScheme::Binary => NumericScheme::Binary,
        };
        let est = inference_cost(&m4, macs, dev_scheme).map(|c| c.latency_ms);
        rows.push(vec![
            scheme.name().to_string(),
            scheme.bits().to_string(),
            fmt(f64::from(acc), 4),
            fmt_bytes(q.size_bytes() as u64),
            fmt(ms, 3),
            est.map_or("n/a".into(), |v| fmt(v, 3)),
        ]);
    }

    let headers = [
        "scheme",
        "bits",
        "accuracy",
        "size",
        "host ms/64-batch",
        "est. M4 ms/inf",
    ];
    print_table(
        "E1 bit-width sweep (synth-digits, MLP 64-32-10)",
        &headers,
        &rows,
    );
    save_json("e01_bitwidth", &headers, &rows);
    println!(
        "\nshape check: accuracy decays gracefully to 2-bit, binary trades more accuracy \
         for an 8x size cut and the fastest kernel — the §III-A claim."
    );

    // E1b: what it takes to serve the *true XNOR* kernel (binarized
    // activations, the fastest kernel in the tree) on a net deep enough to
    // have an interior layer. Three trainings of the same base:
    // post-hoc conversion, weight-only binary-aware (then forced through
    // the XNOR kernel), and activation-binarization-aware.
    let mut rng = TensorRng::seed(seed);
    let mut deep = mlp(&[64, 48, 32, 10], &mut rng);
    let mut opt = Adam::new(0.005);
    fit(
        &mut deep,
        &train,
        &mut opt,
        &FitConfig {
            epochs: 25,
            batch_size: 32,
            ..Default::default()
        },
    );
    let act_cfg = BinaryAwareConfig {
        binarize_activations: true,
        ..Default::default()
    };
    let wo_cfg = BinaryAwareConfig::default();

    let posthoc = QuantizedModel::quantize(&deep, &train.x, QuantScheme::Binary)
        .expect("dense model")
        .accuracy(&test.x, &test.y);
    let mut wo = deep.clone();
    binary_aware_finetune(&mut wo, &train, &wo_cfg);
    let wo_on_xnor = export_quantized(&wo, &act_cfg).accuracy(&test.x, &test.y);
    let mut aware = deep.clone();
    binary_aware_finetune(&mut aware, &train, &act_cfg);
    let q_aware = export_quantized(&aware, &act_cfg);
    let aware_acc = q_aware.accuracy(&test.x, &test.y);

    let xnor_headers = ["training", "deployed kernel", "accuracy"];
    let xnor_rows = vec![
        vec![
            "post-hoc conversion".to_string(),
            "xnor".to_string(),
            fmt(f64::from(posthoc), 4),
        ],
        vec![
            "weight-only aware".to_string(),
            "xnor".to_string(),
            fmt(f64::from(wo_on_xnor), 4),
        ],
        vec![
            "activation-binarization aware".to_string(),
            "xnor".to_string(),
            fmt(f64::from(aware_acc), 4),
        ],
    ];
    print_table(
        "E1b true-XNOR deployment (MLP 64-48-32-10)",
        &xnor_headers,
        &xnor_rows,
    );
    save_json("e01_bitwidth_xnor", &xnor_headers, &xnor_rows);
    assert!(
        aware_acc > wo_on_xnor,
        "activation-aware XNOR {aware_acc} must beat the weight-only baseline {wo_on_xnor}"
    );
    println!(
        "\nshape check: modelling input binarization during training is what makes the \
         XNOR kernel's accuracy hold ({aware_acc:.3} vs {wo_on_xnor:.3} weight-only-trained)."
    );
}
