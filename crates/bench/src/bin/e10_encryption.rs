//! E10 — §V: "A disadvantage of this approach however is the increased
//! computational cost caused by decrypting the model before use … A
//! pragmatic solution is to evaluate only a part of the model on the
//! trusted environment."
//!
//! Encrypted-load overhead across model sizes, amortization over reuse,
//! and the partial-SPE latency curve.

use tinymlops_bench::{fmt, fmt_bytes, print_table, save_json, time_ms_n};
use tinymlops_ipp::{decrypt_model, encrypt_model};
use tinymlops_nn::model::mlp;
use tinymlops_nn::Sequential;
use tinymlops_tensor::{Tensor, TensorRng};
use tinymlops_verify::Enclave;

fn main() {
    let seed = 10u64;
    println!("E10: model-encryption overhead & partial SPE (seed {seed})");
    let master = [10u8; 32];

    let mut rows = Vec::new();
    for (name, widths) in [
        ("tiny (64-32-10)", vec![64usize, 32, 10]),
        ("small (64-128-64-10)", vec![64, 128, 64, 10]),
        ("medium (256-256-128-10)", vec![256, 256, 128, 10]),
        ("large (512-512-256-10)", vec![512, 512, 256, 10]),
    ] {
        let model = mlp(&widths, &mut TensorRng::seed(seed));
        let bytes = model.to_bytes().expect("serialize").len();
        let plain_ms = time_ms_n(10, || {
            let b = model.to_bytes().expect("serialize");
            let _ = Sequential::from_bytes(&b).expect("deserialize");
        });
        let enc = encrypt_model(&model, &master, 1, [1u8; 12]);
        let dec_ms = time_ms_n(10, || {
            let _ = decrypt_model(&enc, &master).expect("decrypt");
        });
        // Amortization: decrypt once, run 1000 inferences.
        let x = TensorRng::seed(seed).uniform(&[1, widths[0]], 0.0, 1.0);
        let inf_ms = time_ms_n(200, || {
            let _ = model.forward(&x);
        });
        let overhead_once = (dec_ms - plain_ms).max(0.0);
        let amortized_pct = overhead_once / (overhead_once + 1000.0 * inf_ms) * 100.0;
        rows.push(vec![
            name.to_string(),
            fmt_bytes(bytes as u64),
            fmt(plain_ms, 2),
            fmt(dec_ms, 2),
            fmt(dec_ms / plain_ms.max(1e-9), 2),
            fmt(amortized_pct, 3),
        ]);
    }
    let headers = [
        "model",
        "artifact",
        "plain load ms",
        "decrypt+load ms",
        "ratio",
        "overhead % (1k inferences)",
    ];
    print_table("E10a encrypted model loading", &headers, &rows);
    save_json("e10_encryption", &headers, &rows);

    // Partial SPE: fraction of layers inside the enclave (slowdown 2x).
    let model = mlp(&[256, 256, 128, 10], &mut TensorRng::seed(seed));
    let enclave = Enclave::provision(&model, [1u8; 32], [2u8; 32], 2.0);
    // Per-layer baseline: measured share of a forward pass.
    let x = TensorRng::seed(seed).uniform(&[8, 256], 0.0, 1.0);
    let total_ms = time_ms_n(50, || {
        let _ = model.forward(&x);
    });
    let prof = tinymlops_nn::profile::profile(&model, &[256]);
    let total_macs: u64 = prof.iter().map(|l| l.macs).sum();
    let per_layer_ms: Vec<f64> = prof
        .iter()
        .map(|l| total_ms * l.macs as f64 / total_macs as f64)
        .collect();
    let mut spe_rows = Vec::new();
    for k in 0..=per_layer_ms.len() {
        let ms = enclave.partial_latency_ms(&per_layer_ms, k);
        spe_rows.push(vec![
            format!("{k}/{}", per_layer_ms.len()),
            fmt(ms, 3),
            fmt(ms / total_ms, 2),
        ]);
    }
    let spe_headers = ["layers in SPE", "latency ms", "vs plain"];
    print_table(
        "E10b partial-SPE evaluation (2x enclave slowdown)",
        &spe_headers,
        &spe_rows,
    );
    save_json("e10_partial_spe", &spe_headers, &spe_rows);

    // Full-enclave attestation demo at the MLCapsule-quoted 2x.
    let (_, report, enclave_ms) = enclave.infer(&x, 1, total_ms).expect("enclave run");
    Enclave::verify_report(&report, &[2u8; 32], &enclave.measurement(), 1).expect("attest");
    println!(
        "\nfull enclave: {:.3} ms vs {:.3} ms plain ({:.2}x — MLCapsule reports ~2x), \
         attestation verified.",
        enclave_ms,
        total_ms,
        enclave_ms / total_ms
    );
    let _ = Tensor::zeros(&[1]);
}
