//! E12 — §V: indirect model stealing and its two defense families:
//! "detecting stealing queries patterns and prediction poisoning".
//!
//! Extraction-attack quality vs query budget under each poisoner, plus
//! queries-to-alarm for the PRADA-style detector on attack vs benign
//! traffic.

use tinymlops_bench::{fmt, print_table, save_json};
use tinymlops_ipp::{extraction_attack, ExtractConfig, Poisoner};
use tinymlops_nn::data::synth_digits;
use tinymlops_nn::model::mlp;
use tinymlops_nn::train::{evaluate, fit, FitConfig};
use tinymlops_nn::Adam;
use tinymlops_observe::{PradaDetector, StealingVerdict};
use tinymlops_quant::DistillConfig;
use tinymlops_tensor::TensorRng;

fn main() {
    let seed = 12u64;
    println!("E12: model extraction vs defenses (seed {seed})");
    let data = synth_digits(2000, 0.08, seed);
    let (train, test) = data.split(0.8, 0);
    let mut rng = TensorRng::seed(seed);
    let mut victim = mlp(&[64, 32, 10], &mut rng);
    let mut opt = Adam::new(0.005);
    fit(
        &mut victim,
        &train,
        &mut opt,
        &FitConfig {
            epochs: 20,
            batch_size: 32,
            ..Default::default()
        },
    );
    println!("victim accuracy: {:.3}", evaluate(&victim, &test));

    // The attacker's transfer pool: noisier harvest of similar data.
    let transfer = synth_digits(1600, 0.2, seed + 500);
    let defenses = [
        Poisoner::None,
        Poisoner::Round { decimals: 1 },
        Poisoner::TopOnly,
        Poisoner::LabelOnly,
        Poisoner::ReverseSigmoid { beta: 0.9 },
    ];
    let mut rows = Vec::new();
    for budget in [100usize, 400, 1600] {
        for poisoner in defenses {
            let report = extraction_attack(
                &victim,
                poisoner,
                &transfer,
                &test,
                &ExtractConfig {
                    query_budget: budget,
                    distill: DistillConfig {
                        epochs: 25,
                        ..Default::default()
                    },
                    surrogate_widths: vec![64, 24, 10],
                    seed,
                },
            );
            rows.push(vec![
                budget.to_string(),
                report.defense.clone(),
                fmt(f64::from(report.agreement), 3),
                fmt(f64::from(report.surrogate_accuracy), 3),
            ]);
        }
    }
    let headers = [
        "query budget",
        "defense",
        "surrogate agreement",
        "surrogate acc",
    ];
    print_table(
        "E12a extraction attack vs prediction poisoning",
        &headers,
        &rows,
    );
    save_json("e12_stealing", &headers, &rows);

    // PRADA-style detection: queries until alarm.
    let mut det_rows = Vec::new();
    // Benign: natural inputs queried in arrival order.
    {
        let mut det = PradaDetector::new(10, 256, 40, 6.0);
        let benign = synth_digits(1500, 0.08, seed + 900);
        let mut alarm = None;
        for i in 0..benign.len() {
            let pred = victim.predict(&benign.x.slice_rows(i, i + 1))[0];
            if det.observe(benign.x.row(i), pred) == StealingVerdict::Attack && alarm.is_none() {
                alarm = Some(i + 1);
            }
        }
        det_rows.push(vec![
            "benign traffic".to_string(),
            alarm.map_or("never".into(), |v| v.to_string()),
            fmt(det.score(), 2),
        ]);
    }
    // Attack: grid-walk synthetic queries (JbDA-style line search).
    {
        let mut det = PradaDetector::new(10, 256, 40, 6.0);
        let mut alarm = None;
        for i in 0..1500usize {
            let base = i as f32 * 0.01;
            let q: Vec<f32> = (0..64).map(|d| (base + d as f32 * 0.015) % 1.0).collect();
            let qt = tinymlops_tensor::Tensor::from_vec(q.clone(), &[1, 64]);
            let pred = victim.predict(&qt)[0];
            if det.observe(&q, pred) == StealingVerdict::Attack && alarm.is_none() {
                alarm = Some(i + 1);
            }
        }
        det_rows.push(vec![
            "synthetic attack".to_string(),
            alarm.map_or("never".into(), |v| v.to_string()),
            fmt(det.score(), 2),
        ]);
    }
    let det_headers = ["traffic", "queries to alarm", "final score"];
    print_table(
        "E12b PRADA-style stealing detection",
        &det_headers,
        &det_rows,
    );
    save_json("e12_detection", &det_headers, &det_rows);
    println!(
        "\nshape check: agreement rises with budget; every poisoner lowers it at equal \
         budget (label-only hardest); the detector alarms on the synthetic train and \
         stays quiet on organic traffic — §V's two defense families, working."
    );
}
