//! E17 — wall-clock concurrent serving: the threaded fabric backend.
//!
//! PR 3 scaled the serving plane out to a multi-node fabric, but every
//! node still replayed inside one OS thread on a virtual clock. This
//! experiment runs the same fabric on the live executor (`serve::exec`):
//! one OS thread per node behind bounded ingest queues, the calling
//! thread as the ingest feeder. Sections: (a) **parity** — a ≥100k-request
//! workload through the threaded backend produces counter totals
//! bit-identical to the simulator's replay of the same seed (the
//! `ExecMode::Replay` contract); (b) **throughput** — wall-clock time for
//! the single-threaded simulator vs the threaded pipeline on this host;
//! (c) **wall mode** — a paced `ExecMode::Wall` run with door-stamped
//! arrivals, checked against its conservation laws (arrivals = served +
//! shed, refunds = downstream sheds, quota neither burned nor minted).
//!
//! `--quick` shrinks the replay to CI-smoke size (the JSON artifacts are
//! still written with the same schema).

use tinymlops_bench::{fmt, print_table, save_json, time_ms};
use tinymlops_core::{Platform, PlatformConfig};
use tinymlops_nn::data::synth_digits;
use tinymlops_nn::model::mlp;
use tinymlops_nn::train::{fit, FitConfig};
use tinymlops_nn::Adam;
use tinymlops_registry::SemVer;
use tinymlops_serve::{
    ExecConfig, ExecMode, FabricConfig, FabricReport, LoadPlan, ShedReason, TenantSpec,
};
use tinymlops_tensor::TensorRng;

const SEED: u64 = 17;
const FAMILIES: usize = 3;

fn published_platform(fleet_size: usize) -> Platform {
    let platform = Platform::new(&PlatformConfig {
        fleet_size,
        seed: SEED,
        signer_height: 4,
    });
    let data = synth_digits(900, 0.08, SEED);
    let (train, test) = data.split(0.85, 0);
    let mut rng = TensorRng::seed(SEED);
    let mut model = mlp(&[64, 24, 10], &mut rng);
    let mut opt = Adam::new(0.005);
    fit(
        &mut model,
        &train,
        &mut opt,
        &FitConfig {
            epochs: 8,
            batch_size: 32,
            ..Default::default()
        },
    );
    for f in 0..FAMILIES {
        platform
            .publish(
                &format!("family{f}"),
                &model,
                SemVer::new(1, 0, 0),
                &train,
                &test,
            )
            .expect("publish");
    }
    platform
}

fn plan(
    total_rps: f64,
    duration_us: u64,
    tenants: u32,
    prepaid: u64,
    deadline_us: u64,
) -> LoadPlan {
    LoadPlan {
        tenants: (0..tenants)
            .map(|i| TenantSpec {
                id: i + 1,
                rate_rps: total_rps / f64::from(tenants),
                model: format!("family{}", i as usize % FAMILIES),
                prepaid_queries: prepaid,
                deadline_us,
            })
            .collect(),
        duration_us,
        seed: SEED,
        feature_dim: 0,
    }
}

fn counter_row(backend: &str, report: &FabricReport, wall_ms: f64) -> Vec<String> {
    vec![
        backend.to_string(),
        report.fleet.served.to_string(),
        report.fleet.shed_total.to_string(),
        report
            .telemetry
            .counters
            .get("serve.admitted")
            .copied()
            .unwrap_or(0)
            .to_string(),
        report.refunds.to_string(),
        report.unrefunded_sheds().to_string(),
        fmt(report.fleet.p99_ms, 2),
        fmt(wall_ms, 0),
    ]
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!(
        "E17: wall-clock concurrent serving (threaded fabric nodes + ingest queues){}",
        if quick { " [quick]" } else { "" }
    );

    let fleet_size = if quick { 30 } else { 90 };
    let nodes = 3usize;
    let (rps, duration_us) = if quick {
        (3_000.0, 1_000_000)
    } else {
        (20_000.0, 6_000_000)
    };
    let cfg = FabricConfig {
        node_weights: vec![1.0; nodes],
        ..Default::default()
    };
    let p = plan(rps, duration_us, 18, u64::MAX / 2, 250_000);
    let stream_len = p.generate().len();
    if !quick {
        assert!(
            stream_len >= 100_000,
            "live replay must exceed 100k requests, got {stream_len}"
        );
    }

    // E17a: parity — identical plan through both backends, fresh
    // platforms, and the reports must be *equal*: counters, shed
    // breakdowns, refunds, percentiles, merged telemetry — everything.
    let mut sim_platform = published_platform(fleet_size);
    let (sim_report, sim_wall_ms) =
        time_ms(|| sim_platform.serve_traffic_sharded(&p, &cfg).expect("sim"));
    let mut live_platform = published_platform(fleet_size);
    let exec_cfg = ExecConfig::default();
    let live = live_platform
        .serve_traffic_live(&p, &cfg, &exec_cfg)
        .expect("live");
    let identical = live.fabric == sim_report;
    assert!(
        identical,
        "threaded replay must be bit-identical to the simulator"
    );
    assert_eq!(live.fabric.unrefunded_sheds(), 0, "every shed refunded");
    let headers_a = [
        "backend",
        "served",
        "shed",
        "admitted",
        "refunds",
        "unrefunded",
        "p99 ms",
        "wall ms",
    ];
    let rows_a = vec![
        counter_row("sim replay", &sim_report, sim_wall_ms),
        counter_row(
            &format!("live ({} threads)", nodes + 1),
            &live.fabric,
            live.wall_ms,
        ),
        vec![
            "identical".into(),
            if identical { "yes".into() } else { "NO".into() },
            "-".into(),
            "-".into(),
            "-".into(),
            live.fabric.unrefunded_sheds().to_string(),
            "-".into(),
            "-".into(),
        ],
    ];
    print_table(
        &format!("E17a sim vs live parity ({stream_len} requests, {nodes} nodes)"),
        &headers_a,
        &rows_a,
    );
    save_json("e17_live_parity", &headers_a, &rows_a);

    // E17b: throughput — requests through each backend per wall second.
    // On multi-core hosts the threaded pipeline overlaps node work; on a
    // 1-core host it measures the queue-handoff overhead honestly.
    let headers_b = ["backend", "requests", "wall ms", "req/s (wall)"];
    let rows_b = vec![
        vec![
            "sim replay".into(),
            stream_len.to_string(),
            fmt(sim_wall_ms, 0),
            fmt(stream_len as f64 / (sim_wall_ms / 1e3), 0),
        ],
        vec![
            "live replay".into(),
            stream_len.to_string(),
            fmt(live.wall_ms, 0),
            fmt(live.wall_throughput_rps(), 0),
        ],
    ];
    print_table("E17b wall-clock throughput", &headers_b, &rows_b);
    save_json("e17_live_throughput", &headers_b, &rows_b);

    // E17c: honest wall-clock mode — short paced plan, door-stamped
    // arrivals, timed flushes. Timing decides *which* requests shed, but
    // the conservation laws must hold exactly.
    let wall_plan = plan(
        if quick { 2_000.0 } else { 8_000.0 },
        if quick { 250_000 } else { 500_000 },
        6,
        1_000_000,
        50_000,
    );
    let wall_stream_len = wall_plan.generate().len();
    let mut wall_platform = published_platform(if quick { 12 } else { 30 });
    let wall_live = wall_platform
        .serve_traffic_live(
            &wall_plan,
            &cfg,
            &ExecConfig {
                mode: ExecMode::Wall,
                queue_capacity: 256,
            },
        )
        .expect("wall run");
    let fleet = &wall_live.fabric.fleet;
    assert_eq!(
        fleet.served + fleet.shed_total,
        wall_stream_len as u64,
        "wall mode: every arrival is served or shed"
    );
    assert!(
        wall_live.fabric.refunds_balance(),
        "wall mode: refunds ({}) must match downstream sheds ({})",
        wall_live.fabric.refunds,
        wall_live.fabric.downstream_sheds()
    );
    let headers_c = [
        "requests",
        "served",
        "shed",
        "deadline shed",
        "refunds",
        "unrefunded",
        "wall ms",
        "p99 ms (real)",
    ];
    let rows_c = vec![vec![
        wall_stream_len.to_string(),
        fleet.served.to_string(),
        fleet.shed_total.to_string(),
        fleet.shed_by(ShedReason::DeadlineExpired).to_string(),
        wall_live.fabric.refunds.to_string(),
        wall_live.fabric.unrefunded_sheds().to_string(),
        fmt(wall_live.wall_ms, 0),
        fmt(fleet.p99_ms, 2),
    ]];
    print_table(
        "E17c wall-clock mode (paced ingest, real deadlines)",
        &headers_c,
        &rows_c,
    );
    save_json("e17_live_wallmode", &headers_c, &rows_c);

    println!(
        "\nE17 complete: {stream_len} requests threaded across {nodes} nodes, \
         bit-identical to sim; wall mode conserves every prepaid query."
    );
}
