//! E2 — §III-A: "a different model could be preferred, depending on the
//! battery level … the user might prefer a slower, more accurate model or
//! a faster, less accurate model or even a model that is fast to download
//! on a slow network connection compared to a larger model when he is
//! connected to WiFi."
//!
//! Variant selection across a device-state grid. The task is made hard
//! enough (noisy data, tight model) that compression genuinely costs
//! accuracy — otherwise one variant rationally dominates and there is no
//! trade-off to navigate.

use tinymlops_bench::{print_table, save_json};
use tinymlops_deploy::{select_variant, Requirements};
use tinymlops_device::{
    inference_cost, BatteryModel, Device, DeviceClass, DeviceState, NetworkKind, NumericScheme,
};
use tinymlops_nn::data::synth_digits;
use tinymlops_nn::model::mlp;
use tinymlops_nn::train::{fit, FitConfig};
use tinymlops_nn::Adam;
use tinymlops_quant::QuantScheme;
use tinymlops_registry::pipeline::{OptimizationPipeline, PipelineConfig, VariantSpec};
use tinymlops_registry::{Registry, SemVer};
use tinymlops_tensor::TensorRng;

fn device(class: DeviceClass, level: f64, plugged: bool, net: NetworkKind) -> Device {
    let mut battery = BatteryModel::new(1.0e4);
    battery.charge_mj = 1.0e4 * level;
    battery.plugged = plugged;
    Device {
        id: 0,
        profile: class.profile(),
        state: DeviceState {
            battery,
            network: net,
        },
    }
}

fn main() {
    let seed = 2u64;
    println!("E2: state-dependent model selection (seed {seed})");
    // Hard task: heavy pixel noise, modest training set, wide model — the
    // quantized variants land at visibly different accuracies.
    let data = synth_digits(900, 0.30, seed);
    let (train, test) = data.split(0.85, 0);
    let mut rng = TensorRng::seed(seed);
    let mut model = mlp(&[64, 96, 10], &mut rng);
    let mut opt = Adam::new(0.004);
    fit(
        &mut model,
        &train,
        &mut opt,
        &FitConfig {
            epochs: 30,
            batch_size: 32,
            ..Default::default()
        },
    );
    let registry = Registry::new();
    // Quantization-only family: the menu is a pure accuracy↔cost ladder.
    let pipeline = OptimizationPipeline::new(PipelineConfig {
        variants: vec![
            VariantSpec::Quantize(QuantScheme::Int8),
            VariantSpec::Quantize(QuantScheme::Int4),
            VariantSpec::Quantize(QuantScheme::Int2),
            VariantSpec::Quantize(QuantScheme::Binary),
        ],
        ..Default::default()
    });
    pipeline
        .process_base(
            &registry,
            "m",
            &model,
            SemVer::new(1, 0, 0),
            &train,
            &test,
            0,
        )
        .expect("pipeline");
    let family = {
        let mut f = registry.family_at("m", SemVer::new(1, 0, 0));
        f.sort_by_key(|r| r.id);
        f
    };
    println!("variant menu:");
    for r in &family {
        println!(
            "  {:<6} acc {:.3}, {} bytes",
            r.format.name(),
            r.accuracy(),
            r.size_bytes
        );
    }

    // Battery-derived energy budgets (§III-A): remaining charge must cover
    // a day of inferences, so low battery ⇒ hard per-inference cap chosen
    // between the int8 and int2 energy on that device.
    let m7 = DeviceClass::McuM7.profile();
    let macs = family[0].macs;
    let e_int4 = inference_cost(&m7, macs, NumericScheme::Int4)
        .expect("int4")
        .energy_mj;
    let e_int2 = inference_cost(&m7, macs, NumericScheme::Int2)
        .expect("int2")
        .energy_mj;
    let tight_budget = (e_int4 + e_int2) / 2.0; // excludes int8/int4, admits int2/binary

    let scenarios: Vec<(&str, Device, Requirements)> = vec![
        (
            "phone plugged+wifi (accuracy-first)",
            device(DeviceClass::MobileHigh, 1.0, true, NetworkKind::Wifi),
            Requirements {
                max_latency_ms: 50.0,
                max_download_ms: 30_000.0,
                min_accuracy: 0.80,
                max_energy_mj: f64::INFINITY,
            },
        ),
        (
            "phone on slow BLE link (download-first)",
            device(DeviceClass::MobileHigh, 1.0, false, NetworkKind::Ble),
            Requirements {
                max_latency_ms: 50.0,
                max_download_ms: 2_500.0,
                min_accuracy: 0.0,
                max_energy_mj: f64::INFINITY,
            },
        ),
        (
            "m7 node, full battery",
            device(DeviceClass::McuM7, 1.0, false, NetworkKind::Wifi),
            Requirements {
                max_latency_ms: 50.0,
                max_download_ms: 60_000.0,
                min_accuracy: 0.60,
                max_energy_mj: f64::INFINITY,
            },
        ),
        (
            "m7 node, 5% battery (energy cap)",
            device(DeviceClass::McuM7, 0.05, false, NetworkKind::Wifi),
            Requirements {
                max_latency_ms: 50.0,
                max_download_ms: 60_000.0,
                min_accuracy: 0.0,
                max_energy_mj: tight_budget,
            },
        ),
        (
            "m0 sensor (no f32 silicon)",
            device(DeviceClass::McuM0, 0.8, false, NetworkKind::Ble),
            Requirements {
                max_latency_ms: 200.0,
                max_download_ms: 60_000.0,
                min_accuracy: 0.0,
                max_energy_mj: f64::INFINITY,
            },
        ),
        (
            "m0 sensor, last-gasp battery",
            device(DeviceClass::McuM0, 0.03, false, NetworkKind::Ble),
            Requirements {
                max_latency_ms: 200.0,
                max_download_ms: 60_000.0,
                min_accuracy: 0.0,
                max_energy_mj: inference_cost(
                    &DeviceClass::McuM0.profile(),
                    macs,
                    NumericScheme::Binary,
                )
                .expect("binary")
                .energy_mj
                    * 1.5,
            },
        ),
        (
            "gateway, accuracy-critical",
            device(DeviceClass::EdgeAccel, 1.0, true, NetworkKind::Wifi),
            Requirements {
                max_latency_ms: 100.0,
                max_download_ms: 60_000.0,
                min_accuracy: family[0].accuracy() - 0.01,
                max_energy_mj: f64::INFINITY,
            },
        ),
    ];

    let mut rows = Vec::new();
    for (name, dev, req) in &scenarios {
        match select_variant(&family, dev, req) {
            Ok(sel) => rows.push(vec![
                (*name).to_string(),
                sel.record.format.name(),
                format!("{:.3}", sel.record.accuracy()),
                format!("{:.3}", sel.latency_ms),
                format!("{:.4}", sel.energy_mj),
                format!("{:.0}", sel.download_ms),
            ]),
            Err(e) => rows.push(vec![
                (*name).to_string(),
                "—".into(),
                "—".into(),
                "—".into(),
                "—".into(),
                format!("{e}"),
            ]),
        }
    }
    let headers = [
        "scenario",
        "chosen",
        "acc",
        "inf ms",
        "inf mJ",
        "download ms",
    ];
    print_table("E2 per-state selections", &headers, &rows);
    save_json("e02_selection", &headers, &rows);

    let distinct: std::collections::BTreeSet<&String> =
        rows.iter().map(|r| &r[1]).filter(|v| *v != "—").collect();
    println!(
        "\nshape check: {} distinct variants across {} scenarios — battery level, link \
         speed and accuracy floors each flip the pick, the §III-A claim.",
        distinct.len(),
        rows.len()
    );
}
