//! B01 — kernel and serving-plane performance, as a tracked artifact.
//!
//! The ROADMAP's "as fast as the hardware allows" is unfalsifiable without
//! numbers: this harness times the hot kernels every experiment funnels
//! through — f32 GEMM (packed tiles vs the seed row-streaming kernel, on
//! shapes spanning the parallelism threshold and remainder tiles), QDense
//! integer forward at 8/4/2 bits (restructured vs the seed scalar loop),
//! whole-model `Sequential`/`QuantizedModel` forwards, and an end-to-end
//! e15-style serving replay — and appends one run record to
//! `results/BENCH_kernels.json`. The schema is before/after-friendly:
//! entries carry stable ids, so any later perf PR reruns this binary and
//! diffs the same ids across runs.
//!
//! `--quick` shrinks shapes and reps to CI-smoke size (the JSON is still
//! written and self-parsed, so the harness cannot rot unnoticed).

use rayon::pool::{configure_threads, effective_threads, with_dispatch, Dispatch};
use std::time::Instant;
use tinymlops_bench::{fmt, print_table, synthetic_family, synthetic_family_xnor};
use tinymlops_nn::model::mlp;
use tinymlops_observe::Telemetry;
use tinymlops_quant::{QDense, QuantScheme, QuantizedModel};
use tinymlops_serve::{
    ExecConfig, FabricConfig, LoadPlan, ObserveConfig, ServeConfig, ServeFabric, ServePlane,
    ServeSim, TenantSpec,
};
use tinymlops_tensor::matmul::{
    gemm, gemm_naive, gemm_nt_row_stream, gemm_packed, gemm_packed_nt, gemm_packed_nt_gather,
    gemm_row_stream,
};
use tinymlops_tensor::{Tensor, TensorRng};

const SEED: u64 = 101;
const RESULTS_PATH: &str = "results/BENCH_kernels.json";

/// One benchmark datapoint; `baseline_id`/`speedup_vs_baseline` tie an
/// optimized kernel to the seed kernel measured in the same run.
struct Entry {
    id: String,
    group: &'static str,
    shape: String,
    reps: usize,
    ns_per_op: f64,
    /// `None` for entries where FLOP/s is not meaningful (serving replay).
    gflops: Option<f64>,
    baseline_id: Option<String>,
    speedup_vs_baseline: Option<f64>,
}

/// Mean ns per call over `reps` calls (after one warmup call).
fn time_ns(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed().as_secs_f64() * 1e9 / reps as f64
}

/// Best (minimum) of `rounds` timing rounds — for comparisons between
/// near-equal kernels, where one noisy round on a shared host would
/// otherwise record a phantom speedup or regression.
fn time_ns_best(rounds: usize, reps: usize, mut f: impl FnMut()) -> f64 {
    (0..rounds.max(1))
        .map(|_| time_ns(reps, &mut f))
        .fold(f64::INFINITY, f64::min)
}

/// Reps that keep one measurement around `target_ms`, clamped to ≥ 1.
fn reps_for(ns_estimate: f64, target_ms: f64) -> usize {
    ((target_ms * 1e6 / ns_estimate).ceil() as usize).max(1)
}

type GemmFn = fn(&[f32], &[f32], &mut [f32], usize, usize, usize);

fn bench_gemm_f32(quick: bool, entries: &mut Vec<Entry>) {
    let shapes: &[(usize, usize, usize)] = if quick {
        &[(32, 32, 32), (96, 80, 72)]
    } else {
        // Spans the PAR/packing thresholds, remainder tiles (non-multiples
        // of MR/NR/KC) and the 256³ acceptance shape.
        &[
            (48, 48, 48),
            (128, 128, 128),
            (192, 176, 200),
            (256, 256, 256),
            (384, 300, 256),
        ]
    };
    let mut rng = TensorRng::seed(SEED);
    for &(m, k, n) in shapes {
        let a = rng.uniform(&[m, k], -1.0, 1.0);
        let b = rng.uniform(&[k, n], -1.0, 1.0);
        let mut c = vec![0.0f32; m * n];
        let flops = 2.0 * (m * k * n) as f64;
        let shape = format!("{m}x{k}x{n}");
        let probe = time_ns(1, || {
            c.fill(0.0);
            gemm_row_stream(a.data(), b.data(), &mut c, m, k, n);
        });
        let reps = if quick { 1 } else { reps_for(probe, 60.0) };

        let variants: &[(&str, GemmFn)] = &[
            ("rowstream", gemm_row_stream),
            ("packed", gemm_packed),
            ("dispatch", gemm),
        ];
        let mut row_ns = 0.0;
        for (tag, f) in variants {
            let ns = time_ns(reps, || {
                c.fill(0.0);
                f(a.data(), b.data(), &mut c, m, k, n);
            });
            if *tag == "rowstream" {
                row_ns = ns;
            }
            // The packed path must agree with the naive reference.
            if *tag == "packed" {
                let mut want = vec![0.0f32; m * n];
                gemm_naive(a.data(), b.data(), &mut want, m, k, n);
                let worst = c
                    .iter()
                    .zip(&want)
                    .map(|(x, y)| (x - y).abs())
                    .fold(0.0f32, f32::max);
                assert!(worst < 1e-2 * k as f32 / 64.0, "packed vs naive: {worst}");
            }
            entries.push(Entry {
                id: format!("gemm_f32_{shape}_{tag}"),
                group: "gemm_f32",
                shape: shape.clone(),
                reps,
                ns_per_op: ns,
                gflops: Some(flops / ns),
                baseline_id: (*tag != "rowstream").then(|| format!("gemm_f32_{shape}_rowstream")),
                speedup_vs_baseline: (*tag != "rowstream").then(|| row_ns / ns),
            });
        }
    }

    // Sparse A (~85% zeros): the dispatcher must keep the row-stream skip.
    let (m, k, n) = if quick { (64, 64, 64) } else { (256, 256, 256) };
    let a = rng
        .uniform(&[m, k], -1.0, 1.0)
        .map(|v| if v.abs() < 0.85 { 0.0 } else { v });
    let b = rng.uniform(&[k, n], -1.0, 1.0);
    let mut c = vec![0.0f32; m * n];
    let shape = format!("{m}x{k}x{n}@85%zero");
    let reps = if quick { 1 } else { 20 };
    let flops = 2.0 * (m * k * n) as f64;
    let sparse: &[(&str, GemmFn)] = &[("packed", gemm_packed), ("dispatch", gemm)];
    let mut packed_ns = 0.0;
    for (tag, f) in sparse {
        let ns = time_ns(reps, || {
            c.fill(0.0);
            f(a.data(), b.data(), &mut c, m, k, n);
        });
        if *tag == "packed" {
            packed_ns = ns;
        }
        entries.push(Entry {
            id: format!("gemm_f32_sparse_{tag}"),
            group: "gemm_f32_sparse",
            shape: shape.clone(),
            reps,
            ns_per_op: ns,
            gflops: Some(flops / ns),
            baseline_id: (*tag == "dispatch").then(|| "gemm_f32_sparse_packed".to_string()),
            speedup_vs_baseline: (*tag == "dispatch").then(|| packed_ns / ns),
        });
    }
}

/// Transposed-B GEMM (`grad_w` in training): the packed path's B-panel
/// fill changed from stride-k column gathers to a blocked transpose
/// (contiguous source reads); the gather pack is retained as
/// [`gemm_packed_nt_gather`] purely so this before/after is measured in
/// one run, against the same row-stream seed baseline.
fn bench_gemm_nt(quick: bool, entries: &mut Vec<Entry>) {
    let shapes: &[(usize, usize, usize)] = if quick {
        &[(64, 64, 48)]
    } else {
        &[(256, 256, 256), (384, 300, 256)]
    };
    let mut rng = TensorRng::seed(SEED + 3);
    for &(m, k, n) in shapes {
        let a = rng.uniform(&[m, k], -1.0, 1.0);
        let bt = rng.uniform(&[n, k], -1.0, 1.0);
        let b = bt.transpose();
        let mut c = vec![0.0f32; m * n];
        let flops = 2.0 * (m * k * n) as f64;
        let shape = format!("{m}x{k}x{n}");
        let probe = time_ns(1, || {
            c.fill(0.0);
            gemm_nt_row_stream(a.data(), bt.data(), &mut c, m, k, n);
        });
        let reps = if quick { 1 } else { reps_for(probe, 60.0) };
        let rounds = if quick { 1 } else { 5 };
        let variants: &[(&str, GemmFn)] = &[
            ("rowstream", gemm_nt_row_stream),
            ("packed_gather", gemm_packed_nt_gather),
            ("packed", gemm_packed_nt),
        ];
        let mut ns_of = [0.0f64; 3];
        for (vi, (tag, f)) in variants.iter().enumerate() {
            let ns = time_ns_best(rounds, reps, || {
                c.fill(0.0);
                f(a.data(), bt.data(), &mut c, m, k, n);
            });
            ns_of[vi] = ns;
            if *tag == "packed" {
                let mut want = vec![0.0f32; m * n];
                gemm_naive(a.data(), b.data(), &mut want, m, k, n);
                let worst = c
                    .iter()
                    .zip(&want)
                    .map(|(x, y)| (x - y).abs())
                    .fold(0.0f32, f32::max);
                assert!(
                    worst < 1e-2 * k as f32 / 64.0,
                    "packed nt vs naive: {worst}"
                );
            }
            // The blocked-transpose pack is benchmarked against the gather
            // pack it replaced; both also carry the row-stream reference.
            let baseline = match *tag {
                "packed" => Some(("gemm_nt", "packed_gather", ns_of[1])),
                "packed_gather" => Some(("gemm_nt", "rowstream", ns_of[0])),
                _ => None,
            };
            entries.push(Entry {
                id: format!("gemm_nt_{shape}_{tag}"),
                group: "gemm_nt",
                shape: shape.clone(),
                reps,
                ns_per_op: ns,
                gflops: Some(flops / ns),
                baseline_id: baseline.map(|(g, b, _)| format!("{g}_{shape}_{b}")),
                speedup_vs_baseline: baseline.map(|(_, _, base_ns)| base_ns / ns),
            });
        }
    }
}

fn bench_qdense(quick: bool, entries: &mut Vec<Entry>) {
    let (out_d, in_d) = if quick { (64, 64) } else { (256, 256) };
    let batches: &[usize] = if quick { &[8] } else { &[1, 32, 64] };
    let mut rng = TensorRng::seed(SEED + 1);
    let w = rng.uniform(&[out_d, in_d], -1.0, 1.0);
    let bias = rng.uniform(&[out_d], -0.1, 0.1);
    for &batch in batches {
        let x = rng.uniform(&[batch, in_d], -1.0, 1.0);
        for bits in [8u32, 4, 2] {
            let q = QDense::quantize(&w, &bias, bits, 1.0 / 127.0);
            let shape = format!("b{batch}x{in_d}->{out_d}");
            let macs = (batch * in_d * out_d) as f64;
            let probe = time_ns(1, || {
                std::hint::black_box(q.forward_reference(&x));
            });
            let reps = if quick { 1 } else { reps_for(probe, 40.0) };
            let ref_ns = time_ns(reps, || {
                std::hint::black_box(q.forward_reference(&x));
            });
            let new_ns = time_ns(reps, || {
                std::hint::black_box(q.forward(&x));
            });
            // The restructured kernel is bit-identical, not just close.
            assert_eq!(
                q.forward(&x).data(),
                q.forward_reference(&x).data(),
                "int{bits} kernels diverge"
            );
            let ref_id = format!("qdense_int{bits}_{shape}_reference");
            entries.push(Entry {
                id: ref_id.clone(),
                group: "qdense",
                shape: shape.clone(),
                reps,
                ns_per_op: ref_ns,
                gflops: Some(2.0 * macs / ref_ns),
                baseline_id: None,
                speedup_vs_baseline: None,
            });
            entries.push(Entry {
                id: format!("qdense_int{bits}_{shape}_tuned"),
                group: "qdense",
                shape,
                reps,
                ns_per_op: new_ns,
                gflops: Some(2.0 * macs / new_ns),
                baseline_id: Some(ref_id),
                speedup_vs_baseline: Some(ref_ns / new_ns),
            });
        }
    }
}

/// The explicit `vpmaddwd`-shaped AVX2 int8 kernel vs the autovectorized
/// widening-multiply row kernel it replaced, on the QDense batched path.
/// The autovec path is retained as `forward_autovec` purely so this
/// before/after lands in one run; both are asserted bit-identical first.
/// Acceptance: maddwd wins at batch ≥ 8 (single-row calls are dominated
/// by quantize/dequantize traffic, not MACs).
fn bench_dot_maddwd(quick: bool, entries: &mut Vec<Entry>) {
    let (out_d, in_d) = if quick { (64, 64) } else { (256, 256) };
    let batches: &[usize] = if quick { &[8] } else { &[1, 8, 32] };
    let mut rng = TensorRng::seed(SEED + 5);
    let w = rng.uniform(&[out_d, in_d], -1.0, 1.0);
    let bias = rng.uniform(&[out_d], -0.1, 0.1);
    let q = QDense::quantize(&w, &bias, 8, 1.0 / 127.0);
    for &batch in batches {
        let x = rng.uniform(&[batch, in_d], -1.0, 1.0);
        assert_eq!(
            q.forward(&x).data(),
            q.forward_autovec(&x).data(),
            "maddwd kernel diverges from autovec"
        );
        let shape = format!("b{batch}x{in_d}->{out_d}");
        let macs = (batch * in_d * out_d) as f64;
        let probe = time_ns(1, || {
            std::hint::black_box(q.forward_autovec(&x));
        });
        let reps = if quick { 1 } else { reps_for(probe, 40.0) };
        let rounds = if quick { 1 } else { 5 };
        let auto_ns = time_ns_best(rounds, reps, || {
            std::hint::black_box(q.forward_autovec(&x));
        });
        let maddwd_ns = time_ns_best(rounds, reps, || {
            std::hint::black_box(q.forward(&x));
        });
        let base_id = format!("dot_i8_{shape}_autovec");
        entries.push(Entry {
            id: base_id.clone(),
            group: "dot_i8_maddwd",
            shape: shape.clone(),
            reps,
            ns_per_op: auto_ns,
            gflops: Some(2.0 * macs / auto_ns),
            baseline_id: None,
            speedup_vs_baseline: None,
        });
        entries.push(Entry {
            id: format!("dot_i8_{shape}_maddwd"),
            group: "dot_i8_maddwd",
            shape,
            reps,
            ns_per_op: maddwd_ns,
            gflops: Some(2.0 * macs / maddwd_ns),
            baseline_id: Some(base_id),
            speedup_vs_baseline: Some(auto_ns / maddwd_ns),
        });
    }
}

/// Whole-model quantized forward, three ways: f32, the unfused per-layer
/// int8 path (quantize/dequantize at every boundary), and the fused
/// integer-domain forward (activations stay i8 across Dense→ReLU→Dense,
/// scales bridged by fixed-point requantization). The ROADMAP measurement
/// this targets: boundary traffic made int8 *lose* to f32 on the b64 MLP;
/// the fused path must flip that. Both int8 entries are scored against
/// the f32 forward.
fn bench_qmodel_fused(quick: bool, entries: &mut Vec<Entry>) {
    let widths: &[usize] = if quick {
        &[64, 32, 10]
    } else {
        &[64, 128, 64, 10]
    };
    let batch = if quick { 8 } else { 64 };
    let mut rng = TensorRng::seed(SEED + 6);
    let model = mlp(widths, &mut rng);
    let x = rng.uniform(&[batch, widths[0]], -1.0, 1.0);
    let calib = rng.uniform(&[32, widths[0]], -1.0, 1.0);
    let q8 = QuantizedModel::quantize(&model, &calib, QuantScheme::Int8).expect("dense mlp");
    let shape = format!("b{batch}-{widths:?}");
    let probe = time_ns(1, || {
        std::hint::black_box(model.forward(&x));
    });
    let reps = if quick { 1 } else { reps_for(probe, 15.0) };
    let rounds = if quick { 1 } else { 11 };
    // Interleave the three variants round-robin and keep each one's best
    // round: host interference spans whole measurement blocks, so
    // back-to-back per-variant blocks can hand one variant a quiet
    // machine and another a noisy one — round-robin sampling gives every
    // variant a shot at each quiet window.
    let mut f32_ns = f64::INFINITY;
    let mut unfused_ns = f64::INFINITY;
    let mut fused_ns = f64::INFINITY;
    for _ in 0..rounds {
        f32_ns = f32_ns.min(time_ns(reps, || {
            std::hint::black_box(model.forward(&x));
        }));
        unfused_ns = unfused_ns.min(time_ns(reps, || {
            std::hint::black_box(q8.forward(&x));
        }));
        fused_ns = fused_ns.min(time_ns(reps, || {
            std::hint::black_box(q8.forward_fused(&x));
        }));
    }
    let f32_id = "qmodel_fused_f32".to_string();
    for (id, ns, scored) in [
        (f32_id.clone(), f32_ns, false),
        ("qmodel_fused_int8_unfused".to_string(), unfused_ns, true),
        ("qmodel_fused_int8_fused".to_string(), fused_ns, true),
    ] {
        entries.push(Entry {
            id,
            group: "qmodel_fused",
            shape: shape.clone(),
            reps,
            ns_per_op: ns,
            gflops: None,
            baseline_id: scored.then(|| f32_id.clone()),
            speedup_vs_baseline: scored.then(|| f32_ns / ns),
        });
    }
}

/// Brownout ladder depth: the E20d flash crowd replayed over three
/// configurations — pure shedding, the PR-7 ladder whose deepest level is
/// int2, and a ladder extended one level onto the activation-binarization-
/// aware int1 (XNOR) record ([`synthetic_family_xnor`]). The fastest
/// kernel in the tree only carries traffic if it is registered *and* the
/// ladder is allowed to reach it; the tracked datapoint is served
/// requests, with the xnor entry scored against the int2 ladder.
fn bench_xnor_serving(quick: bool, entries: &mut Vec<Entry>) {
    use tinymlops_device::{default_mix, Fleet};
    use tinymlops_registry::ModelFormat;
    use tinymlops_serve::{degrade_records, BrownoutConfig, FaultPlan, GatewayConfig};

    let duration_us = if quick { 500_000 } else { 2_000_000 };
    let burst_rps = if quick { 30_000.0 } else { 48_000.0 };
    let tenants = 8u32;
    let mk_plan = |rps: f64, dur: u64, seed: u64| LoadPlan {
        tenants: (0..tenants)
            .map(|i| TenantSpec {
                id: i + 1,
                rate_rps: rps / f64::from(tenants),
                model: if i % 2 == 0 { "kws" } else { "vision" }.into(),
                prepaid_queries: u64::MAX / 2,
                deadline_us: 40_000,
            })
            .collect(),
        duration_us: dur,
        seed,
        feature_dim: 0,
    };
    let base_plan = mk_plan(3_000.0, duration_us, SEED);
    let burst_plan = mk_plan(burst_rps, duration_us / 4, SEED + 1);
    let mut flash: Vec<_> = base_plan.generate();
    let offset = duration_us * 3 / 8;
    flash.extend(burst_plan.generate().into_iter().map(|mut r| {
        r.arrival_us += offset;
        r
    }));
    flash.sort_by_key(|r| r.arrival_us);
    for (i, r) in flash.iter_mut().enumerate() {
        r.id = i as u64;
    }

    // max_level 2 walks f32 → int8 → int2 on the 3-record catalog;
    // max_level 3 on the 4-record catalog ends on the int1 XNOR record.
    let run = |max_level: usize, xnor: bool| {
        let cfg = FabricConfig {
            node_weights: vec![1.0; 3],
            serve: ServeConfig {
                gateway: GatewayConfig {
                    max_pending_per_tenant: 24,
                    max_total_pending: 64,
                },
                ..Default::default()
            },
            fault: FaultPlan {
                enabled: true,
                events: vec![],
                brownout: if max_level == 0 {
                    BrownoutConfig::default()
                } else {
                    BrownoutConfig {
                        max_level,
                        ..BrownoutConfig::enabled()
                    }
                },
            },
            ..Default::default()
        };
        let fleets =
            Fleet::generate(if quick { 30 } else { 60 }, &default_mix(), SEED).partition(3);
        let mut fabric = ServeFabric::new(&cfg, fleets);
        let fam = if xnor {
            synthetic_family_xnor
        } else {
            synthetic_family
        };
        fabric.install_family("kws", fam("kws", 0));
        fabric.install_family("vision", fam("vision", 100));
        fabric.provision(&base_plan);
        let start = Instant::now();
        let report = fabric.run(&flash).expect("flash run");
        (report, start.elapsed().as_secs_f64())
    };
    // All three runs share the 4-record catalog, so the only variable is
    // ladder depth: max_level 2 bottoms out on int2, 3 reaches the int1
    // XNOR record.
    let (shed_only, shed_wall) = run(0, true);
    let (int2, int2_wall) = run(2, true);
    let (xnor, xnor_wall) = run(3, true);
    println!(
        "xnor serving: flash crowd {} requests; served shed-only {} / ladder-int2 {} / ladder-xnor {}",
        flash.len(),
        shed_only.fleet.served,
        int2.fleet.served,
        xnor.fleet.served,
    );
    // Both ladder depths must rescue throughput over pure shedding. They
    // are not ordered against each other: deeper degradation drains
    // queues faster, so gateway pressure recovers below the low
    // watermark sooner and the node steps back up to expensive variants
    // earlier — the two ladders land within feedback noise of each other
    // (the served ratio is still recorded as the xnor entry's speedup).
    assert!(
        int2.fleet.served > shed_only.fleet.served,
        "the int2 ladder must out-serve pure shedding ({} vs {})",
        int2.fleet.served,
        shed_only.fleet.served
    );
    assert!(
        xnor.fleet.served > shed_only.fleet.served,
        "the XNOR ladder must out-serve pure shedding ({} vs {})",
        xnor.fleet.served,
        shed_only.fleet.served
    );
    // And level 3 must actually bottom out on the XNOR record: the
    // 4-record catalog degraded three steps leaves exactly the int1.
    let deepest = degrade_records(&synthetic_family_xnor("kws", 0), 3);
    assert!(
        deepest.len() == 1 && matches!(deepest[0].format, ModelFormat::Quantized { bits: 1 }),
        "ladder level 3 must serve the int1 XNOR record, got {:?}",
        deepest.iter().map(|r| r.format.clone()).collect::<Vec<_>>()
    );
    let reqs = flash.len() as f64;
    for (id, report, wall, baseline) in [
        ("xnor_serving_shed_only", &shed_only, shed_wall, None),
        (
            "xnor_serving_ladder_int2",
            &int2,
            int2_wall,
            Some(("xnor_serving_shed_only", shed_only.fleet.served)),
        ),
        (
            "xnor_serving_ladder_xnor",
            &xnor,
            xnor_wall,
            Some(("xnor_serving_ladder_int2", int2.fleet.served)),
        ),
    ] {
        entries.push(Entry {
            id: id.into(),
            group: "xnor_serving",
            shape: format!("{}req-flash-served{}", flash.len(), report.fleet.served),
            reps: 1,
            ns_per_op: wall * 1e9 / reqs,
            gflops: None,
            baseline_id: baseline.map(|(b, _)| b.to_string()),
            speedup_vs_baseline: baseline
                .map(|(_, base)| report.fleet.served as f64 / base.max(1) as f64),
        });
    }
}

fn bench_model_forward(quick: bool, entries: &mut Vec<Entry>) {
    let widths: &[usize] = if quick {
        &[64, 32, 10]
    } else {
        &[64, 128, 64, 10]
    };
    let batch = if quick { 8 } else { 64 };
    let mut rng = TensorRng::seed(SEED + 2);
    let model = mlp(widths, &mut rng);
    let x = rng.uniform(&[batch, widths[0]], -1.0, 1.0);
    let calib = rng.uniform(&[32, widths[0]], -1.0, 1.0);
    let q8 = QuantizedModel::quantize(&model, &calib, QuantScheme::Int8).expect("dense mlp");
    let shape = format!("b{batch}-{widths:?}");
    let reps = if quick { 1 } else { 400 };
    for (tag, f) in [
        (
            "f32",
            Box::new(|| std::hint::black_box(model.forward(&x))) as Box<dyn Fn() -> Tensor>,
        ),
        ("int8", Box::new(|| std::hint::black_box(q8.forward(&x)))),
    ] {
        let mut g = f;
        let ns = time_ns(reps, || {
            std::hint::black_box(&mut g)();
        });
        entries.push(Entry {
            id: format!("model_forward_{tag}"),
            group: "model_forward",
            shape: shape.clone(),
            reps,
            ns_per_op: ns,
            gflops: None,
            baseline_id: None,
            speedup_vs_baseline: None,
        });
    }
}

fn bench_serving_replay(quick: bool, entries: &mut Vec<Entry>) {
    use tinymlops_device::{default_mix, Fleet};

    let cfg = ServeConfig::default();
    let fleet = Fleet::generate(if quick { 8 } else { 40 }, &default_mix(), SEED);
    let mut plane = ServePlane::new(&cfg, fleet);
    plane.install_family("kws", synthetic_family("kws", 0));
    plane.install_family("vision", synthetic_family("vision", 100));
    let rps = if quick { 2_000.0 } else { 25_000.0 };
    let duration_us = if quick { 500_000 } else { 4_000_000 };
    let plan = LoadPlan {
        tenants: vec![
            TenantSpec {
                id: 1,
                rate_rps: rps * 0.6,
                model: "kws".into(),
                prepaid_queries: u64::MAX / 2,
                deadline_us: 200_000,
            },
            TenantSpec {
                id: 2,
                rate_rps: rps * 0.4,
                model: "vision".into(),
                prepaid_queries: u64::MAX / 2,
                deadline_us: 200_000,
            },
        ],
        duration_us,
        seed: SEED,
        feature_dim: 0,
    };
    let sim = ServeSim::new(cfg, None);
    sim.provision(&mut plane, &plan);
    let stream = plan.generate();
    let start = Instant::now();
    let report = sim.run(&mut plane, &stream).expect("families installed");
    let wall_s = start.elapsed().as_secs_f64();
    let reqs = stream.len() as f64;
    println!(
        "serving replay: {} requests in {:.1} ms wall ({:.0} req/s; served {}, shed rate {:.2})",
        stream.len(),
        wall_s * 1e3,
        reqs / wall_s,
        report.served,
        report.shed_rate
    );
    entries.push(Entry {
        id: "serve_replay_e15".into(),
        group: "serving",
        shape: format!("{}req-2tenant", stream.len()),
        reps: 1,
        ns_per_op: wall_s * 1e9 / reqs,
        gflops: None,
        baseline_id: None,
        speedup_vs_baseline: None,
    });
}

/// Sharded serving replay: the same two-family catalog replayed through a
/// 3-node `ServeFabric` twice at one cache byte budget — least-loaded
/// device routing vs the affinity score that weighs ModelCache residency
/// against queue depth. The tracked datapoint is the fleet hit rate (the
/// E15c LRU cliff is the bottleneck this targets); `speedup_vs_baseline`
/// is the hit-rate ratio affinity/least-loaded.
fn bench_serving_sharded(quick: bool, entries: &mut Vec<Entry>) {
    use tinymlops_device::{default_mix, Fleet};

    let families = 6u64;
    let budget = 12 * 1024u64;
    let rps = if quick { 4_000.0 } else { 25_000.0 };
    let duration_us = if quick { 500_000 } else { 3_000_000 };
    let plan = LoadPlan {
        tenants: (0..12u32)
            .map(|i| TenantSpec {
                id: i + 1,
                rate_rps: rps / 12.0,
                model: format!("family{}", u64::from(i) % families),
                prepaid_queries: u64::MAX / 2,
                deadline_us: 250_000,
            })
            .collect(),
        duration_us,
        seed: SEED,
        feature_dim: 0,
    };
    let stream = plan.generate();

    let mut hit_rates = [0.0f64; 2];
    let mut wall = [0.0f64; 2];
    for (i, affinity_routing) in [false, true].into_iter().enumerate() {
        let cfg = FabricConfig {
            node_weights: vec![1.0; 3],
            tenant_affinity: 0.0,
            load_factor: f64::INFINITY,
            serve: ServeConfig {
                cache_budget_bytes: budget,
                affinity_routing,
                ..Default::default()
            },
            ..Default::default()
        };
        let fleets =
            Fleet::generate(if quick { 12 } else { 24 }, &default_mix(), SEED).partition(3);
        let mut fabric = ServeFabric::new(&cfg, fleets);
        for f in 0..families {
            fabric.install_family(
                &format!("family{f}"),
                synthetic_family(&format!("family{f}"), f * 100),
            );
        }
        fabric.provision(&plan);
        let start = Instant::now();
        let report = fabric.run(&stream).expect("families installed");
        wall[i] = start.elapsed().as_secs_f64();
        hit_rates[i] = report.fleet.cache_hit_rate;
        assert!(
            report.refunds_balance(),
            "refunds must exactly match downstream sheds"
        );
    }
    println!(
        "sharded replay: {} requests x2 over 3 nodes; hit rate least-loaded {:.1}% vs affinity {:.1}%",
        stream.len(),
        hit_rates[0] * 100.0,
        hit_rates[1] * 100.0,
    );
    for (i, tag) in ["leastload", "affinity"].into_iter().enumerate() {
        entries.push(Entry {
            id: format!("serve_fabric_{tag}"),
            group: "serving_sharded",
            shape: format!(
                "{}req-3node-12KiB-hit{:.1}%",
                stream.len(),
                hit_rates[i] * 100.0
            ),
            reps: 1,
            ns_per_op: wall[i] * 1e9 / stream.len() as f64,
            gflops: None,
            baseline_id: (i == 1).then(|| "serve_fabric_leastload".to_string()),
            speedup_vs_baseline: (i == 1).then(|| hit_rates[1] / hit_rates[0].max(1e-9)),
        });
    }
}

/// Persistent-pool vs spawn-per-region dispatch, on the real packed GEMM.
/// The pool is pinned to ≥2 threads for this process (see `main`), so
/// even a 1-core CI host measures the dispatch mechanisms rather than two
/// identical inline paths: `spawn` pays OS-thread creation per parallel
/// region (per GEMM call × per K-block), `pool` reuses sleeping workers.
/// `sequential` is the inline reference the other two are scored against.
fn bench_pool_dispatch(quick: bool, entries: &mut Vec<Entry>) {
    let (m, k, n) = if quick { (64, 64, 64) } else { (256, 256, 256) };
    let mut rng = TensorRng::seed(SEED + 4);
    let a = rng.uniform(&[m, k], -1.0, 1.0);
    let b = rng.uniform(&[k, n], -1.0, 1.0);
    let mut c = vec![0.0f32; m * n];
    let flops = 2.0 * (m * k * n) as f64;
    let shape = format!("{m}x{k}x{n}@{}t", effective_threads());
    let probe = time_ns(1, || {
        c.fill(0.0);
        gemm_packed(a.data(), b.data(), &mut c, m, k, n);
    });
    let reps = if quick { 1 } else { reps_for(probe, 60.0) };
    let rounds = if quick { 1 } else { 5 };
    let modes = [
        ("sequential", Dispatch::Sequential),
        ("spawn", Dispatch::Spawn),
        ("pool", Dispatch::Pool),
    ];
    let mut ns_of = [0.0f64; 3];
    for (i, (tag, mode)) in modes.into_iter().enumerate() {
        let ns = time_ns_best(rounds, reps, || {
            with_dispatch(mode, || {
                c.fill(0.0);
                gemm_packed(a.data(), b.data(), &mut c, m, k, n);
            });
        });
        ns_of[i] = ns;
        // pool is scored against spawn (the dispatch this PR replaced);
        // spawn against the inline reference.
        let baseline = match tag {
            "pool" => Some(("spawn", ns_of[1])),
            "spawn" => Some(("sequential", ns_of[0])),
            _ => None,
        };
        entries.push(Entry {
            id: format!("gemm_dispatch_{tag}"),
            group: "pool_dispatch",
            shape: shape.clone(),
            reps,
            ns_per_op: ns,
            gflops: Some(flops / ns),
            baseline_id: baseline.map(|(b, _)| format!("gemm_dispatch_{b}")),
            speedup_vs_baseline: baseline.map(|(_, base_ns)| base_ns / ns),
        });
    }
}

/// Wall-clock serving: the same fabric workload through the
/// single-threaded simulator and the threaded live backend
/// (`ExecMode::Replay` — reports are asserted bit-identical, so the only
/// thing this measures is the pipeline itself). The tracked datapoint is
/// wall ns per request; `speedup_vs_baseline` on the live entry is
/// sim_wall / live_wall (> 1 once node parallelism beats queue-handoff
/// overhead; expected ≲ 1 on a 1-core host).
fn bench_serving_live(quick: bool, entries: &mut Vec<Entry>) {
    use tinymlops_device::{default_mix, Fleet};

    let families = 6u64;
    let rps = if quick { 4_000.0 } else { 25_000.0 };
    let duration_us = if quick { 500_000 } else { 3_000_000 };
    let plan = LoadPlan {
        tenants: (0..12u32)
            .map(|i| TenantSpec {
                id: i + 1,
                rate_rps: rps / 12.0,
                model: format!("family{}", u64::from(i) % families),
                prepaid_queries: u64::MAX / 2,
                deadline_us: 250_000,
            })
            .collect(),
        duration_us,
        seed: SEED,
        feature_dim: 0,
    };
    let stream = plan.generate();
    let build = || {
        let cfg = FabricConfig {
            node_weights: vec![1.0; 3],
            tenant_affinity: 0.0,
            load_factor: f64::INFINITY,
            serve: ServeConfig::default(),
            ..Default::default()
        };
        let fleets =
            Fleet::generate(if quick { 12 } else { 24 }, &default_mix(), SEED).partition(3);
        let mut fabric = ServeFabric::new(&cfg, fleets);
        for f in 0..families {
            fabric.install_family(
                &format!("family{f}"),
                synthetic_family(&format!("family{f}"), f * 100),
            );
        }
        fabric.provision(&plan);
        fabric
    };

    let mut sim_fabric = build();
    let start = Instant::now();
    let sim_report = sim_fabric.run(&stream).expect("sim replay");
    let sim_wall_s = start.elapsed().as_secs_f64();

    let mut live_fabric = build();
    let live = live_fabric
        .run_live(&stream, &ExecConfig::default())
        .expect("live replay");
    assert_eq!(
        live.fabric, sim_report,
        "live backend must replay bit-identically"
    );
    let live_wall_s = live.wall_ms / 1e3;
    println!(
        "live serving: {} requests x2 over 3 node threads; sim {:.1} ms vs live {:.1} ms wall",
        stream.len(),
        sim_wall_s * 1e3,
        live.wall_ms,
    );
    for (tag, wall_s) in [("sim", sim_wall_s), ("live", live_wall_s)] {
        entries.push(Entry {
            id: format!("serve_exec_{tag}_replay"),
            group: "serving_live",
            shape: format!("{}req-3node-replay", stream.len()),
            reps: 1,
            ns_per_op: wall_s * 1e9 / stream.len() as f64,
            gflops: None,
            baseline_id: (tag == "live").then(|| "serve_exec_sim_replay".to_string()),
            speedup_vs_baseline: (tag == "live").then(|| sim_wall_s / live_wall_s),
        });
    }
}

/// Telemetry hot-path: string-keyed counter increments (BTreeMap lookup
/// per event — the only lane before this PR) vs pre-registered handle
/// increments (`counter_id` once, `incr_id` per event — what the serve
/// engine now uses). The datapoint is ns per increment; the handle lane
/// is scored against the string lane it replaced on the hot path.
fn bench_telemetry(quick: bool, entries: &mut Vec<Entry>) {
    let telemetry = Telemetry::new();
    // A realistic name population: the serve engine registers ~12
    // counters; lookups pay for the tree, not a single-entry map.
    for i in 0..12 {
        telemetry.incr(&format!("serve.warm.counter.{i}"));
    }
    let id = telemetry.counter_id("serve.bench.hot");
    let reps = if quick { 10_000 } else { 2_000_000 };
    let rounds = if quick { 1 } else { 5 };
    let str_ns = time_ns_best(rounds, 1, || {
        for _ in 0..reps {
            telemetry.incr(std::hint::black_box("serve.bench.hot"));
        }
    }) / reps as f64;
    let handle_ns = time_ns_best(rounds, 1, || {
        for _ in 0..reps {
            telemetry.incr_id(std::hint::black_box(id));
        }
    }) / reps as f64;
    println!(
        "telemetry incr: string {:.1} ns vs handle {:.1} ns ({:.1}x)",
        str_ns,
        handle_ns,
        str_ns / handle_ns
    );
    entries.push(Entry {
        id: "telemetry_incr_str".into(),
        group: "telemetry",
        shape: "12-counter-sink".into(),
        reps,
        ns_per_op: str_ns,
        gflops: None,
        baseline_id: None,
        speedup_vs_baseline: None,
    });
    entries.push(Entry {
        id: "telemetry_incr_handle".into(),
        group: "telemetry",
        shape: "12-counter-sink".into(),
        reps,
        ns_per_op: handle_ns,
        gflops: None,
        baseline_id: Some("telemetry_incr_str".to_string()),
        speedup_vs_baseline: Some(str_ns / handle_ns),
    });
}

/// Observability overhead on the serving replay: the same 3-node fabric
/// workload with the observer plane off (baseline) and on (flight
/// recorder + windows + drift bank armed on every node). The reports
/// must stay equal — the observer is passive — and the tracked
/// datapoint is wall ns per request; `speedup_vs_baseline` on the
/// traced entry is off_wall / traced_wall (≥ 0.95 is the acceptance
/// target: < 5% overhead).
fn bench_serving_traced(quick: bool, entries: &mut Vec<Entry>) {
    use tinymlops_device::{default_mix, Fleet};

    let families = 6u64;
    let rps = if quick { 4_000.0 } else { 25_000.0 };
    let duration_us = if quick { 500_000 } else { 1_000_000 };
    let plan = LoadPlan {
        tenants: (0..12u32)
            .map(|i| TenantSpec {
                id: i + 1,
                rate_rps: rps / 12.0,
                model: format!("family{}", u64::from(i) % families),
                prepaid_queries: u64::MAX / 2,
                deadline_us: 250_000,
            })
            .collect(),
        duration_us,
        seed: SEED,
        feature_dim: 0,
    };
    let stream = plan.generate();
    let build = |observe: ObserveConfig| {
        let cfg = FabricConfig {
            node_weights: vec![1.0; 3],
            tenant_affinity: 0.0,
            load_factor: f64::INFINITY,
            serve: ServeConfig::default(),
            observe,
            ..Default::default()
        };
        let fleets =
            Fleet::generate(if quick { 12 } else { 24 }, &default_mix(), SEED).partition(3);
        let mut fabric = ServeFabric::new(&cfg, fleets);
        for f in 0..families {
            fabric.install_family(
                &format!("family{f}"),
                synthetic_family(&format!("family{f}"), f * 100),
            );
        }
        fabric.provision(&plan);
        fabric
    };
    // The two sides differ by only a few percent — far less than one
    // preempted round's wall-clock jitter on a shared host. So the
    // primary measurement is *CPU time* (`/proc/self/schedstat`, on-CPU
    // ns of the replay thread) over interleaved rounds: other processes
    // stealing the core don't count against either side, while the
    // observer's own cache misses still do. Each round runs off and
    // traced back-to-back — alternating which goes first each round, so
    // ordering effects cancel — and slowly-drifting co-runner cache
    // pressure hits both sides of a pair about equally. The *median of
    // per-round paired differences* is therefore the overhead estimate
    // (robust to rounds where a noise episode lands on one side),
    // against the median off-side round as the baseline. A warmup round
    // is excluded, and wall-clock minima are the fallback where
    // schedstat is unavailable.
    let cpu_ns = || -> Option<u64> {
        let s = std::fs::read_to_string("/proc/self/schedstat").ok()?;
        s.split_whitespace().next()?.parse().ok()
    };
    let rounds = if quick { 1 } else { 48 };
    let mut diffs: Vec<i64> = Vec::new();
    let mut off_cpus: Vec<u64> = Vec::new();
    let mut walls = [f64::INFINITY; 2];
    let mut fleets_match = true;
    let mut warm = !quick;
    let run_side = |on: bool, walls: &mut [f64; 2]| {
        let mut fab = build(if on {
            ObserveConfig::enabled()
        } else {
            ObserveConfig::default()
        });
        let c0 = cpu_ns();
        let start = Instant::now();
        let report = fab.run(&stream).expect("replay");
        let side = usize::from(on);
        walls[side] = walls[side].min(start.elapsed().as_secs_f64());
        let cpu = match (c0, cpu_ns()) {
            (Some(a), Some(b)) => Some(b - a),
            _ => None,
        };
        (cpu, report.fleet)
    };
    for round in 0..rounds {
        let traced_first = round % 2 == 1;
        let first = run_side(traced_first, &mut walls);
        let second = run_side(!traced_first, &mut walls);
        fleets_match &= first.1 == second.1;
        let (off_cpu, on_cpu) = if traced_first {
            (second.0, first.0)
        } else {
            (first.0, second.0)
        };
        if let (Some(off), Some(on)) = (off_cpu, on_cpu) {
            if !warm {
                off_cpus.push(off);
                diffs.push(on as i64 - off as i64);
            }
        }
        warm = false;
    }
    assert!(fleets_match, "tracing must not perturb serving outcomes");
    // ns/request per side: off = median CPU round, traced = off + median
    // paired difference; wall minima where schedstat is unavailable.
    let per_req: Vec<f64> = if !off_cpus.is_empty() {
        diffs.sort_unstable();
        off_cpus.sort_unstable();
        let median_diff = diffs[diffs.len() / 2] as f64;
        let off = off_cpus[off_cpus.len() / 2] as f64;
        vec![
            off / stream.len() as f64,
            (off + median_diff).max(0.0) / stream.len() as f64,
        ]
    } else {
        walls
            .iter()
            .map(|w| w * 1e9 / stream.len() as f64)
            .collect()
    };
    println!(
        "traced replay: {} requests x{} over 3 nodes; off {:.0} ns/req vs traced {:.0} ns/req ({}, {:+.1}% overhead)",
        stream.len(),
        2 * rounds,
        per_req[0],
        per_req[1],
        if off_cpus.is_empty() {
            "wall time"
        } else {
            "cpu time"
        },
        (per_req[1] / per_req[0] - 1.0) * 100.0,
    );
    for (i, tag) in ["off", "traced"].into_iter().enumerate() {
        entries.push(Entry {
            id: format!("serve_replay_{tag}"),
            group: "serving_traced",
            shape: format!("{}req-3node-replay", stream.len()),
            reps: rounds,
            ns_per_op: per_req[i],
            gflops: None,
            baseline_id: (i == 1).then(|| "serve_replay_off".to_string()),
            speedup_vs_baseline: (i == 1).then(|| per_req[0] / per_req[1]),
        });
    }
}

/// Fault-plane overhead on the serving replay: the same 3-node fabric
/// workload with the fault plane disabled (baseline, `FaultPlan::
/// default()`) and armed-but-empty (`FaultPlan::armed()` — every
/// engine-side hook alive, nothing scheduled). Reports must stay equal —
/// an idle plane is byte-inert — and the datapoint is CPU ns per request
/// via the same paired-difference protocol as `bench_serving_traced`
/// (interleaved rounds, median of per-round differences, schedstat
/// on-CPU time, wall minima as fallback). Acceptance: ~0% overhead.
fn bench_serving_faults(quick: bool, entries: &mut Vec<Entry>) {
    use tinymlops_device::{default_mix, Fleet};
    use tinymlops_serve::FaultPlan;

    let families = 6u64;
    let rps = if quick { 4_000.0 } else { 25_000.0 };
    let duration_us = if quick { 500_000 } else { 1_000_000 };
    let plan = LoadPlan {
        tenants: (0..12u32)
            .map(|i| TenantSpec {
                id: i + 1,
                rate_rps: rps / 12.0,
                model: format!("family{}", u64::from(i) % families),
                prepaid_queries: u64::MAX / 2,
                deadline_us: 250_000,
            })
            .collect(),
        duration_us,
        seed: SEED,
        feature_dim: 0,
    };
    let stream = plan.generate();
    let build = |fault: FaultPlan| {
        let cfg = FabricConfig {
            node_weights: vec![1.0; 3],
            tenant_affinity: 0.0,
            load_factor: f64::INFINITY,
            serve: ServeConfig::default(),
            fault,
            ..Default::default()
        };
        let fleets =
            Fleet::generate(if quick { 12 } else { 24 }, &default_mix(), SEED).partition(3);
        let mut fabric = ServeFabric::new(&cfg, fleets);
        for f in 0..families {
            fabric.install_family(
                &format!("family{f}"),
                synthetic_family(&format!("family{f}"), f * 100),
            );
        }
        fabric.provision(&plan);
        fabric
    };
    let cpu_ns = || -> Option<u64> {
        let s = std::fs::read_to_string("/proc/self/schedstat").ok()?;
        s.split_whitespace().next()?.parse().ok()
    };
    let rounds = if quick { 1 } else { 48 };
    let mut diffs: Vec<i64> = Vec::new();
    let mut off_cpus: Vec<u64> = Vec::new();
    let mut walls = [f64::INFINITY; 2];
    let mut fleets_match = true;
    let mut warm = !quick;
    let run_side = |armed: bool, walls: &mut [f64; 2]| {
        let mut fab = build(if armed {
            FaultPlan::armed()
        } else {
            FaultPlan::default()
        });
        let c0 = cpu_ns();
        let start = Instant::now();
        let report = fab.run(&stream).expect("replay");
        let side = usize::from(armed);
        walls[side] = walls[side].min(start.elapsed().as_secs_f64());
        let cpu = match (c0, cpu_ns()) {
            (Some(a), Some(b)) => Some(b - a),
            _ => None,
        };
        (cpu, report.fleet)
    };
    for round in 0..rounds {
        let armed_first = round % 2 == 1;
        let first = run_side(armed_first, &mut walls);
        let second = run_side(!armed_first, &mut walls);
        fleets_match &= first.1 == second.1;
        let (off_cpu, on_cpu) = if armed_first {
            (second.0, first.0)
        } else {
            (first.0, second.0)
        };
        if let (Some(off), Some(on)) = (off_cpu, on_cpu) {
            if !warm {
                off_cpus.push(off);
                diffs.push(on as i64 - off as i64);
            }
        }
        warm = false;
    }
    assert!(
        fleets_match,
        "an idle fault plane must not perturb serving outcomes"
    );
    let per_req: Vec<f64> = if !off_cpus.is_empty() {
        diffs.sort_unstable();
        off_cpus.sort_unstable();
        let median_diff = diffs[diffs.len() / 2] as f64;
        let off = off_cpus[off_cpus.len() / 2] as f64;
        vec![
            off / stream.len() as f64,
            (off + median_diff).max(0.0) / stream.len() as f64,
        ]
    } else {
        walls
            .iter()
            .map(|w| w * 1e9 / stream.len() as f64)
            .collect()
    };
    println!(
        "fault-plane replay: {} requests x{} over 3 nodes; off {:.0} ns/req vs armed {:.0} ns/req ({}, {:+.1}% overhead)",
        stream.len(),
        2 * rounds,
        per_req[0],
        per_req[1],
        if off_cpus.is_empty() {
            "wall time"
        } else {
            "cpu time"
        },
        (per_req[1] / per_req[0] - 1.0) * 100.0,
    );
    for (i, tag) in ["fault_off", "fault_armed"].into_iter().enumerate() {
        entries.push(Entry {
            id: format!("serve_replay_{tag}"),
            group: "serving_faults",
            shape: format!("{}req-3node-replay", stream.len()),
            reps: rounds,
            ns_per_op: per_req[i],
            gflops: None,
            baseline_id: (i == 1).then(|| "serve_replay_fault_off".to_string()),
            speedup_vs_baseline: (i == 1).then(|| per_req[0] / per_req[1]),
        });
    }
}

/// Serving replay cost of the fleet controller: disabled
/// (`ControllerConfig::default()`) vs armed-but-untrippable (enabled,
/// ticking and sampling every interval, thresholds no sample can
/// reach, no standby). Reports must stay equal — an idle controller is
/// byte-inert — and the datapoint is CPU ns per request via the same
/// paired-difference protocol as `bench_serving_faults` (interleaved
/// rounds, median of per-round differences, schedstat on-CPU time,
/// wall minima as fallback). The armed side pays for real work — the
/// per-node control tap on every request plus a topology sample every
/// control interval — so acceptance is small, not zero.
fn bench_serving_controlled(quick: bool, entries: &mut Vec<Entry>) {
    use tinymlops_device::{default_mix, Fleet};
    use tinymlops_serve::ControllerConfig;

    let families = 6u64;
    let rps = if quick { 4_000.0 } else { 25_000.0 };
    let duration_us = if quick { 500_000 } else { 1_000_000 };
    let plan = LoadPlan {
        tenants: (0..12u32)
            .map(|i| TenantSpec {
                id: i + 1,
                rate_rps: rps / 12.0,
                model: format!("family{}", u64::from(i) % families),
                prepaid_queries: u64::MAX / 2,
                deadline_us: 250_000,
            })
            .collect(),
        duration_us,
        seed: SEED,
        feature_dim: 0,
    };
    let stream = plan.generate();
    let build = |controller: ControllerConfig| {
        let cfg = FabricConfig {
            node_weights: vec![1.0; 3],
            tenant_affinity: 0.0,
            load_factor: f64::INFINITY,
            serve: ServeConfig::default(),
            controller,
            ..Default::default()
        };
        let fleets =
            Fleet::generate(if quick { 12 } else { 24 }, &default_mix(), SEED).partition(3);
        let mut fabric = ServeFabric::new(&cfg, fleets);
        for f in 0..families {
            fabric.install_family(
                &format!("family{f}"),
                synthetic_family(&format!("family{f}"), f * 100),
            );
        }
        fabric.provision(&plan);
        fabric
    };
    let armed_idle = || ControllerConfig {
        enabled: true,
        high_pressure: f64::INFINITY,
        high_shed_rate: f64::INFINITY,
        low_pressure: -1.0,
        ..ControllerConfig::default()
    };
    let cpu_ns = || -> Option<u64> {
        let s = std::fs::read_to_string("/proc/self/schedstat").ok()?;
        s.split_whitespace().next()?.parse().ok()
    };
    let rounds = if quick { 1 } else { 48 };
    let mut diffs: Vec<i64> = Vec::new();
    let mut off_cpus: Vec<u64> = Vec::new();
    let mut walls = [f64::INFINITY; 2];
    let mut fleets_match = true;
    let mut warm = !quick;
    let run_side = |armed: bool, walls: &mut [f64; 2]| {
        let mut fab = build(if armed {
            armed_idle()
        } else {
            ControllerConfig::default()
        });
        let c0 = cpu_ns();
        let start = Instant::now();
        let report = fab.run(&stream).expect("replay");
        let side = usize::from(armed);
        walls[side] = walls[side].min(start.elapsed().as_secs_f64());
        let cpu = match (c0, cpu_ns()) {
            (Some(a), Some(b)) => Some(b - a),
            _ => None,
        };
        (cpu, report.fleet)
    };
    for round in 0..rounds {
        let armed_first = round % 2 == 1;
        let first = run_side(armed_first, &mut walls);
        let second = run_side(!armed_first, &mut walls);
        fleets_match &= first.1 == second.1;
        let (off_cpu, on_cpu) = if armed_first {
            (second.0, first.0)
        } else {
            (first.0, second.0)
        };
        if let (Some(off), Some(on)) = (off_cpu, on_cpu) {
            if !warm {
                off_cpus.push(off);
                diffs.push(on as i64 - off as i64);
            }
        }
        warm = false;
    }
    assert!(
        fleets_match,
        "an idle controller must not perturb serving outcomes"
    );
    let per_req: Vec<f64> = if !off_cpus.is_empty() {
        diffs.sort_unstable();
        off_cpus.sort_unstable();
        let median_diff = diffs[diffs.len() / 2] as f64;
        let off = off_cpus[off_cpus.len() / 2] as f64;
        vec![
            off / stream.len() as f64,
            (off + median_diff).max(0.0) / stream.len() as f64,
        ]
    } else {
        walls
            .iter()
            .map(|w| w * 1e9 / stream.len() as f64)
            .collect()
    };
    println!(
        "controller replay: {} requests x{} over 3 nodes; off {:.0} ns/req vs armed {:.0} ns/req ({}, {:+.1}% overhead)",
        stream.len(),
        2 * rounds,
        per_req[0],
        per_req[1],
        if off_cpus.is_empty() {
            "wall time"
        } else {
            "cpu time"
        },
        (per_req[1] / per_req[0] - 1.0) * 100.0,
    );
    for (i, tag) in ["controller_off", "controller_armed"]
        .into_iter()
        .enumerate()
    {
        entries.push(Entry {
            id: format!("serve_replay_{tag}"),
            group: "serving_controlled",
            shape: format!("{}req-3node-replay", stream.len()),
            reps: rounds,
            ns_per_op: per_req[i],
            gflops: None,
            baseline_id: (i == 1).then(|| "serve_replay_controller_off".to_string()),
            speedup_vs_baseline: (i == 1).then(|| per_req[0] / per_req[1]),
        });
    }
}

/// Ingest-queue handoff: the retired mutex/condvar queue vs the
/// lock-free Vyukov ring that replaced it (PR 10), measured as a paired
/// producer→consumer handoff — one producer thread pushes `items`
/// payloads through a bounded queue while the calling thread pops them
/// all. The datapoint is ns per handoff; the lock-free entry's
/// `speedup_vs_baseline` is mutex/lock-free (≥ 1 means the replacement
/// is no slower — the acceptance gate for the swap).
fn bench_ingest_queue(quick: bool, entries: &mut Vec<Entry>) {
    use tinymlops_serve::{IngestQueue, MutexIngestQueue};

    let items: u64 = if quick { 20_000 } else { 200_000 };
    let capacity = 256;
    let rounds = if quick { 2 } else { 5 };

    fn handoff_ns<Q: Sync>(
        items: u64,
        rounds: usize,
        queue: &Q,
        push: impl Fn(&Q, u64) -> bool + Sync,
        pop: impl Fn(&Q) -> Option<u64>,
    ) -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..rounds {
            let start = Instant::now();
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    for i in 0..items {
                        assert!(push(queue, i), "queue closed mid-bench");
                    }
                });
                let mut next = 0u64;
                while next < items {
                    let got = pop(queue).expect("producer still pushing");
                    assert_eq!(got, next, "FIFO broken");
                    next += 1;
                }
            });
            best = best.min(start.elapsed().as_secs_f64() * 1e9 / items as f64);
        }
        best
    }

    let mutex_q = MutexIngestQueue::<u64>::new(capacity);
    let mutex_ns = handoff_ns(items, rounds, &mutex_q, |q, i| q.push(i), |q| q.pop());
    let lockfree_q = IngestQueue::<u64>::new(capacity);
    let lockfree_ns = handoff_ns(items, rounds, &lockfree_q, |q, i| q.push(i), |q| q.pop());
    println!(
        "ingest queue handoff: mutex {mutex_ns:.0} ns/op vs lock-free {lockfree_ns:.0} ns/op \
         ({items} items, cap {capacity})"
    );
    for (tag, ns) in [("mutex", mutex_ns), ("lockfree", lockfree_ns)] {
        entries.push(Entry {
            id: format!("ingest_queue_handoff_{tag}"),
            group: "ingest_queue",
            shape: format!("{items}x1prod-cap{capacity}"),
            reps: rounds,
            ns_per_op: ns,
            gflops: None,
            baseline_id: (tag == "lockfree").then(|| "ingest_queue_handoff_mutex".to_string()),
            speedup_vs_baseline: (tag == "lockfree").then(|| mutex_ns / lockfree_ns),
        });
    }
}

/// Closed-loop serving driver vs open-loop replay of its own trace: the
/// closed loop materializes every delivery it makes, and replaying that
/// trace open loop through an identically provisioned fabric reproduces
/// the fleet report bit-for-bit. The paired timing therefore isolates
/// the *driver* overhead (completion tap, client bookkeeping, retry
/// scheduling) from the serving work, which is identical on both sides.
fn bench_serving_closed_loop(quick: bool, entries: &mut Vec<Entry>) {
    use tinymlops_device::{default_mix, Fleet};
    use tinymlops_serve::{ClientPlan, ClientSpec, RetryPolicy};

    let tenants = 8u32;
    let clients = if quick { 24 } else { 60 };
    let duration_us = if quick { 400_000 } else { 2_000_000 };
    let provision_plan = LoadPlan {
        tenants: (0..tenants)
            .map(|i| TenantSpec {
                id: i + 1,
                rate_rps: 1.0,
                model: if i % 2 == 0 { "kws" } else { "vision" }.into(),
                prepaid_queries: u64::MAX / 2,
                deadline_us: 50_000,
            })
            .collect(),
        duration_us,
        seed: SEED,
        feature_dim: 0,
    };
    let build = || {
        let cfg = FabricConfig {
            node_weights: vec![1.0; 3],
            ..Default::default()
        };
        let fleets =
            Fleet::generate(if quick { 12 } else { 24 }, &default_mix(), SEED).partition(3);
        let mut fabric = ServeFabric::new(&cfg, fleets);
        fabric.install_family("kws", synthetic_family("kws", 0));
        fabric.install_family("vision", synthetic_family("vision", 100));
        fabric.provision(&provision_plan);
        fabric
    };
    let plan = ClientPlan {
        clients: (0..clients)
            .map(|c| ClientSpec {
                tenant: (c % tenants) + 1,
                model: if c % 2 == 0 { "kws" } else { "vision" }.into(),
                think_mean_us: 10_000.0,
                deadline_us: 50_000,
            })
            .collect(),
        duration_us,
        seed: SEED,
        feature_dim: 0,
        retry: RetryPolicy::default(),
    };

    let mut closed_fabric = build();
    let start = Instant::now();
    let closed = closed_fabric.run_closed_loop(&plan).expect("closed loop");
    let closed_wall_s = start.elapsed().as_secs_f64();
    let pushes = closed.clients.pushes().max(1) as f64;

    let mut open_fabric = build();
    let start = Instant::now();
    let open_report = open_fabric.run(&closed.trace).expect("trace replay");
    let open_wall_s = start.elapsed().as_secs_f64();
    assert_eq!(
        open_report, closed.fabric,
        "open-loop replay of the closed-loop trace must be bit-identical"
    );
    println!(
        "closed-loop serving: {} pushes from {clients} clients; closed {:.1} ms vs \
         open trace replay {:.1} ms wall",
        closed.clients.pushes(),
        closed_wall_s * 1e3,
        open_wall_s * 1e3,
    );
    for (tag, wall_s) in [("open_trace", open_wall_s), ("closed", closed_wall_s)] {
        entries.push(Entry {
            id: format!("serve_closed_loop_{tag}"),
            group: "serving_closed_loop",
            shape: format!("{}req-{clients}cl-3node", closed.clients.pushes()),
            reps: 1,
            ns_per_op: wall_s * 1e9 / pushes,
            gflops: None,
            baseline_id: (tag == "closed").then(|| "serve_closed_loop_open_trace".to_string()),
            speedup_vs_baseline: (tag == "closed").then(|| open_wall_s / closed_wall_s),
        });
    }
}

/// Append this run to `results/BENCH_kernels.json` (creating the file on
/// first run), then read it back and parse it as a self-check.
fn save_and_verify(mode: &str, entries: &[Entry]) {
    let entry_values: Vec<serde_json::Value> = entries
        .iter()
        .map(|e| {
            serde_json::json!({
                "id": e.id.clone(),
                "group": e.group,
                "shape": e.shape.clone(),
                "reps": e.reps as u64,
                "ns_per_op": e.ns_per_op,
                "gflops": e.gflops.map_or(serde_json::Value::Null, |g| serde_json::json!(g)),
                "baseline_id": e.baseline_id.clone()
                    .map_or(serde_json::Value::Null, |b| serde_json::json!(b)),
                "speedup_vs_baseline": e.speedup_vs_baseline
                    .map_or(serde_json::Value::Null, |s| serde_json::json!(s)),
            })
        })
        .collect();
    let unix_s = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let run = serde_json::json!({
        "mode": mode,
        "unix_time_s": unix_s,
        "pool_threads": effective_threads() as u64,
        "entries": entry_values,
    });

    // Append to the existing trajectory when the file parses; start a
    // fresh one otherwise (first run, or a corrupt artifact).
    let mut runs: Vec<serde_json::Value> = std::fs::read(RESULTS_PATH)
        .ok()
        .and_then(|bytes| serde_json::from_slice::<serde_json::Value>(&bytes).ok())
        .and_then(|v| v.as_object().and_then(|o| o.get("runs").cloned()))
        .and_then(|r| r.as_array().cloned())
        .unwrap_or_default();
    runs.push(run);
    let payload = serde_json::json!({
        "bench": "b01_kernels",
        "schema_version": 1u64,
        "runs": runs,
    });
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write(
        RESULTS_PATH,
        serde_json::to_vec_pretty(&payload).expect("encode"),
    )
    .expect("write results");

    // Self-check: the artifact on disk must parse and contain this run.
    let bytes = std::fs::read(RESULTS_PATH).expect("re-read results");
    let parsed: serde_json::Value =
        serde_json::from_slice(&bytes).expect("BENCH_kernels.json must parse");
    let n = parsed
        .as_object()
        .and_then(|o| o.get("runs"))
        .and_then(|r| r.as_array().map(Vec::len))
        .expect("runs array");
    assert!(n >= 1, "no runs recorded");
    println!("[saved {RESULTS_PATH}: {n} run(s)]");
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mode = if quick { "quick" } else { "full" };
    // Pin the pool to ≥2 threads before first use so the pool-vs-spawn
    // dispatch comparison measures real cross-thread dispatch even on a
    // 1-core host (where the default pool would run inline on both
    // sides). Recorded as `pool_threads` in the run artifact.
    let _ = configure_threads(effective_threads().max(2));
    println!(
        "b01_kernels ({mode} mode, {} pool threads)",
        effective_threads()
    );

    let mut entries = Vec::new();
    // The historical kernel groups run inline (`Dispatch::Sequential`) —
    // identical execution to every pre-pool run on 1-core hosts, so the
    // per-id trajectories in BENCH_kernels.json stay comparable. The
    // threading backends are measured explicitly by `pool_dispatch` and
    // `serving_live` below.
    with_dispatch(Dispatch::Sequential, || {
        bench_gemm_f32(quick, &mut entries);
        bench_gemm_nt(quick, &mut entries);
        bench_qdense(quick, &mut entries);
        bench_dot_maddwd(quick, &mut entries);
        bench_model_forward(quick, &mut entries);
        bench_qmodel_fused(quick, &mut entries);
        bench_serving_replay(quick, &mut entries);
        bench_serving_sharded(quick, &mut entries);
        bench_telemetry(quick, &mut entries);
        bench_serving_traced(quick, &mut entries);
        bench_serving_faults(quick, &mut entries);
        bench_serving_controlled(quick, &mut entries);
        bench_xnor_serving(quick, &mut entries);
        bench_serving_closed_loop(quick, &mut entries);
    });
    bench_pool_dispatch(quick, &mut entries);
    bench_serving_live(quick, &mut entries);
    bench_ingest_queue(quick, &mut entries);

    let rows: Vec<Vec<String>> = entries
        .iter()
        .map(|e| {
            vec![
                e.id.clone(),
                e.shape.clone(),
                format!("{}", e.reps),
                fmt(e.ns_per_op, 0),
                e.gflops.map_or("-".into(), |g| fmt(g, 2)),
                e.speedup_vs_baseline
                    .map_or("-".into(), |s| format!("{}x", fmt(s, 2))),
            ]
        })
        .collect();
    print_table(
        "B01 kernel & serving benchmarks",
        &["id", "shape", "reps", "ns/op", "GFLOP/s", "speedup"],
        &rows,
    );

    save_and_verify(mode, &entries);

    // Acceptance gates (informational in quick mode: tiny shapes and 1 rep
    // are noise-dominated, so CI only checks that the harness runs).
    let speedup_of = |id: &str| {
        entries
            .iter()
            .find(|e| e.id == id)
            .and_then(|e| e.speedup_vs_baseline)
    };
    if !quick {
        let gemm = speedup_of("gemm_f32_256x256x256_packed").unwrap_or(0.0);
        let q8 = speedup_of("qdense_int8_b32x256->256_tuned").unwrap_or(0.0);
        let traced = speedup_of("serve_replay_traced").unwrap_or(0.0);
        println!(
            "acceptance: gemm 256^3 packed {gemm:.2}x (need >= 2), qdense int8 b32 {q8:.2}x (need >= 2), \
             traced replay {:.1}% overhead (need < 5%)",
            (1.0 / traced.max(1e-9) - 1.0) * 100.0
        );
        let maddwd = speedup_of("dot_i8_b8x256->256_maddwd").unwrap_or(0.0);
        let unfused = speedup_of("qmodel_fused_int8_unfused").unwrap_or(0.0);
        let fused = speedup_of("qmodel_fused_int8_fused").unwrap_or(0.0);
        let xnor = speedup_of("xnor_serving_ladder_xnor").unwrap_or(0.0);
        println!(
            "acceptance: maddwd b8 {maddwd:.2}x vs autovec (need > 1), fused int8 vs f32 b64 \
             {fused:.2}x (need > 1; unfused was {unfused:.2}x), xnor ladder served {xnor:.3}x \
             the int2 ladder (need >= 1)"
        );
    }
}
