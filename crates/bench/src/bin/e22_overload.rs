//! E22 — goodput under overload: the closed serving loop.
//!
//! Earlier experiments drove the fabric **open loop**: a pre-materialized
//! arrival stream hits the gateway no matter what the fleet does. Real
//! tenant populations are *closed* — every client waits for its last
//! response (or shed) before thinking and issuing again, and retries ride
//! a jittered exponential backoff. This experiment exercises the whole
//! response path PR 10 built: per-client completion channels out of the
//! node threads, the lock-free MPSC ingest queue under them, the shaped
//! load generator, and the closed-loop drivers. Sections:
//!
//! * (a) **replay parity on the lock-free queue** — a ≥100k-request
//!   open-loop workload through the threaded backend (whose ingest path
//!   is now the `shims/crossbeam` ArrayQueue ring) must produce counter
//!   totals bit-identical to the simulator. The mutex queue is gone;
//!   this is the gate that says the replacement kept the contract.
//! * (b) **the knee** — a deterministic load sweep through saturation.
//!   Per level: open-loop shed vs a *managed* fabric (brownout ladder +
//!   fleet controller over a standby pool) vs the closed-loop client
//!   population (think times + deadline-aware retry/backoff). Reported
//!   per level: p50/p99, goodput (served within the absolute deadline),
//!   shed %, retry amplification, unrefunded sheds. Past the knee the
//!   managed fabric must shed less than static open loop, goodput must
//!   not recover, and retry amplification must stay bounded by the
//!   policy's attempt cap.
//! * (c) **shaped arrivals** — the non-homogeneous generator (diurnal /
//!   bursts / flash crowd / adversarial quota-exhaust) against the
//!   managed fabric: same conservation laws, deterministic streams.
//! * (d) **wall-clock closed loop** — real client shard threads against
//!   real node threads over the lock-free queues, `ExecMode::Wall`;
//!   client-side conservation (issued = served + shed + lost) and wall
//!   throughput.
//!
//! `--quick` shrinks everything to CI-smoke size (same JSON schema).

use tinymlops_bench::{fmt, print_table, save_json, synthetic_family};
use tinymlops_device::{ClassMix, DeviceClass, Fleet};
use tinymlops_serve::testkit::{assert_conservation, assert_sim_live_parity};
use tinymlops_serve::{
    ArrivalPattern, ClientPlan, ClientSpec, ControllerConfig, FabricConfig, FaultPlan,
    GatewayConfig, LoadPlan, RetryPolicy, ServeConfig, ServeFabric, TenantSpec,
};

const SEED: u64 = 22;
const TENANTS: u32 = 8;
const PREPAID: u64 = 10_000_000;
/// Client think time between resolution and next fresh issue.
const THINK_US: f64 = 10_000.0;
/// Per-request latency SLO.
const DEADLINE_US: u64 = 50_000;

/// Homogeneous devices: node weight 1.0 is truthful, so the sweep
/// measures load, not hardware skew.
fn uniform_mix() -> ClassMix {
    [
        (DeviceClass::McuM7, 1.0),
        (DeviceClass::McuM7, 0.0),
        (DeviceClass::McuM7, 0.0),
        (DeviceClass::McuM7, 0.0),
        (DeviceClass::McuM7, 0.0),
        (DeviceClass::McuM7, 0.0),
    ]
}

/// Both static and managed fabrics get the same hardware (active nodes
/// plus standby pool); "static" just leaves the spares dark and the
/// brownout ladder cold.
fn sweep_cfg(managed: bool) -> FabricConfig {
    FabricConfig {
        node_weights: vec![1.0; 3],
        serve: ServeConfig {
            gateway: GatewayConfig {
                max_pending_per_tenant: 64,
                max_total_pending: 64,
            },
            ..Default::default()
        },
        fault: FaultPlan {
            enabled: managed,
            events: Vec::new(),
            brownout: tinymlops_serve::BrownoutConfig {
                enabled: managed,
                ..Default::default()
            },
        },
        controller: ControllerConfig {
            enabled: managed,
            interval_us: 100_000,
            tenant_cooldown_us: 250_000,
            scale_cooldown_us: 300_000,
            standby_weights: vec![1.0, 1.0],
            ..ControllerConfig::enabled()
        },
        ..Default::default()
    }
}

fn fabric(cfg: &FabricConfig, fleet_size: usize) -> ServeFabric {
    let partitions = cfg.node_weights.len() + cfg.controller.standby_weights.len();
    let fleets = Fleet::generate(fleet_size, &uniform_mix(), SEED).partition(partitions);
    let mut f = ServeFabric::new(cfg, fleets);
    f.install_family("kws", synthetic_family("kws", 0));
    f.install_family("vision", synthetic_family("vision", 100));
    f
}

fn tenant_spec(i: u32, rate_rps: f64) -> TenantSpec {
    TenantSpec {
        id: i + 1,
        rate_rps,
        model: if i.is_multiple_of(2) { "kws" } else { "vision" }.into(),
        prepaid_queries: PREPAID,
        deadline_us: DEADLINE_US,
    }
}

fn plan(total_rps: f64, duration_us: u64) -> LoadPlan {
    LoadPlan {
        tenants: (0..TENANTS)
            .map(|i| tenant_spec(i, total_rps / f64::from(TENANTS)))
            .collect(),
        duration_us,
        seed: SEED,
        feature_dim: 0,
    }
}

/// A client population offering ≈ `total_rps` when unloaded: each
/// client re-issues every ~`THINK_US`, so population = rate × think.
fn client_plan(total_rps: f64, duration_us: u64) -> ClientPlan {
    let population = ((total_rps * THINK_US / 1e6).round() as usize).max(1);
    ClientPlan {
        clients: (0..population)
            .map(|c| {
                let t = (c as u32) % TENANTS;
                ClientSpec {
                    tenant: t + 1,
                    model: if t.is_multiple_of(2) { "kws" } else { "vision" }.into(),
                    think_mean_us: THINK_US,
                    deadline_us: DEADLINE_US,
                }
            })
            .collect(),
        duration_us,
        seed: SEED,
        feature_dim: 0,
        retry: RetryPolicy::default(),
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!(
        "E22: goodput under overload (closed loop, lock-free ingest, managed fabric){}",
        if quick { " [quick]" } else { "" }
    );

    // ---- E22a: open-loop replay parity on the lock-free queue --------
    let (parity_rps, parity_duration_us) = if quick {
        (3_000.0, 1_000_000)
    } else {
        (20_000.0, 6_000_000)
    };
    let parity_plan = plan(parity_rps, parity_duration_us);
    let parity_stream = parity_plan.generate();
    if !quick {
        assert!(
            parity_stream.len() >= 100_000,
            "parity must cover ≥100k requests, got {}",
            parity_stream.len()
        );
    }
    let static_cfg = sweep_cfg(false);
    let outcome = assert_sim_live_parity(
        || {
            let mut f = fabric(&static_cfg, if quick { 30 } else { 60 });
            f.provision(&parity_plan);
            f
        },
        &parity_stream,
        &[],
    );
    assert_eq!(outcome.report.unrefunded_sheds(), 0);
    let headers_a = [
        "requests",
        "served",
        "shed",
        "refunds",
        "unrefunded",
        "p99 ms",
        "identical",
    ];
    let rows_a = vec![vec![
        parity_stream.len().to_string(),
        outcome.report.fleet.served.to_string(),
        outcome.report.fleet.shed_total.to_string(),
        outcome.report.refunds.to_string(),
        outcome.report.unrefunded_sheds().to_string(),
        fmt(outcome.report.fleet.p99_ms, 2),
        "yes".into(), // assert_sim_live_parity already proved it
    ]];
    print_table(
        "E22a sim ≡ live replay parity (lock-free ingest queue)",
        &headers_a,
        &rows_a,
    );
    save_json("e22_overload_parity", &headers_a, &rows_a);

    // ---- E22b: the knee — load sweep through saturation --------------
    let sweep_duration_us = if quick { 1_000_000 } else { 3_000_000 };
    let fleet_size = if quick { 30 } else { 60 };
    let levels: &[f64] = if quick {
        &[1_000.0, 8_000.0, 16_000.0, 32_000.0, 64_000.0]
    } else {
        &[1_000.0, 4_000.0, 8_000.0, 16_000.0, 32_000.0, 64_000.0]
    };
    let managed_cfg = sweep_cfg(true);
    let mut rows_b = Vec::new();
    let mut goodputs = Vec::new();
    let mut open_sheds = Vec::new();
    let mut managed_sheds = Vec::new();
    for &rps in levels {
        let open_plan = plan(rps, sweep_duration_us);
        let stream = open_plan.generate();

        // Static open loop: the arrival stream does not care what the
        // fleet does.
        let mut open = fabric(&static_cfg, fleet_size);
        open.provision(&open_plan);
        let open_report = open.run(&stream).expect("open-loop run");
        let open_shed = open_report.fleet.shed_total as f64 / stream.len().max(1) as f64;

        // Managed open loop: same hardware, brownout ladder + controller
        // with a standby pool.
        let mut managed = fabric(&managed_cfg, fleet_size);
        managed.provision(&open_plan);
        let managed_report = managed.run(&stream).expect("managed run");
        let managed_shed = managed_report.fleet.shed_total as f64 / stream.len().max(1) as f64;
        assert_eq!(managed_report.unrefunded_sheds(), 0);

        // Closed loop: the population only offers what the fleet's
        // responses let it.
        let cplan = client_plan(rps, sweep_duration_us);
        let mut closed = fabric(&static_cfg, fleet_size);
        closed.provision(&LoadPlan {
            tenants: (0..TENANTS).map(|i| tenant_spec(i, 1.0)).collect(),
            duration_us: sweep_duration_us,
            seed: SEED,
            feature_dim: 0,
        });
        let closed_report = closed.run_closed_loop(&cplan).expect("closed-loop run");
        let clients = &closed_report.clients;
        assert_eq!(closed_report.fabric.unrefunded_sheds(), 0);
        assert!(
            clients.retry_amplification() <= 1.0 + f64::from(cplan.retry.max_attempts),
            "retry amplification must stay bounded by the attempt cap"
        );

        goodputs.push(clients.goodput_fraction());
        open_sheds.push(open_shed);
        managed_sheds.push(managed_shed);
        rows_b.push(vec![
            fmt(rps, 0),
            cplan.clients.len().to_string(),
            fmt(open_shed * 100.0, 2),
            fmt(managed_shed * 100.0, 2),
            fmt(clients.goodput_fraction() * 100.0, 2),
            fmt(clients.retry_amplification(), 3),
            fmt(clients.latency_us(50.0) as f64 / 1e3, 2),
            fmt(clients.latency_us(99.0) as f64 / 1e3, 2),
            closed_report.fabric.unrefunded_sheds().to_string(),
        ]);
    }
    // The knee: goodput must not recover once it starts falling.
    let knee = goodputs
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .map(|(i, _)| i)
        .unwrap_or(0);
    for w in goodputs[knee..].windows(2) {
        assert!(
            w[1] <= w[0] + 1e-9,
            "goodput must be monotone non-increasing past the knee: {goodputs:?}"
        );
    }
    // Past the knee the managed fabric must beat static open-loop shed.
    let top = levels.len() - 1;
    assert!(
        managed_sheds[top] < open_sheds[top],
        "brownout + controller must shed less than static at the top level \
         ({:.4} vs {:.4})",
        managed_sheds[top],
        open_sheds[top]
    );
    let headers_b = [
        "offered rps",
        "clients",
        "open shed %",
        "managed shed %",
        "goodput %",
        "retry amp",
        "p50 ms",
        "p99 ms",
        "unrefunded",
    ];
    print_table(
        "E22b load sweep through saturation (open vs managed vs closed loop)",
        &headers_b,
        &rows_b,
    );
    save_json("e22_overload_knee", &headers_b, &rows_b);

    // ---- E22c: shaped arrivals against the managed fabric ------------
    let shaped_rps = if quick { 1_500.0 } else { 3_000.0 };
    let shaped_duration_us = if quick { 1_000_000 } else { 2_000_000 };
    let shaped_plan = plan(shaped_rps, shaped_duration_us);
    let patterns: [(&str, ArrivalPattern); 4] = [
        (
            "diurnal",
            ArrivalPattern::Diurnal {
                period_us: shaped_duration_us,
                amplitude: 0.8,
            },
        ),
        (
            "bursts",
            ArrivalPattern::Bursts {
                period_us: shaped_duration_us / 5,
                width_us: shaped_duration_us / 50,
                height: 8.0,
            },
        ),
        (
            "flash-crowd",
            ArrivalPattern::FlashCrowd {
                at_us: shaped_duration_us / 2,
                ramp_us: shaped_duration_us / 20,
                hold_us: shaped_duration_us / 10,
                decay_us: shaped_duration_us / 20,
                peak: 6.0,
            },
        ),
        (
            "quota-exhaust",
            ArrivalPattern::QuotaExhaust { multiplier: 8.0 },
        ),
    ];
    let mut rows_c = Vec::new();
    for (name, pattern) in &patterns {
        let mut shaped_load = shaped_plan.clone();
        if *name == "quota-exhaust" {
            // The adversary burns a small prepaid balance, then keeps
            // hammering: every post-burn arrival is a quota denial.
            for t in &mut shaped_load.tenants {
                t.prepaid_queries = 200;
            }
        }
        let stream = shaped_load.generate_shaped(pattern);
        let mut f = fabric(&managed_cfg, fleet_size);
        f.provision(&shaped_load);
        let report = f.run(&stream).expect("shaped run");
        assert_conservation(
            &f,
            &report,
            stream.len() as u64,
            shaped_load
                .tenants
                .iter()
                .map(|t| t.prepaid_queries)
                .sum::<u64>(),
        );
        rows_c.push(vec![
            (*name).to_string(),
            stream.len().to_string(),
            report.fleet.served.to_string(),
            fmt(
                report.fleet.shed_total as f64 / stream.len().max(1) as f64 * 100.0,
                2,
            ),
            fmt(report.fleet.p99_ms, 2),
            report.unrefunded_sheds().to_string(),
        ]);
    }
    let headers_c = [
        "pattern",
        "arrivals",
        "served",
        "shed %",
        "p99 ms",
        "unrefunded",
    ];
    print_table(
        "E22c shaped arrivals (managed fabric, conservation checked)",
        &headers_c,
        &rows_c,
    );
    save_json("e22_overload_shaped", &headers_c, &rows_c);

    // ---- E22d: wall-clock closed loop ---------------------------------
    let wall_plan = client_plan(
        if quick { 1_000.0 } else { 2_000.0 },
        if quick { 250_000 } else { 500_000 },
    );
    let mut wall_fabric = fabric(&static_cfg, if quick { 30 } else { 60 });
    wall_fabric.provision(&LoadPlan {
        tenants: (0..TENANTS).map(|i| tenant_spec(i, 1.0)).collect(),
        duration_us: wall_plan.duration_us,
        seed: SEED,
        feature_dim: 0,
    });
    let wall = wall_fabric
        .run_closed_loop_wall(&wall_plan, 256)
        .expect("wall closed loop");
    let wc = &wall.clients;
    assert_eq!(
        wc.served + wc.shed_final + wc.lost,
        wc.issued,
        "client-side conservation: every first attempt resolves exactly once"
    );
    assert!(
        wall.fabric.refunds_balance(),
        "wall closed loop: refunds must match downstream sheds"
    );
    let wall_rps = wc.pushes() as f64 / (wall.wall_ms / 1e3);
    let headers_d = [
        "clients",
        "issued",
        "pushes",
        "served",
        "goodput %",
        "shed",
        "lost",
        "wall ms",
        "req/s (wall)",
    ];
    let rows_d = vec![vec![
        wall_plan.clients.len().to_string(),
        wc.issued.to_string(),
        wc.pushes().to_string(),
        wc.served.to_string(),
        fmt(wc.goodput_fraction() * 100.0, 2),
        wc.shed_final.to_string(),
        wc.lost.to_string(),
        fmt(wall.wall_ms, 0),
        fmt(wall_rps, 0),
    ]];
    print_table(
        "E22d wall-clock closed loop (client threads ↔ node threads)",
        &headers_d,
        &rows_d,
    );
    save_json("e22_overload_wall", &headers_d, &rows_d);

    println!(
        "\nE22 complete: lock-free replay bit-identical; goodput knee at level {} \
         ({} levels swept); managed fabric sheds less than static past the knee.",
        knee + 1,
        levels.len()
    );
}
