//! E7 — §III-D: "Several techniques have been developed to reduce the
//! communication overhead of the Federated Learning techniques. This is
//! especially useful when Federated Learning is used in wireless sensor
//! nodes as network communication is expensive in terms of energy."
//!
//! Bytes/round, radio energy and final accuracy per compression scheme.

use tinymlops_bench::{fmt, fmt_bytes, print_table, save_json};
use tinymlops_device::NetworkKind;
use tinymlops_fed::{partition_dirichlet, Compression, FlConfig, FlServer};
use tinymlops_nn::data::synth_digits;
use tinymlops_nn::model::mlp;
use tinymlops_tensor::TensorRng;

fn main() {
    let seed = 7u64;
    let rounds = 15;
    println!("E7: federated update compression ({rounds} rounds, seed {seed})");
    let data = synth_digits(1800, 0.08, seed);
    let (train, test) = data.split(0.85, 0);
    let parts = partition_dirichlet(&train, 10, 0.5, seed);
    let ble = NetworkKind::Ble.model();

    let mut rows = Vec::new();
    for compression in [
        Compression::None,
        Compression::TopK { frac: 0.10 },
        Compression::TopK { frac: 0.01 },
        Compression::Ternary,
        Compression::Sign,
    ] {
        let model = mlp(&[64, 24, 10], &mut TensorRng::seed(seed));
        let mut server = FlServer::new(
            model,
            parts.clone(),
            FlConfig {
                participation: 0.6,
                availability: 0.9,
                compression,
                seed,
                ..Default::default()
            },
        );
        let stats = server.run(rounds, &test);
        let total_bytes: usize = stats.iter().map(|s| s.uplink_bytes).sum();
        let mean_round_bytes = total_bytes / stats.len().max(1);
        let radio_mj = ble.transfer_energy_mj(total_bytes as u64);
        rows.push(vec![
            compression.name(),
            fmt_bytes(mean_round_bytes as u64),
            fmt_bytes(total_bytes as u64),
            fmt(radio_mj, 1),
            fmt(f64::from(stats.last().map_or(0.0, |s| s.accuracy)), 3),
        ]);
    }
    let headers = [
        "compression",
        "bytes/round",
        "total uplink",
        "BLE radio mJ",
        "final acc",
    ];
    print_table("E7 communication-efficiency sweep", &headers, &rows);
    save_json("e07_flcomm", &headers, &rows);
    println!(
        "\nshape check: sign/ternary cut uplink ≥10x (sign ≈32x) at a small accuracy cost; \
         top-1% trades more accuracy for the biggest cut — the §III-D energy argument."
    );
}
