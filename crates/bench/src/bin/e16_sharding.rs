//! E16 — the sharded serving fabric under open-loop multi-tenant load.
//!
//! One `ServePlane` is one serving node; this experiment replays ≥100k
//! requests across a ≥3-node `ServeFabric`: the shard router
//! consistent-hashes tenants onto nodes (weighted, family-affine), quotas
//! are partitioned per home shard with refunds for admitted-then-shed
//! work, per-node telemetry merges into exact fleet statistics, and the
//! per-node device router weighs ModelCache residency against load.
//! Sections: (a) fleet replay with per-node + fleet stats, (b) bit-exact
//! determinism across fresh fabrics, (c) affinity vs least-loaded device
//! routing at the same cache budget, (d) shed-refund accounting with
//! chain verification, (e) node join/leave rebalancing.
//!
//! `--quick` shrinks the replay to CI-smoke size (the JSON artifacts are
//! still written with the same schema).

use tinymlops_bench::{fmt, print_table, save_json, synthetic_family, time_ms};
use tinymlops_core::{Platform, PlatformConfig};
use tinymlops_nn::data::synth_digits;
use tinymlops_nn::model::mlp;
use tinymlops_nn::train::{fit, FitConfig};
use tinymlops_nn::Adam;
use tinymlops_registry::SemVer;
use tinymlops_serve::{
    FabricConfig, FabricReport, LoadPlan, ServeConfig, ServeReport, ShedReason, TenantSpec,
};
use tinymlops_tensor::TensorRng;

const SEED: u64 = 16;
const FAMILIES: usize = 3;

fn published_platform(fleet_size: usize) -> Platform {
    let platform = Platform::new(&PlatformConfig {
        fleet_size,
        seed: SEED,
        signer_height: 4,
    });
    let data = synth_digits(900, 0.08, SEED);
    let (train, test) = data.split(0.85, 0);
    let mut rng = TensorRng::seed(SEED);
    let mut model = mlp(&[64, 24, 10], &mut rng);
    let mut opt = Adam::new(0.005);
    fit(
        &mut model,
        &train,
        &mut opt,
        &FitConfig {
            epochs: 8,
            batch_size: 32,
            ..Default::default()
        },
    );
    for f in 0..FAMILIES {
        platform
            .publish(
                &format!("family{f}"),
                &model,
                SemVer::new(1, 0, 0),
                &train,
                &test,
            )
            .expect("publish");
    }
    platform
}

fn synthetic_fabric(
    nodes: usize,
    fleet_size: usize,
    cache_budget_bytes: u64,
    affinity_routing: bool,
) -> tinymlops_serve::ServeFabric {
    let cfg = FabricConfig {
        node_weights: vec![1.0; nodes],
        // Spread every family across every node — the worst case for
        // per-node residency, where the device-level score must earn it.
        tenant_affinity: 0.0,
        load_factor: f64::INFINITY,
        serve: ServeConfig {
            cache_budget_bytes,
            affinity_routing,
            ..Default::default()
        },
        ..Default::default()
    };
    let fleets =
        tinymlops_device::Fleet::generate(fleet_size, &tinymlops_device::default_mix(), SEED)
            .partition(nodes);
    let mut fabric = tinymlops_serve::ServeFabric::new(&cfg, fleets);
    for f in 0..6u64 {
        fabric.install_family(
            &format!("family{f}"),
            synthetic_family(&format!("family{f}"), f * 100),
        );
    }
    fabric
}

fn synthetic_plan(total_rps: f64, duration_us: u64) -> LoadPlan {
    LoadPlan {
        tenants: (0..12u32)
            .map(|i| TenantSpec {
                id: i + 1,
                rate_rps: total_rps / 12.0,
                model: format!("family{}", i % 6),
                prepaid_queries: u64::MAX / 2,
                deadline_us: 250_000,
            })
            .collect(),
        duration_us,
        seed: SEED,
        feature_dim: 0,
    }
}

fn plan(
    total_rps: f64,
    duration_us: u64,
    tenants: u32,
    prepaid: u64,
    deadline_us: u64,
) -> LoadPlan {
    LoadPlan {
        tenants: (0..tenants)
            .map(|i| TenantSpec {
                id: i + 1,
                rate_rps: total_rps / f64::from(tenants),
                model: format!("family{}", i as usize % FAMILIES),
                prepaid_queries: prepaid,
                deadline_us,
            })
            .collect(),
        duration_us,
        seed: SEED,
        feature_dim: 0,
    }
}

fn node_row(label: &str, tenants: usize, report: &ServeReport) -> Vec<String> {
    vec![
        label.to_string(),
        tenants.to_string(),
        report.served.to_string(),
        fmt(report.throughput_rps, 0),
        fmt(report.p50_ms, 2),
        fmt(report.p95_ms, 2),
        fmt(report.p99_ms, 2),
        fmt(report.shed_rate * 100.0, 1),
        fmt(report.cache_hit_rate * 100.0, 1),
        report.devices_used.to_string(),
    ]
}

fn fabric_rows(report: &FabricReport) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    for ((node, node_report), (_, tenants)) in report.per_node.iter().zip(&report.tenants_per_node)
    {
        rows.push(node_row(&format!("node {node}"), *tenants, node_report));
    }
    let total_tenants: usize = report.tenants_per_node.iter().map(|(_, n)| n).sum();
    rows.push(node_row("fleet", total_tenants, &report.fleet));
    rows
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!(
        "E16: sharded serving fabric (shard router → per-node gateway/batcher/cache/router){}",
        if quick { " [quick]" } else { "" }
    );

    let fleet_size = if quick { 30 } else { 90 };
    let nodes = 3usize;
    let (rps, duration_us) = if quick {
        (3_000.0, 1_000_000)
    } else {
        (20_000.0, 6_000_000)
    };

    // E16a: fleet replay — per-node and merged fleet statistics.
    let cfg = FabricConfig {
        node_weights: vec![1.0; nodes],
        ..Default::default()
    };
    let p = plan(rps, duration_us, 18, u64::MAX / 2, 250_000);
    let stream_len = p.generate().len();
    if !quick {
        assert!(
            stream_len >= 100_000,
            "fleet replay must exceed 100k requests, got {stream_len}"
        );
    }
    let mut platform = published_platform(fleet_size);
    let (report, wall_ms) = time_ms(|| platform.serve_traffic_sharded(&p, &cfg).expect("serve"));
    assert!(report.per_node.len() >= 3, "at least three serving nodes");
    let headers = [
        "node", "tenants", "served", "rps", "p50 ms", "p95 ms", "p99 ms", "shed %", "cache %",
        "devices",
    ];
    let rows = fabric_rows(&report);
    print_table(
        &format!("E16a fleet replay ({stream_len} requests, {wall_ms:.0} ms wall)"),
        &headers,
        &rows,
    );
    save_json("e16_sharding_fleet", &headers, &rows);
    assert_eq!(
        report.telemetry.counters.get("serve.served").copied(),
        Some(report.fleet.served),
        "merged telemetry parses and agrees with merged stats"
    );

    // E16b: determinism — a fresh platform + fabric replays bit-identically.
    let again = published_platform(fleet_size)
        .serve_traffic_sharded(&p, &cfg)
        .expect("serve");
    assert_eq!(report, again, "same seed ⇒ identical fabric report");
    println!("\nE16b determinism: {stream_len} requests across {nodes} nodes replayed twice → identical ✓");

    // E16c: cache-affinity device routing vs least-loaded, same byte
    // budget. Six synthetic families with a wide variant-size spread
    // (40 KB f32 / 10 KB int8 / 2.5 KB int2) share each node under a
    // budget that holds only a sliver of the catalog — the E15c LRU
    // cliff. Least-loaded rotation lets different device classes drag
    // different variants through the cache; scoring residency against
    // load keeps each node's working set stable.
    let mut rows_c = Vec::new();
    let mut hit_rates = Vec::new();
    let p_c = synthetic_plan(
        if quick { 4_000.0 } else { 25_000.0 },
        if quick { 1_000_000 } else { 3_000_000 },
    );
    for (label, affinity_routing) in [("least-loaded", false), ("affinity", true)] {
        let mut fabric_c = synthetic_fabric(nodes, 24, 12 * 1024, affinity_routing);
        fabric_c.provision(&p_c);
        let r = fabric_c.run(&p_c.generate()).expect("run");
        hit_rates.push(r.fleet.cache_hit_rate);
        rows_c.push(vec![
            label.to_string(),
            r.fleet.cache_hits.to_string(),
            r.fleet.cache_misses.to_string(),
            fmt(r.fleet.cache_hit_rate * 100.0, 1),
            fmt(r.fleet.p95_ms, 2),
            fmt(r.fleet.p99_ms, 2),
            r.fleet.served.to_string(),
        ]);
    }
    let headers_c = [
        "device routing",
        "hits",
        "misses",
        "hit %",
        "p95 ms",
        "p99 ms",
        "served",
    ];
    print_table(
        "E16c affinity vs least-loaded (6 families, 12 KiB cache/node)",
        &headers_c,
        &rows_c,
    );
    save_json("e16_sharding_affinity", &headers_c, &rows_c);
    if !quick {
        assert!(
            hit_rates[1] > hit_rates[0],
            "affinity routing must raise the hit rate at the same budget: {} vs {}",
            hit_rates[1],
            hit_rates[0]
        );
    }

    // E16d: shed refunds — deadlines tighter than the batcher's flush
    // delay expire queue-head requests before dispatch, and periodic fleet
    // churn (battery/connectivity) opens NoRoute windows on the tiny
    // 2-device-per-node fleet. Both shed paths happen *after* admission
    // charged the meter, so both must refund.
    let cfg_d = FabricConfig {
        node_weights: vec![1.0; nodes],
        serve: ServeConfig {
            fleet_step_period_us: 150_000,
            ..Default::default()
        },
        ..Default::default()
    };
    let p_d = plan(
        if quick { 3_000.0 } else { 10_000.0 },
        if quick { 500_000 } else { 2_000_000 },
        18,
        u64::MAX / 2,
        1_900,
    );
    let mut platform_d = published_platform(6);
    // Build once, run, then verify the chains of the *same* fabric that
    // replayed the traffic — the chains being checked actually carry the
    // Query/Refund entries this section is about.
    let mut fabric_d = platform_d.build_fabric(&p_d, &cfg_d).expect("fabric");
    let r_d = fabric_d.run(&p_d.generate()).expect("run");
    let master = platform_d.master_key();
    let chains = fabric_d
        .verify_chains(|t| tinymlops_ipp::encrypt::device_key(&master, t))
        .expect("all audit chains verify");
    let census = fabric_d.quota_census();
    assert!(
        census.iter().any(|q| q.refunded > 0),
        "verified chains must include refund entries"
    );
    assert!(
        r_d.downstream_sheds() > 0,
        "overload must produce downstream sheds"
    );
    assert!(
        r_d.refunds_balance(),
        "refunds ({}) must exactly match downstream sheds ({}) — neither \
         burned nor minted quota",
        r_d.refunds,
        r_d.downstream_sheds()
    );
    let headers_d = [
        "deadline shed",
        "no-route shed",
        "refunds",
        "unrefunded",
        "chains verified",
    ];
    let rows_d = vec![vec![
        r_d.fleet.shed_by(ShedReason::DeadlineExpired).to_string(),
        r_d.fleet.shed_by(ShedReason::NoRoute).to_string(),
        r_d.refunds.to_string(),
        r_d.unrefunded_sheds().to_string(),
        chains.to_string(),
    ]];
    print_table("E16d shed refunds (tamper-evident)", &headers_d, &rows_d);
    save_json("e16_sharding_refunds", &headers_d, &rows_d);

    // E16e: node join/leave — whole accounts move, prepaid quota conserved.
    let p_e = plan(1_000.0, 500_000, 24, 50_000, 250_000);
    let mut platform_e = published_platform(fleet_size);
    let mut fabric_e = platform_e.build_fabric(&p_e, &cfg).expect("fabric");
    fabric_e.run(&p_e.generate()).expect("run");
    let balance_sum = |f: &tinymlops_serve::ServeFabric| -> u64 {
        f.quota_census().iter().map(|q| q.balance).sum()
    };
    let before = balance_sum(&fabric_e);
    let extra = tinymlops_device::Fleet::generate(
        fleet_size / nodes,
        &tinymlops_device::default_mix(),
        SEED + 99,
    );
    let (new_id, moved_in) = fabric_e.add_node(1.0, extra);
    let after_join = balance_sum(&fabric_e);
    let moved_out = fabric_e.remove_node(new_id).expect("node exists");
    let after_leave = balance_sum(&fabric_e);
    assert_eq!(before, after_join, "join conserves prepaid quota");
    assert_eq!(before, after_leave, "leave conserves prepaid quota");
    assert_eq!(moved_in, moved_out, "leave undoes exactly the join");
    assert!(moved_in < 24, "join must not reshuffle every tenant");
    let headers_e = [
        "tenants",
        "moved on join",
        "moved on leave",
        "expected share",
        "quota conserved",
    ];
    let rows_e = vec![vec![
        "24".to_string(),
        moved_in.to_string(),
        moved_out.to_string(),
        fmt(24.0 / (nodes as f64 + 1.0), 1),
        "yes".to_string(),
    ]];
    print_table("E16e node join/leave rebalancing", &headers_e, &rows_e);
    save_json("e16_sharding_rebalance", &headers_e, &rows_e);

    println!(
        "\nE16 complete: {stream_len} requests, {nodes} nodes, deterministic, zero lost sheds."
    );
}
