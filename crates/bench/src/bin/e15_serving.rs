//! E15 — the serving plane under open-loop multi-tenant load.
//!
//! The paper's operational loop only matters once traffic flows through
//! it: this experiment replays ≥100k simulated requests through the
//! gateway (quota admission + load shedding), micro-batcher, model cache
//! and constraint-aware fleet router, and reports latency percentiles,
//! throughput, shed rate and cache hit rate per configuration. A final
//! section re-runs the reference configuration and asserts bit-identical
//! stats (the whole plane is a pure function of the seed), then drives a
//! feature-carrying stream through real `nn`/`quant` inference.

use tinymlops_bench::{fmt, print_table, save_json, time_ms};
use tinymlops_core::{Platform, PlatformConfig};
use tinymlops_nn::data::synth_digits;
use tinymlops_nn::model::mlp;
use tinymlops_nn::train::{fit, FitConfig};
use tinymlops_nn::Adam;
use tinymlops_registry::SemVer;
use tinymlops_serve::{LoadPlan, ServeConfig, ServeReport, TenantSpec};
use tinymlops_tensor::TensorRng;

const SEED: u64 = 15;

fn published_platform(fleet_size: usize) -> Platform {
    let platform = Platform::new(&PlatformConfig {
        fleet_size,
        seed: SEED,
        signer_height: 4,
    });
    let data = synth_digits(900, 0.08, SEED);
    let (train, test) = data.split(0.85, 0);
    let mut rng = TensorRng::seed(SEED);
    let mut model = mlp(&[64, 24, 10], &mut rng);
    let mut opt = Adam::new(0.005);
    fit(
        &mut model,
        &train,
        &mut opt,
        &FitConfig {
            epochs: 10,
            batch_size: 32,
            ..Default::default()
        },
    );
    platform
        .publish("digits", &model, SemVer::new(1, 0, 0), &train, &test)
        .expect("publish");
    platform
}

/// One trained model published under `n` family names (distinct tenants'
/// products sharing one serving node).
fn multi_family_platform(fleet_size: usize, families: usize) -> Platform {
    let platform = Platform::new(&PlatformConfig {
        fleet_size,
        seed: SEED,
        signer_height: 4,
    });
    let data = synth_digits(900, 0.08, SEED);
    let (train, test) = data.split(0.85, 0);
    let mut rng = TensorRng::seed(SEED);
    let mut model = mlp(&[64, 24, 10], &mut rng);
    let mut opt = Adam::new(0.005);
    fit(
        &mut model,
        &train,
        &mut opt,
        &FitConfig {
            epochs: 8,
            batch_size: 32,
            ..Default::default()
        },
    );
    for f in 0..families {
        platform
            .publish(
                &format!("family{f}"),
                &model,
                SemVer::new(1, 0, 0),
                &train,
                &test,
            )
            .expect("publish");
    }
    platform
}

fn multi_family_plan(total_rps: f64, duration_us: u64, families: usize) -> LoadPlan {
    LoadPlan {
        tenants: (0..families as u32)
            .map(|f| TenantSpec {
                id: f + 1,
                rate_rps: total_rps / families as f64,
                model: format!("family{f}"),
                prepaid_queries: 10_000_000,
                deadline_us: 250_000,
            })
            .collect(),
        duration_us,
        seed: SEED,
        feature_dim: 0,
    }
}

fn plan(total_rps: f64, duration_us: u64, prepaid: u64, feature_dim: usize) -> LoadPlan {
    // Four tenants with a 4:2:1:1 rate split over the same family.
    let unit = total_rps / 8.0;
    LoadPlan {
        tenants: vec![
            TenantSpec {
                id: 1,
                rate_rps: unit * 4.0,
                model: "digits".into(),
                prepaid_queries: prepaid,
                deadline_us: 250_000,
            },
            TenantSpec {
                id: 2,
                rate_rps: unit * 2.0,
                model: "digits".into(),
                prepaid_queries: prepaid,
                deadline_us: 250_000,
            },
            TenantSpec {
                id: 3,
                rate_rps: unit,
                model: "digits".into(),
                prepaid_queries: prepaid,
                deadline_us: 250_000,
            },
            TenantSpec {
                id: 4,
                rate_rps: unit,
                model: "digits".into(),
                prepaid_queries: prepaid,
                deadline_us: 250_000,
            },
        ],
        duration_us,
        seed: SEED,
        feature_dim,
    }
}

fn report_row(label: &str, requests: usize, report: &ServeReport, wall_ms: f64) -> Vec<String> {
    vec![
        label.to_string(),
        requests.to_string(),
        report.served.to_string(),
        fmt(report.throughput_rps, 0),
        fmt(report.p50_ms, 2),
        fmt(report.p95_ms, 2),
        fmt(report.p99_ms, 2),
        fmt(report.shed_rate * 100.0, 1),
        fmt(report.mean_batch, 2),
        fmt(report.cache_hit_rate * 100.0, 1),
        fmt(wall_ms, 0),
    ]
}

fn main() {
    println!("E15: multi-tenant serving plane (gateway → batcher → cache → fleet)");

    let headers = [
        "config", "requests", "served", "rps", "p50 ms", "p95 ms", "p99 ms", "shed %", "batch",
        "cache %", "wall ms",
    ];
    let mut rows = Vec::new();

    // E15a: 100k-request replay sweeps — load level and batching policy.
    // The overload row shrinks the fleet and charges a radio-realistic
    // 2 ms dispatch wake-up, so saturation and load shedding are visible.
    for (label, total_rps, max_batch, fleet, overhead_us) in [
        ("light b8", 5_000.0, 8usize, 60usize, 200u64),
        ("heavy b1", 17_000.0, 1, 60, 200),
        ("heavy b8", 17_000.0, 8, 60, 200),
        ("overload b1", 30_000.0, 1, 12, 2_000),
        ("overload b8", 30_000.0, 8, 12, 2_000),
    ] {
        let mut platform = published_platform(fleet);
        let mut cfg = ServeConfig::default();
        cfg.batch.max_batch = max_batch;
        cfg.dispatch_overhead_us = overhead_us;
        let p = plan(total_rps, 6_000_000, 10_000_000, 0);
        let requests = p.generate().len();
        let (report, wall_ms) = time_ms(|| platform.serve_traffic(&p, &cfg).expect("serve"));
        rows.push(report_row(label, requests, &report, wall_ms));
    }
    print_table(
        "E15a serving under open-loop load (100k+ replays)",
        &headers,
        &rows,
    );
    save_json("e15_serving_load", &headers, &rows);

    // E15b: admission control — quota exhaustion sheds the tail cleanly.
    let mut rows_b = Vec::new();
    for (label, prepaid) in [
        ("prepaid 2k", 2_000u64),
        ("prepaid 20k", 20_000),
        ("prepaid 10M", 10_000_000),
    ] {
        let mut platform = published_platform(60);
        let cfg = ServeConfig::default();
        let p = plan(8_000.0, 4_000_000, prepaid, 0);
        let report = platform.serve_traffic(&p, &cfg).expect("serve");
        rows_b.push(vec![
            label.to_string(),
            report.served.to_string(),
            report
                .shed_by(tinymlops_serve::ShedReason::QuotaExhausted)
                .to_string(),
            report
                .shed_by(tinymlops_serve::ShedReason::TenantBackpressure)
                .to_string(),
            report
                .shed_by(tinymlops_serve::ShedReason::Overload)
                .to_string(),
            fmt(report.shed_rate * 100.0, 1),
            platform.telemetry.counter("serve.served").to_string(),
        ]);
    }
    let headers_b = [
        "config",
        "served",
        "shed quota",
        "shed tenant-bp",
        "shed overload",
        "shed %",
        "telemetry served",
    ];
    print_table("E15b quota admission & shedding", &headers_b, &rows_b);
    save_json("e15_serving_admission", &headers_b, &rows_b);

    // E15c: cache pressure — six tenant-facing model families share one
    // serving node; shrinking the budget below the hot variant working
    // set turns hits into artifact reloads and inflates tail latency.
    let mut rows_c = Vec::new();
    for (label, budget) in [
        ("512 KiB", 512 * 1024u64),
        ("16 KiB", 16 * 1024),
        ("8 KiB", 8 * 1024),
        ("2 KiB", 2 * 1024),
    ] {
        let mut platform = multi_family_platform(60, 6);
        let cfg = ServeConfig {
            cache_budget_bytes: budget,
            ..Default::default()
        };
        let p = multi_family_plan(9_000.0, 3_000_000, 6);
        let report = platform.serve_traffic(&p, &cfg).expect("serve");
        rows_c.push(vec![
            label.to_string(),
            report.cache_hits.to_string(),
            report.cache_misses.to_string(),
            fmt(report.cache_hit_rate * 100.0, 1),
            fmt(report.p95_ms, 2),
            fmt(report.p99_ms, 2),
        ]);
    }
    let headers_c = [
        "cache budget",
        "hits",
        "misses",
        "hit %",
        "p95 ms",
        "p99 ms",
    ];
    print_table(
        "E15c model-cache pressure (6 families)",
        &headers_c,
        &rows_c,
    );
    save_json("e15_serving_cache", &headers_c, &rows_c);

    // E15d: determinism — the reference config, replayed twice, must
    // produce identical statistics.
    let reference = plan(17_000.0, 6_000_000, 10_000_000, 0);
    let requests = reference.generate().len();
    assert!(
        requests >= 100_000,
        "reference stream must exceed 100k requests, got {requests}"
    );
    let cfg = ServeConfig::default();
    let first = published_platform(60)
        .serve_traffic(&reference, &cfg)
        .expect("serve");
    let second = published_platform(60)
        .serve_traffic(&reference, &cfg)
        .expect("serve");
    assert_eq!(first, second, "same seed ⇒ identical report");
    println!(
        "\nE15d determinism: {requests} requests replayed twice → identical stats ✓\n  {first}"
    );

    // E15e: real inference — a feature-carrying stream exercises the
    // actual f32/int8 kernels through the batcher.
    let mut platform = published_platform(30);
    let real_plan = plan(2_000.0, 1_000_000, 10_000_000, 64);
    let report = platform
        .serve_traffic(&real_plan, &ServeConfig::default())
        .expect("serve");
    assert!(report.real_predictions > 0, "real kernels executed");
    println!(
        "E15e real execution: {} requests ran through nn/quant kernels (batched), {} served",
        report.real_predictions, report.served
    );
}
