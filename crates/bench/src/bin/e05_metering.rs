//! E5 — §III-C: prepaid packages, denial at zero, "$1.50 per 1,000
//! requests", and tamper evidence "in a secure offline way on untrusted
//! hardware".
//!
//! Metering throughput, chain-verification cost, tamper/rollback detection
//! rates, and invoice reconciliation.

use tinymlops_bench::{fmt, print_table, save_json, time_ms};
use tinymlops_crypto::Drbg;
use tinymlops_meter::audit::{AuditLog, EntryKind};
use tinymlops_meter::{Invoice, QuotaManager, RateCard, SyncServer, VoucherIssuer, VoucherLedger};

fn main() {
    println!("E5: offline pay-per-query metering");
    let key = [5u8; 32];

    // Throughput: consume+audit ops/s at several log sizes.
    let mut rows = Vec::new();
    for &n in &[1_000u64, 10_000, 50_000] {
        let mut quota = QuotaManager::new(key);
        quota.credit(n, 1, 0);
        let (_, consume_ms) = time_ms(|| {
            for t in 0..n {
                quota.consume(1, t).expect("prepaid");
            }
        });
        let (verify_res, verify_ms) = time_ms(|| quota.log().verify(&key));
        verify_res.expect("honest chain");
        rows.push(vec![
            n.to_string(),
            fmt(n as f64 / (consume_ms / 1000.0), 0),
            fmt(verify_ms, 2),
            fmt(verify_ms / n as f64 * 1000.0, 2),
        ]);
    }
    let headers = ["queries", "meter ops/s", "chain verify ms", "µs/entry"];
    print_table("E5a metering throughput", &headers, &rows);
    save_json("e05_metering_throughput", &headers, &rows);

    // Tamper detection: random single-entry edits must always be caught.
    let mut detection_rows = Vec::new();
    let mut rng = Drbg::from_u64(55, b"tamper");
    for (attack, mutate) in [
        (
            "edit payload",
            Box::new(|log: &mut AuditLog, idx: usize| {
                log_edit_payload(log, idx);
            }) as Box<dyn Fn(&mut AuditLog, usize)>,
        ),
        (
            "delete entry",
            Box::new(|log: &mut AuditLog, idx: usize| {
                log_delete(log, idx);
            }),
        ),
        (
            "swap entries",
            Box::new(|log: &mut AuditLog, idx: usize| {
                log_swap(log, idx);
            }),
        ),
    ] {
        let trials = 200;
        let mut caught = 0;
        for _ in 0..trials {
            let mut log = AuditLog::new(key);
            for t in 0..100 {
                log.append(EntryKind::Query, 1, t);
            }
            let idx = (rng.gen_range(99)) as usize;
            mutate(&mut log, idx);
            if log.verify(&key).is_err() {
                caught += 1;
            }
        }
        detection_rows.push(vec![
            attack.to_string(),
            format!("{caught}/{trials}"),
            fmt(caught as f64 / f64::from(trials) * 100.0, 1),
        ]);
    }
    // Rollback across syncs.
    {
        let trials = 200;
        let mut caught = 0;
        let mut rng2 = Drbg::from_u64(56, b"rollback");
        for _ in 0..trials {
            let mut server = SyncServer::new();
            server.provision(1, key);
            let mut quota = QuotaManager::new(key);
            quota.credit(100, 1, 0);
            let spend = 1 + rng2.gen_range(99);
            for t in 0..spend {
                quota.consume(1, t).unwrap();
            }
            server.sync(1, quota.log()).unwrap();
            // Restore pre-spend snapshot, spend a little, sync again.
            let mut restored = QuotaManager::new(key);
            restored.credit(100, 1, 0);
            restored.consume(1, 0).unwrap();
            if server.sync(1, restored.log()).is_err() {
                caught += 1;
            }
        }
        detection_rows.push(vec![
            "rollback (snapshot restore)".to_string(),
            format!("{caught}/{trials}"),
            fmt(caught as f64 / f64::from(trials) * 100.0, 1),
        ]);
    }
    let headers2 = ["attack", "caught", "detection %"];
    print_table(
        "E5b tamper & rollback detection",
        &headers2,
        &detection_rows,
    );
    save_json("e05_metering_detection", &headers2, &detection_rows);

    // Billing reconciliation at the paper's $1.50/1k rate.
    let rates = RateCard::cloud_vision_like();
    let mut billing_rows = Vec::new();
    for &q in &[500u64, 1000, 1001, 2000, 10_000, 100_000] {
        billing_rows.push(vec![
            q.to_string(),
            Invoice::compute(1, q, &rates).amount_display(),
        ]);
    }
    let headers3 = ["queries", "invoice"];
    print_table(
        "E5c invoices at $1.50/1k (first 1k free)",
        &headers3,
        &billing_rows,
    );
    save_json("e05_metering_billing", &headers3, &billing_rows);

    // Voucher double-spend.
    let mut issuer = VoucherIssuer::new([6u8; 32]);
    let mut ledger = VoucherLedger::new();
    let v = issuer.issue(1000, 7);
    ledger.register(v.serial).unwrap();
    println!(
        "\nvoucher duplicate redemption rejected: {}",
        ledger.register(v.serial).is_err()
    );
}

fn log_edit_payload(log: &mut AuditLog, idx: usize) {
    // Tamper via serialization round-trip (entries are private behind the
    // API; an attacker edits the bytes on flash).
    let mut json: serde_json::Value = serde_json::to_value(&*log).expect("serialize");
    json["entries"][idx]["payload"] = serde_json::json!(0);
    *log = serde_json::from_value(json).expect("deserialize");
}

fn log_delete(log: &mut AuditLog, idx: usize) {
    let mut json: serde_json::Value = serde_json::to_value(&*log).expect("serialize");
    let entries = json["entries"].as_array_mut().expect("array");
    entries.remove(idx);
    *log = serde_json::from_value(json).expect("deserialize");
}

fn log_swap(log: &mut AuditLog, idx: usize) {
    let mut json: serde_json::Value = serde_json::to_value(&*log).expect("serialize");
    let entries = json["entries"].as_array_mut().expect("array");
    let next = (idx + 1).min(entries.len() - 1);
    if next != idx {
        entries.swap(idx, next);
    } else {
        entries.swap(idx, idx.saturating_sub(1));
    }
    *log = serde_json::from_value(json).expect("deserialize");
}
