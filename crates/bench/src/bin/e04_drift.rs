//! E4 — §III-B: "monitor the distribution of input values to detect data
//! drift … detect model performance degradation early on" and "store these
//! statistics locally and transmit them to the cloud when the device is
//! connected to WiFi".
//!
//! Detection delay + false positives per detector across seeds; telemetry
//! wire cost vs raw-data exfiltration; WiFi-deferred upload accounting.

use tinymlops_bench::{fmt, fmt_bytes, print_table, save_json};
use tinymlops_nn::data::synth_digits;
use tinymlops_observe::{
    DriftDetector, DriftStatus, KsDetector, PageHinkley, PsiDetector, Telemetry, UploadQueue,
};

/// Feed `n_stable` stationary values then shifted ones; returns
/// `(false alarms, Option<delay>)`.
fn run(det: &mut dyn DriftDetector, stable: &[f64], shifted: &[f64]) -> (usize, Option<usize>) {
    let mut fa = 0;
    for &x in stable {
        if det.observe(x) == DriftStatus::Drift {
            fa += 1;
        }
    }
    let mut delay = None;
    for (i, &x) in shifted.iter().enumerate() {
        if det.observe(x) == DriftStatus::Drift && delay.is_none() {
            delay = Some(i + 1);
        }
    }
    (fa, delay)
}

fn main() {
    println!("E4: drift detection & telemetry budget");
    let mut rows = Vec::new();
    let seeds = [40u64, 41, 42, 43, 44];
    let shift = 0.25f32; // covariate shift on pixel means
    for (name, make) in [
        (
            "ks(64,1e-3)",
            Box::new(|| Box::new(KsDetector::new(64, 0.001)) as Box<dyn DriftDetector>)
                as Box<dyn Fn() -> Box<dyn DriftDetector>>,
        ),
        (
            "psi(8bins)",
            Box::new(|| {
                Box::new(PsiDetector::new(0.0, 1.0, 8, 128, 0.25)) as Box<dyn DriftDetector>
            }),
        ),
        (
            "page-hinkley",
            Box::new(|| Box::new(PageHinkley::new(0.01, 2.0, 50)) as Box<dyn DriftDetector>),
        ),
    ] {
        let mut total_fa = 0usize;
        let mut delays = Vec::new();
        let mut missed = 0usize;
        for &seed in &seeds {
            // Input statistic: per-image mean pixel value.
            let clean = synth_digits(900, 0.08, seed);
            let drifted = synth_digits(600, 0.08, seed + 100).with_covariate_shift(shift);
            let stat = |d: &tinymlops_nn::Dataset| -> Vec<f64> {
                (0..d.len())
                    .map(|r| f64::from(d.x.row(r).iter().sum::<f32>() / 64.0))
                    .collect()
            };
            let mut det = make();
            let (fa, delay) = run(det.as_mut(), &stat(&clean), &stat(&drifted));
            total_fa += fa;
            match delay {
                Some(d) => delays.push(d),
                None => missed += 1,
            }
        }
        let mean_delay = if delays.is_empty() {
            f64::NAN
        } else {
            delays.iter().sum::<usize>() as f64 / delays.len() as f64
        };
        rows.push(vec![
            name.to_string(),
            format!("{total_fa}/{}", seeds.len() * 900),
            if mean_delay.is_nan() {
                "—".into()
            } else {
                fmt(mean_delay, 1)
            },
            format!("{missed}/{}", seeds.len()),
        ]);
    }
    let headers = ["detector", "false alarms", "mean delay (queries)", "missed"];
    print_table(
        &format!("E4 drift detection (covariate shift {shift}, 5 seeds)"),
        &headers,
        &rows,
    );
    save_json("e04_drift", &headers, &rows);

    // Telemetry budget: aggregated summaries vs raw exfiltration.
    let telemetry = Telemetry::new();
    let n_queries = 10_000u64;
    for i in 0..n_queries {
        telemetry.incr("queries");
        telemetry.record("latency_ms", 2.0 + (i % 7) as f64 * 0.1);
        telemetry.record("energy_mj", 0.5 + (i % 5) as f64 * 0.01);
        telemetry.record("input_mean", 0.3 + (i % 11) as f64 * 0.001);
    }
    let report = telemetry.drain();
    let report_bytes = report.wire_bytes() as u64;
    let raw_bytes = n_queries * 64 * 4; // shipping raw 64-float inputs
    println!(
        "\ntelemetry for {n_queries} queries: {} report vs {} raw input exfiltration ({}x smaller) — \
         the §III-B privacy argument stays intact.",
        fmt_bytes(report_bytes),
        fmt_bytes(raw_bytes),
        raw_bytes / report_bytes.max(1)
    );

    // Deferred upload: connectivity pattern with occasional WiFi.
    let mut queue = UploadQueue::new();
    let mut sessions = 0usize;
    for hour in 0..48 {
        let t = Telemetry::new();
        t.add("queries", 100);
        t.record("latency_ms", 2.0);
        queue.push(t.drain());
        let on_wifi = hour % 8 == 7; // home WiFi once per 8h
        if !queue.try_upload(on_wifi).is_empty() {
            sessions += 1;
        }
    }
    println!(
        "deferred upload over 48 simulated hours: {} WiFi sessions carried all {} reports \
         (cellular never used), {} pending at end",
        sessions,
        queue.uploaded,
        queue.pending()
    );
}
