//! E20 — fault injection + self-healing fabric: crash recovery,
//! retry/backoff, and brownout degradation.
//!
//! PR 7's fault plane makes failure a first-class, *deterministic* input:
//! a seeded `FaultPlan` schedules node crashes, stalls, slowdowns and
//! dispatch panics on the same logical timestamps the serving engines
//! already run on, so a fault run replays bit-identically across the
//! simulator and the threaded backend. Sections:
//!
//! * (a) **crash conservation** — a node dies mid-stream with real queued
//!   and dispatched work; every killed request resolves as a refunded
//!   `Failover` shed, every evacuated tenant lands on a survivor with its
//!   audit chain intact (sealed by a domain-separated `Failover` entry),
//!   and the fleet-wide prepaid census is exact to the query.
//! * (b) **backend parity** — the same crash+stall+slowdown plan produces
//!   bit-identical reports on `ServeFabric::run` and `run_live`.
//! * (c) **off means off** — a disabled plan and an armed-but-empty plan
//!   are byte-identical to each other (the fault plane costs nothing
//!   until it fires; `b01_kernels` bounds the CPU-time side).
//! * (d) **brownout vs shed-only** — a flash crowd overruns a small
//!   admission ceiling; the degradation ladder (f32 → int8 → int2 via
//!   the router's per-level plans) serves strictly more than pure
//!   shedding and holds tail latency.
//! * (e) **retry/backoff** — a retry budget (token bucket + jittered
//!   exponential backoff, deadline-aware) recovers transient admission
//!   sheds without outliving deadlines.
//! * (f) **genuine death containment** — a `DispatchPanic` kills a live
//!   worker for real; the run completes with one structured
//!   `NodeFailure` instead of poisoning the fleet.
//!
//! `--quick` shrinks the streams to CI-smoke size (same JSON schema).

use tinymlops_bench::{fmt, print_table, save_json, synthetic_family};
use tinymlops_device::{default_mix, Fleet};
use tinymlops_serve::{
    BrownoutConfig, ExecConfig, FabricConfig, FaultEvent, FaultKind, FaultPlan, GatewayConfig,
    LoadPlan, RetryPolicy, ServeConfig, ServeFabric, ShedReason, TenantSpec,
};

const SEED: u64 = 20;

fn fabric(cfg: &FabricConfig, fleet_size: usize) -> ServeFabric {
    let fleets =
        Fleet::generate(fleet_size, &default_mix(), SEED).partition(cfg.node_weights.len());
    let mut f = ServeFabric::new(cfg, fleets);
    f.install_family("kws", synthetic_family("kws", 0));
    f.install_family("vision", synthetic_family("vision", 100));
    f
}

fn plan(rps: f64, duration_us: u64, tenants: u32, prepaid: u64, deadline_us: u64) -> LoadPlan {
    LoadPlan {
        tenants: (0..tenants)
            .map(|i| TenantSpec {
                id: i + 1,
                rate_rps: rps / f64::from(tenants),
                model: if i % 2 == 0 { "kws" } else { "vision" }.into(),
                prepaid_queries: prepaid,
                deadline_us,
            })
            .collect(),
        duration_us,
        seed: SEED,
        feature_dim: 0,
    }
}

/// The test meter-key scheme `ServeFabric::provision` uses.
fn key_of(tenant: u32) -> [u8; 32] {
    let mut key = [0u8; 32];
    key[..4].copy_from_slice(&tenant.to_le_bytes());
    key
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!(
        "E20: fault injection + self-healing (crash recovery, retry, brownout){}",
        if quick { " [quick]" } else { "" }
    );

    let fleet_size = if quick { 30 } else { 60 };
    let (rps, duration_us) = if quick {
        (4_000.0, 1_000_000)
    } else {
        (12_000.0, 4_000_000)
    };
    let tenants = 12u32;
    let prepaid = 1_000_000u64;

    // E20a: crash a loaded node mid-stream. Conservation must be exact.
    let crash_at = duration_us * 2 / 5;
    let crash_plan = FaultPlan::with_events(vec![FaultEvent {
        node: 1,
        at_us: crash_at,
        kind: FaultKind::Crash,
    }]);
    let cfg_a = FabricConfig {
        node_weights: vec![1.0; 3],
        fault: crash_plan.clone(),
        ..Default::default()
    };
    let p = plan(rps, duration_us, tenants, prepaid, 200_000);
    let stream = p.generate();
    let mut fa = fabric(&cfg_a, fleet_size);
    fa.provision(&p);
    let doomed: Vec<u32> = (1..=tenants)
        .filter(|t| fa.home_node(*t) == Some(1))
        .collect();
    assert!(!doomed.is_empty(), "node 1 must host tenants before dying");
    let report_a = fa.run(&stream).expect("crash run");
    let failover_sheds = report_a.fleet.shed_by(ShedReason::Failover);
    assert!(
        failover_sheds > 0,
        "the dead node must take real in-flight work with it"
    );
    assert_eq!(
        report_a.fleet.served + report_a.fleet.shed_total,
        stream.len() as u64,
        "zero lost requests across the crash"
    );
    assert_eq!(report_a.unrefunded_sheds(), 0, "zero unrefunded sheds");
    assert!(report_a.refunds_balance(), "no quota minted either");
    let census = fa.quota_census();
    let spent: u64 = census.iter().map(|q| q.consumed - q.refunded).sum();
    let left: u64 = census.iter().map(|q| q.balance).sum();
    assert_eq!(
        spent + left,
        prepaid * u64::from(tenants),
        "census exact to the query"
    );
    for t in &doomed {
        assert_ne!(fa.home_node(*t), Some(1), "tenant {t} re-homed");
    }
    let chains = fa.verify_chains(key_of).expect("chains verify");
    assert_eq!(chains, tenants as usize);
    let mut failover_entries = 0u64;
    for node in fa.nodes() {
        for (_, account) in node.plane.gateway.accounts() {
            failover_entries += account.quota.log().failover_count();
        }
    }
    assert!(failover_entries >= doomed.len() as u64);
    let headers_a = [
        "requests",
        "served",
        "failover sheds",
        "evacuees",
        "failover entries",
        "unrefunded",
        "census",
        "chains",
    ];
    let rows_a = vec![vec![
        stream.len().to_string(),
        report_a.fleet.served.to_string(),
        failover_sheds.to_string(),
        doomed.len().to_string(),
        failover_entries.to_string(),
        report_a.unrefunded_sheds().to_string(),
        if spent + left == prepaid * u64::from(tenants) {
            "exact"
        } else {
            "BROKEN"
        }
        .to_string(),
        if chains == tenants as usize {
            "verified"
        } else {
            "BROKEN"
        }
        .to_string(),
    ]];
    print_table(
        "E20a crash recovery conserves everything",
        &headers_a,
        &rows_a,
    );
    save_json("e20_faults_crash", &headers_a, &rows_a);

    // E20b: the same fault plan — crash + stall + slowdown — replays
    // bit-identically on the threaded backend.
    let parity_plan = FaultPlan::with_events(vec![
        FaultEvent {
            node: 1,
            at_us: crash_at,
            kind: FaultKind::Crash,
        },
        FaultEvent {
            node: 0,
            at_us: duration_us / 8,
            kind: FaultKind::Stall {
                until_us: duration_us / 8 + 60_000,
            },
        },
        FaultEvent {
            node: 2,
            at_us: 0,
            kind: FaultKind::SlowNode { multiplier: 1.6 },
        },
    ]);
    let cfg_b = FabricConfig {
        node_weights: vec![1.0; 3],
        fault: parity_plan,
        ..Default::default()
    };
    let mut sim = fabric(&cfg_b, fleet_size);
    sim.provision(&p);
    let sim_report = sim.run(&stream).expect("sim fault run");
    let mut live = fabric(&cfg_b, fleet_size);
    live.provision(&p);
    let live_report = live
        .run_live(&stream, &ExecConfig::default())
        .expect("live fault run");
    let identical = live_report.fabric == sim_report && live.quota_census() == sim.quota_census();
    assert!(identical, "fault replay must be bit-identical sim ≡ live");
    assert!(live_report.failures.is_empty(), "a crash is not a panic");
    let headers_b = ["backend", "served", "shed", "refunds", "identical"];
    let rows_b = vec![
        vec![
            "sim replay".into(),
            sim_report.fleet.served.to_string(),
            sim_report.fleet.shed_total.to_string(),
            sim_report.refunds.to_string(),
            "-".into(),
        ],
        vec![
            "live replay".into(),
            live_report.fabric.fleet.served.to_string(),
            live_report.fabric.fleet.shed_total.to_string(),
            live_report.fabric.refunds.to_string(),
            if identical { "yes" } else { "NO" }.into(),
        ],
    ];
    print_table(
        "E20b fault-run parity (crash+stall+slow)",
        &headers_b,
        &rows_b,
    );
    save_json("e20_faults_parity", &headers_b, &rows_b);

    // E20c: the off switch. Disabled plan ≡ armed-but-empty plan.
    let run_with = |fault: FaultPlan| {
        let cfg = FabricConfig {
            node_weights: vec![1.0; 3],
            fault,
            ..Default::default()
        };
        let mut f = fabric(&cfg, fleet_size);
        f.provision(&p);
        f.run(&stream).expect("identity run")
    };
    let off = run_with(FaultPlan::default());
    let armed = run_with(FaultPlan::armed());
    let off_identical = off == armed;
    assert!(off_identical, "an armed-but-empty plan must change nothing");
    let headers_c = ["plan", "served", "shed", "identical"];
    let rows_c = vec![
        vec![
            "disabled".into(),
            off.fleet.served.to_string(),
            off.fleet.shed_total.to_string(),
            "-".into(),
        ],
        vec![
            "armed, empty".into(),
            armed.fleet.served.to_string(),
            armed.fleet.shed_total.to_string(),
            if off_identical { "yes" } else { "NO" }.into(),
        ],
    ];
    print_table("E20c disabled ≡ armed-empty identity", &headers_c, &rows_c);
    save_json("e20_faults_identity", &headers_c, &rows_c);

    // E20d: flash crowd — a 4× burst in the middle of a baseline stream,
    // against a small admission ceiling and tight deadlines. Pure
    // shedding turns the burst into Overload sheds; the brownout ladder
    // steps the fleet down to cheaper quantized variants, drains the
    // queues faster, and serves strictly more.
    let flash_duration = if quick { 1_000_000 } else { 2_000_000 };
    let burst_rps = if quick { 30_000.0 } else { 48_000.0 };
    let base_plan = plan(3_000.0, flash_duration, 8, prepaid, 40_000);
    let burst_plan = LoadPlan {
        seed: SEED + 1,
        duration_us: flash_duration / 4,
        ..plan(burst_rps, flash_duration, 8, prepaid, 40_000)
    };
    let mut flash: Vec<_> = base_plan.generate();
    let offset = flash_duration * 3 / 8;
    flash.extend(burst_plan.generate().into_iter().map(|mut r| {
        r.arrival_us += offset;
        r
    }));
    flash.sort_by_key(|r| r.arrival_us);
    for (i, r) in flash.iter_mut().enumerate() {
        r.id = i as u64; // re-key the merged stream
    }
    let flash_cfg = |brownout: bool| FabricConfig {
        node_weights: vec![1.0; 3],
        serve: ServeConfig {
            gateway: GatewayConfig {
                max_pending_per_tenant: 24,
                max_total_pending: 64,
            },
            ..Default::default()
        },
        fault: FaultPlan {
            enabled: true,
            events: vec![],
            brownout: if brownout {
                BrownoutConfig::enabled()
            } else {
                BrownoutConfig::default()
            },
        },
        ..Default::default()
    };
    let run_flash = |brownout: bool| {
        let cfg = flash_cfg(brownout);
        let mut f = fabric(&cfg, fleet_size);
        f.provision(&base_plan);
        f.run(&flash).expect("flash run")
    };
    let shed_only = run_flash(false);
    let browned = run_flash(true);
    assert!(
        shed_only.fleet.shed_by(ShedReason::Overload)
            + shed_only.fleet.shed_by(ShedReason::TenantBackpressure)
            > 0,
        "the flash crowd must actually overrun admission"
    );
    let brownout_wins = browned.fleet.served > shed_only.fleet.served;
    assert!(
        brownout_wins,
        "brownout must serve strictly more than pure shedding ({} vs {})",
        browned.fleet.served, shed_only.fleet.served
    );
    let p99_held = browned.fleet.p99_ms <= shed_only.fleet.p99_ms;
    assert!(
        p99_held,
        "degraded variants must hold the tail: p99 {} ms vs shed-only {} ms",
        browned.fleet.p99_ms, shed_only.fleet.p99_ms
    );
    let headers_d = [
        "policy",
        "served",
        "overload sheds",
        "deadline sheds",
        "p99 ms",
        "brownout_wins",
        "p99_held",
    ];
    let rows_d = vec![
        vec![
            "shed-only".into(),
            shed_only.fleet.served.to_string(),
            (shed_only.fleet.shed_by(ShedReason::Overload)
                + shed_only.fleet.shed_by(ShedReason::TenantBackpressure))
            .to_string(),
            shed_only
                .fleet
                .shed_by(ShedReason::DeadlineExpired)
                .to_string(),
            fmt(shed_only.fleet.p99_ms, 2),
            "-".into(),
            "-".into(),
        ],
        vec![
            "brownout".into(),
            browned.fleet.served.to_string(),
            (browned.fleet.shed_by(ShedReason::Overload)
                + browned.fleet.shed_by(ShedReason::TenantBackpressure))
            .to_string(),
            browned
                .fleet
                .shed_by(ShedReason::DeadlineExpired)
                .to_string(),
            fmt(browned.fleet.p99_ms, 2),
            if brownout_wins { "yes" } else { "NO" }.into(),
            if p99_held { "yes" } else { "NO" }.into(),
        ],
    ];
    print_table(
        "E20d flash crowd: brownout vs shed-only",
        &headers_d,
        &rows_d,
    );
    save_json("e20_faults_brownout", &headers_d, &rows_d);

    // E20e: retry/backoff. A tight per-tenant pending cap makes bursts
    // shed with TenantBackpressure — transient by definition. The retry
    // loop re-delivers them after jittered exponential backoff, gated by
    // the token bucket and each request's absolute deadline.
    let retry_cfg = FabricConfig {
        node_weights: vec![1.0; 3],
        serve: ServeConfig {
            gateway: GatewayConfig {
                max_pending_per_tenant: 4,
                max_total_pending: 1024,
            },
            ..Default::default()
        },
        ..Default::default()
    };
    // Moderate load — the fleet has headroom, so sheds come from the
    // tight per-tenant cap catching Poisson bursts (transient by
    // definition), not from sustained saturation where a retry could
    // only displace fresh work.
    // Same rate in both modes: node count (and so service capacity) does
    // not scale with fleet size, and full mode already doubles the
    // stream through `flash_duration`.
    let retry_plan_load = plan(2_000.0, flash_duration, 6, prepaid, 30_000);
    let retry_stream = retry_plan_load.generate();
    let mut no_retry = fabric(&retry_cfg, fleet_size);
    no_retry.provision(&retry_plan_load);
    let baseline = no_retry.run(&retry_stream).expect("no-retry baseline");
    let mut with_retry = fabric(&retry_cfg, fleet_size);
    with_retry.provision(&retry_plan_load);
    // Backoff sized against the 30 ms deadlines: a first retry (~10 ms)
    // usually fits, a second (~20 ms on top) usually does not — so the
    // deadline gate is exercised, not just present.
    let policy = RetryPolicy {
        base_backoff_us: 10_000,
        ..RetryPolicy::default()
    };
    let (retried, retry_stats) = with_retry
        .run_with_retries(&retry_stream, &policy)
        .expect("retry run");
    assert!(retry_stats.scheduled > 0, "transient sheds must retry");
    assert!(
        retry_stats.deadline_denied > 0,
        "the deadline gate must actually bite under this load"
    );
    assert!(
        retried.fleet.served >= baseline.fleet.served,
        "retries must not lose work ({} vs {})",
        retried.fleet.served,
        baseline.fleet.served
    );
    let recovered = retry_stats.succeeded;
    assert!(recovered > 0, "some retries must land");
    let headers_e = [
        "policy",
        "served",
        "scheduled",
        "succeeded",
        "attempts_exhausted",
        "deadline_denied",
        "budget_denied",
    ];
    let rows_e = vec![
        vec![
            "no retry".into(),
            baseline.fleet.served.to_string(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
        ],
        vec![
            "retry budget".into(),
            retried.fleet.served.to_string(),
            retry_stats.scheduled.to_string(),
            retry_stats.succeeded.to_string(),
            retry_stats.attempts_exhausted.to_string(),
            retry_stats.deadline_denied.to_string(),
            retry_stats.budget_denied.to_string(),
        ],
    ];
    print_table("E20e retry budget + jittered backoff", &headers_e, &rows_e);
    save_json("e20_faults_retry", &headers_e, &rows_e);

    // E20f: genuine worker death. A DispatchPanic kills node 1's worker
    // for real; the feeder contains it and the run completes.
    let panic_cfg = FabricConfig {
        node_weights: vec![1.0; 3],
        fault: FaultPlan::with_events(vec![FaultEvent {
            node: 1,
            at_us: crash_at,
            kind: FaultKind::DispatchPanic,
        }]),
        ..Default::default()
    };
    let mut fp = fabric(&panic_cfg, fleet_size);
    fp.provision(&p);
    let panic_report = fp
        .run_live(&stream, &ExecConfig::default())
        .expect("run completes despite the dead worker");
    let contained = panic_report.failures.len() == 1 && panic_report.failures[0].node == 1;
    assert!(contained, "exactly one structured NodeFailure expected");
    let headers_f = ["dead node", "reason", "lost requests", "panic_contained"];
    let rows_f = vec![vec![
        panic_report.failures[0].node.to_string(),
        panic_report.failures[0].reason.clone(),
        panic_report.failures[0].lost_requests.to_string(),
        if contained { "yes" } else { "NO" }.into(),
    ]];
    print_table("E20f genuine death containment", &headers_f, &rows_f);
    save_json("e20_faults_panic", &headers_f, &rows_f);

    println!(
        "\nE20 complete: crash recovery conserved {} requests to the query \
         (sim ≡ live: {}), brownout beat shed-only by {} served, \
         {} retries recovered, one panicked worker contained.",
        stream.len(),
        if identical { "yes" } else { "NO" },
        browned.fleet.served - shed_only.fleet.served,
        recovered
    );
}
