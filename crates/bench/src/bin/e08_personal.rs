//! E8 — §III-D: "We could exploit this to train specialized models that
//! are 'overfitted' to a specific user or location."
//!
//! Global vs personalized per-client accuracy after federated training on
//! skewed data, plus the generality each client gives up.

use tinymlops_bench::{fmt, print_table, save_json};
use tinymlops_fed::{mean_gain, partition_dirichlet, personalize, FlConfig, FlServer};
use tinymlops_nn::data::synth_digits;
use tinymlops_nn::model::mlp;
use tinymlops_nn::train::evaluate;
use tinymlops_tensor::TensorRng;

fn main() {
    let seed = 8u64;
    println!("E8: personalization vs global model (seed {seed})");
    let data = synth_digits(2000, 0.08, seed);
    let (train, test) = data.split(0.85, 0);
    let parts = partition_dirichlet(&train, 8, 0.1, seed);

    // Federate first.
    let model = mlp(&[64, 24, 10], &mut TensorRng::seed(seed));
    let mut server = FlServer::new(
        model,
        parts.clone(),
        FlConfig {
            participation: 0.8,
            availability: 0.95,
            seed,
            ..Default::default()
        },
    );
    server.run(15, &test);
    let global_acc = evaluate(&server.global, &test);
    println!("federated global model: {global_acc:.3} on the shared test set");

    let reports = personalize(&server.global, &parts, &test, 4, 0.05, seed);
    let mut rows = Vec::new();
    for r in &reports {
        rows.push(vec![
            r.client.to_string(),
            fmt(f64::from(r.global_acc), 3),
            fmt(f64::from(r.personal_acc), 3),
            fmt(f64::from(r.personal_acc - r.global_acc), 3),
            fmt(f64::from(r.personal_global_acc), 3),
        ]);
    }
    let headers = [
        "client",
        "global on local",
        "personal on local",
        "gain",
        "personal on global",
    ];
    print_table("E8 per-client personalization", &headers, &rows);
    save_json("e08_personal", &headers, &rows);
    let gain = mean_gain(&reports);
    let winners = reports
        .iter()
        .filter(|r| r.personal_acc > r.global_acc)
        .count();
    println!(
        "\nshape check: mean local gain {gain:+.3}; {winners}/{} clients improve locally while \
         their specialized models generalize worse — exactly the 'overfitted to a user' trade.",
        reports.len()
    );
}
