//! E11 — §V: watermarks "are often compared in terms of the trade-off
//! between fidelity, robustness and capacity."
//!
//! Static (white-box) and dynamic (trigger-set) watermarks across the
//! three axes, under pruning / noise / fine-tuning removal attacks.

use tinymlops_bench::{fmt, print_table, save_json};
use tinymlops_ipp::{DynamicWatermark, StaticWatermark};
use tinymlops_nn::data::synth_digits;
use tinymlops_nn::model::mlp;
use tinymlops_nn::train::{evaluate, fit, FitConfig};
use tinymlops_nn::{Adam, Sequential};
use tinymlops_quant::magnitude_prune;
use tinymlops_tensor::TensorRng;

fn main() {
    let seed = 11u64;
    println!("E11: watermark fidelity / robustness / capacity (seed {seed})");
    let data = synth_digits(1500, 0.08, seed);
    let (train, test) = data.split(0.85, 0);
    let mut rng = TensorRng::seed(seed);
    let mut base = mlp(&[64, 32, 10], &mut rng);
    let mut opt = Adam::new(0.005);
    fit(
        &mut base,
        &train,
        &mut opt,
        &FitConfig {
            epochs: 18,
            batch_size: 32,
            ..Default::default()
        },
    );
    let base_acc = evaluate(&base, &test);
    println!("unmarked model accuracy: {base_acc:.3}");

    let attack_prune = |m: &Sequential, s: f32| {
        let mut a = m.clone();
        magnitude_prune(&mut a, s);
        a
    };
    let attack_noise = |m: &Sequential, std: f32| {
        let mut a = m.clone();
        let noise = TensorRng::seed(seed + 1).normal(&[a.num_params()], 0.0, std);
        let params: Vec<f32> = a
            .flat_params()
            .iter()
            .zip(noise.data())
            .map(|(p, n)| p + n)
            .collect();
        a.set_flat_params(&params).expect("same shape");
        a
    };
    let attack_finetune = |m: &Sequential| {
        let mut a = m.clone();
        let mut o = Adam::new(0.001);
        fit(
            &mut a,
            &train,
            &mut o,
            &FitConfig {
                epochs: 2,
                batch_size: 32,
                ..Default::default()
            },
        );
        a
    };

    // Static watermark: capacity sweep × attacks.
    let mut rows = Vec::new();
    for capacity in [16usize, 64, 256] {
        let wm = StaticWatermark::random(capacity, seed * 100 + capacity as u64);
        let mut marked = base.clone();
        wm.embed(&mut marked, &train, 0.05, 6, 0.01, seed);
        let fidelity = evaluate(&marked, &test) - base_acc;
        rows.push(vec![
            format!("static-{capacity}b"),
            capacity.to_string(),
            fmt(f64::from(fidelity), 3),
            fmt(f64::from(wm.ber(&marked)), 3),
            fmt(f64::from(wm.ber(&attack_prune(&marked, 0.3))), 3),
            fmt(f64::from(wm.ber(&attack_prune(&marked, 0.5))), 3),
            fmt(f64::from(wm.ber(&attack_prune(&marked, 0.8))), 3),
            fmt(f64::from(wm.ber(&attack_noise(&marked, 0.02))), 3),
            fmt(f64::from(wm.ber(&attack_finetune(&marked))), 3),
        ]);
    }
    // Dynamic watermark: trigger-set sizes (error rate plays the BER role).
    for k in [8usize, 24, 64] {
        let wm = DynamicWatermark::generate(k, 64, 10, seed * 200 + k as u64);
        let mut marked = base.clone();
        wm.embed(&mut marked, &train, 10, 0.05, seed);
        let fidelity = evaluate(&marked, &test) - base_acc;
        rows.push(vec![
            format!("dynamic-{k}t"),
            k.to_string(),
            fmt(f64::from(fidelity), 3),
            fmt(f64::from(wm.trigger_error(&marked)), 3),
            fmt(f64::from(wm.trigger_error(&attack_prune(&marked, 0.3))), 3),
            fmt(f64::from(wm.trigger_error(&attack_prune(&marked, 0.5))), 3),
            fmt(f64::from(wm.trigger_error(&attack_prune(&marked, 0.8))), 3),
            fmt(f64::from(wm.trigger_error(&attack_noise(&marked, 0.02))), 3),
            fmt(f64::from(wm.trigger_error(&attack_finetune(&marked))), 3),
        ]);
    }
    let headers = [
        "watermark",
        "capacity",
        "fidelity Δacc",
        "BER clean",
        "prune30",
        "prune50",
        "prune80",
        "noise.02",
        "finetune",
    ];
    print_table("E11 fidelity / robustness / capacity", &headers, &rows);
    save_json("e11_watermark", &headers, &rows);

    // False-claim check: wrong key reads chance-level bits; stranger model
    // fails triggers.
    let wm = StaticWatermark::random(64, 777);
    let mut marked = base.clone();
    wm.embed(&mut marked, &train, 0.05, 6, 0.01, seed);
    let imposter = StaticWatermark {
        key_seed: 31337,
        bits: wm.bits.clone(),
    };
    let dynamic = DynamicWatermark::generate(24, 64, 10, 888);
    let stranger = mlp(&[64, 32, 10], &mut TensorRng::seed(4242));
    println!(
        "\nfalse-claim resistance: imposter key BER {:.3} (≈0.5 = chance); \
         stranger trigger error {:.3} (≈0.9 = chance)",
        imposter.ber(&marked),
        dynamic.trigger_error(&stranger)
    );
    println!(
        "shape check: BER grows with attack strength; capacity costs embedding effort; \
         fidelity stays within a few points — the §V trade-off triangle."
    );
}
