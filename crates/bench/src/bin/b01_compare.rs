//! B01-compare — the CI bench-regression gate over `results/BENCH_kernels.json`.
//!
//! `b01_kernels` appends one run per invocation; this helper diffs the
//! newest run against the most recent earlier run of the same mode (CI
//! runs `--quick`, perf PRs append `full` runs — cross-mode shapes don't
//! match, so modes compare within themselves; when no same-mode
//! predecessor exists it falls back to the immediately previous run).
//!
//! **Hard failures** (exit 1): schema drift — wrong `schema_version`,
//! missing/mistyped entry fields — and benchmark groups that existed in
//! the baseline run but vanished from the newest (a silently deleted
//! benchmark is how perf coverage rots). **Report-only**: per-id ns/op
//! and GFLOP/s deltas — shared CI runners are far too noisy to hard-gate
//! on throughput, so regressions are printed for a human, never fatal
//! *by default*.
//!
//! `--fail-on-regression <pct>` opts into a hard throughput gate: any
//! matched id whose ns/op grew by more than `<pct>`% vs the same-mode
//! baseline fails the run. `--groups <a,b,...>` restricts that hard gate
//! to the named benchmark groups (deltas are still *reported* for every
//! id) — CI uses this to gate only the groups whose workloads are
//! long-running enough to be meaningful on a shared runner. The hard
//! gate is skipped (with a note) when the baseline is cross-mode, since
//! quick and full shapes are not comparable.

use tinymlops_bench::{fmt, print_table};

const DEFAULT_PATH: &str = "results/BENCH_kernels.json";

/// Object-field lookup (the vendored `serde_json` shim keys `get` on
/// `Map`, not `Value`).
fn field<'a>(v: &'a serde_json::Value, key: &str) -> Option<&'a serde_json::Value> {
    v.as_object().and_then(|o| o.get(key))
}

/// Field-level schema check for one run entry; returns the violation.
fn validate_entry(entry: &serde_json::Value) -> Result<(), String> {
    let Some(obj) = entry.as_object() else {
        return Err("entry is not an object".into());
    };
    for key in ["id", "group", "shape"] {
        if obj.get(key).and_then(|v| v.as_str()).is_none() {
            return Err(format!("entry missing string field `{key}`"));
        }
    }
    if obj.get("reps").and_then(|v| v.as_u64()).is_none() {
        return Err(format!(
            "entry `{}` missing integer field `reps`",
            obj.get("id").and_then(|v| v.as_str()).unwrap_or("?")
        ));
    }
    if obj.get("ns_per_op").and_then(|v| v.as_f64()).is_none() {
        return Err(format!(
            "entry `{}` missing number field `ns_per_op`",
            obj.get("id").and_then(|v| v.as_str()).unwrap_or("?")
        ));
    }
    // Optional-but-typed fields: null or the right type.
    for (key, ok) in [
        (
            "gflops",
            obj.get("gflops")
                .is_none_or(|v| v.is_null() || v.as_f64().is_some()),
        ),
        (
            "baseline_id",
            obj.get("baseline_id")
                .is_none_or(|v| v.is_null() || v.as_str().is_some()),
        ),
    ] {
        if !ok {
            return Err(format!(
                "entry `{}` has mistyped field `{key}`",
                obj.get("id").and_then(|v| v.as_str()).unwrap_or("?")
            ));
        }
    }
    Ok(())
}

fn entries_of(run: &serde_json::Value) -> Vec<&serde_json::Value> {
    field(run, "entries")
        .and_then(|e| e.as_array())
        .map(|v| v.iter().collect())
        .unwrap_or_default()
}

fn groups_of(run: &serde_json::Value) -> std::collections::BTreeSet<String> {
    entries_of(run)
        .iter()
        .filter_map(|e| field(e, "group").and_then(|g| g.as_str()))
        .map(str::to_string)
        .collect()
}

fn mode_of(run: &serde_json::Value) -> &str {
    field(run, "mode").and_then(|m| m.as_str()).unwrap_or("?")
}

/// Index of the baseline run for `runs[newest]`: the latest earlier run
/// sharing the newest run's mode, else simply the previous run.
fn baseline_index(runs: &[serde_json::Value], newest: usize) -> Option<usize> {
    if newest == 0 {
        return None;
    }
    let mode = mode_of(&runs[newest]);
    (0..newest)
        .rev()
        .find(|i| mode_of(&runs[*i]) == mode)
        .or(Some(newest - 1))
}

/// Opt-in hard-gate knobs parsed from the command line.
#[derive(Default)]
struct GateOpts {
    /// `Some(pct)`: a matched id whose ns/op grew more than `pct`% vs a
    /// same-mode baseline is fatal.
    fail_on_regression: Option<f64>,
    /// When non-empty, the regression gate only applies to these groups.
    groups: std::collections::BTreeSet<String>,
}

impl GateOpts {
    fn gates(&self, group: &str) -> bool {
        self.groups.is_empty() || self.groups.contains(group)
    }
}

fn run_gate(payload: &serde_json::Value, opts: &GateOpts) -> Result<Vec<String>, String> {
    let mut notes = Vec::new();
    if field(payload, "schema_version").and_then(|v| v.as_u64()) != Some(1) {
        return Err("schema drift: schema_version != 1".into());
    }
    let runs = field(payload, "runs")
        .and_then(|r| r.as_array())
        .ok_or("schema drift: no `runs` array")?;
    if runs.is_empty() {
        return Err("schema drift: empty `runs` array".into());
    }
    let newest_idx = runs.len() - 1;
    let newest = &runs[newest_idx];
    for entry in entries_of(newest) {
        validate_entry(entry).map_err(|e| format!("schema drift in newest run: {e}"))?;
    }
    if entries_of(newest).is_empty() {
        return Err("schema drift: newest run has no entries".into());
    }

    let Some(base_idx) = baseline_index(runs, newest_idx) else {
        notes.push("first recorded run: nothing to compare against, gate passes".into());
        return Ok(notes);
    };
    let baseline = &runs[base_idx];
    for entry in entries_of(baseline) {
        validate_entry(entry).map_err(|e| format!("schema drift in baseline run: {e}"))?;
    }
    notes.push(format!(
        "comparing run #{} ({} mode) against run #{} ({} mode)",
        newest_idx,
        mode_of(newest),
        base_idx,
        mode_of(baseline),
    ));

    // Group-coverage gate: every baseline group must still exist. Hard
    // only within a mode — a cross-mode fallback baseline (e.g. the
    // first quick run after a history of full runs) may legitimately
    // cover different groups, so there it reports instead of failing.
    let missing: Vec<String> = groups_of(baseline)
        .difference(&groups_of(newest))
        .cloned()
        .collect();
    if !missing.is_empty() {
        if mode_of(newest) == mode_of(baseline) {
            return Err(format!(
                "benchmark group(s) vanished from the newest run: {}",
                missing.join(", ")
            ));
        }
        notes.push(format!(
            "group(s) absent vs cross-mode baseline (report-only): {}",
            missing.join(", ")
        ));
    }

    // Per-id deltas for ids present in both runs: report-only, except
    // where `--fail-on-regression` arms the hard gate (same-mode
    // baselines only — quick and full shapes are not comparable).
    let same_mode = mode_of(newest) == mode_of(baseline);
    let armed = opts.fail_on_regression.is_some() && same_mode;
    if opts.fail_on_regression.is_some() && !same_mode {
        notes.push("cross-mode baseline: --fail-on-regression gate skipped".into());
    }
    let base_by_id: std::collections::BTreeMap<&str, &serde_json::Value> = entries_of(baseline)
        .into_iter()
        .filter_map(|e| field(e, "id").and_then(|i| i.as_str()).map(|id| (id, e)))
        .collect();
    let mut rows = Vec::new();
    let mut matched = 0usize;
    let mut fresh = 0usize;
    let mut violations: Vec<String> = Vec::new();
    for entry in entries_of(newest) {
        let id = field(entry, "id").and_then(|i| i.as_str()).unwrap_or("?");
        let Some(base) = base_by_id.get(id) else {
            fresh += 1;
            continue;
        };
        matched += 1;
        let new_ns = field(entry, "ns_per_op")
            .and_then(|v| v.as_f64())
            .unwrap_or(0.0);
        let base_ns = field(base, "ns_per_op")
            .and_then(|v| v.as_f64())
            .unwrap_or(0.0);
        let delta_pct = if base_ns > 0.0 {
            (new_ns - base_ns) / base_ns * 100.0
        } else {
            0.0
        };
        if armed {
            let group = field(entry, "group")
                .and_then(|g| g.as_str())
                .unwrap_or("?");
            let limit = opts.fail_on_regression.unwrap_or(f64::INFINITY);
            if opts.gates(group) && delta_pct > limit {
                violations.push(format!(
                    "{id} ({group}): {} -> {} ns/op (+{}%, limit +{}%)",
                    fmt(base_ns, 0),
                    fmt(new_ns, 0),
                    fmt(delta_pct, 1),
                    fmt(limit, 1)
                ));
            }
        }
        let gflops = |v: &serde_json::Value| field(v, "gflops").and_then(|g| g.as_f64());
        rows.push(vec![
            id.to_string(),
            fmt(base_ns, 0),
            fmt(new_ns, 0),
            format!(
                "{}{}%",
                if delta_pct >= 0.0 { "+" } else { "" },
                fmt(delta_pct, 1)
            ),
            gflops(base).map_or("-".into(), |g| fmt(g, 2)),
            gflops(entry).map_or("-".into(), |g| fmt(g, 2)),
        ]);
    }
    if !rows.is_empty() {
        print_table(
            "b01_compare: per-id deltas (report-only; shared runners are noisy)",
            &[
                "id",
                "base ns/op",
                "new ns/op",
                "Δ ns/op",
                "base GF/s",
                "new GF/s",
            ],
            &rows,
        );
    }
    if !violations.is_empty() {
        return Err(format!(
            "ns/op regression(s) past --fail-on-regression threshold:\n  {}",
            violations.join("\n  ")
        ));
    }
    notes.push(format!(
        "{matched} id(s) matched, {fresh} new id(s), {} group(s) covered",
        groups_of(newest).len()
    ));
    Ok(notes)
}

fn main() {
    let mut path = DEFAULT_PATH.to_string();
    let mut opts = GateOpts::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fail-on-regression" => {
                let pct = args
                    .next()
                    .and_then(|v| v.parse::<f64>().ok())
                    .filter(|p| p.is_finite() && *p >= 0.0);
                match pct {
                    Some(p) => opts.fail_on_regression = Some(p),
                    None => {
                        eprintln!("b01_compare: --fail-on-regression needs a non-negative percent");
                        std::process::exit(1);
                    }
                }
            }
            "--groups" => {
                let Some(list) = args.next() else {
                    eprintln!("b01_compare: --groups needs a comma-separated list");
                    std::process::exit(1);
                };
                opts.groups.extend(
                    list.split(',')
                        .filter(|g| !g.is_empty())
                        .map(str::to_string),
                );
            }
            flag if flag.starts_with("--") => {
                eprintln!("b01_compare: unknown flag {flag}");
                std::process::exit(1);
            }
            positional => path = positional.to_string(),
        }
    }
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("b01_compare: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let payload: serde_json::Value = match serde_json::from_slice(&bytes) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("b01_compare: {path} does not parse: {e:?}");
            std::process::exit(1);
        }
    };
    match run_gate(&payload, &opts) {
        Ok(notes) => {
            for note in notes {
                println!("b01_compare: {note}");
            }
            println!("b01_compare: PASS");
        }
        Err(why) => {
            eprintln!("b01_compare: FAIL — {why}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: &str, group: &str, ns: f64) -> serde_json::Value {
        serde_json::json!({
            "id": id, "group": group, "shape": "s", "reps": 1u64,
            "ns_per_op": ns, "gflops": serde_json::Value::Null,
            "baseline_id": serde_json::Value::Null,
            "speedup_vs_baseline": serde_json::Value::Null,
        })
    }

    fn payload(runs: Vec<serde_json::Value>) -> serde_json::Value {
        serde_json::json!({ "bench": "b01_kernels", "schema_version": 1u64, "runs": runs })
    }

    fn run(mode: &str, entries: Vec<serde_json::Value>) -> serde_json::Value {
        serde_json::json!({ "mode": mode, "unix_time_s": 0u64, "entries": entries })
    }

    #[test]
    fn single_run_passes() {
        let p = payload(vec![run("full", vec![entry("a", "g", 10.0)])]);
        assert!(run_gate(&p, &GateOpts::default()).is_ok());
    }

    #[test]
    fn matching_runs_pass_and_deltas_are_report_only() {
        let p = payload(vec![
            run("full", vec![entry("a", "g", 10.0)]),
            // 10x slower: must still pass (report-only deltas).
            run("full", vec![entry("a", "g", 100.0)]),
        ]);
        assert!(run_gate(&p, &GateOpts::default()).is_ok());
    }

    #[test]
    fn vanished_group_fails() {
        let p = payload(vec![
            run("full", vec![entry("a", "g", 10.0), entry("b", "h", 5.0)]),
            run("full", vec![entry("a", "g", 10.0)]),
        ]);
        let err = run_gate(&p, &GateOpts::default()).unwrap_err();
        assert!(err.contains("vanished"), "{err}");
        assert!(err.contains('h'), "{err}");
    }

    #[test]
    fn cross_mode_group_gap_is_report_only() {
        // First quick run after a full-only history: the fallback
        // baseline is cross-mode, so a group gap must not fail the gate.
        let p = payload(vec![
            run("full", vec![entry("a", "g", 10.0), entry("b", "h", 5.0)]),
            run("quick", vec![entry("aq", "g", 1.0)]),
        ]);
        let notes = run_gate(&p, &GateOpts::default()).expect("cross-mode gap is not fatal");
        assert!(
            notes
                .iter()
                .any(|n| n.contains("cross-mode") && n.contains('h')),
            "{notes:?}"
        );
    }

    #[test]
    fn baseline_prefers_same_mode() {
        let runs = vec![
            run("quick", vec![entry("q", "g", 1.0)]),
            run("full", vec![entry("f", "g", 1.0)]),
            run("quick", vec![entry("q", "g", 2.0)]),
        ];
        assert_eq!(baseline_index(&runs, 2), Some(0), "skips the full run");
        assert_eq!(baseline_index(&runs, 1), Some(0), "falls back to previous");
        assert_eq!(baseline_index(&runs, 0), None);
    }

    #[test]
    fn schema_drift_fails() {
        let bad_version = serde_json::json!({ "schema_version": 2u64, "runs": [] });
        assert!(run_gate(&bad_version, &GateOpts::default()).is_err());
        let missing_field = payload(vec![run(
            "full",
            vec![serde_json::json!({ "id": "a", "group": "g", "shape": "s" })],
        )]);
        let err = run_gate(&missing_field, &GateOpts::default()).unwrap_err();
        assert!(err.contains("reps"), "{err}");
    }

    fn armed(pct: f64, groups: &[&str]) -> GateOpts {
        GateOpts {
            fail_on_regression: Some(pct),
            groups: groups.iter().map(|g| g.to_string()).collect(),
        }
    }

    #[test]
    fn regression_over_threshold_fails() {
        let p = payload(vec![
            run("full", vec![entry("a", "g", 100.0)]),
            run("full", vec![entry("a", "g", 200.0)]), // +100%
        ]);
        let err = run_gate(&p, &armed(50.0, &[])).unwrap_err();
        assert!(err.contains("regression"), "{err}");
        assert!(err.contains("a (g)"), "{err}");
    }

    #[test]
    fn regression_within_threshold_passes() {
        let p = payload(vec![
            run("full", vec![entry("a", "g", 100.0)]),
            run("full", vec![entry("a", "g", 140.0)]), // +40%
        ]);
        assert!(run_gate(&p, &armed(50.0, &[])).is_ok());
    }

    #[test]
    fn groups_filter_limits_gate() {
        // Both ids regress 10x, but only group `g` is gated.
        let base = vec![entry("a", "g", 10.0), entry("b", "h", 10.0)];
        let next = vec![entry("a", "g", 100.0), entry("b", "h", 100.0)];
        let p = payload(vec![run("full", base), run("full", next)]);
        let err = run_gate(&p, &armed(50.0, &["g"])).unwrap_err();
        assert!(err.contains("a (g)"), "{err}");
        assert!(!err.contains("b (h)"), "ungated group must not fail: {err}");
        // Gating only the clean group passes despite `h`'s regression...
        let clean = payload(vec![
            run("full", vec![entry("a", "g", 10.0), entry("b", "h", 10.0)]),
            run("full", vec![entry("a", "g", 10.0), entry("b", "h", 100.0)]),
        ]);
        assert!(run_gate(&clean, &armed(50.0, &["g"])).is_ok());
    }

    #[test]
    fn cross_mode_baseline_skips_regression_gate() {
        // Fallback baseline has a different mode: huge delta, still ok.
        let p = payload(vec![
            run("full", vec![entry("a", "g", 1.0)]),
            run("quick", vec![entry("a", "g", 1000.0)]),
        ]);
        let notes = run_gate(&p, &armed(1.0, &[])).expect("cross-mode gate must skip");
        assert!(
            notes.iter().any(|n| n.contains("skipped")),
            "expected skip note: {notes:?}"
        );
    }
}
