//! F1 — Figure 1: "Overview of the different functionality of a TinyMLOps
//! system."
//!
//! The paper's only figure is the functionality diagram; this binary runs
//! the full lifecycle on a 200-device fleet and prints the coverage matrix
//! with per-stage outcomes and timing.

use tinymlops_bench::{fmt, print_table, save_json, time_ms};
use tinymlops_core::{run_lifecycle, LifecycleConfig};

fn main() {
    let cfg = LifecycleConfig {
        fleet_size: 200,
        dataset_size: 1500,
        fl_clients: 10,
        fl_rounds: 6,
        seed: 42,
    };
    println!(
        "F1: Figure-1 functionality coverage ({} devices, seed {})",
        cfg.fleet_size, cfg.seed
    );
    let (report, total_ms) = time_ms(|| run_lifecycle(&cfg).expect("lifecycle"));
    let rows: Vec<Vec<String>> = report
        .stages
        .iter()
        .map(|s| {
            vec![
                s.stage.to_string(),
                if s.ok { "✓".into() } else { "✗".into() },
                s.detail.clone(),
            ]
        })
        .collect();
    let headers = ["Figure-1 block", "ok", "outcome"];
    print_table("F1 functionality coverage", &headers, &rows);
    save_json("f1_platform", &headers, &rows);
    println!(
        "\nlifecycle completed in {} ms; base accuracy {:.3}; all stages ok: {}",
        fmt(total_ms, 0),
        report.base_accuracy,
        report.all_ok()
    );
}
