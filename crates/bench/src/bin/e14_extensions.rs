//! E14 — the paper's forward-pointing claims, implemented and measured:
//!
//! (a) §III-D "catastrophic forgetting" — naive sequential fine-tuning vs
//!     reservoir replay across buffer sizes;
//! (b) §III-D "the data remains completely unlabeled … semi-supervised" —
//!     seed-anchored pseudo-label federated learning;
//! (c) §III-A "1 bit (binary) weights and operations" — post-hoc
//!     binarization vs binarization-aware training (the E1 follow-up);
//! (d) §V "weight scrambling" — the keyed-permutation functional lock.

use tinymlops_bench::{fmt, print_table, save_json, time_ms};
use tinymlops_fed::{
    forgetting, partition_iid, run_semi_supervised, train_sequential, ReplayBuffer, SemiConfig,
};
use tinymlops_ipp::{descramble, scramble};
use tinymlops_nn::data::synth_digits;
use tinymlops_nn::model::mlp;
use tinymlops_nn::train::{evaluate, fit, FitConfig};
use tinymlops_nn::{Adam, Dataset};
use tinymlops_quant::{binary_aware_finetune, export_binary, BinaryAwareConfig};
use tinymlops_tensor::TensorRng;

fn main() {
    let seed = 14u64;
    println!("E14: extension features (seed {seed})");

    // ── (a) Catastrophic forgetting.
    let all = synth_digits(2000, 0.08, seed);
    let split_classes = |lo: usize, hi: usize| -> (Dataset, Dataset) {
        let idx: Vec<usize> = (0..all.len())
            .filter(|&i| all.y[i] >= lo && all.y[i] < hi)
            .collect();
        all.subset(&idx).split(0.8, 5)
    };
    let phases = vec![split_classes(0, 5), split_classes(5, 10)];
    let mut rows = Vec::new();
    for (name, capacity) in [
        ("naive (no replay)", 0usize),
        ("replay-50", 50),
        ("replay-150", 150),
        ("replay-400", 400),
    ] {
        let mut model = mlp(&[64, 32, 10], &mut TensorRng::seed(3));
        let matrix = if capacity == 0 {
            train_sequential(&mut model, &phases, None, 8, 0.05, 0)
        } else {
            let mut buf = ReplayBuffer::new(capacity, 64, 10, 1);
            train_sequential(&mut model, &phases, Some(&mut buf), 8, 0.05, 0)
        };
        let last = matrix.last().expect("phases ran");
        rows.push(vec![
            name.to_string(),
            fmt(f64::from(matrix[0][0]), 3),
            fmt(f64::from(last[0]), 3),
            fmt(f64::from(last[1]), 3),
            fmt(f64::from(forgetting(&matrix)), 3),
        ]);
    }
    let headers = [
        "strategy",
        "task1 after task1",
        "task1 final",
        "task2 final",
        "forgetting",
    ];
    print_table(
        "E14a catastrophic forgetting (digits 0-4 then 5-9)",
        &headers,
        &rows,
    );
    save_json("e14_continual", &headers, &rows);

    // ── (b) Semi-supervised FL from a tiny labelled seed.
    let data = synth_digits(2400, 0.08, seed);
    let (train, test) = data.split(0.85, 0);
    let (seed_set, unlabeled_pool) = train.split(0.06, 1);
    let clients = partition_iid(&unlabeled_pool, 8, 2);
    let mut model = mlp(&[64, 24, 10], &mut TensorRng::seed(3));
    let mut opt = Adam::new(0.005);
    fit(
        &mut model,
        &seed_set,
        &mut opt,
        &FitConfig {
            epochs: 20,
            batch_size: 16,
            ..Default::default()
        },
    );
    let seed_only = evaluate(&model, &test);
    let stats = run_semi_supervised(
        &mut model,
        &seed_set,
        &clients,
        &test,
        30,
        &SemiConfig::default(),
    );
    let mut b_rows = vec![vec![
        seed_set.len().to_string(),
        unlabeled_pool.len().to_string(),
        fmt(f64::from(seed_only), 3),
        fmt(f64::from(stats.last().map_or(0.0, |s| s.accuracy)), 3),
        fmt(
            f64::from(stats.last().map_or(0.0, |s| s.pseudo_label_rate)),
            2,
        ),
        fmt(
            f64::from(stats.last().map_or(0.0, |s| s.pseudo_label_accuracy)),
            3,
        ),
    ]];
    let b_headers = [
        "labelled seed",
        "unlabeled pool",
        "seed-only acc",
        "semi-FL acc (30 rds)",
        "pseudo-label rate",
        "pseudo-label acc",
    ];
    print_table(
        "E14b semi-supervised federated learning",
        &b_headers,
        &b_rows,
    );
    save_json("e14_semi", &b_headers, &b_rows);
    b_rows.clear();

    // ── (c) Binary-aware training vs post-hoc binarization.
    let bdata = synth_digits(1500, 0.08, seed + 1);
    let (btrain, btest) = bdata.split(0.85, 0);
    let mut bmodel = mlp(&[64, 48, 10], &mut TensorRng::seed(7));
    let mut bopt = Adam::new(0.005);
    fit(
        &mut bmodel,
        &btrain,
        &mut bopt,
        &FitConfig {
            epochs: 15,
            batch_size: 32,
            ..Default::default()
        },
    );
    let f32_acc = evaluate(&bmodel, &btest);
    let cfg = BinaryAwareConfig::default();
    let (_, posthoc) = export_binary(&bmodel, &cfg);
    let posthoc_acc = evaluate(&posthoc, &btest);
    let mut aware_model = bmodel.clone();
    binary_aware_finetune(&mut aware_model, &btrain, &cfg);
    let (_, aware) = export_binary(&aware_model, &cfg);
    let aware_acc = evaluate(&aware, &btest);
    let c_rows = vec![vec![
        fmt(f64::from(f32_acc), 3),
        fmt(f64::from(posthoc_acc), 3),
        fmt(f64::from(aware_acc), 3),
        fmt(f64::from(aware_acc - posthoc_acc), 3),
    ]];
    let c_headers = [
        "f32 acc",
        "post-hoc 1-bit acc",
        "binary-aware 1-bit acc",
        "recovered",
    ];
    print_table(
        "E14c binarization-aware training (STE)",
        &c_headers,
        &c_rows,
    );
    save_json("e14_binary_aware", &c_headers, &c_rows);

    // ── (d) Weight scrambling: the functional lock and its cost.
    let key = [14u8; 32];
    let mut locked = bmodel.clone();
    let (_, scramble_ms) = time_ms(|| scramble(&mut locked, &key));
    let locked_acc = evaluate(&locked, &btest);
    let mut unlocked = locked.clone();
    let (_, descramble_ms) = time_ms(|| descramble(&mut unlocked, &key));
    let unlocked_acc = evaluate(&unlocked, &btest);
    let mut wrong = locked.clone();
    descramble(&mut wrong, &[99u8; 32]);
    let wrong_acc = evaluate(&wrong, &btest);
    let d_rows = vec![vec![
        fmt(f64::from(f32_acc), 3),
        fmt(f64::from(locked_acc), 3),
        fmt(f64::from(unlocked_acc), 3),
        fmt(f64::from(wrong_acc), 3),
        fmt(scramble_ms, 3),
        fmt(descramble_ms, 3),
    ]];
    let d_headers = [
        "base acc",
        "scrambled acc",
        "unlocked acc",
        "wrong-key acc",
        "scramble ms",
        "descramble ms",
    ];
    print_table("E14d keyed weight scrambling (§V)", &d_headers, &d_rows);
    save_json("e14_scramble", &d_headers, &d_rows);
    println!(
        "\nshape check: replay buys back almost all forgotten accuracy at 150-example cost; \
         unlabeled fleets lift a weak seed model; STE training rescues 1-bit deployment; \
         scrambling is a microsecond-scale functional lock."
    );
}
