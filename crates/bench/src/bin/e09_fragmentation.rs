//! E9 — §IV: the fragmented landscape, the compute marketplace, and
//! edge-cloud model splitting.
//!
//! (a) capability/portability matrix across the six device classes,
//! (b) marketplace offload vs local-only execution,
//! (c) optimal split layer vs uplink bandwidth (Neurosurgeon-style sweep).

use tinymlops_bench::{fmt, print_table, save_json};
use tinymlops_deploy::{all_splits, best_split, local_execution, Marketplace, Workload};
use tinymlops_device::{
    default_mix, inference_cost, DeviceClass, Fleet, NetworkKind, NumericScheme,
};
use tinymlops_nn::model::mlp;
use tinymlops_nn::profile::profile;
use tinymlops_tensor::TensorRng;

fn main() {
    let seed = 9u64;
    println!("E9: fragmentation, marketplace, edge-cloud split (seed {seed})");

    // (a) Portability matrix: scheme support and latency per class for a
    // 2.4M-MAC workload (a small CNN-scale job).
    let macs = 2_400_000u64;
    let mut rows = Vec::new();
    for class in DeviceClass::all() {
        let p = class.profile();
        let mut cells = vec![class.name().to_string()];
        for scheme in [
            NumericScheme::F32,
            NumericScheme::Int8,
            NumericScheme::Int4,
            NumericScheme::Int2,
            NumericScheme::Binary,
        ] {
            cells.push(match inference_cost(&p, macs, scheme) {
                Some(c) => format!("{:.1}ms", c.latency_ms),
                None => "✗".to_string(),
            });
        }
        cells.push(if p.has_spe { "yes".into() } else { "no".into() });
        rows.push(cells);
    }
    let headers = ["class", "f32", "int8", "int4", "int2", "binary", "SPE"];
    print_table("E9a capability matrix (2.4M-MAC job)", &headers, &rows);
    save_json("e09_capability", &headers, &rows);

    // (b) Marketplace vs local-only across a fleet.
    let fleet = Fleet::generate(120, &default_mix(), seed);
    let market = Marketplace::spawn(fleet.devices.clone());
    let workload = Workload {
        macs: 50_000_000,
        input_bytes: 4096,
        scheme: NumericScheme::Int8,
        deadline_ms: 1000.0,
    };
    let mut local_ok = 0usize;
    let mut local_latency = 0.0f64;
    let mut offload_better = 0usize;
    let mut market_latency = 0.0f64;
    let mut placed = 0usize;
    for device in &fleet.devices {
        let local = local_execution(device, &workload);
        if let Some(l) = &local {
            local_ok += 1;
            local_latency += l.latency_ms;
        }
        if let Ok(bid) = market.place(&workload) {
            placed += 1;
            market_latency += bid.latency_ms;
            if local.as_ref().is_none_or(|l| bid.latency_ms < l.latency_ms) {
                offload_better += 1;
            }
        }
    }
    market.shutdown();
    let b_rows = vec![vec![
        format!("{}/{}", local_ok, fleet.devices.len()),
        fmt(local_latency / local_ok.max(1) as f64, 1),
        format!("{}/{}", placed, fleet.devices.len()),
        fmt(market_latency / placed.max(1) as f64, 1),
        format!("{}/{}", offload_better, fleet.devices.len()),
    ]];
    let b_headers = [
        "local feasible",
        "mean local ms",
        "marketplace placed",
        "mean market ms",
        "offload wins",
    ];
    print_table(
        "E9b marketplace vs local-only (50M-MAC job, 1s deadline)",
        &b_headers,
        &b_rows,
    );
    save_json("e09_marketplace", &b_headers, &b_rows);

    // (c) Split-point sweep: where to cut the model as bandwidth grows.
    // Device: an M0-class sensor (2M MACs/s), where compute is expensive.
    // Architecture: a feature-extractor bottleneck (1024→64) followed by a
    // wide head — the shape where a *middle* split pays, because the
    // bottleneck activation (256 B) is 16x smaller than the raw input.
    let model = mlp(&[1024, 64, 512, 256, 10], &mut TensorRng::seed(seed));
    let prof = profile(&model, &[1024]);
    let device_rate = DeviceClass::McuM0.profile().macs_per_sec;
    let cloud_rate = 1.0e11;
    let input_bytes = 1024 * 4;
    let mut c_rows = Vec::new();
    for &bw in &[1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9] {
        let mut net = NetworkKind::Wifi.model();
        net.bandwidth_bps = bw;
        net.rtt_ms = 5.0;
        let plan = best_split(&prof, input_bytes, device_rate, cloud_rate, &net).expect("plan");
        c_rows.push(vec![
            format!("{bw:.0e}"),
            format!("{}/{}", plan.split, prof.len()),
            fmt(plan.device_ms, 2),
            fmt(plan.upload_ms, 2),
            fmt(plan.cloud_ms, 4),
            fmt(plan.total_ms, 2),
        ]);
    }
    let c_headers = [
        "uplink bps",
        "split (device layers)",
        "device ms",
        "upload ms",
        "cloud ms",
        "total ms",
    ];
    print_table(
        "E9c optimal split vs bandwidth (M0 device, bottleneck MLP 1024-64-512-256-10)",
        &c_headers,
        &c_rows,
    );
    save_json("e09_split", &c_headers, &c_rows);
    // Also emit the full latency curve at one bandwidth for the figure.
    let mut net = NetworkKind::Wifi.model();
    net.bandwidth_bps = 1e5;
    net.rtt_ms = 5.0;
    let curve: Vec<Vec<String>> = all_splits(&prof, input_bytes, device_rate, cloud_rate, &net)
        .iter()
        .map(|p| vec![p.split.to_string(), fmt(p.total_ms, 3)])
        .collect();
    save_json("e09_split_curve", &["split", "total_ms"], &curve);
    println!(
        "\nshape check: low bandwidth → compute on device; high bandwidth → offload early. \
         The crossover walks through the middle layers exactly as §IV's hybrid vision expects."
    );
}
