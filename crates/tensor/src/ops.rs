//! Element-wise and reduction operations.

use crate::{Tensor, TensorError};

impl Tensor {
    /// Element-wise addition.
    pub fn add(&self, rhs: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_with(rhs, "add", |a, b| a + b)
    }

    /// Element-wise subtraction.
    pub fn sub(&self, rhs: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_with(rhs, "sub", |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    pub fn mul(&self, rhs: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_with(rhs, "mul", |a, b| a * b)
    }

    /// Apply `f` to every element, producing a new tensor.
    #[must_use]
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor::from_vec(self.data().iter().map(|&x| f(x)).collect(), self.shape())
    }

    /// Apply `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in self.data_mut() {
            *x = f(*x);
        }
    }

    /// Multiply every element by a scalar.
    #[must_use]
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// `self += alpha * rhs` in place (the AXPY of every optimizer step).
    pub fn axpy(&mut self, alpha: f32, rhs: &Tensor) -> Result<(), TensorError> {
        if self.shape() != rhs.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "axpy",
                lhs: self.shape().to_vec(),
                rhs: rhs.shape().to_vec(),
            });
        }
        for (a, b) in self.data_mut().iter_mut().zip(rhs.data()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Add a `[n]` bias vector to every row of an `[m,n]` matrix.
    pub fn add_row_vector(&self, bias: &Tensor) -> Result<Tensor, TensorError> {
        let n = self.cols();
        if bias.len() != n {
            return Err(TensorError::ShapeMismatch {
                op: "add_row_vector",
                lhs: self.shape().to_vec(),
                rhs: bias.shape().to_vec(),
            });
        }
        let mut out = self.clone();
        let b = bias.data();
        for r in 0..out.rows() {
            for (x, bv) in out.row_mut(r).iter_mut().zip(b) {
                *x += bv;
            }
        }
        Ok(out)
    }

    /// Sum of all elements.
    #[must_use]
    pub fn sum(&self) -> f32 {
        self.data().iter().sum()
    }

    /// Mean of all elements (0 for empty tensors).
    #[must_use]
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Maximum element (−∞ for empty tensors).
    #[must_use]
    pub fn max(&self) -> f32 {
        self.data()
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (+∞ for empty tensors).
    #[must_use]
    pub fn min(&self) -> f32 {
        self.data().iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Squared L2 norm.
    #[must_use]
    pub fn norm_sq(&self) -> f32 {
        self.data().iter().map(|x| x * x).sum()
    }

    /// L2 norm.
    #[must_use]
    pub fn norm(&self) -> f32 {
        self.norm_sq().sqrt()
    }

    /// Index of the maximum element of a vector (first on ties).
    #[must_use]
    pub fn argmax(&self) -> usize {
        let mut best = 0;
        let mut best_v = f32::NEG_INFINITY;
        for (i, &v) in self.data().iter().enumerate() {
            if v > best_v {
                best_v = v;
                best = i;
            }
        }
        best
    }

    /// Per-row argmax for a matrix: `[m,n] → Vec` of length `m`.
    #[must_use]
    pub fn argmax_rows(&self) -> Vec<usize> {
        (0..self.rows())
            .map(|r| {
                let row = self.row(r);
                let mut best = 0;
                let mut best_v = f32::NEG_INFINITY;
                for (i, &v) in row.iter().enumerate() {
                    if v > best_v {
                        best_v = v;
                        best = i;
                    }
                }
                best
            })
            .collect()
    }

    /// Numerically-stable row-wise softmax.
    #[must_use]
    pub fn softmax_rows(&self) -> Tensor {
        let mut out = self.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            if sum > 0.0 {
                for v in row.iter_mut() {
                    *v /= sum;
                }
            }
        }
        out
    }

    /// Column-wise sum of a matrix: `[m,n] → [n]`.
    #[must_use]
    pub fn sum_rows(&self) -> Tensor {
        let n = self.cols();
        let mut out = vec![0.0; n];
        for r in 0..self.rows() {
            for (o, v) in out.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        Tensor::from_vec(out, &[n])
    }

    fn zip_with(
        &self,
        rhs: &Tensor,
        op: &'static str,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Tensor, TensorError> {
        if self.shape() != rhs.shape() {
            return Err(TensorError::ShapeMismatch {
                op,
                lhs: self.shape().to_vec(),
                rhs: rhs.shape().to_vec(),
            });
        }
        Ok(Tensor::from_vec(
            self.data()
                .iter()
                .zip(rhs.data())
                .map(|(&a, &b)| f(a, b))
                .collect(),
            self.shape(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32]) -> Tensor {
        Tensor::vector(v)
    }

    #[test]
    fn add_sub_mul() {
        let a = t(&[1.0, 2.0]);
        let b = t(&[3.0, 5.0]);
        assert_eq!(a.add(&b).unwrap().data(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).unwrap().data(), &[2.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().data(), &[3.0, 10.0]);
    }

    #[test]
    fn shape_mismatch_is_error() {
        let a = t(&[1.0, 2.0]);
        let b = t(&[1.0, 2.0, 3.0]);
        assert!(a.add(&b).is_err());
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = t(&[1.0, 1.0]);
        a.axpy(2.0, &t(&[1.0, 3.0])).unwrap();
        assert_eq!(a.data(), &[3.0, 7.0]);
    }

    #[test]
    fn add_row_vector_broadcasts() {
        let m = Tensor::from_vec(vec![0.0, 0.0, 1.0, 1.0], &[2, 2]);
        let b = t(&[10.0, 20.0]);
        let out = m.add_row_vector(&b).unwrap();
        assert_eq!(out.data(), &[10.0, 20.0, 11.0, 21.0]);
    }

    #[test]
    fn reductions() {
        let a = t(&[1.0, -2.0, 3.0]);
        assert_eq!(a.sum(), 2.0);
        assert_eq!(a.max(), 3.0);
        assert_eq!(a.min(), -2.0);
        assert!((a.mean() - 2.0 / 3.0).abs() < 1e-6);
        assert!((a.norm_sq() - 14.0).abs() < 1e-6);
    }

    #[test]
    fn argmax_first_on_ties() {
        assert_eq!(t(&[1.0, 3.0, 3.0]).argmax(), 1);
    }

    #[test]
    fn softmax_rows_sums_to_one() {
        let m = Tensor::from_vec(vec![1.0, 2.0, 3.0, 1.0, 1.0, 1.0], &[2, 3]);
        let s = m.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // Uniform logits → uniform distribution.
        for &v in s.row(1) {
            assert!((v - 1.0 / 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let m = Tensor::from_vec(vec![1000.0, 1001.0], &[1, 2]);
        let s = m.softmax_rows();
        assert!(s.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn argmax_rows_per_row() {
        let m = Tensor::from_vec(vec![0.0, 9.0, 5.0, 1.0], &[2, 2]);
        assert_eq!(m.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn sum_rows_collapses_columns() {
        let m = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(m.sum_rows().data(), &[4.0, 6.0]);
    }

    #[test]
    fn map_and_scale() {
        let a = t(&[1.0, -1.0]);
        assert_eq!(a.map(f32::abs).data(), &[1.0, 1.0]);
        assert_eq!(a.scale(3.0).data(), &[3.0, -3.0]);
    }
}
