//! Streaming and batch statistics shared across the workspace.
//!
//! The observability crate (drift detection, §III-B) and the experiment
//! harness both need robust summary statistics; they live here next to the
//! data they summarize.

/// Streaming mean/variance via Welford's algorithm — O(1) memory, numerically
/// stable, suitable for on-device telemetry.
#[derive(Debug, Clone)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for RunningStats {
    fn default() -> Self {
        Self::new()
    }
}

impl RunningStats {
    /// Fresh accumulator.
    #[must_use]
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Absorb one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than 2 samples).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (+∞ when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (−∞ when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Reconstruct an accumulator from a five-number summary
    /// `(count, mean, population std, min, max)` — the inverse of reading
    /// those fields off a finished accumulator. Lets an aggregator absorb
    /// already-summarized remote series (e.g. per-node telemetry timer
    /// summaries) into a running sink via [`RunningStats::merge`], exactly
    /// for count/mean/min/max and to pooled-variance accuracy for std.
    #[must_use]
    pub fn from_summary(count: u64, mean: f64, std: f64, min: f64, max: f64) -> Self {
        if count == 0 {
            return RunningStats::new();
        }
        RunningStats {
            n: count,
            mean,
            m2: std * std * count as f64,
            min,
            max,
        }
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n_total = self.n + other.n;
        let delta = other.mean - self.mean;
        self.mean += delta * other.n as f64 / n_total as f64;
        self.m2 += other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n_total as f64;
        self.n = n_total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Fixed-bin histogram over a known range; out-of-range values clamp to the
/// edge bins so nothing is silently dropped.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// A histogram with `bins` equal-width bins over `[lo, hi)`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0 && hi > lo, "histogram needs bins > 0 and hi > lo");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Record one value.
    pub fn push(&mut self, x: f64) {
        let bins = self.counts.len();
        let pos = (x - self.lo) / (self.hi - self.lo) * bins as f64;
        let idx = (pos.floor().max(0.0) as usize).min(bins - 1);
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Raw bin counts.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Normalized bin probabilities with Laplace smoothing `eps` (so
    /// divergence measures stay finite on empty bins).
    #[must_use]
    pub fn probabilities(&self, eps: f64) -> Vec<f64> {
        let k = self.counts.len() as f64;
        let denom = self.total as f64 + eps * k;
        self.counts
            .iter()
            .map(|&c| (c as f64 + eps) / denom)
            .collect()
    }

    /// Reset counts while keeping the binning.
    pub fn clear(&mut self) {
        self.counts.fill(0);
        self.total = 0;
    }
}

/// Two-sample Kolmogorov–Smirnov statistic (maximum ECDF distance).
#[must_use]
pub fn ks_statistic(a: &[f64], b: &[f64]) -> f64 {
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort_by(|x, y| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal));
    sb.sort_by(|x, y| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal));
    ks_statistic_sorted(&sa, &sb)
}

/// [`ks_statistic`] for inputs the caller has already sorted ascending —
/// the streaming-detector hot path, where the reference sample is frozen
/// (sorted once) and re-sorting it on every judgement would dominate.
#[must_use]
pub fn ks_statistic_sorted(sa: &[f64], sb: &[f64]) -> f64 {
    if sa.is_empty() || sb.is_empty() {
        return 0.0;
    }
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < sa.len() && j < sb.len() {
        if sa[i] < sb[j] {
            i += 1;
        } else if sb[j] < sa[i] {
            j += 1;
        } else {
            // Tie: advance both ECDFs past the shared value.
            let v = sa[i];
            while i < sa.len() && sa[i] == v {
                i += 1;
            }
            while j < sb.len() && sb[j] == v {
                j += 1;
            }
        }
        let fa = i as f64 / sa.len() as f64;
        let fb = j as f64 / sb.len() as f64;
        d = d.max((fa - fb).abs());
    }
    d
}

/// Asymptotic p-value for the two-sample KS statistic.
#[must_use]
pub fn ks_p_value(d: f64, n1: usize, n2: usize) -> f64 {
    if n1 == 0 || n2 == 0 {
        return 1.0;
    }
    let n_eff = (n1 as f64 * n2 as f64) / (n1 + n2) as f64;
    let lambda = (n_eff.sqrt() + 0.12 + 0.11 / n_eff.sqrt()) * d;
    // The alternating tail series below only converges for λ away from 0
    // (at λ = 0 its partial sums oscillate between 0 and 2, so a fixed
    // truncation returns garbage — e.g. p = 0 for two *identical*
    // samples). True Q(λ) ≥ 0.9999 for λ < 0.3, so short-circuit there.
    if lambda < 0.3 {
        return 1.0;
    }
    // Kolmogorov distribution tail series.
    let mut p = 0.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64 * lambda).powi(2)).exp();
        p += if k % 2 == 1 { 2.0 * term } else { -2.0 * term };
    }
    p.clamp(0.0, 1.0)
}

/// Population Stability Index between two binned distributions.
#[must_use]
pub fn psi(expected: &[f64], actual: &[f64]) -> f64 {
    expected
        .iter()
        .zip(actual)
        .map(|(&e, &a)| {
            let e = e.max(1e-9);
            let a = a.max(1e-9);
            (a - e) * (a / e).ln()
        })
        .sum()
}

/// Jensen–Shannon divergence (natural log) between two distributions.
#[must_use]
pub fn js_divergence(p: &[f64], q: &[f64]) -> f64 {
    let kl = |x: &[f64], y: &[f64]| -> f64 {
        x.iter()
            .zip(y)
            .filter(|(&a, _)| a > 0.0)
            .map(|(&a, &b)| a * (a / b.max(1e-12)).ln())
            .sum()
    };
    let m: Vec<f64> = p.iter().zip(q).map(|(&a, &b)| 0.5 * (a + b)).collect();
    0.5 * kl(p, &m) + 0.5 * kl(q, &m)
}

/// Pearson correlation coefficient; 0 when either side is constant.
#[must_use]
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = a.len() as f64;
    if n == 0.0 {
        return 0.0;
    }
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma).powi(2);
        vb += (y - mb).powi(2);
    }
    if va == 0.0 || vb == 0.0 {
        0.0
    } else {
        cov / (va.sqrt() * vb.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_batch_formulae() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = RunningStats::new();
        for &x in &xs {
            s.push(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 3.0 + 1.0).collect();
        let mut all = RunningStats::new();
        for &x in &xs {
            all.push(x);
        }
        let mut left = RunningStats::new();
        let mut right = RunningStats::new();
        for &x in &xs[..37] {
            left.push(x);
        }
        for &x in &xs[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert!((left.mean() - all.mean()).abs() < 1e-9);
        assert!((left.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(left.count(), all.count());
    }

    #[test]
    fn from_summary_round_trips_through_merge() {
        let xs: Vec<f64> = (0..40).map(|i| (i as f64) * 0.7 - 3.0).collect();
        let mut direct = RunningStats::new();
        for &x in &xs {
            direct.push(x);
        }
        let rebuilt = RunningStats::from_summary(
            direct.count(),
            direct.mean(),
            direct.std_dev(),
            direct.min(),
            direct.max(),
        );
        assert_eq!(rebuilt.count(), direct.count());
        assert!((rebuilt.mean() - direct.mean()).abs() < 1e-12);
        assert!((rebuilt.std_dev() - direct.std_dev()).abs() < 1e-9);
        // Absorbing a summary into a live sink equals having seen the
        // samples (to pooled-variance accuracy).
        let mut sink = RunningStats::new();
        sink.push(100.0);
        let mut expect = RunningStats::new();
        expect.push(100.0);
        for &x in &xs {
            expect.push(x);
        }
        sink.merge(&rebuilt);
        assert_eq!(sink.count(), expect.count());
        assert!((sink.mean() - expect.mean()).abs() < 1e-9);
        assert!((sink.std_dev() - expect.std_dev()).abs() < 1e-6);
        assert_eq!(sink.min(), expect.min());
        assert_eq!(sink.max(), expect.max());
        // Empty summaries are merge identities.
        let empty = RunningStats::from_summary(0, 0.0, 0.0, 0.0, 0.0);
        assert_eq!(empty.count(), 0);
    }

    #[test]
    fn histogram_bins_and_clamps() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.push(0.5);
        h.push(9.99);
        h.push(-3.0); // clamps to first bin
        h.push(42.0); // clamps to last bin
        assert_eq!(h.counts(), &[2, 0, 0, 0, 2]);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn histogram_probabilities_sum_to_one() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        for i in 0..10 {
            h.push(i as f64 / 10.0);
        }
        let p = h.probabilities(0.5);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ks_zero_for_identical_samples() {
        let a: Vec<f64> = (0..50).map(|i| i as f64).collect();
        assert!(ks_statistic(&a, &a) < 1e-9);
    }

    #[test]
    fn ks_large_for_disjoint_samples() {
        let a: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let b: Vec<f64> = (100..150).map(|i| i as f64).collect();
        assert!(ks_statistic(&a, &b) > 0.99);
    }

    #[test]
    fn ks_p_value_monotone_in_d() {
        assert!(ks_p_value(0.05, 100, 100) > ks_p_value(0.5, 100, 100));
    }

    #[test]
    fn psi_zero_when_identical() {
        let p = [0.25, 0.25, 0.25, 0.25];
        assert!(psi(&p, &p).abs() < 1e-9);
        let q = [0.7, 0.1, 0.1, 0.1];
        assert!(psi(&p, &q) > 0.25, "large shift should exceed alert level");
    }

    #[test]
    fn js_divergence_bounds() {
        let p = [1.0, 0.0];
        let q = [0.0, 1.0];
        let d = js_divergence(&p, &q);
        assert!(d > 0.0 && d <= std::f64::consts::LN_2 + 1e-9);
        assert!(js_divergence(&p, &p).abs() < 1e-12);
    }

    #[test]
    fn pearson_detects_sign() {
        let a: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let b: Vec<f64> = a.iter().map(|x| -x).collect();
        assert!((pearson(&a, &a) - 1.0).abs() < 1e-9);
        assert!((pearson(&a, &b) + 1.0).abs() < 1e-9);
    }
}
