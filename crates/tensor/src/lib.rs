//! Dense tensor math for TinyML workloads.
//!
//! A deliberately small, allocation-conscious tensor library: row-major
//! `f32` storage, shape-checked operations, a rayon-parallel blocked GEMM
//! (the hot kernel of every experiment), and the statistics helpers the
//! observability stack builds on. No autograd here — gradients live in
//! `tinymlops-nn` where layer semantics are known.

pub mod matmul;
pub mod ops;
pub mod rng;
pub mod stats;

use serde::{Deserialize, Serialize};

/// Errors from shape-checked tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Human-readable operation name.
        op: &'static str,
        /// Left/first operand shape.
        lhs: Vec<usize>,
        /// Right/second operand shape.
        rhs: Vec<usize>,
    },
    /// A reshape changed the element count.
    BadReshape {
        /// Source element count.
        from: usize,
        /// Target element count.
        to: usize,
    },
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "{op}: shape mismatch {lhs:?} vs {rhs:?}")
            }
            TensorError::BadReshape { from, to } => {
                write!(f, "reshape: element count {from} != {to}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

/// A dense, row-major `f32` tensor.
///
/// ```
/// use tinymlops_tensor::Tensor;
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// let b = Tensor::eye(2);
/// let c = a.matmul(&b).unwrap();
/// assert_eq!(c.data(), a.data());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Zero-filled tensor of the given shape.
    #[must_use]
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; shape.iter().product()],
        }
    }

    /// Tensor filled with a constant.
    #[must_use]
    pub fn full(shape: &[usize], value: f32) -> Self {
        Tensor {
            shape: shape.to_vec(),
            data: vec![value; shape.iter().product()],
        }
    }

    /// Identity matrix of size `n × n`.
    #[must_use]
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Build a tensor from existing data; panics if the element count does
    /// not match the shape (programmer error, not runtime input).
    #[must_use]
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        assert_eq!(
            data.len(),
            shape.iter().product::<usize>(),
            "from_vec: data length {} != shape {:?}",
            data.len(),
            shape
        );
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// 1-D tensor from a slice.
    #[must_use]
    pub fn vector(data: &[f32]) -> Self {
        Tensor::from_vec(data.to_vec(), &[data.len()])
    }

    /// The tensor's shape.
    #[must_use]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of rows (first dimension); 1 for scalars.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.shape.first().copied().unwrap_or(1)
    }

    /// Number of columns: product of all trailing dimensions (the length
    /// for a vector).
    #[must_use]
    pub fn cols(&self) -> usize {
        match self.shape.len() {
            0 => 1,
            1 => self.shape[0],
            _ => self.shape[1..].iter().product(),
        }
    }

    /// Immutable view of the underlying data.
    #[must_use]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the tensor, returning its data buffer.
    #[must_use]
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at 2-D index `(r, c)`.
    #[must_use]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        debug_assert!(self.shape.len() == 2);
        self.data[r * self.shape[1] + c]
    }

    /// Set element at 2-D index `(r, c)`.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(self.shape.len() == 2);
        let cols = self.shape[1];
        self.data[r * cols + c] = v;
    }

    /// Borrow row `r` as a slice (matrix rows; for N-D, leading-dim slabs).
    #[must_use]
    pub fn row(&self, r: usize) -> &[f32] {
        let cols = self.cols();
        &self.data[r * cols..(r + 1) * cols]
    }

    /// Mutably borrow row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        let cols = self.cols();
        &mut self.data[r * cols..(r + 1) * cols]
    }

    /// Reinterpret the data with a new shape of equal element count.
    pub fn reshape(&self, shape: &[usize]) -> Result<Tensor, TensorError> {
        let to: usize = shape.iter().product();
        if to != self.data.len() {
            return Err(TensorError::BadReshape {
                from: self.data.len(),
                to,
            });
        }
        Ok(Tensor {
            shape: shape.to_vec(),
            data: self.data.clone(),
        })
    }

    /// Matrix transpose.
    #[must_use]
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2, "transpose requires a matrix");
        let (r, c) = (self.shape[0], self.shape[1]);
        let mut out = Tensor::zeros(&[c, r]);
        for i in 0..r {
            for j in 0..c {
                out.data[j * r + i] = self.data[i * c + j];
            }
        }
        out
    }

    /// Extract rows `[start, end)` as a new tensor.
    #[must_use]
    pub fn slice_rows(&self, start: usize, end: usize) -> Tensor {
        assert!(
            start <= end && end <= self.rows(),
            "slice_rows out of range"
        );
        let cols = self.cols();
        let mut shape = self.shape.clone();
        shape[0] = end - start;
        Tensor::from_vec(self.data[start * cols..end * cols].to_vec(), &shape)
    }
}

pub use rng::TensorRng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_full() {
        let z = Tensor::zeros(&[2, 3]);
        assert_eq!(z.len(), 6);
        assert!(z.data().iter().all(|&x| x == 0.0));
        let f = Tensor::full(&[3], 2.5);
        assert_eq!(f.data(), &[2.5, 2.5, 2.5]);
    }

    #[test]
    fn eye_diagonal() {
        let i = Tensor::eye(3);
        assert_eq!(i.at(0, 0), 1.0);
        assert_eq!(i.at(1, 2), 0.0);
    }

    #[test]
    #[should_panic(expected = "from_vec")]
    fn from_vec_shape_checked() {
        let _ = Tensor::from_vec(vec![1.0; 5], &[2, 3]);
    }

    #[test]
    fn reshape_checks_count() {
        let t = Tensor::zeros(&[4]);
        assert!(t.reshape(&[2, 2]).is_ok());
        assert!(t.reshape(&[3, 2]).is_err());
    }

    #[test]
    fn transpose_round_trip() {
        let t = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3]);
        let tt = t.transpose().transpose();
        assert_eq!(tt, t);
    }

    #[test]
    fn transpose_values() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let tr = t.transpose();
        assert_eq!(tr.shape(), &[3, 2]);
        assert_eq!(tr.at(0, 1), 4.0);
        assert_eq!(tr.at(2, 0), 3.0);
    }

    #[test]
    fn row_access() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(t.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn slice_rows_extracts_block() {
        let t = Tensor::from_vec((0..12).map(|i| i as f32).collect(), &[4, 3]);
        let s = t.slice_rows(1, 3);
        assert_eq!(s.shape(), &[2, 3]);
        assert_eq!(s.row(0), &[3.0, 4.0, 5.0]);
    }

    #[test]
    fn serde_round_trip() {
        let t = Tensor::from_vec(vec![1.5, -2.5], &[2]);
        let json = serde_json::to_string(&t).unwrap();
        let back: Tensor = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
