//! Seeded random tensor generation.
//!
//! Every stochastic component in the workspace takes an explicit seed so
//! experiments are reproducible run-to-run (DESIGN.md §3 "Determinism").

use crate::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded RNG wrapper with tensor-shaped sampling helpers.
pub struct TensorRng {
    rng: StdRng,
}

impl TensorRng {
    /// Create from a fixed seed.
    #[must_use]
    pub fn seed(seed: u64) -> Self {
        TensorRng {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Uniform samples in `[lo, hi)`.
    #[must_use]
    pub fn uniform(&mut self, shape: &[usize], lo: f32, hi: f32) -> Tensor {
        let n: usize = shape.iter().product();
        Tensor::from_vec((0..n).map(|_| self.rng.gen_range(lo..hi)).collect(), shape)
    }

    /// Standard-normal samples scaled by `std` (Box–Muller).
    #[must_use]
    pub fn normal(&mut self, shape: &[usize], mean: f32, std: f32) -> Tensor {
        let n: usize = shape.iter().product();
        Tensor::from_vec(
            (0..n).map(|_| mean + std * self.next_gaussian()).collect(),
            shape,
        )
    }

    /// Kaiming/He initialization for a `[fan_out, fan_in]` weight matrix.
    #[must_use]
    pub fn kaiming(&mut self, fan_out: usize, fan_in: usize) -> Tensor {
        let std = (2.0 / fan_in as f32).sqrt();
        self.normal(&[fan_out, fan_in], 0.0, std)
    }

    /// One standard-normal sample.
    #[must_use]
    pub fn next_gaussian(&mut self) -> f32 {
        // Box–Muller; discard the second value for simplicity.
        let u1: f32 = self.rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = self.rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Uniform f32 in `[0,1)`.
    #[must_use]
    pub fn next_f32(&mut self) -> f32 {
        self.rng.gen_range(0.0..1.0)
    }

    /// Uniform integer in `[0, bound)`.
    #[must_use]
    pub fn next_usize(&mut self, bound: usize) -> usize {
        self.rng.gen_range(0..bound)
    }

    /// Borrow the underlying rand RNG for ad-hoc sampling.
    pub fn inner(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Fisher–Yates shuffle of an index range `0..n`.
    #[must_use]
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = self.rng.gen_range(0..=i);
            idx.swap(i, j);
        }
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let a = TensorRng::seed(5).uniform(&[10], 0.0, 1.0);
        let b = TensorRng::seed(5).uniform(&[10], 0.0, 1.0);
        assert_eq!(a, b);
    }

    #[test]
    fn uniform_respects_bounds() {
        let t = TensorRng::seed(1).uniform(&[1000], -2.0, 3.0);
        assert!(t.data().iter().all(|&x| (-2.0..3.0).contains(&x)));
    }

    #[test]
    fn normal_moments_roughly_match() {
        let t = TensorRng::seed(2).normal(&[20000], 1.0, 2.0);
        let mean = t.mean();
        let var = t.data().iter().map(|x| (x - mean).powi(2)).sum::<f32>() / t.len() as f32;
        assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn permutation_is_a_permutation() {
        let p = TensorRng::seed(3).permutation(50);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn kaiming_per_element_std_shrinks_with_fan_in() {
        let mut rng = TensorRng::seed(4);
        let wide = rng.kaiming(8, 1000);
        let narrow = rng.kaiming(8, 10);
        let rms = |t: &crate::Tensor| t.norm() / (t.len() as f32).sqrt();
        assert!(rms(&wide) < rms(&narrow));
        // He init: rms ≈ sqrt(2/fan_in).
        assert!((rms(&wide) - (2.0f32 / 1000.0).sqrt()).abs() < 0.01);
    }
}
