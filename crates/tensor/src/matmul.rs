//! Packed-tile, rayon-parallel matrix multiplication.
//!
//! GEMM dominates both training (federated rounds, watermark embedding) and
//! inference (every experiment), so this is the one kernel we tune. The
//! dense path is a BLIS-style cache-blocked kernel: B is packed once per
//! K-block into NR-wide column panels, A is packed into MR-tall row panels,
//! and an MR×NR register-tiled micro-kernel sweeps the panels. Packing pays
//! for itself by turning every inner-loop access into a contiguous,
//! branch-free stream the compiler vectorizes; the panels are reused across
//! the whole M sweep, so B is read from DRAM once per K-block instead of
//! once per output row.
//!
//! Pruned models still win with the seed row-streaming kernel (its
//! `a == 0.0` skip elides whole B-row passes), so [`gemm`] measures the
//! sparsity of A and dispatches: dense inputs take the packed tiles,
//! genuinely sparse inputs ([`SPARSE_SKIP_THRESHOLD`]) keep the skip. The
//! row kernel is retained as [`gemm_row_stream`] — it is also the seed
//! baseline that `b01_kernels` benchmarks the packed path against.

use crate::{Tensor, TensorError};
use rayon::prelude::*;

/// FLOP threshold below which the sequential kernel is used; spawning
/// rayon tasks for tiny matrices costs more than it saves.
const PAR_MIN_FLOPS: usize = 64 * 64 * 64;

/// FLOP threshold below which packing overhead dominates and the
/// row-streaming kernel is used instead of the tiled path.
const PACK_MIN_FLOPS: usize = 32 * 32 * 32;

/// Rows per A-panel / micro-tile (register rows of C).
pub const MR: usize = 6;

/// Columns per B-panel / micro-tile (register columns of C; two AVX
/// vectors of f32 — with MR=6 the 6×16 tile is the classic x86 register
/// blocking: 12 accumulator vectors + 2 B vectors + 1 broadcast ≤ 16 ymm).
pub const NR: usize = 16;

/// K-dimension block: one A-panel strip of `MR×KC` f32 (4 KiB) plus the
/// B-panel block stay L2-resident while the M sweep reuses them.
pub const KC: usize = 256;

/// Rows of C per parallel task: a multiple of MR large enough to amortize
/// task spawn, small enough to load-balance odd shapes.
const M_TASK_ROWS: usize = 32;

/// Zero fraction of A at which the row-streaming kernel's pruned-weight
/// skip beats the branch-free packed tiles. Measured with `b01_kernels`:
/// at 256³ the packed kernel is >2× the row kernel on dense inputs, so the
/// skip has to elide well over half the K-passes before it wins.
pub const SPARSE_SKIP_THRESHOLD: f32 = 0.6;

/// Elements sampled (evenly strided) when estimating the sparsity of A.
const SPARSITY_SAMPLE: usize = 1024;

impl Tensor {
    /// Matrix product `self · rhs` for `[m,k] × [k,n] → [m,n]`.
    ///
    /// A `[k]` vector `rhs` is treated as `[k,1]` (result `[m]`), and a
    /// `[k]` vector `self` as `[1,k]`.
    pub fn matmul(&self, rhs: &Tensor) -> Result<Tensor, TensorError> {
        let (m, k1) = two_d(self);
        let (k2, n) = two_d(rhs);
        if k1 != k2 {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape().to_vec(),
                rhs: rhs.shape().to_vec(),
            });
        }
        let mut out = vec![0.0f32; m * n];
        gemm(self.data(), rhs.data(), &mut out, m, k1, n);
        let shape: Vec<usize> = match (self.shape().len(), rhs.shape().len()) {
            (1, _) => vec![n],
            (_, 1) => vec![m],
            _ => vec![m, n],
        };
        Ok(Tensor::from_vec(out, &shape))
    }

    /// `self · rhsᵀ` without materializing the transpose: `[m,k] × [n,k] → [m,n]`.
    pub fn matmul_nt(&self, rhs: &Tensor) -> Result<Tensor, TensorError> {
        let (m, k1) = two_d(self);
        let (n, k2) = two_d(rhs);
        if k1 != k2 {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_nt",
                lhs: self.shape().to_vec(),
                rhs: rhs.shape().to_vec(),
            });
        }
        let mut out = vec![0.0f32; m * n];
        gemm_nt(self.data(), rhs.data(), &mut out, m, k1, n);
        Ok(Tensor::from_vec(out, &[m, n]))
    }
}

/// Interpret a 1-D or 2-D tensor as a matrix: vectors on the left are rows,
/// on the right columns — matching the dispatch in [`Tensor::matmul`].
fn two_d(t: &Tensor) -> (usize, usize) {
    match t.shape().len() {
        1 => (t.shape()[0], 1),
        2 => (t.shape()[0], t.shape()[1]),
        _ => panic!("matmul operands must be 1-D or 2-D, got {:?}", t.shape()),
    }
}

/// Dot product with 4-way unrolling (reliably auto-vectorized).
#[inline]
#[must_use]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let chunks = a.len() / 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    for i in 0..chunks {
        let base = i * 4;
        s0 += a[base] * b[base];
        s1 += a[base + 1] * b[base + 1];
        s2 += a[base + 2] * b[base + 2];
        s3 += a[base + 3] * b[base + 3];
    }
    let mut sum = s0 + s1 + s2 + s3;
    for i in chunks * 4..a.len() {
        sum += a[i] * b[i];
    }
    sum
}

/// Estimated zero fraction of `a`, from an evenly strided sample. The scan
/// is O(min(len, [`SPARSITY_SAMPLE`])) — negligible next to the O(m·k·n)
/// multiply it steers.
fn sparsity_estimate(a: &[f32]) -> f32 {
    if a.is_empty() {
        return 0.0;
    }
    let stride = (a.len() / SPARSITY_SAMPLE).max(1);
    let mut zeros = 0usize;
    let mut seen = 0usize;
    let mut i = 0;
    while i < a.len() {
        if a[i] == 0.0 {
            zeros += 1;
        }
        seen += 1;
        i += stride;
    }
    zeros as f32 / seen as f32
}

/// Raw GEMM: `c[m×n] = a[m×k] · b[k×n]`, with `c` pre-zeroed.
///
/// Dispatches on shape and content: tiny or narrow problems take the
/// row-streaming kernel (packing would not amortize), sparse A keeps the
/// seed kernel's zero-skip, and everything else runs the packed tiles.
pub fn gemm(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    if n < NR || m * k * n < PACK_MIN_FLOPS || sparsity_estimate(a) >= SPARSE_SKIP_THRESHOLD {
        gemm_row_stream(a, b, c, m, k, n);
    } else {
        gemm_packed(a, b, c, m, k, n);
    }
}

/// Raw transposed-B GEMM: `c[m×n] = a[m×k] · b[n×k]ᵀ`, `c` pre-zeroed.
///
/// Shares the packed micro-kernel with [`gemm`]: only the B-packing step
/// differs (panels gather rows of `b` instead of columns), so both layouts
/// hit the identical inner loop.
pub fn gemm_nt(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    if n < NR || m * k * n < PACK_MIN_FLOPS {
        gemm_nt_row_stream(a, b, c, m, k, n);
    } else {
        gemm_packed_nt(a, b, c, m, k, n);
    }
}

/// How a B-panel gathers its `kc × NR` block out of the source matrix.
#[derive(Clone, Copy)]
enum BSource {
    /// `b` is `[k,n]` row-major: panel column `j` reads `b[l·n + j]`.
    Normal { n: usize },
    /// `b` is `[n,k]` row-major (transposed operand), packed by a blocked
    /// transpose: each source row streams contiguously into the panel's
    /// strided column, so every cache line of B is read once, sequentially.
    Transposed { k: usize },
    /// The pre-blocked-transpose `[n,k]` packing: panel rows gather one
    /// element per source row (stride-k column reads). Retained only as
    /// the `b01_kernels` baseline for [`gemm_packed_nt_gather`].
    TransposedGather { k: usize },
}

/// Pack one `kc × nr` B-panel (zero-padded to NR columns) at `bp`, laid out
/// k-major so the micro-kernel reads NR contiguous floats per k-step.
fn pack_b_panel(
    b: &[f32],
    src: BSource,
    l0: usize,
    kc: usize,
    j0: usize,
    nr: usize,
    bp: &mut [f32],
) {
    debug_assert_eq!(bp.len(), kc * NR);
    match src {
        BSource::Normal { n } => {
            for l in 0..kc {
                let row = &b[(l0 + l) * n + j0..(l0 + l) * n + j0 + nr];
                let dst = &mut bp[l * NR..l * NR + NR];
                dst[..nr].copy_from_slice(row);
                dst[nr..].fill(0.0);
            }
        }
        BSource::Transposed { k } => {
            // Blocked transpose: read each of the nr source rows once,
            // contiguously (`kc` sequential floats), scattering into the
            // panel's NR-strided column. The writes all land in the same
            // hot panel lines (≤ 16 KiB, reused across the whole M sweep),
            // so streaming the reads is the win.
            if nr < NR {
                for row in bp.chunks_exact_mut(NR).take(kc) {
                    row[nr..].fill(0.0);
                }
            }
            for jj in 0..nr {
                let src = &b[(j0 + jj) * k + l0..(j0 + jj) * k + l0 + kc];
                for (l, &v) in src.iter().enumerate() {
                    bp[l * NR + jj] = v;
                }
            }
        }
        BSource::TransposedGather { k } => {
            for l in 0..kc {
                let dst = &mut bp[l * NR..l * NR + NR];
                for (jj, d) in dst[..nr].iter_mut().enumerate() {
                    *d = b[(j0 + jj) * k + l0 + l];
                }
                dst[nr..].fill(0.0);
            }
        }
    }
}

/// Pack one `mr × kc` A-panel (zero-padded to MR rows) at `ap`, laid out
/// k-major so the micro-kernel reads MR contiguous floats per k-step.
fn pack_a_panel(a: &[f32], k: usize, i0: usize, mr: usize, l0: usize, kc: usize, ap: &mut [f32]) {
    debug_assert_eq!(ap.len(), kc * MR);
    ap.fill(0.0);
    for (ii, row) in a[i0 * k..].chunks(k).take(mr).enumerate() {
        for (l, &v) in row[l0..l0 + kc].iter().enumerate() {
            ap[l * MR + ii] = v;
        }
    }
}

/// The register micro-kernel: `acc[MR][NR] += Ap · Bp` over one K-block.
///
/// Per k-step this reads MR contiguous A values and NR contiguous B values
/// and issues MR×NR multiply-adds on register-resident accumulators — no
/// branches, no stores, so the compiler keeps the tile in vector registers.
/// On x86-64 with AVX2+FMA (detected once at runtime) the same loop nest
/// runs in a `#[target_feature]` clone whose `mul_add`s compile to
/// `vfmadd231ps`, doubling per-cycle throughput over the portable build.
#[inline]
fn micro_kernel(kc: usize, ap: &[f32], bp: &[f32], acc: &mut [[f32; NR]; MR]) {
    #[cfg(target_arch = "x86_64")]
    if fma_available() {
        // SAFETY: `fma_available` checked avx2+fma on this CPU.
        unsafe { micro_kernel_fma(kc, ap, bp, acc) };
        return;
    }
    micro_kernel_portable(kc, ap, bp, acc);
}

#[inline]
fn micro_kernel_portable(kc: usize, ap: &[f32], bp: &[f32], acc: &mut [[f32; NR]; MR]) {
    for (av, bv) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)).take(kc) {
        for i in 0..MR {
            let ai = av[i];
            for j in 0..NR {
                acc[i][j] += ai * bv[j];
            }
        }
    }
}

/// Whether the AVX2+FMA micro-kernel can run (cached by the detection
/// macro; an atomic load per call).
#[cfg(target_arch = "x86_64")]
#[inline]
fn fma_available() -> bool {
    std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
}

/// AVX2+FMA clone of the micro-kernel. `mul_add` only lowers to a fused
/// instruction (instead of a libm call) when the enclosing function
/// enables the feature, hence the clone rather than a runtime branch in
/// the portable body.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
fn micro_kernel_fma(kc: usize, ap: &[f32], bp: &[f32], acc: &mut [[f32; NR]; MR]) {
    // Work on a by-value copy so no accumulator address escapes the loop:
    // LLVM then promotes the whole 6×16 tile into twelve ymm registers.
    let mut t = *acc;
    for (av, bv) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)).take(kc) {
        for i in 0..MR {
            let ai = av[i];
            for j in 0..NR {
                t[i][j] = ai.mul_add(bv[j], t[i][j]);
            }
        }
    }
    *acc = t;
}

/// Sweep one horizontal slab of C (rows `i_base..i_base+rows`) against the
/// packed B block for K-rows `l0..l0+kc`, packing A panels on the fly.
#[allow(clippy::too_many_arguments)] // raw kernel plumbing, not an API
fn sweep_slab(
    a: &[f32],
    k: usize,
    bp_block: &[f32],
    c_slab: &mut [f32],
    i_base: usize,
    rows: usize,
    n: usize,
    l0: usize,
    kc: usize,
) {
    let mut ap = vec![0.0f32; KC * MR];
    let n_panels = n.div_ceil(NR);
    for ti in 0..rows.div_ceil(MR) {
        let i0 = ti * MR;
        let mr = MR.min(rows - i0);
        let ap = &mut ap[..kc * MR];
        pack_a_panel(a, k, i_base + i0, mr, l0, kc, ap);
        for pj in 0..n_panels {
            let j0 = pj * NR;
            let nr = NR.min(n - j0);
            let bp = &bp_block[pj * kc * NR..(pj + 1) * kc * NR];
            let mut acc = [[0.0f32; NR]; MR];
            micro_kernel(kc, ap, bp, &mut acc);
            for ii in 0..mr {
                let c_row = &mut c_slab[(i0 + ii) * n + j0..(i0 + ii) * n + j0 + nr];
                for (cv, &av) in c_row.iter_mut().zip(acc[ii][..nr].iter()) {
                    *cv += av;
                }
            }
        }
    }
}

fn gemm_packed_impl(
    a: &[f32],
    b: &[f32],
    src: BSource,
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    let n_panels = n.div_ceil(NR);
    let parallel = m * k * n >= PAR_MIN_FLOPS && m > 1;
    // One reusable B block: n_panels panels of KC×NR, packed per K-block
    // and then read-shared across the whole M sweep.
    let mut bp_block = vec![0.0f32; n_panels * KC * NR];
    for l0 in (0..k).step_by(KC) {
        let kc = KC.min(k - l0);
        let bp_block = &mut bp_block[..n_panels * kc * NR];
        for pj in 0..n_panels {
            let j0 = pj * NR;
            let nr = NR.min(n - j0);
            pack_b_panel(
                b,
                src,
                l0,
                kc,
                j0,
                nr,
                &mut bp_block[pj * kc * NR..(pj + 1) * kc * NR],
            );
        }
        let bp_block = &bp_block[..];
        let slab = |(si, c_slab): (usize, &mut [f32])| {
            let i_base = si * M_TASK_ROWS;
            let rows = c_slab.len() / n;
            sweep_slab(a, k, bp_block, c_slab, i_base, rows, n, l0, kc);
        };
        if parallel {
            c.par_chunks_mut(M_TASK_ROWS * n).enumerate().for_each(slab);
        } else {
            c.chunks_mut(M_TASK_ROWS * n).enumerate().for_each(slab);
        }
    }
}

/// Packed-tile GEMM over `b` in `[k,n]` layout. Exposed so tests and
/// `b01_kernels` can exercise the tiled path regardless of the sparsity /
/// size dispatch in [`gemm`].
pub fn gemm_packed(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    gemm_packed_impl(a, b, BSource::Normal { n }, c, m, k, n);
}

/// Packed-tile GEMM over `b` in transposed `[n,k]` layout: same micro-kernel
/// as [`gemm_packed`], B packed via a blocked transpose (contiguous source
/// reads) instead of strided column gathers.
pub fn gemm_packed_nt(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    gemm_packed_impl(a, b, BSource::Transposed { k }, c, m, k, n);
}

/// The pre-blocked-transpose nt packing (stride-k column gathers). Kept
/// exclusively so `b01_kernels` records an honest before/after datapoint
/// for the packing change; all real callers go through [`gemm_packed_nt`].
pub fn gemm_packed_nt_gather(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    gemm_packed_impl(a, b, BSource::TransposedGather { k }, c, m, k, n);
}

/// The seed row-streaming kernel: k-outer loop per C row with contiguous B
/// streaming and an `a == 0.0` skip that elides whole B-row passes.
///
/// Retained for two callers: [`gemm`] routes genuinely sparse A here (the
/// skip beats branch-free tiles past [`SPARSE_SKIP_THRESHOLD`]), and
/// `b01_kernels` measures the packed kernel's speedup against it.
pub fn gemm_row_stream(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    let row_kernel = |(i, c_row): (usize, &mut [f32])| {
        let a_row = &a[i * k..(i + 1) * k];
        for (l, &a_val) in a_row.iter().enumerate() {
            if a_val == 0.0 {
                continue; // pruned-model fast path
            }
            let b_row = &b[l * n..(l + 1) * n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row.iter()) {
                *cv += a_val * bv;
            }
        }
    };
    if m * k * n >= PAR_MIN_FLOPS && m > 1 {
        c.par_chunks_mut(n).enumerate().for_each(row_kernel);
    } else {
        c.chunks_mut(n).enumerate().for_each(row_kernel);
    }
}

/// Row-streaming transposed-B kernel (dot products over contiguous rows of
/// both operands) — the small-shape fallback for [`gemm_nt`], and the seed
/// baseline `b01_kernels` measures the packed nt path against.
pub fn gemm_nt_row_stream(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    let body = |(i, out_row): (usize, &mut [f32])| {
        let a_row = &a[i * k..(i + 1) * k];
        for (j, o) in out_row.iter_mut().enumerate() {
            let b_row = &b[j * k..(j + 1) * k];
            *o = dot(a_row, b_row);
        }
    };
    if m * n * k >= PAR_MIN_FLOPS && m > 1 {
        c.par_chunks_mut(n).enumerate().for_each(body);
    } else {
        c.chunks_mut(n).enumerate().for_each(body);
    }
}

/// Sequential reference GEMM used by tests and benchmarks as ground truth.
pub fn gemm_naive(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        for j in 0..n {
            let mut s = 0.0;
            for l in 0..k {
                s += a[i * k + l] * b[l * n + j];
            }
            c[i * n + j] = s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::TensorRng;

    #[test]
    fn small_known_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = TensorRng::seed(7);
        let a = rng.uniform(&[5, 5], -1.0, 1.0);
        let c = a.matmul(&Tensor::eye(5)).unwrap();
        for (x, y) in a.data().iter().zip(c.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn matvec_shapes() {
        let a = Tensor::from_vec(vec![1.0, 0.0, 0.0, 2.0], &[2, 2]);
        let x = Tensor::vector(&[3.0, 4.0]);
        let y = a.matmul(&x).unwrap();
        assert_eq!(y.shape(), &[2]);
        assert_eq!(y.data(), &[3.0, 8.0]);
    }

    #[test]
    fn rejects_bad_shapes() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn gemm_matches_naive_on_random_matrices() {
        let mut rng = TensorRng::seed(42);
        for &(m, k, n) in &[(1, 1, 1), (3, 4, 5), (17, 9, 23), (64, 32, 16)] {
            let a = rng.uniform(&[m, k], -2.0, 2.0);
            let b = rng.uniform(&[k, n], -2.0, 2.0);
            let mut want = vec![0.0; m * n];
            gemm_naive(a.data(), b.data(), &mut want, m, k, n);
            let got = a.matmul(&b).unwrap();
            for (g, w) in got.data().iter().zip(&want) {
                assert!((g - w).abs() < 1e-4, "mismatch {g} vs {w}");
            }
        }
    }

    #[test]
    fn parallel_path_matches_sequential() {
        let mut rng = TensorRng::seed(11);
        let (m, k, n) = (80, 70, 90); // above PAR_MIN_FLOPS
        let a = rng.uniform(&[m, k], -1.0, 1.0);
        let b = rng.uniform(&[k, n], -1.0, 1.0);
        let mut want = vec![0.0; m * n];
        gemm_naive(a.data(), b.data(), &mut want, m, k, n);
        let got = a.matmul(&b).unwrap();
        for (g, w) in got.data().iter().zip(&want) {
            assert!((g - w).abs() < 1e-3);
        }
    }

    #[test]
    fn packed_kernel_handles_k_blocking_boundary() {
        // k spans multiple KC blocks including a remainder block.
        let mut rng = TensorRng::seed(19);
        let (m, k, n) = (10, 2 * KC + 37, 12);
        let a = rng.uniform(&[m, k], -1.0, 1.0);
        let b = rng.uniform(&[k, n], -1.0, 1.0);
        let mut want = vec![0.0; m * n];
        gemm_naive(a.data(), b.data(), &mut want, m, k, n);
        let mut got = vec![0.0; m * n];
        gemm_packed(a.data(), b.data(), &mut got, m, k, n);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-2, "{g} vs {w}");
        }
    }

    #[test]
    fn packed_nt_matches_naive_on_remainder_tiles() {
        let mut rng = TensorRng::seed(23);
        let (m, k, n) = (MR + 1, KC + 3, NR + 5);
        let a = rng.uniform(&[m, k], -1.0, 1.0);
        let bt = rng.uniform(&[n, k], -1.0, 1.0);
        let b = bt.transpose();
        let mut want = vec![0.0; m * n];
        gemm_naive(a.data(), b.data(), &mut want, m, k, n);
        let mut got = vec![0.0; m * n];
        gemm_packed_nt(a.data(), bt.data(), &mut got, m, k, n);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-2, "{g} vs {w}");
        }
    }

    #[test]
    fn blocked_transpose_pack_is_bit_identical_to_gather_pack() {
        // Same panels, different fill order: the packed nt product must be
        // bit-for-bit the gather-pack product on every tile shape,
        // including remainder columns and multi-KC K spans.
        let mut rng = TensorRng::seed(29);
        for &(m, k, n) in &[
            (MR + 1, KC + 3, NR + 5),
            (2 * MR, 2 * KC + 17, 3 * NR - 7),
            (13, 40, NR),
        ] {
            let a = rng.uniform(&[m, k], -1.0, 1.0);
            let bt = rng.uniform(&[n, k], -1.0, 1.0);
            let mut blocked = vec![0.0; m * n];
            gemm_packed_nt(a.data(), bt.data(), &mut blocked, m, k, n);
            let mut gathered = vec![0.0; m * n];
            gemm_packed_nt_gather(a.data(), bt.data(), &mut gathered, m, k, n);
            assert_eq!(blocked, gathered, "{m}x{k}x{n}");
        }
    }

    #[test]
    fn sparse_dispatch_matches_dense_result() {
        // ~80% zeros: gemm takes the row-stream skip path; the product must
        // agree with the naive reference regardless.
        let mut rng = TensorRng::seed(31);
        let (m, k, n) = (40, 50, 60);
        let a = rng
            .uniform(&[m, k], -1.0, 1.0)
            .map(|v| if v.abs() < 0.8 { 0.0 } else { v });
        let b = rng.uniform(&[k, n], -1.0, 1.0);
        let mut want = vec![0.0; m * n];
        gemm_naive(a.data(), b.data(), &mut want, m, k, n);
        let got = a.matmul(&b).unwrap();
        for (g, w) in got.data().iter().zip(&want) {
            assert!((g - w).abs() < 1e-3);
        }
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let mut rng = TensorRng::seed(3);
        let a = rng.uniform(&[6, 8], -1.0, 1.0);
        let b = rng.uniform(&[5, 8], -1.0, 1.0);
        let want = a.matmul(&b.transpose()).unwrap();
        let got = a.matmul_nt(&b).unwrap();
        for (g, w) in got.data().iter().zip(want.data()) {
            assert!((g - w).abs() < 1e-5);
        }
    }

    #[test]
    fn dot_handles_remainders() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [2.0, 2.0, 2.0, 2.0, 2.0];
        assert_eq!(dot(&a, &b), 30.0);
    }
}
