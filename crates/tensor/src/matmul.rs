//! Blocked, rayon-parallel matrix multiplication.
//!
//! GEMM dominates both training (federated rounds, watermark embedding) and
//! inference (every experiment), so this is the one kernel we tune: cache
//! blocking over K, row-parallelism over M via rayon, and an inner loop the
//! compiler can vectorize (contiguous `b` rows, no bounds checks in the hot
//! path thanks to slice windows).

use crate::{Tensor, TensorError};
use rayon::prelude::*;

/// Rows-per-task threshold below which the sequential kernel is used;
/// spawning rayon tasks for tiny matrices costs more than it saves.
const PAR_MIN_FLOPS: usize = 64 * 64 * 64;

impl Tensor {
    /// Matrix product `self · rhs` for `[m,k] × [k,n] → [m,n]`.
    ///
    /// A `[k]` vector `rhs` is treated as `[k,1]` (result `[m]`), and a
    /// `[k]` vector `self` as `[1,k]`.
    pub fn matmul(&self, rhs: &Tensor) -> Result<Tensor, TensorError> {
        let (m, k1) = two_d(self);
        let (k2, n) = two_d(rhs);
        if k1 != k2 {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape().to_vec(),
                rhs: rhs.shape().to_vec(),
            });
        }
        let mut out = vec![0.0f32; m * n];
        gemm(self.data(), rhs.data(), &mut out, m, k1, n);
        let shape: Vec<usize> = match (self.shape().len(), rhs.shape().len()) {
            (1, _) => vec![n],
            (_, 1) => vec![m],
            _ => vec![m, n],
        };
        Ok(Tensor::from_vec(out, &shape))
    }

    /// `self · rhsᵀ` without materializing the transpose: `[m,k] × [n,k] → [m,n]`.
    pub fn matmul_nt(&self, rhs: &Tensor) -> Result<Tensor, TensorError> {
        let (m, k1) = two_d(self);
        let (n, k2) = two_d(rhs);
        if k1 != k2 {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_nt",
                lhs: self.shape().to_vec(),
                rhs: rhs.shape().to_vec(),
            });
        }
        let mut out = vec![0.0f32; m * n];
        let a = self.data();
        let b = rhs.data();
        let k = k1;
        let body = |(i, out_row): (usize, &mut [f32])| {
            let a_row = &a[i * k..(i + 1) * k];
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = &b[j * k..(j + 1) * k];
                *o = dot(a_row, b_row);
            }
        };
        if m * n * k >= PAR_MIN_FLOPS {
            out.par_chunks_mut(n).enumerate().for_each(body);
        } else {
            out.chunks_mut(n).enumerate().for_each(body);
        }
        Ok(Tensor::from_vec(out, &[m, n]))
    }
}

/// Interpret a 1-D or 2-D tensor as a matrix: vectors on the left are rows,
/// on the right columns — matching the dispatch in [`Tensor::matmul`].
fn two_d(t: &Tensor) -> (usize, usize) {
    match t.shape().len() {
        1 => (t.shape()[0], 1),
        2 => (t.shape()[0], t.shape()[1]),
        _ => panic!("matmul operands must be 1-D or 2-D, got {:?}", t.shape()),
    }
}

/// Dot product with 4-way unrolling (reliably auto-vectorized).
#[inline]
#[must_use]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let chunks = a.len() / 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    for i in 0..chunks {
        let base = i * 4;
        s0 += a[base] * b[base];
        s1 += a[base + 1] * b[base + 1];
        s2 += a[base + 2] * b[base + 2];
        s3 += a[base + 3] * b[base + 3];
    }
    let mut sum = s0 + s1 + s2 + s3;
    for i in chunks * 4..a.len() {
        sum += a[i] * b[i];
    }
    sum
}

/// Raw GEMM: `c[m×n] = a[m×k] · b[k×n]`, with `c` pre-zeroed.
///
/// The k-loop is the outer loop inside each row so accesses to `b` stream
/// contiguously; rayon splits rows of `c` across the pool when the problem
/// is large enough to amortize task spawn.
pub fn gemm(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    let row_kernel = |(i, c_row): (usize, &mut [f32])| {
        let a_row = &a[i * k..(i + 1) * k];
        for (l, &a_val) in a_row.iter().enumerate() {
            if a_val == 0.0 {
                continue; // pruned-model fast path
            }
            let b_row = &b[l * n..(l + 1) * n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row.iter()) {
                *cv += a_val * bv;
            }
        }
    };
    if m * k * n >= PAR_MIN_FLOPS && m > 1 {
        c.par_chunks_mut(n).enumerate().for_each(row_kernel);
    } else {
        c.chunks_mut(n).enumerate().for_each(row_kernel);
    }
}

/// Sequential reference GEMM used by tests and benchmarks as ground truth.
pub fn gemm_naive(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        for j in 0..n {
            let mut s = 0.0;
            for l in 0..k {
                s += a[i * k + l] * b[l * n + j];
            }
            c[i * n + j] = s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::TensorRng;

    #[test]
    fn small_known_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = TensorRng::seed(7);
        let a = rng.uniform(&[5, 5], -1.0, 1.0);
        let c = a.matmul(&Tensor::eye(5)).unwrap();
        for (x, y) in a.data().iter().zip(c.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn matvec_shapes() {
        let a = Tensor::from_vec(vec![1.0, 0.0, 0.0, 2.0], &[2, 2]);
        let x = Tensor::vector(&[3.0, 4.0]);
        let y = a.matmul(&x).unwrap();
        assert_eq!(y.shape(), &[2]);
        assert_eq!(y.data(), &[3.0, 8.0]);
    }

    #[test]
    fn rejects_bad_shapes() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn gemm_matches_naive_on_random_matrices() {
        let mut rng = TensorRng::seed(42);
        for &(m, k, n) in &[(1, 1, 1), (3, 4, 5), (17, 9, 23), (64, 32, 16)] {
            let a = rng.uniform(&[m, k], -2.0, 2.0);
            let b = rng.uniform(&[k, n], -2.0, 2.0);
            let mut want = vec![0.0; m * n];
            gemm_naive(a.data(), b.data(), &mut want, m, k, n);
            let got = a.matmul(&b).unwrap();
            for (g, w) in got.data().iter().zip(&want) {
                assert!((g - w).abs() < 1e-4, "mismatch {g} vs {w}");
            }
        }
    }

    #[test]
    fn parallel_path_matches_sequential() {
        let mut rng = TensorRng::seed(11);
        let (m, k, n) = (80, 70, 90); // above PAR_MIN_FLOPS
        let a = rng.uniform(&[m, k], -1.0, 1.0);
        let b = rng.uniform(&[k, n], -1.0, 1.0);
        let mut want = vec![0.0; m * n];
        gemm_naive(a.data(), b.data(), &mut want, m, k, n);
        let got = a.matmul(&b).unwrap();
        for (g, w) in got.data().iter().zip(&want) {
            assert!((g - w).abs() < 1e-3);
        }
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let mut rng = TensorRng::seed(3);
        let a = rng.uniform(&[6, 8], -1.0, 1.0);
        let b = rng.uniform(&[5, 8], -1.0, 1.0);
        let want = a.matmul(&b.transpose()).unwrap();
        let got = a.matmul_nt(&b).unwrap();
        for (g, w) in got.data().iter().zip(want.data()) {
            assert!((g - w).abs() < 1e-5);
        }
    }

    #[test]
    fn dot_handles_remainders() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [2.0, 2.0, 2.0, 2.0, 2.0];
        assert_eq!(dot(&a, &b), 30.0);
    }
}
