//! Property tests for the persistent-pool threading backend: parallel
//! kernels must be bit-for-bit identical to their sequential execution,
//! whatever the shape, contents, or worker scheduling.
//!
//! The pool is pinned to 4 threads before first use so these properties
//! exercise real cross-thread dispatch even on single-core CI hosts
//! (where the default pool degenerates to inline execution).

use proptest::prelude::*;
use rayon::pool::{configure_threads, with_dispatch, Dispatch};
use rayon::prelude::*;
use std::sync::Once;
use tinymlops_tensor::matmul::{gemm, gemm_packed, gemm_row_stream};
use tinymlops_tensor::TensorRng;

fn force_multithreaded_pool() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        // Best effort: if the pool already initialized (it cannot have,
        // in this test binary), the properties still hold — they compare
        // against Dispatch::Sequential, not a thread count.
        let _ = configure_threads(4);
    });
}

proptest! {
    /// Pooled packed GEMM (M-tile slabs fan out to pool workers above the
    /// parallelism threshold) is bit-for-bit identical to the same kernel
    /// run inline. Shapes straddle `PAR_MIN_FLOPS` (64³) and M-slab
    /// (32-row) remainders.
    #[test]
    fn pooled_gemm_is_bit_identical_to_sequential(
        m in 33usize..80,
        k in 48usize..96,
        n in 48usize..96,
        seed in any::<u64>(),
    ) {
        force_multithreaded_pool();
        let mut rng = TensorRng::seed(seed);
        let a = rng.uniform(&[m, k], -2.0, 2.0);
        let b = rng.uniform(&[k, n], -2.0, 2.0);
        let mut pooled = vec![0.0f32; m * n];
        gemm_packed(a.data(), b.data(), &mut pooled, m, k, n);
        let mut sequential = vec![0.0f32; m * n];
        with_dispatch(Dispatch::Sequential, || {
            gemm_packed(a.data(), b.data(), &mut sequential, m, k, n);
        });
        prop_assert_eq!(&pooled, &sequential, "pool scheduling changed bits");
    }

    /// The same property for the dispatching entry point (`gemm`) over
    /// sparse inputs, which routes to the row-streaming kernel: its
    /// per-row parallelism must also be schedule-independent.
    #[test]
    fn pooled_sparse_gemm_is_bit_identical(
        m in 33usize..64,
        seed in any::<u64>(),
    ) {
        force_multithreaded_pool();
        let (k, n) = (64usize, 64usize);
        let mut rng = TensorRng::seed(seed);
        let a = rng
            .uniform(&[m, k], -1.0, 1.0)
            .map(|v| if v.abs() < 0.85 { 0.0 } else { v });
        let b = rng.uniform(&[k, n], -1.0, 1.0);
        let mut pooled = vec![0.0f32; m * n];
        gemm(a.data(), b.data(), &mut pooled, m, k, n);
        let mut sequential = vec![0.0f32; m * n];
        with_dispatch(Dispatch::Sequential, || {
            gemm(a.data(), b.data(), &mut sequential, m, k, n);
        });
        prop_assert_eq!(&pooled, &sequential);
        // The row-stream kernel agrees with itself too (covers the
        // explicit baseline the benchmarks keep).
        let mut rows = vec![0.0f32; m * n];
        gemm_row_stream(a.data(), b.data(), &mut rows, m, k, n);
        let mut rows_seq = vec![0.0f32; m * n];
        with_dispatch(Dispatch::Sequential, || {
            gemm_row_stream(a.data(), b.data(), &mut rows_seq, m, k, n);
        });
        prop_assert_eq!(&rows, &rows_seq);
    }

    /// Shim-level ordering guarantee: pooled `par_iter().map().collect()`
    /// returns results in slice order, equal to the sequential map.
    #[test]
    fn pooled_par_iter_collect_preserves_order(
        data in proptest::collection::vec(any::<i64>(), 0..800),
    ) {
        force_multithreaded_pool();
        let pooled: Vec<i64> = data.par_iter().map(|x| x.wrapping_mul(31) ^ 7).collect();
        let sequential: Vec<i64> = data.iter().map(|x| x.wrapping_mul(31) ^ 7).collect();
        prop_assert_eq!(pooled, sequential);
    }
}
