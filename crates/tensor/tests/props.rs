//! Property-based tests: tensor algebra invariants over arbitrary inputs.

use proptest::prelude::*;
use tinymlops_tensor::matmul::gemm_naive;
use tinymlops_tensor::stats::RunningStats;
use tinymlops_tensor::Tensor;

fn finite_f32() -> impl Strategy<Value = f32> {
    (-100.0f32..100.0).prop_map(|v| v)
}

proptest! {
    /// The blocked/parallel GEMM agrees with the naive reference for any
    /// shape and contents.
    #[test]
    fn gemm_matches_naive(
        m in 1usize..12,
        k in 1usize..12,
        n in 1usize..12,
        seed in any::<u64>(),
    ) {
        let mut rng = tinymlops_tensor::TensorRng::seed(seed);
        let a = rng.uniform(&[m, k], -3.0, 3.0);
        let b = rng.uniform(&[k, n], -3.0, 3.0);
        let mut want = vec![0.0f32; m * n];
        gemm_naive(a.data(), b.data(), &mut want, m, k, n);
        let got = a.matmul(&b).unwrap();
        for (g, w) in got.data().iter().zip(&want) {
            prop_assert!((g - w).abs() < 1e-3, "{g} vs {w}");
        }
    }

    /// Transpose is an involution.
    #[test]
    fn transpose_involution(
        r in 1usize..10,
        c in 1usize..10,
        data in proptest::collection::vec(finite_f32(), 1..100),
    ) {
        prop_assume!(data.len() >= r * c);
        let t = Tensor::from_vec(data[..r * c].to_vec(), &[r, c]);
        prop_assert_eq!(t.transpose().transpose(), t);
    }

    /// `matmul_nt(a, b) == matmul(a, bᵀ)` always.
    #[test]
    fn matmul_nt_equivalence(m in 1usize..8, k in 1usize..8, n in 1usize..8, seed in any::<u64>()) {
        let mut rng = tinymlops_tensor::TensorRng::seed(seed);
        let a = rng.uniform(&[m, k], -2.0, 2.0);
        let b = rng.uniform(&[n, k], -2.0, 2.0);
        let via_nt = a.matmul_nt(&b).unwrap();
        let via_t = a.matmul(&b.transpose()).unwrap();
        for (x, y) in via_nt.data().iter().zip(via_t.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// Softmax rows always sum to 1 and stay in (0,1], whatever the logits.
    #[test]
    fn softmax_is_a_distribution(
        rows in 1usize..6,
        cols in 1usize..8,
        data in proptest::collection::vec(-50.0f32..50.0, 1..48),
    ) {
        prop_assume!(data.len() >= rows * cols);
        let t = Tensor::from_vec(data[..rows * cols].to_vec(), &[rows, cols]);
        let s = t.softmax_rows();
        for r in 0..rows {
            let sum: f32 = s.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.row(r).iter().all(|&v| v > 0.0 && v <= 1.0 + 1e-6));
        }
    }

    /// Welford merge equals feeding the concatenated stream.
    #[test]
    fn running_stats_merge_associative(
        xs in proptest::collection::vec(-1e4f64..1e4, 0..64),
        ys in proptest::collection::vec(-1e4f64..1e4, 0..64),
    ) {
        let mut all = RunningStats::new();
        for &v in xs.iter().chain(&ys) {
            all.push(v);
        }
        let mut left = RunningStats::new();
        for &v in &xs {
            left.push(v);
        }
        let mut right = RunningStats::new();
        for &v in &ys {
            right.push(v);
        }
        left.merge(&right);
        prop_assert_eq!(left.count(), all.count());
        if all.count() > 0 {
            prop_assert!((left.mean() - all.mean()).abs() < 1e-6 * (1.0 + all.mean().abs()));
            prop_assert!((left.variance() - all.variance()).abs() < 1e-5 * (1.0 + all.variance()));
        }
    }

    /// axpy then axpy-inverse restores the original.
    #[test]
    fn axpy_inverse(data in proptest::collection::vec(finite_f32(), 1..64), alpha in -4.0f32..4.0) {
        let orig = Tensor::vector(&data);
        let delta = orig.map(|v| v * 0.5 + 1.0);
        let mut t = orig.clone();
        t.axpy(alpha, &delta).unwrap();
        t.axpy(-alpha, &delta).unwrap();
        for (a, b) in t.data().iter().zip(orig.data()) {
            prop_assert!((a - b).abs() < 1e-2 * (1.0 + b.abs()));
        }
    }
}

mod packed_gemm {
    use super::*;
    use tinymlops_tensor::matmul::{gemm_naive, gemm_packed, gemm_packed_nt, KC, MR, NR};

    proptest! {
        /// The packed-tile kernel agrees with the naive reference on any
        /// shape — remainder tiles (m,n not multiples of MR/NR) included —
        /// even when the size heuristic in `gemm` would route elsewhere.
        #[test]
        fn packed_matches_naive_on_any_shape(
            m in 1usize..3 * MR + 2,
            k in 1usize..48,
            n in 1usize..3 * NR + 3,
            seed in any::<u64>(),
        ) {
            let mut rng = tinymlops_tensor::TensorRng::seed(seed);
            let a = rng.uniform(&[m, k], -2.0, 2.0);
            let b = rng.uniform(&[k, n], -2.0, 2.0);
            let mut want = vec![0.0f32; m * n];
            gemm_naive(a.data(), b.data(), &mut want, m, k, n);
            let mut got = vec![0.0f32; m * n];
            gemm_packed(a.data(), b.data(), &mut got, m, k, n);
            for (g, w) in got.iter().zip(&want) {
                prop_assert!((g - w).abs() < 1e-3, "{g} vs {w} at {m}x{k}x{n}");
            }
        }

        /// Same across the KC blocking boundary (k slightly above/below the
        /// K-block size exercises the remainder K-panel).
        #[test]
        fn packed_matches_naive_across_kc_boundary(
            m in 1usize..8,
            k in KC - 2..KC + 6,
            n in 1usize..20,
            seed in any::<u64>(),
        ) {
            let mut rng = tinymlops_tensor::TensorRng::seed(seed);
            let a = rng.uniform(&[m, k], -1.0, 1.0);
            let b = rng.uniform(&[k, n], -1.0, 1.0);
            let mut want = vec![0.0f32; m * n];
            gemm_naive(a.data(), b.data(), &mut want, m, k, n);
            let mut got = vec![0.0f32; m * n];
            gemm_packed(a.data(), b.data(), &mut got, m, k, n);
            for (g, w) in got.iter().zip(&want) {
                prop_assert!((g - w).abs() < 5e-3, "{g} vs {w} at {m}x{k}x{n}");
            }
        }

        /// The transposed-B packing feeds the identical micro-kernel: it
        /// must match naive on the explicit transpose, remainders included.
        #[test]
        fn packed_nt_matches_naive(
            m in 1usize..2 * MR + 3,
            k in 1usize..40,
            n in 1usize..2 * NR + 5,
            seed in any::<u64>(),
        ) {
            let mut rng = tinymlops_tensor::TensorRng::seed(seed);
            let a = rng.uniform(&[m, k], -2.0, 2.0);
            let bt = rng.uniform(&[n, k], -2.0, 2.0);
            let b = bt.transpose();
            let mut want = vec![0.0f32; m * n];
            gemm_naive(a.data(), b.data(), &mut want, m, k, n);
            let mut got = vec![0.0f32; m * n];
            gemm_packed_nt(a.data(), bt.data(), &mut got, m, k, n);
            for (g, w) in got.iter().zip(&want) {
                prop_assert!((g - w).abs() < 1e-3, "{g} vs {w} at {m}x{k}x{n}");
            }
        }

        /// The sparse fast path (row-stream dispatch for mostly-zero A)
        /// computes the same product as the dense reference.
        #[test]
        fn sparse_dispatch_matches_naive(
            m in 1usize..24,
            k in 1usize..24,
            n in 1usize..24,
            cutoff in 0.5f32..0.95,
            seed in any::<u64>(),
        ) {
            let mut rng = tinymlops_tensor::TensorRng::seed(seed);
            let a = rng
                .uniform(&[m, k], -1.0, 1.0)
                .map(|v| if v.abs() < cutoff { 0.0 } else { v });
            let b = rng.uniform(&[k, n], -1.0, 1.0);
            let mut want = vec![0.0f32; m * n];
            gemm_naive(a.data(), b.data(), &mut want, m, k, n);
            let got = a.matmul(&b).unwrap();
            for (g, w) in got.data().iter().zip(&want) {
                prop_assert!((g - w).abs() < 1e-3, "{g} vs {w}");
            }
        }
    }
}
