//! Binarization-aware training with the straight-through estimator.
//!
//! §III-A cites Courbariaux et al. (ref 21): binary networks "work fine" —
//! but only when *trained* binarized, not converted post-hoc (experiment
//! E1 measures the post-hoc collapse honestly). This module implements the
//! standard recipe: keep latent f32 weights, binarize them in the forward
//! pass, and pass gradients straight through the sign function (clipped to
//! |w| ≤ 1 where sign has zero true gradient).
//!
//! The result exports directly to the XNOR [`BinaryDense`] kernel, closing
//! the loop: train binary-aware → deploy 1-bit → accuracy survives.

use crate::qmodel::{QLayer, QuantScheme, QuantizedModel};
use crate::qtensor::BinaryDense;
use tinymlops_nn::layer::ActCache;
use tinymlops_nn::loss::cross_entropy;
use tinymlops_nn::{Dataset, Layer, Optimizer, Sequential};
use tinymlops_tensor::Tensor;

/// Configuration for binarization-aware fine-tuning.
#[derive(Debug, Clone)]
pub struct BinaryAwareConfig {
    /// Fine-tuning epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate (applied to the latent f32 weights).
    pub lr: f32,
    /// Shuffle seed.
    pub seed: u64,
    /// Keep the final (classifier) dense layer in f32 — the standard BNN
    /// practice that recovers several accuracy points for free.
    pub full_precision_head: bool,
    /// Model *input* binarization during training (XNOR-Net): interior
    /// binarized layers see `β·sign(h)` activations in the forward pass,
    /// with straight-through gradients, so the true XNOR kernel
    /// ([`BinaryDense::binarize_input`] = `true`) holds accuracy at
    /// deployment. The first binarized dense keeps its f32 input, and a
    /// ReLU directly feeding an activation-binarized layer is dropped —
    /// sign *is* the nonlinearity there (post-ReLU sign is degenerate).
    pub binarize_activations: bool,
}

impl Default for BinaryAwareConfig {
    fn default() -> Self {
        BinaryAwareConfig {
            epochs: 15,
            batch_size: 32,
            lr: 0.002,
            seed: 0,
            full_precision_head: true,
            binarize_activations: false,
        }
    }
}

/// Indices of the dense layers inside `model.layers`.
fn dense_indices(model: &Sequential) -> Vec<usize> {
    model
        .layers
        .iter()
        .enumerate()
        .filter_map(|(i, l)| matches!(l, Layer::Dense(_)).then_some(i))
        .collect()
}

/// Which layers get binarized under `cfg`.
fn binarized_set(model: &Sequential, cfg: &BinaryAwareConfig) -> Vec<usize> {
    let mut idx = dense_indices(model);
    if cfg.full_precision_head && idx.len() > 1 {
        idx.pop();
    }
    idx
}

/// Dense layers whose *input* is binarized when
/// [`BinaryAwareConfig::binarize_activations`] is set: every binarized
/// dense except the first — XNOR-Net practice keeps the network input in
/// full precision, so a 2-dense MLP has no activation-binarized layer and
/// the flag is a no-op there.
fn act_binarized_set(model: &Sequential, cfg: &BinaryAwareConfig) -> Vec<usize> {
    if !cfg.binarize_activations {
        return Vec::new();
    }
    let mut idx = binarized_set(model, cfg);
    if !idx.is_empty() {
        idx.remove(0);
    }
    idx
}

/// ReLU layers that feed an activation-binarized dense (possibly through
/// inference-identity Dropouts). Sign replaces them as the nonlinearity —
/// sign of a post-ReLU activation is degenerate (all +1) — so training
/// skips them and the export drops them.
fn skipped_relu_set(model: &Sequential, act: &[usize]) -> Vec<usize> {
    let mut out = Vec::new();
    for &a in act {
        let mut j = a;
        while j > 0 {
            j -= 1;
            match &model.layers[j] {
                Layer::Dropout(_) => {}
                Layer::Relu => {
                    out.push(j);
                    break;
                }
                _ => break,
            }
        }
    }
    out
}

/// XNOR-Net input binarization: per example row, β = mean |h| and
/// h → β·sign(h), with `v ≥ 0 → +1` matching the [`BinaryDense`] kernel's
/// sign convention so training forward ≡ deployed kernel.
fn binarize_rows(h: &Tensor) -> Tensor {
    let mut out = h.clone();
    let rows = out.rows();
    let cols = out.len().checked_div(rows).unwrap_or(0);
    for r in 0..rows {
        let row = &mut out.data_mut()[r * cols..(r + 1) * cols];
        let beta = row.iter().map(|v| v.abs()).sum::<f32>() / cols.max(1) as f32;
        for v in row.iter_mut() {
            *v = if *v >= 0.0 { beta } else { -beta };
        }
    }
    out
}

/// Forward pass of the *deployed* binary behaviour for evaluation:
/// weights must already be ±α (swap first), activation binarization and
/// ReLU skips applied exactly as the exported XNOR kernels will.
fn binarized_eval_forward(
    model: &Sequential,
    act: &[usize],
    skipped: &[usize],
    x: &Tensor,
) -> Tensor {
    let mut h = x.clone();
    for (i, l) in model.layers.iter().enumerate() {
        if skipped.contains(&i) {
            continue;
        }
        if act.contains(&i) {
            h = binarize_rows(&h);
        }
        h = l.forward(&h);
    }
    h
}

/// Binarize the selected layers' weights in place (sign × per-row α),
/// returning the latent weights so they can be restored.
fn swap_in_binarized(model: &mut Sequential, layers: &[usize]) -> Vec<Vec<f32>> {
    let mut latents = Vec::with_capacity(layers.len());
    for &i in layers {
        if let Layer::Dense(d) = &mut model.layers[i] {
            latents.push(d.w.data().to_vec());
            let (rows, cols) = (d.w.shape()[0], d.w.shape()[1]);
            for r in 0..rows {
                let row = &mut d.w.data_mut()[r * cols..(r + 1) * cols];
                let alpha = row.iter().map(|v| v.abs()).sum::<f32>() / cols as f32;
                for v in row.iter_mut() {
                    *v = if *v >= 0.0 { alpha } else { -alpha };
                }
            }
        }
    }
    latents
}

/// Restore latent weights saved by [`swap_in_binarized`].
fn restore_latents(model: &mut Sequential, layers: &[usize], latents: &[Vec<f32>]) {
    for (&i, latent) in layers.iter().zip(latents) {
        if let Layer::Dense(d) = &mut model.layers[i] {
            d.w.data_mut().copy_from_slice(latent);
        }
    }
}

/// Straight-through gradient clip: zero the latent gradient where
/// |latent| > 1 (outside the STE's linear region).
fn ste_clip(model: &mut Sequential, layers: &[usize], latents: &[Vec<f32>]) {
    for (&i, latent) in layers.iter().zip(latents) {
        if let Layer::Dense(d) = &mut model.layers[i] {
            if let Some(g) = &mut d.grad_w {
                for (gv, &lv) in g.data_mut().iter_mut().zip(latent) {
                    if lv.abs() > 1.0 {
                        *gv = 0.0;
                    }
                }
            }
        }
    }
}

/// Fine-tune `model` binarization-aware. The model's weights remain f32
/// ("latent") afterwards; export with [`export_binary`] for deployment.
/// Returns per-epoch *binarized* training accuracy so callers can watch
/// convergence of the deployed behaviour, not the latent one.
pub fn binary_aware_finetune(
    model: &mut Sequential,
    data: &Dataset,
    cfg: &BinaryAwareConfig,
) -> Vec<f32> {
    let layers = binarized_set(model, cfg);
    let act = act_binarized_set(model, cfg);
    let skipped = skipped_relu_set(model, &act);
    let mut opt = tinymlops_nn::Adam::new(cfg.lr);
    let mut history = Vec::with_capacity(cfg.epochs);
    for e in 0..cfg.epochs {
        for (x, y) in data.batches(cfg.batch_size, cfg.seed.wrapping_add(e as u64)) {
            // Forward+backward with binarized weights…
            let latents = swap_in_binarized(model, &layers);
            model.zero_grad();
            if act.is_empty() {
                let logits = model.forward_train(&x);
                let (_, grad) = cross_entropy(&logits, &y);
                model.backward(&grad);
            } else {
                train_step_act_binarized(model, &act, &skipped, &x, &y);
            }
            // …but step the latent weights (straight-through estimator).
            restore_latents(model, &layers, &latents);
            ste_clip(model, &layers, &latents);
            opt.step(model);
        }
        // Epoch metric: accuracy of the *binarized* network, including
        // activation binarization when configured — the deployed
        // behaviour, not the latent one.
        let latents = swap_in_binarized(model, &layers);
        let correct = binarized_eval_forward(model, &act, &skipped, &data.x)
            .argmax_rows()
            .iter()
            .zip(&data.y)
            .filter(|(p, t)| p == t)
            .count();
        restore_latents(model, &layers, &latents);
        history.push(correct as f32 / data.len().max(1) as f32);
    }
    history
}

/// One forward+backward with activation binarization modelled: interior
/// binarized layers see `β·sign(h)`, ReLUs they replace are skipped, and
/// gradients pass straight through sign (zeroed outside |h| ≤ 1, the
/// STE's linear region). Weights must already be ±α (swap first); leaves
/// parameter gradients accumulated on `model`.
fn train_step_act_binarized(
    model: &mut Sequential,
    act: &[usize],
    skipped: &[usize],
    x: &Tensor,
    y: &[usize],
) {
    let n = model.layers.len();
    let mut caches: Vec<ActCache> = (0..n).map(|_| ActCache::default()).collect();
    // Pre-binarization activations, kept for the STE mask.
    let mut pre: Vec<Option<Tensor>> = vec![None; n];
    let mut h = x.clone();
    for i in 0..n {
        if skipped.contains(&i) {
            continue;
        }
        if act.contains(&i) {
            pre[i] = Some(h.clone());
            h = binarize_rows(&h);
        }
        h = model.layers[i].forward_train(&h, &mut caches[i]);
    }
    let (_, grad0) = cross_entropy(&h, y);
    let mut grad = grad0;
    for i in (0..n).rev() {
        if skipped.contains(&i) {
            continue;
        }
        grad = model.layers[i].backward(&grad, &mut caches[i]);
        if let Some(p) = &pre[i] {
            for (g, &v) in grad.data_mut().iter_mut().zip(p.data()) {
                if v.abs() > 1.0 {
                    *g = 0.0;
                }
            }
        }
    }
}

/// Export a binary-aware-trained model for deployment: binarized layers
/// become XNOR [`BinaryDense`] kernels, the (optional) f32 head stays a
/// dense layer. Returns `(binary kernels in layer order, f32 model with
/// binarized weights materialized)` — callers can run either path.
#[must_use]
pub fn export_binary(
    model: &Sequential,
    cfg: &BinaryAwareConfig,
) -> (Vec<BinaryDense>, Sequential) {
    let layers = binarized_set(model, cfg);
    let mut materialized = model.clone();
    let latents = swap_in_binarized(&mut materialized, &layers);
    let _ = latents; // materialized now carries ±α weights
    let kernels = layers
        .iter()
        .filter_map(|&i| match &materialized.layers[i] {
            Layer::Dense(d) => Some(BinaryDense::quantize(&d.w, &d.b)),
            _ => None,
        })
        .collect();
    (kernels, materialized)
}

/// Package a binary-aware-trained model as a deployable
/// [`QuantizedModel`]: binarized layers become [`BinaryDense`] kernels —
/// true XNOR (input-binarizing) for the activation-binarized set when
/// [`BinaryAwareConfig::binarize_activations`] trained them that way,
/// weight-only otherwise; activations and the (optional) full-precision
/// head run as passthrough layers, except ReLUs a sign nonlinearity
/// replaced, which are dropped to match the trained network exactly.
/// This is what the registry's optimization pipeline
/// stores for the int1 variant, so the artifact that ships is exactly the
/// network whose accuracy was measured — same serialization, loading and
/// serving path as every other `QuantizedModel`.
#[must_use]
pub fn export_quantized(model: &Sequential, cfg: &BinaryAwareConfig) -> QuantizedModel {
    let binarized = binarized_set(model, cfg);
    let act = act_binarized_set(model, cfg);
    let skipped = skipped_relu_set(model, &act);
    let layers = model
        .layers
        .iter()
        .enumerate()
        .filter(|(i, _)| !skipped.contains(i))
        .map(|(i, l)| match l {
            Layer::Dense(d) if act.contains(&i) => {
                // True XNOR kernel: training modelled β·sign(h) inputs
                // for this layer, so the deployed kernel binarizes
                // activations too ([`BinaryDense::binarize_input`]).
                QLayer::BinaryDense(BinaryDense::quantize(&d.w, &d.b))
            }
            Layer::Dense(d) if binarized.contains(&i) => {
                // Weight-only binarization: STE training prepared this
                // layer for ±α weights with f32 activations — ship the
                // kernel it trained as.
                QLayer::BinaryDense(BinaryDense::quantize_weight_only(&d.w, &d.b))
            }
            other => QLayer::Passthrough(other.clone()),
        })
        .collect();
    QuantizedModel::from_layers(layers, QuantScheme::Binary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinymlops_nn::data::synth_digits;
    use tinymlops_nn::model::mlp;
    use tinymlops_nn::train::{evaluate, fit, FitConfig};
    use tinymlops_nn::Adam;
    use tinymlops_tensor::TensorRng;

    fn trained() -> (Sequential, Dataset, Dataset) {
        let data = synth_digits(1200, 0.08, 77);
        let (train, test) = data.split(0.85, 0);
        let mut rng = TensorRng::seed(7);
        let mut model = mlp(&[64, 48, 10], &mut rng);
        let mut opt = Adam::new(0.005);
        fit(
            &mut model,
            &train,
            &mut opt,
            &FitConfig {
                epochs: 12,
                batch_size: 32,
                ..Default::default()
            },
        );
        (model, train, test)
    }

    /// The headline: binary-aware training rescues 1-bit deployment from
    /// the post-hoc collapse E1 measures.
    #[test]
    fn binary_aware_beats_post_hoc_conversion() {
        let (mut model, train, test) = trained();
        // Post-hoc: binarize the trained f32 model directly.
        let cfg = BinaryAwareConfig::default();
        let (_, posthoc) = export_binary(&model, &cfg);
        let posthoc_acc = evaluate(&posthoc, &test);
        // Binary-aware fine-tuning on the same model.
        let history = binary_aware_finetune(&mut model, &train, &cfg);
        let (_, aware) = export_binary(&model, &cfg);
        let aware_acc = evaluate(&aware, &test);
        assert!(
            aware_acc > posthoc_acc + 0.15,
            "binary-aware {aware_acc} should beat post-hoc {posthoc_acc} by a wide margin"
        );
        assert!(
            aware_acc > 0.7,
            "1-bit deployment should work, got {aware_acc}"
        );
        assert!(
            history.last().unwrap() > &0.7,
            "training accuracy converges, got {:?}",
            history.last()
        );
    }

    #[test]
    fn exported_kernels_match_materialized_model() {
        let (mut model, train, _) = trained();
        let cfg = BinaryAwareConfig {
            epochs: 3,
            ..Default::default()
        };
        binary_aware_finetune(&mut model, &train, &cfg);
        let (kernels, materialized) = export_binary(&model, &cfg);
        // One binarized kernel (head stays f32 for a 2-dense MLP).
        assert_eq!(kernels.len(), 1);
        // The materialized first layer holds exactly ±α values per row.
        if let Layer::Dense(d) = &materialized.layers[0] {
            let row = d.w.row(0);
            let alpha = row[0].abs();
            assert!(row.iter().all(|v| (v.abs() - alpha).abs() < 1e-6));
        } else {
            panic!("expected dense");
        }
    }

    #[test]
    fn latent_weights_stay_f32_during_training() {
        let (mut model, train, _) = trained();
        let cfg = BinaryAwareConfig {
            epochs: 2,
            ..Default::default()
        };
        binary_aware_finetune(&mut model, &train, &cfg);
        // Latents are not ±α (they keep full precision for optimization).
        if let Layer::Dense(d) = &model.layers[0] {
            let row = d.w.row(0);
            let alpha = row[0].abs();
            assert!(
                row.iter().any(|v| (v.abs() - alpha).abs() > 1e-4),
                "latent weights must not be binarized in place"
            );
        }
    }

    #[test]
    fn export_quantized_matches_materialized_accuracy() {
        let (mut model, train, test) = trained();
        let cfg = BinaryAwareConfig {
            epochs: 5,
            ..Default::default()
        };
        binary_aware_finetune(&mut model, &train, &cfg);
        let q = export_quantized(&model, &cfg);
        assert_eq!(q.scheme, QuantScheme::Binary);
        let (_, materialized) = export_binary(&model, &cfg);
        let q_acc = q.accuracy(&test.x, &test.y);
        let m_acc = evaluate(&materialized, &test);
        // XNOR kernels binarize activations too, so allow a small gap —
        // but the deployable artifact must track the measured network.
        assert!(
            (q_acc - m_acc).abs() < 0.15,
            "deployed {q_acc} vs materialized {m_acc}"
        );
        // Round-trips through serde like every other registry artifact.
        let bytes = serde_json::to_vec(&q).unwrap();
        let back: QuantizedModel = serde_json::from_slice(&bytes).unwrap();
        assert_eq!(back.accuracy(&test.x, &test.y), q_acc);
    }

    /// A deeper net so the activation-binarized set is non-empty (the
    /// first binarized dense keeps its f32 input).
    fn trained_deep() -> (Sequential, Dataset, Dataset) {
        let data = synth_digits(1200, 0.08, 77);
        let (train, test) = data.split(0.85, 0);
        let mut rng = TensorRng::seed(7);
        let mut model = mlp(&[64, 48, 32, 10], &mut rng);
        let mut opt = Adam::new(0.005);
        fit(
            &mut model,
            &train,
            &mut opt,
            &FitConfig {
                epochs: 12,
                batch_size: 32,
                ..Default::default()
            },
        );
        (model, train, test)
    }

    /// The tentpole claim: modelling input binarization during training
    /// lets the *true XNOR kernel* hold accuracy, where a weight-only-
    /// trained network collapses on that same kernel.
    #[test]
    fn activation_aware_training_rescues_the_xnor_kernel() {
        let (model, train, test) = trained_deep();
        let act_cfg = BinaryAwareConfig {
            binarize_activations: true,
            ..Default::default()
        };
        let wo_cfg = BinaryAwareConfig::default();

        // Baseline: weight-only binary-aware training, then force the
        // interior layer through the input-binarizing XNOR kernel (what
        // deploying the fastest kernel without act-aware training means).
        let mut wo = model.clone();
        binary_aware_finetune(&mut wo, &train, &wo_cfg);
        let wo_on_xnor = export_quantized(&wo, &act_cfg).accuracy(&test.x, &test.y);

        // Activation-binarization-aware training for the same kernel.
        let mut aw = model.clone();
        let history = binary_aware_finetune(&mut aw, &train, &act_cfg);
        let q = export_quantized(&aw, &act_cfg);
        let aware_acc = q.accuracy(&test.x, &test.y);

        assert!(
            aware_acc > wo_on_xnor + 0.05,
            "act-aware {aware_acc} should beat weight-only-trained-on-XNOR {wo_on_xnor}"
        );
        assert!(aware_acc > 0.6, "true XNOR deployment works: {aware_acc}");
        // The exported artifact tracks the accuracy training measured.
        let trained_acc = *history.last().unwrap();
        assert!(
            (q.accuracy(&train.x, &train.y) - trained_acc).abs() < 0.02,
            "deployed kernel must match the trained forward: {} vs {trained_acc}",
            q.accuracy(&train.x, &train.y)
        );
    }

    #[test]
    fn activation_aware_export_uses_xnor_kernels_and_drops_the_relu() {
        let (model, train, _) = trained_deep();
        let cfg = BinaryAwareConfig {
            binarize_activations: true,
            epochs: 1,
            ..Default::default()
        };
        let mut m = model.clone();
        binary_aware_finetune(&mut m, &train, &cfg);
        let q = export_quantized(&m, &cfg);
        // [D,R,D,R,D] → weight-only D, ReLU, XNOR D (its ReLU dropped),
        // then the passthrough ReLU + f32 head.
        assert_eq!(q.layers.len(), model.layers.len() - 1);
        let kinds: Vec<&str> = q
            .layers
            .iter()
            .map(|l| match l {
                QLayer::BinaryDense(b) if b.binarize_input => "xnor",
                QLayer::BinaryDense(_) => "wo",
                QLayer::Passthrough(_) => "pass",
                QLayer::Dense(_) => "int",
            })
            .collect();
        assert_eq!(kinds, ["wo", "xnor", "pass", "pass"]);
    }

    #[test]
    fn binarize_activations_is_a_noop_on_two_dense_mlps() {
        let (model, train, test) = trained();
        let mut a = model.clone();
        let mut b = model.clone();
        let cfg_off = BinaryAwareConfig {
            epochs: 2,
            ..Default::default()
        };
        let cfg_on = BinaryAwareConfig {
            binarize_activations: true,
            ..cfg_off.clone()
        };
        let ha = binary_aware_finetune(&mut a, &train, &cfg_off);
        let hb = binary_aware_finetune(&mut b, &train, &cfg_on);
        assert_eq!(ha, hb, "no interior layer to binarize — same training");
        assert_eq!(
            export_quantized(&a, &cfg_off).predict(&test.x),
            export_quantized(&b, &cfg_on).predict(&test.x)
        );
    }

    #[test]
    fn full_precision_head_flag_controls_export() {
        let (model, _, _) = trained();
        let with_head = export_binary(
            &model,
            &BinaryAwareConfig {
                full_precision_head: true,
                ..Default::default()
            },
        );
        let without = export_binary(
            &model,
            &BinaryAwareConfig {
                full_precision_head: false,
                ..Default::default()
            },
        );
        assert_eq!(with_head.0.len(), 1);
        assert_eq!(without.0.len(), 2);
    }
}
