//! Model optimization for edge deployment: quantization, pruning and
//! knowledge distillation (paper §II and §III-A).
//!
//! §III-A: *"It was found however that inference can work fine with 8 bit,
//! 3 bit, 2 bit or even 1 bit (binary) weights and operations."* This crate
//! makes that claim testable:
//!
//! * [`QuantizedModel`] — post-training static quantization of dense
//!   networks to int8 / int4 / int2 with per-output-channel symmetric
//!   scales and integer accumulation, plus XNOR-popcount binary networks.
//! * [`fake_quantize`] — weight-grid rounding for any architecture
//!   (including conv), used for quick accuracy-vs-bits sweeps and
//!   watermark-robustness attacks.
//! * [`prune`] — global magnitude pruning and CSR sparse inference.
//! * [`distill()`] — teacher→student knowledge distillation, also the
//!   building block of the §V model-extraction attack.

pub mod binary_train;
pub mod calibrate;
pub mod distill;
pub mod prune;
pub mod qmodel;
pub mod qtensor;

pub use binary_train::{binary_aware_finetune, export_binary, export_quantized, BinaryAwareConfig};
pub use calibrate::Calibration;
pub use distill::{distill, DistillConfig};
pub use prune::{
    apply_masks, capture_masks, finetune_pruned, magnitude_prune, sparsity_of, SparseDense,
};
pub use qmodel::{QuantScheme, QuantizedModel};
pub use qtensor::{
    dot_i8, dot_i8_portable, fake_quantize_tensor, BinaryDense, QDense, RequantPlan,
};

use tinymlops_nn::Sequential;

/// Errors from model optimization.
#[derive(Debug, Clone, PartialEq)]
pub enum QuantError {
    /// The architecture contains a layer the chosen scheme cannot handle.
    Unsupported(String),
    /// Calibration data was empty or mismatched.
    BadCalibration(String),
}

impl std::fmt::Display for QuantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuantError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
            QuantError::BadCalibration(msg) => write!(f, "bad calibration: {msg}"),
        }
    }
}

impl std::error::Error for QuantError {}

/// Round every Dense/Conv weight of a model onto a symmetric `bits`-bit
/// grid, per output channel ("fake quantization"). The returned model runs
/// with ordinary f32 kernels but carries only `2^bits − 1` distinct weight
/// levels per channel, which is what determines accuracy loss.
#[must_use]
pub fn fake_quantize(model: &Sequential, bits: u32) -> Sequential {
    let mut m = model.clone();
    for layer in &mut m.layers {
        for (p, _) in layer.params_mut() {
            // Quantize matrices per-row (output channel); vectors (biases)
            // are left in f32, matching common deployment practice.
            if p.shape().len() >= 2 {
                let rows = p.shape()[0];
                let cols = p.len() / rows;
                for r in 0..rows {
                    let row = &mut p.data_mut()[r * cols..(r + 1) * cols];
                    fake_quantize_tensor(row, bits);
                }
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinymlops_nn::model::mlp;
    use tinymlops_tensor::TensorRng;

    #[test]
    fn fake_quantize_reduces_distinct_levels() {
        let mut rng = TensorRng::seed(5);
        let m = mlp(&[8, 16, 4], &mut rng);
        let q = fake_quantize(&m, 2);
        // Each row of each weight matrix has at most 2^2-1 = 3 distinct
        // nonzero magnitudes... count distinct values per first row.
        if let tinymlops_nn::Layer::Dense(d) = &q.layers[0] {
            let mut vals: Vec<i32> = d.w.row(0).iter().map(|v| (v * 1e6) as i32).collect();
            vals.sort_unstable();
            vals.dedup();
            assert!(vals.len() <= 3, "2-bit row has {} levels", vals.len());
        } else {
            panic!("expected dense layer");
        }
    }

    #[test]
    fn fake_quantize_high_bits_is_nearly_lossless() {
        let mut rng = TensorRng::seed(6);
        let m = mlp(&[8, 8, 3], &mut rng);
        let q = fake_quantize(&m, 8);
        let x = rng.uniform(&[4, 8], -1.0, 1.0);
        let a = m.forward(&x);
        let b = q.forward(&x);
        for (u, v) in a.data().iter().zip(b.data()) {
            assert!((u - v).abs() < 0.05, "{u} vs {v}");
        }
    }
}
