//! Knowledge distillation: train a small student to mimic a teacher.
//!
//! Used two ways in the paper: as a §II compression technique (the
//! registry's optimization pipeline emits distilled variants for weak
//! devices) and — adversarially — as the §V *indirect model stealing*
//! attack, where the "teacher" is a victim queried through its public API.
//! `tinymlops-ipp` builds the attack on this exact routine.

use tinymlops_nn::loss::distillation;
use tinymlops_nn::{Adam, Optimizer, Sequential};
use tinymlops_tensor::Tensor;

/// Configuration for [`distill`].
#[derive(Debug, Clone)]
pub struct DistillConfig {
    /// Softmax temperature for soft targets.
    pub temperature: f32,
    /// Training epochs over the transfer set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Shuffling seed.
    pub seed: u64,
}

impl Default for DistillConfig {
    fn default() -> Self {
        DistillConfig {
            temperature: 3.0,
            epochs: 30,
            batch_size: 32,
            lr: 0.005,
            seed: 0,
        }
    }
}

/// Train `student` in place so its outputs match `teacher_probs_fn`'s
/// (already-softened) probabilities on the transfer inputs `x`.
///
/// `teacher_probs_fn` abstracts the oracle: for benign distillation it is
/// the teacher's tempered softmax; for the stealing attack it is whatever
/// the victim's (possibly poisoned) prediction API returns.
pub fn distill(
    student: &mut Sequential,
    x: &Tensor,
    teacher_probs: &Tensor,
    cfg: &DistillConfig,
) -> Vec<f32> {
    assert_eq!(
        x.rows(),
        teacher_probs.rows(),
        "one teacher distribution per transfer input"
    );
    let n = x.rows();
    let mut opt = Adam::new(cfg.lr);
    let mut losses = Vec::with_capacity(cfg.epochs);
    for e in 0..cfg.epochs {
        let perm =
            tinymlops_tensor::TensorRng::seed(cfg.seed.wrapping_add(e as u64)).permutation(n);
        let mut total = 0.0f32;
        let mut seen = 0usize;
        for chunk in perm.chunks(cfg.batch_size) {
            let xb = gather_rows(x, chunk);
            let tb = gather_rows(teacher_probs, chunk);
            student.zero_grad();
            let logits = student.forward_train(&xb);
            let (loss, grad) = distillation(&logits, &tb, cfg.temperature);
            student.backward(&grad);
            opt.step(student);
            total += loss * chunk.len() as f32;
            seen += chunk.len();
        }
        losses.push(if seen == 0 { 0.0 } else { total / seen as f32 });
    }
    losses
}

/// Tempered teacher probabilities for benign distillation.
#[must_use]
pub fn teacher_soft_targets(teacher: &Sequential, x: &Tensor, temperature: f32) -> Tensor {
    teacher.forward(x).scale(1.0 / temperature).softmax_rows()
}

fn gather_rows(t: &Tensor, idx: &[usize]) -> Tensor {
    let cols = t.cols();
    let mut data = Vec::with_capacity(idx.len() * cols);
    for &i in idx {
        data.extend_from_slice(t.row(i));
    }
    Tensor::from_vec(data, &[idx.len(), cols])
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinymlops_nn::data::synth_digits;
    use tinymlops_nn::model::mlp;
    use tinymlops_nn::train::{evaluate, fit, FitConfig};
    use tinymlops_tensor::TensorRng;

    #[test]
    fn student_approaches_teacher_accuracy() {
        let data = synth_digits(1200, 0.08, 55);
        let (train, test) = data.split(0.85, 0);
        let mut rng = TensorRng::seed(20);
        let mut teacher = mlp(&[64, 48, 10], &mut rng);
        let mut opt = Adam::new(0.005);
        fit(
            &mut teacher,
            &train,
            &mut opt,
            &FitConfig {
                epochs: 20,
                batch_size: 32,
                ..Default::default()
            },
        );
        let teacher_acc = evaluate(&teacher, &test);

        // Student is 3x smaller.
        let mut student = mlp(&[64, 16, 10], &mut rng);
        let soft = teacher_soft_targets(&teacher, &train.x, 3.0);
        let losses = distill(&mut student, &train.x, &soft, &DistillConfig::default());
        let student_acc = evaluate(&student, &test);

        assert!(
            losses.last().unwrap() < &losses[0],
            "distill loss decreases"
        );
        assert!(
            student_acc > teacher_acc - 0.12,
            "student {student_acc} vs teacher {teacher_acc}"
        );
        assert!(student.num_params() < teacher.num_params());
    }

    #[test]
    fn distill_panics_on_mismatched_rows() {
        let mut rng = TensorRng::seed(1);
        let mut s = mlp(&[4, 2], &mut rng);
        let x = Tensor::zeros(&[3, 4]);
        let t = Tensor::zeros(&[2, 2]);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            distill(&mut s, &x, &t, &DistillConfig::default())
        }));
        assert!(result.is_err());
    }

    #[test]
    fn agreement_between_student_and_teacher() {
        // Even on unlabeled transfer data, student should agree with the
        // teacher's argmax most of the time — this is the metric the §V
        // stealing experiments report.
        let data = synth_digits(800, 0.05, 66);
        let mut rng = TensorRng::seed(2);
        let mut teacher = mlp(&[64, 32, 10], &mut rng);
        let mut opt = Adam::new(0.005);
        fit(
            &mut teacher,
            &data,
            &mut opt,
            &FitConfig {
                epochs: 15,
                batch_size: 32,
                ..Default::default()
            },
        );

        let transfer = synth_digits(800, 0.2, 77); // different distribution
        let soft = teacher_soft_targets(&teacher, &transfer.x, 3.0);
        let mut student = mlp(&[64, 24, 10], &mut rng);
        distill(
            &mut student,
            &transfer.x,
            &soft,
            &DistillConfig {
                epochs: 25,
                ..Default::default()
            },
        );

        let t_pred = teacher.predict(&data.x);
        let s_pred = student.predict(&data.x);
        let agree =
            t_pred.iter().zip(&s_pred).filter(|(a, b)| a == b).count() as f32 / t_pred.len() as f32;
        assert!(agree > 0.7, "agreement {agree}");
    }
}
