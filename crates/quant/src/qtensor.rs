//! Quantized dense kernels: packed int8/int4/int2 and binary XNOR.
//!
//! The integer forward path mirrors what a flash-resident deployment does
//! once at boot, not once per inference: packed weights are unpacked into
//! an i8 matrix a single time (cached in a [`OnceLock`]), activations are
//! quantized by one shared helper (the same expression the verifier
//! replays), and the i32 accumulation runs through [`dot_i8`] — an
//! explicit `vpmaddwd`-shaped AVX2 kernel dispatched at runtime on
//! x86-64, with the plain autovectorizable loop as the portable fallback
//! — and parallelizes over batch rows via rayon. Integer addition is
//! associative, so every restructuring is bit-identical to the seed scalar
//! loop, which is retained as [`QDense::forward_reference`] for the
//! property tests and the `b01_kernels` baseline.
//!
//! # Fixed-point requantization
//!
//! Cross-layer fusion keeps activations in the integer domain between
//! consecutive `QDense` layers: instead of dequantizing accumulators to
//! f32 and re-quantizing at the next layer's input scale, a
//! [`RequantPlan`] folds the whole boundary into one integer multiply per
//! element. For output row `r` feeding a layer with input scale `s_next`,
//! the real-valued rescale factor is
//!
//! ```text
//! M_r = (in_scale · w_scales[r]) / s_next
//! ```
//!
//! which [`QDense::requant_plan`] decomposes (gemmlowp/TFLite style) into
//! a normalized i32 mantissa and a right shift: `M_r = mult_r · 2^-rshift_r`
//! with `mult_r = round(m · 2³¹)` for `m ∈ [0.5, 1)`, so
//! `mult_r ∈ [2³⁰, 2³¹)` keeps a full 31 bits of precision. The bias is
//! quantized once to accumulator units, `bias_q[r] = round(bias[r] /
//! (in_scale · w_scales[r]))`. Applying the plan is then pure integer
//! arithmetic off the i32 accumulator:
//!
//! ```text
//! q = clamp(rounding_shift((acc + bias_q[r]) · mult_r, rshift_r), -127, 127)
//! ```
//!
//! where `rounding_shift` is a round-half-away-from-zero right shift of
//! the i64 product (the same convention as `f32::round`, so the fused
//! activation lands within one int8 step — "one requant ULP" — of the
//! dequantize→`quantize_activations` reference), and the final clamp
//! saturates to the symmetric int8 grid. A ReLU at the boundary is
//! `max(acc + bias_q, 0)` *before* the multiply: the grid's zero-point is
//! 0 and `M_r > 0`, so integer clamping commutes exactly with the f32
//! ReLU. Degenerate scales (non-positive, non-finite, or a rescale ratio
//! outside `2^-62..2^31`) yield no plan and the caller falls back to the
//! f32 boundary.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;
use tinymlops_tensor::Tensor;

/// MAC threshold below which the batch-parallel path is skipped (thread
/// spawn costs more than the multiply saves).
const QPAR_MIN_MACS: usize = 256 * 1024;

/// Round a weight row onto a symmetric `bits`-bit grid in place.
///
/// The grid has `2^(bits−1) − 1` positive levels (e.g. 127 for int8, 1 for
/// 2-bit); the scale is chosen from the row's max magnitude.
pub fn fake_quantize_tensor(row: &mut [f32], bits: u32) {
    let qmax = ((1i32 << (bits - 1)) - 1).max(1) as f32;
    let amax = row.iter().fold(0.0f32, |m, v| m.max(v.abs()));
    if amax == 0.0 {
        return;
    }
    let scale = amax / qmax;
    for v in row.iter_mut() {
        *v = (*v / scale).round().clamp(-qmax, qmax) * scale;
    }
}

/// A dense layer with `bits`-bit symmetric weights (per-output-channel
/// scales), int8 input quantization and i32 accumulation.
///
/// Weights are stored **packed** (2 values/byte at 4 bits, 4 at 2 bits) —
/// what a flash image would hold — and unpacked row-by-row into a scratch
/// buffer during the integer kernel.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QDense {
    /// Packed weight bytes, rows concatenated.
    pub packed: Vec<u8>,
    /// Bits per weight: 8, 4 or 2.
    pub bits: u32,
    /// Per-output-row weight scales.
    pub w_scales: Vec<f32>,
    /// Input activation scale (from calibration).
    pub in_scale: f32,
    /// f32 bias per output.
    pub bias: Vec<f32>,
    /// Input dimension.
    pub in_dim: usize,
    /// Output dimension.
    pub out_dim: usize,
    /// Lazily unpacked `[out,in]` i8 weight matrix — computed once per
    /// layer lifetime instead of once per forward call. Rebuilt empty on
    /// deserialize/clone-from-empty; invariant: `packed` is immutable
    /// after construction (records are republished, never edited).
    #[serde(skip)]
    unpacked: OnceLock<Vec<i8>>,
    /// [`QDense::unpacked`] sign-extended to i16, cached so the
    /// `vpmaddwd` tile kernel loads weight rows directly instead of
    /// spending shuffle-port `vpmovsxbw` uops per chunk — the values are
    /// identical, only the storage width changes, so parity with the i8
    /// kernels is structural. Doubles the RAM image of a layer (the
    /// flash image `packed` stays put), which is the deployment-side
    /// trade §II prices in bytes-vs-latency terms.
    #[serde(skip)]
    unpacked_i16: OnceLock<Vec<i16>>,
}

fn qmax_for(bits: u32) -> i32 {
    (1i32 << (bits - 1)) - 1
}

/// Values per packed byte for a given bit width.
fn per_byte(bits: u32) -> usize {
    (8 / bits) as usize
}

/// Bytes needed per row of `in_dim` weights at `bits` bits.
fn row_bytes(in_dim: usize, bits: u32) -> usize {
    in_dim.div_ceil(per_byte(bits))
}

fn pack_row(q: &[i8], bits: u32, out: &mut Vec<u8>) {
    match bits {
        8 => out.extend(q.iter().map(|&v| v as u8)),
        4 => {
            for pair in q.chunks(2) {
                let lo = (pair[0] as u8) & 0x0f;
                let hi = if pair.len() > 1 {
                    (pair[1] as u8) & 0x0f
                } else {
                    0
                };
                out.push(lo | (hi << 4));
            }
        }
        2 => {
            for quad in q.chunks(4) {
                let mut b = 0u8;
                for (i, &v) in quad.iter().enumerate() {
                    b |= ((v as u8) & 0x03) << (2 * i);
                }
                out.push(b);
            }
        }
        _ => panic!("unsupported bit width {bits}"),
    }
}

fn unpack_row(packed: &[u8], bits: u32, in_dim: usize, out: &mut [i8]) {
    match bits {
        8 => {
            for (o, &b) in out.iter_mut().zip(packed) {
                *o = b as i8;
            }
        }
        4 => {
            for i in 0..in_dim {
                let b = packed[i / 2];
                let nib = if i % 2 == 0 { b & 0x0f } else { b >> 4 };
                // Sign-extend 4-bit two's complement.
                out[i] = ((nib << 4) as i8) >> 4;
            }
        }
        2 => {
            for i in 0..in_dim {
                let b = packed[i / 4];
                let two = (b >> (2 * (i % 4))) & 0x03;
                out[i] = ((two << 6) as i8) >> 6;
            }
        }
        _ => panic!("unsupported bit width {bits}"),
    }
}

impl QDense {
    /// Quantize an f32 weight matrix `[out,in]` + bias, with `in_scale`
    /// taken from calibration of this layer's input activations.
    #[must_use]
    pub fn quantize(w: &Tensor, bias: &Tensor, bits: u32, in_scale: f32) -> Self {
        assert!(matches!(bits, 8 | 4 | 2), "QDense supports 8/4/2 bits");
        let (out_dim, in_dim) = (w.shape()[0], w.shape()[1]);
        let qmax = qmax_for(bits) as f32;
        let mut packed = Vec::with_capacity(out_dim * row_bytes(in_dim, bits));
        let mut w_scales = Vec::with_capacity(out_dim);
        let mut qrow = vec![0i8; in_dim];
        for r in 0..out_dim {
            let row = w.row(r);
            let amax = row.iter().fold(0.0f32, |m, v| m.max(v.abs()));
            let scale = if amax == 0.0 { 1.0 } else { amax / qmax };
            for (q, &v) in qrow.iter_mut().zip(row) {
                *q = (v / scale).round().clamp(-qmax, qmax) as i8;
            }
            pack_row(&qrow, bits, &mut packed);
            w_scales.push(scale);
        }
        QDense {
            packed,
            bits,
            w_scales,
            in_scale: if in_scale <= 0.0 { 1.0 } else { in_scale },
            bias: bias.data().to_vec(),
            in_dim,
            out_dim,
            unpacked: OnceLock::new(),
            unpacked_i16: OnceLock::new(),
        }
    }

    /// The unpacked `[out,in]` i8 weight matrix, computed on first use and
    /// cached for the layer's lifetime (flash image → RAM image, once).
    #[must_use]
    pub fn unpacked(&self) -> &[i8] {
        self.unpacked.get_or_init(|| {
            let rb = row_bytes(self.in_dim, self.bits);
            let mut out = vec![0i8; self.out_dim * self.in_dim];
            for (r, dst) in out.chunks_mut(self.in_dim).enumerate() {
                unpack_row(
                    &self.packed[r * rb..(r + 1) * rb],
                    self.bits,
                    self.in_dim,
                    dst,
                );
            }
            out
        })
    }

    /// The i16-widened weight matrix for the `vpmaddwd` tile kernel (see
    /// the `unpacked_i16` field docs), computed on first use.
    fn widened(&self) -> &[i16] {
        self.unpacked_i16
            .get_or_init(|| self.unpacked().iter().map(|&v| i16::from(v)).collect())
    }

    /// Integer-kernel forward pass: `x [batch,in] → y [batch,out]`.
    ///
    /// Bit-identical to [`QDense::forward_reference`] (the seed scalar
    /// loop): i32 accumulation is associative, so unrolling, row blocking
    /// and batch parallelism cannot change a single output bit.
    #[must_use]
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let batch = x.rows();
        assert_eq!(x.cols(), self.in_dim, "QDense input width");
        let mut xq = vec![0i8; batch * self.in_dim];
        quantize_activations(x.data(), self.in_scale, &mut xq);
        let w = self.unpacked();
        let w16 = self.widened();
        let mut out = vec![0.0f32; batch * self.out_dim];
        let body = |(b, out_row): (usize, &mut [f32])| {
            let xrow = &xq[b * self.in_dim..(b + 1) * self.in_dim];
            row_kernel(
                w,
                w16,
                xrow,
                self.in_dim,
                self.in_scale,
                &self.w_scales,
                &self.bias,
                out_row,
            );
        };
        if batch > 1 && batch * self.out_dim * self.in_dim >= QPAR_MIN_MACS {
            out.par_chunks_mut(self.out_dim).enumerate().for_each(body);
        } else {
            out.chunks_mut(self.out_dim).enumerate().for_each(body);
        }
        Tensor::from_vec(out, &[batch, self.out_dim])
    }

    /// [`QDense::forward`] with the runtime SIMD dispatch pinned to the
    /// pre-`vpmaddwd` autovectorized row kernel — the exact before-state
    /// the explicit SIMD kernel replaced, kept callable so `b01_kernels`
    /// measures both in one run. Bit-identical to [`QDense::forward`].
    #[doc(hidden)]
    #[must_use]
    pub fn forward_autovec(&self, x: &Tensor) -> Tensor {
        let batch = x.rows();
        assert_eq!(x.cols(), self.in_dim, "QDense input width");
        let mut xq = vec![0i8; batch * self.in_dim];
        quantize_activations(x.data(), self.in_scale, &mut xq);
        let w = self.unpacked();
        let mut out = vec![0.0f32; batch * self.out_dim];
        let body = |(b, out_row): (usize, &mut [f32])| {
            let xrow = &xq[b * self.in_dim..(b + 1) * self.in_dim];
            row_kernel_autovec(
                w,
                xrow,
                self.in_dim,
                self.in_scale,
                &self.w_scales,
                &self.bias,
                out_row,
            );
        };
        if batch > 1 && batch * self.out_dim * self.in_dim >= QPAR_MIN_MACS {
            out.par_chunks_mut(self.out_dim).enumerate().for_each(body);
        } else {
            out.chunks_mut(self.out_dim).enumerate().for_each(body);
        }
        Tensor::from_vec(out, &[batch, self.out_dim])
    }

    /// The seed per-forward-unpacking scalar kernel, retained verbatim as
    /// the bit-exactness oracle for property tests and the baseline that
    /// `b01_kernels` measures [`QDense::forward`] against.
    #[must_use]
    pub fn forward_reference(&self, x: &Tensor) -> Tensor {
        let batch = x.rows();
        assert_eq!(x.cols(), self.in_dim, "QDense input width");
        let q_in_max = 127.0f32;
        let mut xq = vec![0i8; batch * self.in_dim];
        for (q, &v) in xq.iter_mut().zip(x.data()) {
            *q = (v / self.in_scale).round().clamp(-q_in_max, q_in_max) as i8;
        }
        let rb = row_bytes(self.in_dim, self.bits);
        let mut wrow = vec![0i8; self.in_dim];
        let mut out = vec![0.0f32; batch * self.out_dim];
        for r in 0..self.out_dim {
            unpack_row(
                &self.packed[r * rb..(r + 1) * rb],
                self.bits,
                self.in_dim,
                &mut wrow,
            );
            let dequant = self.in_scale * self.w_scales[r];
            for b in 0..batch {
                let xrow = &xq[b * self.in_dim..(b + 1) * self.in_dim];
                let mut acc: i32 = 0;
                for (xv, wv) in xrow.iter().zip(wrow.iter()) {
                    acc += (*xv as i32) * (*wv as i32);
                }
                out[b * self.out_dim + r] = acc as f32 * dequant + self.bias[r];
            }
        }
        Tensor::from_vec(out, &[batch, self.out_dim])
    }

    /// Deployment size in bytes: packed weights + scales + bias.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.packed.len() + 4 * (self.w_scales.len() + self.bias.len()) + 4
    }

    /// Unpack the full integer weight matrix `[out,in]` (row-major i8) —
    /// used by the verifiable-execution layer, whose sum-check operates on
    /// the exact integers the kernel multiplies. Served from the
    /// [`QDense::unpacked`] cache.
    #[must_use]
    pub fn unpack_matrix(&self) -> Vec<i8> {
        self.unpacked().to_vec()
    }

    /// Quantize an activation batch to the layer's int8 input grid —
    /// exposed so a verifier can reproduce the exact kernel inputs. Shares
    /// [`quantize_activations`] with [`QDense::forward`], so the verifier
    /// provably sees the same integers the kernel multiplied.
    #[must_use]
    pub fn quantize_input(&self, x: &Tensor) -> Vec<i8> {
        let mut out = vec![0i8; x.len()];
        quantize_activations(x.data(), self.in_scale, &mut out);
        out
    }

    /// Integer accumulator matmul: `acc[b][r] = Σ_j xq[b][j]·w[r][j]` —
    /// the exact integers the proof system commits to.
    #[must_use]
    pub fn int_accumulate(&self, xq: &[i8], batch: usize) -> Vec<i32> {
        let w = self.unpacked();
        let w16 = self.widened();
        let mut acc = vec![0i32; batch * self.out_dim];
        let body = |(b, acc_row): (usize, &mut [i32])| {
            let xrow = &xq[b * self.in_dim..(b + 1) * self.in_dim];
            acc_row_kernel(w, w16, xrow, self.in_dim, acc_row);
        };
        if batch > 1 && batch * self.out_dim * self.in_dim >= QPAR_MIN_MACS {
            acc.par_chunks_mut(self.out_dim).enumerate().for_each(body);
        } else {
            acc.chunks_mut(self.out_dim).enumerate().for_each(body);
        }
        acc
    }

    /// Dequantize accumulators to f32 outputs (`acc·scale + bias`), the
    /// elementwise step a verifier re-executes cheaply.
    #[must_use]
    pub fn dequantize_acc(&self, acc: &[i32], batch: usize) -> Tensor {
        let mut out = vec![0.0f32; batch * self.out_dim];
        for b in 0..batch {
            for r in 0..self.out_dim {
                out[b * self.out_dim + r] = acc[b * self.out_dim + r] as f32
                    * (self.in_scale * self.w_scales[r])
                    + self.bias[r];
            }
        }
        Tensor::from_vec(out, &[batch, self.out_dim])
    }

    /// Build the fixed-point plan for requantizing this layer's i32
    /// accumulators straight onto the int8 grid of a following layer with
    /// input scale `next_in_scale` — the cross-layer fusion that skips the
    /// f32 round trip [`QDense::dequantize_acc`] +
    /// [`quantize_activations`] would take (see the module docs for the
    /// multiplier/shift derivation). Returns `None` when any scale is
    /// degenerate (non-positive / non-finite) or a per-row rescale ratio
    /// falls outside `2^-62..2^31`; callers then take the f32 boundary.
    #[must_use]
    pub fn requant_plan(&self, next_in_scale: f32) -> Option<RequantPlan> {
        if !next_in_scale.is_finite()
            || next_in_scale <= 0.0
            || !self.in_scale.is_finite()
            || self.in_scale <= 0.0
        {
            return None;
        }
        let mut mult = Vec::with_capacity(self.out_dim);
        let mut rshift = Vec::with_capacity(self.out_dim);
        let mut bias_q = Vec::with_capacity(self.out_dim);
        for r in 0..self.out_dim {
            let acc_scale = f64::from(self.in_scale) * f64::from(self.w_scales[r]);
            let m = acc_scale / f64::from(next_in_scale);
            if !m.is_finite() || m <= 0.0 {
                return None;
            }
            // Normalize: m = frac · 2^exp with frac ∈ [0.5, 1).
            let mut frac = m;
            let mut exp = 0i32;
            while frac >= 1.0 {
                frac *= 0.5;
                exp += 1;
            }
            while frac < 0.5 {
                frac *= 2.0;
                exp -= 1;
            }
            let mut q = (frac * f64::from(1u32 << 31)).round() as i64;
            if q == 1i64 << 31 {
                q >>= 1;
                exp += 1;
            }
            let shift = 31 - exp;
            if !(1..=62).contains(&shift) {
                return None;
            }
            let b = (f64::from(self.bias[r]) / acc_scale).round();
            if b.abs() > f64::from(i32::MAX / 2) {
                return None;
            }
            mult.push(q as i32);
            rshift.push(shift as u32);
            bias_q.push(b as i32);
        }
        Some(RequantPlan {
            mult,
            rshift,
            bias_q,
        })
    }

    /// The fused counterpart of [`QDense::dequantize_acc`]: apply `plan`
    /// to the i32 accumulators, producing the next layer's int8
    /// activations without materializing f32. `relu` folds an intervening
    /// ReLU into the integer domain (`max(acc + bias_q, 0)` — exact, see
    /// module docs).
    #[must_use]
    pub fn requantize_acc(
        &self,
        acc: &[i32],
        batch: usize,
        plan: &RequantPlan,
        relu: bool,
    ) -> Vec<i8> {
        let mut out = vec![0i8; batch * self.out_dim];
        self.requantize_acc_into(acc, batch, plan, relu, &mut out);
        out
    }

    /// [`QDense::requantize_acc`] into a caller-owned buffer (resized to
    /// `batch·out_dim`), so the fused model forward can reuse scratch
    /// space across layers.
    pub fn requantize_acc_into(
        &self,
        acc: &[i32],
        batch: usize,
        plan: &RequantPlan,
        relu: bool,
        out: &mut Vec<i8>,
    ) {
        assert_eq!(plan.mult.len(), self.out_dim, "requant plan width");
        out.resize(batch * self.out_dim, 0);
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: avx2 presence checked on this CPU.
            unsafe { requantize_rows_avx2(acc, batch, self.out_dim, plan, relu, out) };
            return;
        }
        requantize_rows(acc, batch, self.out_dim, plan, relu, out);
    }
}

/// A per-output-row fixed-point requantization recipe built by
/// [`QDense::requant_plan`] — entirely derived from the serialized layer
/// scales, so plans survive any registry round trip byte-for-byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequantPlan {
    /// Normalized multiplier mantissas, `mult[r] ∈ [2³⁰, 2³¹)`.
    pub mult: Vec<i32>,
    /// Right-shift amounts pairing each mantissa, in `1..=62`.
    pub rshift: Vec<u32>,
    /// Bias in accumulator units: `round(bias[r] / (in_scale·w_scales[r]))`.
    pub bias_q: Vec<i32>,
}

/// The requantize loop body shared by the portable and AVX2-enabled
/// entry points: zipping the plan columns keeps the per-element loads
/// bounds-check-free, and [`requant_one`] is branch-free, so under AVX2
/// codegen the i64 multiply/variable-shift chain vectorizes.
#[inline(always)]
fn requantize_rows(
    acc: &[i32],
    batch: usize,
    out_dim: usize,
    plan: &RequantPlan,
    relu: bool,
    out: &mut [i8],
) {
    for b in 0..batch {
        let acc_row = &acc[b * out_dim..(b + 1) * out_dim];
        let out_row = &mut out[b * out_dim..(b + 1) * out_dim];
        for ((((o, &a), &m), &sh), &bq) in out_row
            .iter_mut()
            .zip(acc_row)
            .zip(&plan.mult)
            .zip(&plan.rshift)
            .zip(&plan.bias_q)
        {
            *o = requant_one(a, m, sh, bq, relu);
        }
    }
}

/// AVX2 clone of [`requantize_rows`]; with the feature enabled LLVM gets
/// `vpsrlvq`/256-bit integer lanes for the fixed-point chain.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn requantize_rows_avx2(
    acc: &[i32],
    batch: usize,
    out_dim: usize,
    plan: &RequantPlan,
    relu: bool,
    out: &mut [i8],
) {
    requantize_rows(acc, batch, out_dim, plan, relu, out);
}

/// Requantize one accumulator: add the integer bias, optionally clamp at
/// zero (fused ReLU), apply the fixed-point multiplier with a
/// round-half-away-from-zero right shift, and saturate to the symmetric
/// int8 grid.
#[inline(always)]
fn requant_one(acc: i32, mult: i32, rshift: u32, bias_q: i32, relu: bool) -> i8 {
    let mut v = i64::from(acc) + i64::from(bias_q);
    if relu {
        v = v.max(0);
    }
    let prod = v * i64::from(mult);
    let nudge = 1i64 << (rshift - 1);
    // Branch-free round-half-away-from-zero: fold the sign out, shift the
    // magnitude, fold it back (s is 0 or −1, so `(x ^ s) − s` = ±x).
    // Equivalent to the ±branch form but data-independent, which both
    // dodges mispredicts on mixed-sign accumulators and leaves the loop
    // body vectorizable.
    let s = prod >> 63;
    let mag = (prod ^ s) - s;
    let shifted = (((mag + nudge) >> rshift) ^ s) - s;
    shifted.clamp(-127, 127) as i8
}

/// Quantize activations onto the int8 grid at `scale` — the single
/// expression shared by [`QDense::forward`] and [`QDense::quantize_input`]
/// (paper §V: the verifier must see the exact kernel inputs).
#[inline]
pub fn quantize_activations(src: &[f32], scale: f32, dst: &mut [i8]) {
    debug_assert_eq!(src.len(), dst.len());
    let inv = 1.0 / scale;
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: avx2 presence checked on this CPU.
        unsafe { quantize_activations_avx2(src, inv, dst) };
        return;
    }
    quantize_activations_body(src, inv, dst);
}

/// The quantize loop: hoisted reciprocal and a trunc/copysign
/// round-half-away-from-zero. Under a baseline x86-64 target both
/// `.round()` and `.trunc()` lower to per-element libm calls (no SSE4.1
/// `roundps`), so the AVX2 clone below is what makes this loop vector
/// code — the head-of-pipeline quantize is a top-three cost of the fused
/// integer forward.
#[inline(always)]
fn quantize_activations_body(src: &[f32], inv: f32, dst: &mut [i8]) {
    for (q, &v) in dst.iter_mut().zip(src) {
        let t = v * inv;
        *q = (t + 0.5f32.copysign(t)).trunc().clamp(-127.0, 127.0) as i8;
    }
}

/// AVX2 clone of [`quantize_activations_body`]: with the feature enabled
/// the compiler lowers `trunc` to `vroundps` and `copysign` to bitwise
/// sign transfer, vectorizing the whole loop.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn quantize_activations_avx2(src: &[f32], inv: f32, dst: &mut [i8]) {
    quantize_activations_body(src, inv, dst);
}

/// i8·i8 → i32 dot product, runtime-dispatched: the explicit
/// `dot_i8_maddwd_avx2` kernel on AVX2 hosts, [`dot_i8_portable`]
/// elsewhere. Bit-exact either way — i32 addition is associative and
/// commutative, so any summation order (lane-wise, blocked, sequential)
/// produces the identical result.
#[inline]
#[must_use]
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: avx2 presence checked on this CPU.
        return unsafe { dot_i8_maddwd_avx2(a, b) };
    }
    dot_i8_portable(a, b)
}

/// The portable i8·i8 → i32 dot product. Deliberately the plainest
/// possible reduction: unlike `tensor::matmul::dot` (where manual 4-way
/// unrolling supplies the reassociation floats forbid), integer addition
/// is already associative, so LLVM vectorizes this loop as-is — and
/// measurement showed a manual stride-4 unroll *breaks* that
/// vectorization (0.9 vs 6.8 MAC/cycle on AVX2). This loop is both the
/// portable fallback behind [`dot_i8`] and the exactness oracle the
/// property tests hold the SIMD kernel to. Exactly equal to the
/// sequential sum for any input (associativity; |acc| ≤ len·127² cannot
/// overflow i32 below len ≈ 2¹⁷).
#[inline(always)]
#[must_use]
pub fn dot_i8_portable(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0i32;
    for (x, y) in a.iter().zip(b.iter()) {
        acc += i32::from(*x) * i32::from(*y);
    }
    acc
}

/// Explicit `vpmaddwd`-shaped AVX2 dot product: 32 i8 pairs per
/// iteration, sign-extended to i16 (`vpmovsxbw`) and reduced two-at-a-time
/// into i32 lanes by `vpmaddwd` (`_mm256_madd_epi16`) — 16 MACs per
/// multiply instruction, roughly double what the autovectorized widening
/// multiplies in [`dot_i8_portable`] achieve. Each `vpmaddwd` lane holds
/// `a₀b₀ + a₁b₁ ≤ 2·127²`, which cannot overflow i16×i16→i32, and the
/// lane accumulators wrap exactly like the scalar sum would, so the
/// result is bit-identical to [`dot_i8_portable`] for every input.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn dot_i8_maddwd_avx2(a: &[i8], b: &[i8]) -> i32 {
    use std::arch::x86_64::{
        _mm256_add_epi32, _mm256_castsi256_si128, _mm256_cvtepi8_epi16, _mm256_extracti128_si256,
        _mm256_madd_epi16, _mm256_setzero_si256, _mm_add_epi32, _mm_cvtsi128_si32, _mm_loadu_si128,
        _mm_shuffle_epi32,
    };
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    let chunks = n / 32;
    let mut acc0 = _mm256_setzero_si256();
    let mut acc1 = _mm256_setzero_si256();
    for c in 0..chunks {
        // SAFETY: c·32 + 32 ≤ chunks·32 ≤ n, so all 16-byte loads below
        // stay inside `a` and `b`; unaligned loads are permitted.
        unsafe {
            let pa = a.as_ptr().add(c * 32);
            let pb = b.as_ptr().add(c * 32);
            let a0 = _mm256_cvtepi8_epi16(_mm_loadu_si128(pa.cast()));
            let b0 = _mm256_cvtepi8_epi16(_mm_loadu_si128(pb.cast()));
            let a1 = _mm256_cvtepi8_epi16(_mm_loadu_si128(pa.add(16).cast()));
            let b1 = _mm256_cvtepi8_epi16(_mm_loadu_si128(pb.add(16).cast()));
            acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(a0, b0));
            acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(a1, b1));
        }
    }
    // Horizontal sum of the 8 i32 lanes (wrapping adds, order-free).
    let acc = _mm256_add_epi32(acc0, acc1);
    let quad = _mm_add_epi32(
        _mm256_castsi256_si128(acc),
        _mm256_extracti128_si256::<1>(acc),
    );
    let pair = _mm_add_epi32(quad, _mm_shuffle_epi32::<0b0100_1110>(quad));
    let one = _mm_add_epi32(pair, _mm_shuffle_epi32::<0b1011_0001>(pair));
    let mut total = _mm_cvtsi128_si32(one);
    // Scalar tail (< 32 elements).
    for i in chunks * 32..n {
        total = total.wrapping_add(i32::from(a[i]) * i32::from(b[i]));
    }
    total
}

/// One batch row of accumulator-only integer matmul: `acc[r] = xq · w[r]`
/// for every output row. Runtime-dispatches to the `vpmaddwd` tile kernel
/// on AVX2 hosts; the portable body keeps the plain autovectorizable loop.
#[inline]
fn acc_row_kernel(w: &[i8], w16: &[i16], xrow: &[i8], in_dim: usize, acc_row: &mut [i32]) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: avx2 presence checked on this CPU.
        unsafe { accumulate_rows_maddwd_avx2(w, w16, xrow, in_dim, acc_row) };
        return;
    }
    let _ = w16;
    for (r, a) in acc_row.iter_mut().enumerate() {
        *a = dot_i8_portable(xrow, &w[r * in_dim..(r + 1) * in_dim]);
    }
}

/// One batch row of the integer forward: `out[r] = dequant(xq · w[r])` for
/// every output row. Runtime-dispatches to the explicit `vpmaddwd` kernel
/// on AVX2 hosts; the portable body keeps the plain autovectorizable loop.
#[inline]
#[allow(clippy::too_many_arguments)]
fn row_kernel(
    w: &[i8],
    w16: &[i16],
    xrow: &[i8],
    in_dim: usize,
    in_scale: f32,
    w_scales: &[f32],
    bias: &[f32],
    out_row: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: avx2 presence checked on this CPU.
        unsafe { row_kernel_maddwd_avx2(w, w16, xrow, in_dim, in_scale, w_scales, bias, out_row) };
        return;
    }
    let _ = w16;
    row_kernel_body(w, xrow, in_dim, in_scale, w_scales, bias, out_row);
}

/// The pre-`vpmaddwd` row kernel (widening multiplies autovectorized at
/// 256-bit width), retained so `b01_kernels` measures the explicit SIMD
/// kernel against the exact before-state in the same run.
#[inline]
fn row_kernel_autovec(
    w: &[i8],
    xrow: &[i8],
    in_dim: usize,
    in_scale: f32,
    w_scales: &[f32],
    bias: &[f32],
    out_row: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: avx2 presence checked on this CPU.
        unsafe { row_kernel_autovec_avx2(w, xrow, in_dim, in_scale, w_scales, bias, out_row) };
        return;
    }
    row_kernel_body(w, xrow, in_dim, in_scale, w_scales, bias, out_row);
}

#[inline(always)]
fn row_kernel_body(
    w: &[i8],
    xrow: &[i8],
    in_dim: usize,
    in_scale: f32,
    w_scales: &[f32],
    bias: &[f32],
    out_row: &mut [f32],
) {
    for (r, o) in out_row.iter_mut().enumerate() {
        let wrow = &w[r * in_dim..(r + 1) * in_dim];
        *o = dot_i8_portable(xrow, wrow) as f32 * (in_scale * w_scales[r]) + bias[r];
    }
}

/// AVX2 clone of [`row_kernel_body`]; a separate function because the
/// vectorizer only uses 256-bit lanes when the enclosing function enables
/// the feature.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn row_kernel_autovec_avx2(
    w: &[i8],
    xrow: &[i8],
    in_dim: usize,
    in_scale: f32,
    w_scales: &[f32],
    bias: &[f32],
    out_row: &mut [f32],
) {
    row_kernel_body(w, xrow, in_dim, in_scale, w_scales, bias, out_row);
}

/// Four weight rows reduced against one activation row in a single
/// register tile: the x chunks are sign-extended once and reused across
/// all four `vpmaddwd` streams, the weight rows arrive pre-widened to i16
/// ([`QDense::widened`]) so the hot loop is pure load+madd with no
/// shuffle-port `vpmovsxbw` traffic, and the four accumulators collapse
/// in one `vphaddd` tree instead of four full horizontal sums. At
/// MLP-sized `in_dim` (64–128) the per-dot horizontal sum dominates
/// [`dot_i8_maddwd_avx2`]; amortizing it 4× is what lets the integer
/// forward pass the f32 GEMM. Wrapping lane adds keep the result
/// bit-identical to four scalar dots.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn madd_quad_avx2(w16: &[i16], xrow: &[i8], in_dim: usize, r: usize) -> [i32; 4] {
    use std::arch::x86_64::{
        _mm256_add_epi32, _mm256_castsi256_si128, _mm256_cvtepi8_epi16, _mm256_extracti128_si256,
        _mm256_hadd_epi32, _mm256_loadu_si256, _mm256_madd_epi16, _mm256_setzero_si256,
        _mm_add_epi32, _mm_loadu_si128, _mm_storeu_si128,
    };
    debug_assert!((r + 4) * in_dim <= w16.len());
    debug_assert!(in_dim <= xrow.len());
    let chunks = in_dim / 32;
    let mut acc0 = _mm256_setzero_si256();
    let mut acc1 = _mm256_setzero_si256();
    let mut acc2 = _mm256_setzero_si256();
    let mut acc3 = _mm256_setzero_si256();
    for c in 0..chunks {
        // SAFETY: c·32 + 32 ≤ in_dim ≤ xrow.len() and (r+4)·in_dim ≤
        // w16.len() (debug-asserted above), so every load below stays in
        // bounds; unaligned loads are permitted.
        unsafe {
            let px = xrow.as_ptr().add(c * 32);
            let x0 = _mm256_cvtepi8_epi16(_mm_loadu_si128(px.cast()));
            let x1 = _mm256_cvtepi8_epi16(_mm_loadu_si128(px.add(16).cast()));
            let p0 = w16.as_ptr().add(r * in_dim + c * 32);
            let p1 = w16.as_ptr().add((r + 1) * in_dim + c * 32);
            let p2 = w16.as_ptr().add((r + 2) * in_dim + c * 32);
            let p3 = w16.as_ptr().add((r + 3) * in_dim + c * 32);
            acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(_mm256_loadu_si256(p0.cast()), x0));
            acc0 = _mm256_add_epi32(
                acc0,
                _mm256_madd_epi16(_mm256_loadu_si256(p0.add(16).cast()), x1),
            );
            acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(_mm256_loadu_si256(p1.cast()), x0));
            acc1 = _mm256_add_epi32(
                acc1,
                _mm256_madd_epi16(_mm256_loadu_si256(p1.add(16).cast()), x1),
            );
            acc2 = _mm256_add_epi32(acc2, _mm256_madd_epi16(_mm256_loadu_si256(p2.cast()), x0));
            acc2 = _mm256_add_epi32(
                acc2,
                _mm256_madd_epi16(_mm256_loadu_si256(p2.add(16).cast()), x1),
            );
            acc3 = _mm256_add_epi32(acc3, _mm256_madd_epi16(_mm256_loadu_si256(p3.cast()), x0));
            acc3 = _mm256_add_epi32(
                acc3,
                _mm256_madd_epi16(_mm256_loadu_si256(p3.add(16).cast()), x1),
            );
        }
    }
    // Cross-register reduce: hadd(A,B) / hadd(C,D) / hadd(·,·) leaves
    // [ΣA,ΣB,ΣC,ΣD] split across the two 128-bit lanes; one lane add
    // finishes all four sums (wrapping, order-free).
    let t01 = _mm256_hadd_epi32(acc0, acc1);
    let t23 = _mm256_hadd_epi32(acc2, acc3);
    let t = _mm256_hadd_epi32(t01, t23);
    let s = _mm_add_epi32(_mm256_castsi256_si128(t), _mm256_extracti128_si256::<1>(t));
    let mut out = [0i32; 4];
    // SAFETY: `out` is 16 bytes; unaligned stores are permitted.
    unsafe { _mm_storeu_si128(out.as_mut_ptr().cast(), s) };
    // Scalar tails (< 32 elements per row).
    for (k, o) in out.iter_mut().enumerate() {
        let base = (r + k) * in_dim;
        for i in chunks * 32..in_dim {
            *o = o.wrapping_add(i32::from(xrow[i]) * i32::from(w16[base + i]));
        }
    }
    out
}

/// Fill one batch row of i32 accumulators with the `vpmaddwd` tile kernel:
/// quads of output rows through [`madd_quad_avx2`], the remainder through
/// [`dot_i8_maddwd_avx2`]. Bit-identical to a portable dot per row.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn accumulate_rows_maddwd_avx2(
    w: &[i8],
    w16: &[i16],
    xrow: &[i8],
    in_dim: usize,
    acc_row: &mut [i32],
) {
    let out_dim = acc_row.len();
    let quads = out_dim / 4;
    for qi in 0..quads {
        let vals = madd_quad_avx2(w16, xrow, in_dim, qi * 4);
        acc_row[qi * 4..qi * 4 + 4].copy_from_slice(&vals);
    }
    for r in quads * 4..out_dim {
        acc_row[r] = dot_i8_maddwd_avx2(xrow, &w[r * in_dim..(r + 1) * in_dim]);
    }
}

/// Row kernel around the `vpmaddwd` tile: quads of output rows share x
/// loads and one combined reduce ([`madd_quad_avx2`]), remainder rows fall
/// back to the single-row [`dot_i8_maddwd_avx2`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
fn row_kernel_maddwd_avx2(
    w: &[i8],
    w16: &[i16],
    xrow: &[i8],
    in_dim: usize,
    in_scale: f32,
    w_scales: &[f32],
    bias: &[f32],
    out_row: &mut [f32],
) {
    let out_dim = out_row.len();
    let quads = out_dim / 4;
    for qi in 0..quads {
        let r = qi * 4;
        let vals = madd_quad_avx2(w16, xrow, in_dim, r);
        for (k, &v) in vals.iter().enumerate() {
            out_row[r + k] = v as f32 * (in_scale * w_scales[r + k]) + bias[r + k];
        }
    }
    for r in quads * 4..out_dim {
        let wrow = &w[r * in_dim..(r + 1) * in_dim];
        // Enclosing function already requires avx2, so this call is safe.
        let dot = dot_i8_maddwd_avx2(xrow, wrow);
        out_row[r] = dot as f32 * (in_scale * w_scales[r]) + bias[r];
    }
}

/// A binary (1-bit) dense layer: sign weights packed into `u64` words with
/// an XNOR-popcount kernel and per-row scaling factors (XNOR-Net style).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BinaryDense {
    /// Sign bits, `words_per_row` u64 words per output row (1 = +1, 0 = −1).
    pub w_bits: Vec<u64>,
    /// Per-row scale α = mean |w|.
    pub alpha: Vec<f32>,
    /// f32 bias per output.
    pub bias: Vec<f32>,
    /// Input dimension.
    pub in_dim: usize,
    /// Output dimension.
    pub out_dim: usize,
    /// `true` = XNOR-Net: activations are also binarized by sign (the
    /// cheapest kernel, the post-hoc collapse E1 measures). `false` =
    /// weight-only binarization (BinaryConnect-style): the packed ±α
    /// weights multiply f32 activations — what binary-aware training
    /// prepares the network for, so int1 deployment keeps its accuracy.
    pub binarize_input: bool,
}

fn words_per_row(in_dim: usize) -> usize {
    in_dim.div_ceil(64)
}

impl BinaryDense {
    /// Binarize an f32 weight matrix `[out,in]`.
    #[must_use]
    pub fn quantize(w: &Tensor, bias: &Tensor) -> Self {
        let (out_dim, in_dim) = (w.shape()[0], w.shape()[1]);
        let wpr = words_per_row(in_dim);
        let mut w_bits = vec![0u64; out_dim * wpr];
        let mut alpha = Vec::with_capacity(out_dim);
        for r in 0..out_dim {
            let row = w.row(r);
            let a = row.iter().map(|v| v.abs()).sum::<f32>() / in_dim as f32;
            alpha.push(a);
            for (i, &v) in row.iter().enumerate() {
                if v >= 0.0 {
                    w_bits[r * wpr + i / 64] |= 1u64 << (i % 64);
                }
            }
        }
        BinaryDense {
            w_bits,
            alpha,
            bias: bias.data().to_vec(),
            in_dim,
            out_dim,
            binarize_input: true,
        }
    }

    /// Binarize weights only ([`BinaryDense::binarize_input`] = `false`):
    /// same 1-bit packed storage, f32 activations at execution.
    #[must_use]
    pub fn quantize_weight_only(w: &Tensor, bias: &Tensor) -> Self {
        BinaryDense {
            binarize_input: false,
            ..Self::quantize(w, bias)
        }
    }

    /// Forward pass: XNOR-popcount when [`BinaryDense::binarize_input`]
    /// is set (inputs binarized by sign with a per-example scale
    /// β = mean |x|, XNOR-Net: `y ≈ α·β·(x_b ⊙ w_b)`), otherwise the
    /// weight-only kernel `y = α·(Σ₊x − Σ₋x) + bias` over the same packed
    /// sign bits.
    #[must_use]
    pub fn forward(&self, x: &Tensor) -> Tensor {
        if !self.binarize_input {
            return self.forward_weight_only(x);
        }
        let batch = x.rows();
        assert_eq!(x.cols(), self.in_dim, "BinaryDense input width");
        let wpr = words_per_row(self.in_dim);
        let n = self.in_dim as i32;
        // Mask of valid bits in the last word (padding bits must not count).
        let tail_bits = self.in_dim % 64;
        let tail_mask: u64 = if tail_bits == 0 {
            !0u64
        } else {
            (1u64 << tail_bits) - 1
        };
        let mut out = vec![0.0f32; batch * self.out_dim];
        let mut x_bits = vec![0u64; wpr];
        for b in 0..batch {
            let xrow = x.row(b);
            let beta = xrow.iter().map(|v| v.abs()).sum::<f32>() / self.in_dim as f32;
            x_bits.fill(0);
            for (i, &v) in xrow.iter().enumerate() {
                if v >= 0.0 {
                    x_bits[i / 64] |= 1u64 << (i % 64);
                }
            }
            for r in 0..self.out_dim {
                let wrow = &self.w_bits[r * wpr..(r + 1) * wpr];
                let mut same: i32 = 0;
                for wi in 0..wpr {
                    let mask = if wi + 1 == wpr { tail_mask } else { !0u64 };
                    // XNOR = matching signs; count within valid lanes.
                    same += (!(x_bits[wi] ^ wrow[wi]) & mask).count_ones() as i32;
                }
                // dot(sign(x), sign(w)) = same − (n − same) = 2·same − n
                let dot = (2 * same - n) as f32;
                out[b * self.out_dim + r] = self.alpha[r] * beta * dot + self.bias[r];
            }
        }
        Tensor::from_vec(out, &[batch, self.out_dim])
    }

    /// Weight-only kernel: per output row, split the f32 input sum by the
    /// weight sign bits — `dot(x, ±α) = α·(2·Σ₊x − Σx)` — so the packed
    /// representation is still the only weight storage touched.
    fn forward_weight_only(&self, x: &Tensor) -> Tensor {
        let batch = x.rows();
        assert_eq!(x.cols(), self.in_dim, "BinaryDense input width");
        let wpr = words_per_row(self.in_dim);
        let mut out = vec![0.0f32; batch * self.out_dim];
        for b in 0..batch {
            let xrow = x.row(b);
            let sum_all: f32 = xrow.iter().sum();
            for r in 0..self.out_dim {
                let wrow = &self.w_bits[r * wpr..(r + 1) * wpr];
                let mut sum_plus = 0.0f32;
                for (i, &v) in xrow.iter().enumerate() {
                    if wrow[i / 64] & (1u64 << (i % 64)) != 0 {
                        sum_plus += v;
                    }
                }
                out[b * self.out_dim + r] =
                    self.alpha[r] * (2.0 * sum_plus - sum_all) + self.bias[r];
            }
        }
        Tensor::from_vec(out, &[batch, self.out_dim])
    }

    /// Deployment size in bytes: bit-planes + scales + bias.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.w_bits.len() * 8 + 4 * (self.alpha.len() + self.bias.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinymlops_tensor::TensorRng;

    #[test]
    fn pack_unpack_round_trip_all_widths() {
        for bits in [8u32, 4, 2] {
            let qmax = qmax_for(bits) as i16;
            let vals: Vec<i8> = (0..37i16)
                .map(|i| ((i * 7) % (2 * qmax + 1) - qmax) as i8)
                .collect();
            let mut packed = Vec::new();
            pack_row(&vals, bits, &mut packed);
            assert_eq!(packed.len(), row_bytes(vals.len(), bits));
            let mut out = vec![0i8; vals.len()];
            unpack_row(&packed, bits, vals.len(), &mut out);
            assert_eq!(out, vals, "round trip at {bits} bits");
        }
    }

    #[test]
    fn qdense_int8_close_to_f32() {
        let mut rng = TensorRng::seed(1);
        let w = rng.uniform(&[6, 10], -1.0, 1.0);
        let b = rng.uniform(&[6], -0.1, 0.1);
        let x = rng.uniform(&[4, 10], -1.0, 1.0);
        let q = QDense::quantize(&w, &b, 8, 1.0 / 127.0 * 1.0);
        let got = q.forward(&x);
        let want = x.matmul_nt(&w).unwrap().add_row_vector(&b).unwrap();
        for (g, w_) in got.data().iter().zip(want.data()) {
            assert!((g - w_).abs() < 0.05, "int8: {g} vs {w_}");
        }
    }

    #[test]
    fn qdense_error_grows_as_bits_shrink() {
        let mut rng = TensorRng::seed(2);
        let w = rng.uniform(&[8, 16], -1.0, 1.0);
        let b = Tensor::zeros(&[8]);
        let x = rng.uniform(&[8, 16], -1.0, 1.0);
        let want = x.matmul_nt(&w).unwrap();
        let err_at = |bits: u32| -> f32 {
            let q = QDense::quantize(&w, &b, bits, 1.0 / 127.0);
            let got = q.forward(&x);
            got.sub(&want).unwrap().norm() / want.norm()
        };
        let (e8, e4, e2) = (err_at(8), err_at(4), err_at(2));
        assert!(e8 < e4 && e4 < e2, "errors: 8b={e8} 4b={e4} 2b={e2}");
        assert!(e8 < 0.02, "int8 relative error {e8}");
    }

    #[test]
    fn batch_parallel_path_is_bit_identical() {
        // 64·64·64 = 262144 MACs crosses QPAR_MIN_MACS, so this exercises
        // the rayon par_chunks_mut branch of `forward` (the proptests and
        // the CI quick bench all stay below the gate).
        let mut rng = TensorRng::seed(9);
        let w = rng.uniform(&[64, 64], -1.0, 1.0);
        let b = rng.uniform(&[64], -0.1, 0.1);
        let x = rng.uniform(&[64, 64], -1.0, 1.0);
        for bits in [8u32, 4, 2] {
            let q = QDense::quantize(&w, &b, bits, 1.0 / 127.0);
            assert!(x.rows() * q.out_dim * q.in_dim >= QPAR_MIN_MACS);
            assert_eq!(
                q.forward(&x).data(),
                q.forward_reference(&x).data(),
                "parallel path diverges at {bits} bits"
            );
        }
    }

    #[test]
    fn qdense_size_shrinks_with_bits() {
        let mut rng = TensorRng::seed(3);
        let w = rng.uniform(&[32, 64], -1.0, 1.0);
        let b = Tensor::zeros(&[32]);
        let s8 = QDense::quantize(&w, &b, 8, 0.01).size_bytes();
        let s4 = QDense::quantize(&w, &b, 4, 0.01).size_bytes();
        let s2 = QDense::quantize(&w, &b, 2, 0.01).size_bytes();
        assert!(s4 < s8 && s2 < s4);
        // Weight payloads should be exactly 1×, ½×, ¼×.
        assert_eq!(s8 - s4, 32 * 64 / 2);
    }

    #[test]
    fn binary_dense_sign_agreement() {
        // With ±1 inputs the XNOR kernel must reproduce the exact dot
        // product of the sign matrices.
        let mut rng = TensorRng::seed(4);
        let w = rng.uniform(&[5, 70], -1.0, 1.0); // >64 exercises multi-word
        let b = Tensor::zeros(&[5]);
        let q = BinaryDense::quantize(&w, &b);
        let x = rng
            .uniform(&[3, 70], -1.0, 1.0)
            .map(|v| if v >= 0.0 { 1.0 } else { -1.0 });
        let got = q.forward(&x);
        // Reference: sign(w) dot x, scaled by alpha (beta = 1 for ±1 x).
        let w_sign = w.map(|v| if v >= 0.0 { 1.0 } else { -1.0 });
        let want = x.matmul_nt(&w_sign).unwrap();
        for r in 0..3 {
            for c in 0..5 {
                let g = got.at(r, c);
                let alpha = q.alpha[c];
                let wnt = want.at(r, c) * alpha;
                assert!((g - wnt).abs() < 1e-4, "({r},{c}): {g} vs {wnt}");
            }
        }
    }

    #[test]
    fn binary_padding_bits_do_not_leak() {
        // in_dim = 65: one padding-heavy word. All-(-1) weights and inputs
        // must give dot = +65, not polluted by the 63 padding lanes.
        let w = Tensor::full(&[1, 65], -1.0);
        let b = Tensor::zeros(&[1]);
        let q = BinaryDense::quantize(&w, &b);
        let x = Tensor::full(&[1, 65], -1.0);
        let y = q.forward(&x);
        // alpha = 1, beta = 1, dot = 65.
        assert!((y.data()[0] - 65.0).abs() < 1e-4, "got {}", y.data()[0]);
    }

    #[test]
    fn binary_size_is_one_eighth() {
        let mut rng = TensorRng::seed(5);
        let w = rng.uniform(&[16, 128], -1.0, 1.0);
        let b = Tensor::zeros(&[16]);
        let q = BinaryDense::quantize(&w, &b);
        // 128 bits = 2 words = 16 bytes per row.
        assert_eq!(q.w_bits.len() * 8, 16 * 16);
        assert!(q.size_bytes() < 16 * 128); // ≪ 8 KiB of f32
    }

    #[test]
    fn dispatched_dot_matches_portable_all_tail_lengths() {
        // Lengths straddling the 32-lane SIMD chunking, including every
        // tail residue class; values span the full i8 range.
        for n in [0usize, 1, 15, 31, 32, 33, 47, 64, 65, 96, 127, 257] {
            let a: Vec<i8> = (0..n).map(|i| ((i * 37 + 11) % 255) as i8).collect();
            let b: Vec<i8> = (0..n).map(|i| ((i * 91 + 3) % 253) as i8).collect();
            assert_eq!(
                dot_i8(&a, &b),
                dot_i8_portable(&a, &b),
                "SIMD dot diverges at len {n}"
            );
        }
    }

    #[test]
    fn int_accumulate_matches_portable_dots_on_awkward_dims() {
        // Dims chosen to exercise the quad tile, the remainder rows and
        // the sub-32 column tails of the AVX2 kernel at once.
        let mut rng = TensorRng::seed(23);
        for (out_dim, in_dim) in [(7usize, 45usize), (4, 64), (13, 33), (1, 100), (8, 31)] {
            let w = rng.uniform(&[out_dim, in_dim], -1.0, 1.0);
            let b = rng.uniform(&[out_dim], -0.1, 0.1);
            let x = rng.uniform(&[3, in_dim], -1.5, 1.5);
            let q = QDense::quantize(&w, &b, 8, 0.02);
            let xq = q.quantize_input(&x);
            let acc = q.int_accumulate(&xq, 3);
            let wq = q.unpacked();
            for bi in 0..3 {
                let xrow = &xq[bi * in_dim..(bi + 1) * in_dim];
                for r in 0..out_dim {
                    assert_eq!(
                        acc[bi * out_dim + r],
                        dot_i8_portable(xrow, &wq[r * in_dim..(r + 1) * in_dim]),
                        "acc diverges at [{bi},{r}] for {out_dim}x{in_dim}"
                    );
                }
            }
        }
    }

    #[test]
    fn forward_autovec_is_bit_identical() {
        let mut rng = TensorRng::seed(21);
        let w = rng.uniform(&[19, 45], -1.0, 1.0);
        let b = rng.uniform(&[19], -0.1, 0.1);
        let x = rng.uniform(&[5, 45], -1.0, 1.0);
        for bits in [8u32, 4, 2] {
            let q = QDense::quantize(&w, &b, bits, 1.0 / 127.0);
            assert_eq!(q.forward(&x).data(), q.forward_autovec(&x).data());
            assert_eq!(q.forward(&x).data(), q.forward_reference(&x).data());
        }
    }

    #[test]
    fn requantize_acc_within_one_ulp_of_f32_boundary() {
        let mut rng = TensorRng::seed(30);
        let w = rng.uniform(&[9, 23], -1.0, 1.0);
        let b = rng.uniform(&[9], -0.4, 0.4);
        let x = rng.uniform(&[6, 23], -1.5, 1.5);
        let q = QDense::quantize(&w, &b, 8, 0.013);
        let next_in_scale = 0.021f32;
        let plan = q.requant_plan(next_in_scale).expect("sane scales");
        let xq = q.quantize_input(&x);
        let acc = q.int_accumulate(&xq, 6);
        for relu in [false, true] {
            let fused = q.requantize_acc(&acc, 6, &plan, relu);
            // Reference: dequantize to f32, (ReLU,) quantize at next scale.
            let mut f = q.dequantize_acc(&acc, 6);
            if relu {
                f = f.map(|v| v.max(0.0));
            }
            let mut want = vec![0i8; fused.len()];
            quantize_activations(f.data(), next_in_scale, &mut want);
            for (i, (&got, &w_)) in fused.iter().zip(&want).enumerate() {
                assert!(
                    (i32::from(got) - i32::from(w_)).abs() <= 1,
                    "relu={relu} elem {i}: fused {got} vs reference {w_}"
                );
            }
        }
    }

    #[test]
    fn requant_plan_rejects_degenerate_scales() {
        let mut rng = TensorRng::seed(31);
        let w = rng.uniform(&[3, 8], -1.0, 1.0);
        let b = Tensor::zeros(&[3]);
        let q = QDense::quantize(&w, &b, 8, 0.01);
        assert!(q.requant_plan(0.0).is_none());
        assert!(q.requant_plan(-1.0).is_none());
        assert!(q.requant_plan(f32::NAN).is_none());
        // An absurd rescale ratio (shift out of range) also bails out.
        assert!(q.requant_plan(1e38).is_none());
        assert!(q.requant_plan(0.02).is_some());
    }

    #[test]
    fn requant_fused_relu_is_exact() {
        // ReLU folded into the integer domain must equal the f32 ReLU
        // exactly whenever the unfused boundary itself rounds identically:
        // max commutes with positive scaling and round is monotone.
        let mut rng = TensorRng::seed(32);
        let w = rng.uniform(&[5, 12], -1.0, 1.0);
        let b = rng.uniform(&[5], -0.3, 0.3);
        let x = rng.uniform(&[4, 12], -1.0, 1.0);
        let q = QDense::quantize(&w, &b, 8, 0.011);
        let plan = q.requant_plan(0.017).expect("plan");
        let xq = q.quantize_input(&x);
        let acc = q.int_accumulate(&xq, 4);
        let relu_then = q.requantize_acc(&acc, 4, &plan, true);
        let plain = q.requantize_acc(&acc, 4, &plan, false);
        for (&r, &p) in relu_then.iter().zip(&plain) {
            assert_eq!(r, p.max(0), "integer ReLU must clamp exactly");
        }
    }

    #[test]
    fn fake_quantize_tensor_is_idempotent() {
        let mut row = vec![0.9f32, -0.4, 0.1, 0.0];
        fake_quantize_tensor(&mut row, 4);
        let once = row.clone();
        fake_quantize_tensor(&mut row, 4);
        assert_eq!(row, once);
    }
}
