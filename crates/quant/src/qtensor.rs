//! Quantized dense kernels: packed int8/int4/int2 and binary XNOR.
//!
//! The integer forward path mirrors what a flash-resident deployment does
//! once at boot, not once per inference: packed weights are unpacked into
//! an i8 matrix a single time (cached in a [`OnceLock`]), activations are
//! quantized by one shared helper (the same expression the verifier
//! replays), and the i32 accumulation runs a 4-way-unrolled kernel that
//! auto-vectorizes — with an AVX2 clone dispatched at runtime on x86-64 —
//! and parallelizes over batch rows via rayon. Integer addition is
//! associative, so every restructuring is bit-identical to the seed scalar
//! loop, which is retained as [`QDense::forward_reference`] for the
//! property tests and the `b01_kernels` baseline.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;
use tinymlops_tensor::Tensor;

/// MAC threshold below which the batch-parallel path is skipped (thread
/// spawn costs more than the multiply saves).
const QPAR_MIN_MACS: usize = 256 * 1024;

/// Round a weight row onto a symmetric `bits`-bit grid in place.
///
/// The grid has `2^(bits−1) − 1` positive levels (e.g. 127 for int8, 1 for
/// 2-bit); the scale is chosen from the row's max magnitude.
pub fn fake_quantize_tensor(row: &mut [f32], bits: u32) {
    let qmax = ((1i32 << (bits - 1)) - 1).max(1) as f32;
    let amax = row.iter().fold(0.0f32, |m, v| m.max(v.abs()));
    if amax == 0.0 {
        return;
    }
    let scale = amax / qmax;
    for v in row.iter_mut() {
        *v = (*v / scale).round().clamp(-qmax, qmax) * scale;
    }
}

/// A dense layer with `bits`-bit symmetric weights (per-output-channel
/// scales), int8 input quantization and i32 accumulation.
///
/// Weights are stored **packed** (2 values/byte at 4 bits, 4 at 2 bits) —
/// what a flash image would hold — and unpacked row-by-row into a scratch
/// buffer during the integer kernel.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QDense {
    /// Packed weight bytes, rows concatenated.
    pub packed: Vec<u8>,
    /// Bits per weight: 8, 4 or 2.
    pub bits: u32,
    /// Per-output-row weight scales.
    pub w_scales: Vec<f32>,
    /// Input activation scale (from calibration).
    pub in_scale: f32,
    /// f32 bias per output.
    pub bias: Vec<f32>,
    /// Input dimension.
    pub in_dim: usize,
    /// Output dimension.
    pub out_dim: usize,
    /// Lazily unpacked `[out,in]` i8 weight matrix — computed once per
    /// layer lifetime instead of once per forward call. Rebuilt empty on
    /// deserialize/clone-from-empty; invariant: `packed` is immutable
    /// after construction (records are republished, never edited).
    #[serde(skip)]
    unpacked: OnceLock<Vec<i8>>,
}

fn qmax_for(bits: u32) -> i32 {
    (1i32 << (bits - 1)) - 1
}

/// Values per packed byte for a given bit width.
fn per_byte(bits: u32) -> usize {
    (8 / bits) as usize
}

/// Bytes needed per row of `in_dim` weights at `bits` bits.
fn row_bytes(in_dim: usize, bits: u32) -> usize {
    in_dim.div_ceil(per_byte(bits))
}

fn pack_row(q: &[i8], bits: u32, out: &mut Vec<u8>) {
    match bits {
        8 => out.extend(q.iter().map(|&v| v as u8)),
        4 => {
            for pair in q.chunks(2) {
                let lo = (pair[0] as u8) & 0x0f;
                let hi = if pair.len() > 1 {
                    (pair[1] as u8) & 0x0f
                } else {
                    0
                };
                out.push(lo | (hi << 4));
            }
        }
        2 => {
            for quad in q.chunks(4) {
                let mut b = 0u8;
                for (i, &v) in quad.iter().enumerate() {
                    b |= ((v as u8) & 0x03) << (2 * i);
                }
                out.push(b);
            }
        }
        _ => panic!("unsupported bit width {bits}"),
    }
}

fn unpack_row(packed: &[u8], bits: u32, in_dim: usize, out: &mut [i8]) {
    match bits {
        8 => {
            for (o, &b) in out.iter_mut().zip(packed) {
                *o = b as i8;
            }
        }
        4 => {
            for i in 0..in_dim {
                let b = packed[i / 2];
                let nib = if i % 2 == 0 { b & 0x0f } else { b >> 4 };
                // Sign-extend 4-bit two's complement.
                out[i] = ((nib << 4) as i8) >> 4;
            }
        }
        2 => {
            for i in 0..in_dim {
                let b = packed[i / 4];
                let two = (b >> (2 * (i % 4))) & 0x03;
                out[i] = ((two << 6) as i8) >> 6;
            }
        }
        _ => panic!("unsupported bit width {bits}"),
    }
}

impl QDense {
    /// Quantize an f32 weight matrix `[out,in]` + bias, with `in_scale`
    /// taken from calibration of this layer's input activations.
    #[must_use]
    pub fn quantize(w: &Tensor, bias: &Tensor, bits: u32, in_scale: f32) -> Self {
        assert!(matches!(bits, 8 | 4 | 2), "QDense supports 8/4/2 bits");
        let (out_dim, in_dim) = (w.shape()[0], w.shape()[1]);
        let qmax = qmax_for(bits) as f32;
        let mut packed = Vec::with_capacity(out_dim * row_bytes(in_dim, bits));
        let mut w_scales = Vec::with_capacity(out_dim);
        let mut qrow = vec![0i8; in_dim];
        for r in 0..out_dim {
            let row = w.row(r);
            let amax = row.iter().fold(0.0f32, |m, v| m.max(v.abs()));
            let scale = if amax == 0.0 { 1.0 } else { amax / qmax };
            for (q, &v) in qrow.iter_mut().zip(row) {
                *q = (v / scale).round().clamp(-qmax, qmax) as i8;
            }
            pack_row(&qrow, bits, &mut packed);
            w_scales.push(scale);
        }
        QDense {
            packed,
            bits,
            w_scales,
            in_scale: if in_scale <= 0.0 { 1.0 } else { in_scale },
            bias: bias.data().to_vec(),
            in_dim,
            out_dim,
            unpacked: OnceLock::new(),
        }
    }

    /// The unpacked `[out,in]` i8 weight matrix, computed on first use and
    /// cached for the layer's lifetime (flash image → RAM image, once).
    #[must_use]
    pub fn unpacked(&self) -> &[i8] {
        self.unpacked.get_or_init(|| {
            let rb = row_bytes(self.in_dim, self.bits);
            let mut out = vec![0i8; self.out_dim * self.in_dim];
            for (r, dst) in out.chunks_mut(self.in_dim).enumerate() {
                unpack_row(
                    &self.packed[r * rb..(r + 1) * rb],
                    self.bits,
                    self.in_dim,
                    dst,
                );
            }
            out
        })
    }

    /// Integer-kernel forward pass: `x [batch,in] → y [batch,out]`.
    ///
    /// Bit-identical to [`QDense::forward_reference`] (the seed scalar
    /// loop): i32 accumulation is associative, so unrolling, row blocking
    /// and batch parallelism cannot change a single output bit.
    #[must_use]
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let batch = x.rows();
        assert_eq!(x.cols(), self.in_dim, "QDense input width");
        let mut xq = vec![0i8; batch * self.in_dim];
        quantize_activations(x.data(), self.in_scale, &mut xq);
        let w = self.unpacked();
        let mut out = vec![0.0f32; batch * self.out_dim];
        let body = |(b, out_row): (usize, &mut [f32])| {
            let xrow = &xq[b * self.in_dim..(b + 1) * self.in_dim];
            row_kernel(
                w,
                xrow,
                self.in_dim,
                self.in_scale,
                &self.w_scales,
                &self.bias,
                out_row,
            );
        };
        if batch > 1 && batch * self.out_dim * self.in_dim >= QPAR_MIN_MACS {
            out.par_chunks_mut(self.out_dim).enumerate().for_each(body);
        } else {
            out.chunks_mut(self.out_dim).enumerate().for_each(body);
        }
        Tensor::from_vec(out, &[batch, self.out_dim])
    }

    /// The seed per-forward-unpacking scalar kernel, retained verbatim as
    /// the bit-exactness oracle for property tests and the baseline that
    /// `b01_kernels` measures [`QDense::forward`] against.
    #[must_use]
    pub fn forward_reference(&self, x: &Tensor) -> Tensor {
        let batch = x.rows();
        assert_eq!(x.cols(), self.in_dim, "QDense input width");
        let q_in_max = 127.0f32;
        let mut xq = vec![0i8; batch * self.in_dim];
        for (q, &v) in xq.iter_mut().zip(x.data()) {
            *q = (v / self.in_scale).round().clamp(-q_in_max, q_in_max) as i8;
        }
        let rb = row_bytes(self.in_dim, self.bits);
        let mut wrow = vec![0i8; self.in_dim];
        let mut out = vec![0.0f32; batch * self.out_dim];
        for r in 0..self.out_dim {
            unpack_row(
                &self.packed[r * rb..(r + 1) * rb],
                self.bits,
                self.in_dim,
                &mut wrow,
            );
            let dequant = self.in_scale * self.w_scales[r];
            for b in 0..batch {
                let xrow = &xq[b * self.in_dim..(b + 1) * self.in_dim];
                let mut acc: i32 = 0;
                for (xv, wv) in xrow.iter().zip(wrow.iter()) {
                    acc += (*xv as i32) * (*wv as i32);
                }
                out[b * self.out_dim + r] = acc as f32 * dequant + self.bias[r];
            }
        }
        Tensor::from_vec(out, &[batch, self.out_dim])
    }

    /// Deployment size in bytes: packed weights + scales + bias.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.packed.len() + 4 * (self.w_scales.len() + self.bias.len()) + 4
    }

    /// Unpack the full integer weight matrix `[out,in]` (row-major i8) —
    /// used by the verifiable-execution layer, whose sum-check operates on
    /// the exact integers the kernel multiplies. Served from the
    /// [`QDense::unpacked`] cache.
    #[must_use]
    pub fn unpack_matrix(&self) -> Vec<i8> {
        self.unpacked().to_vec()
    }

    /// Quantize an activation batch to the layer's int8 input grid —
    /// exposed so a verifier can reproduce the exact kernel inputs. Shares
    /// [`quantize_activations`] with [`QDense::forward`], so the verifier
    /// provably sees the same integers the kernel multiplied.
    #[must_use]
    pub fn quantize_input(&self, x: &Tensor) -> Vec<i8> {
        let mut out = vec![0i8; x.len()];
        quantize_activations(x.data(), self.in_scale, &mut out);
        out
    }

    /// Integer accumulator matmul: `acc[b][r] = Σ_j xq[b][j]·w[r][j]` —
    /// the exact integers the proof system commits to.
    #[must_use]
    pub fn int_accumulate(&self, xq: &[i8], batch: usize) -> Vec<i32> {
        let w = self.unpacked();
        let mut acc = vec![0i32; batch * self.out_dim];
        for b in 0..batch {
            let xrow = &xq[b * self.in_dim..(b + 1) * self.in_dim];
            for (r, a) in acc[b * self.out_dim..(b + 1) * self.out_dim]
                .iter_mut()
                .enumerate()
            {
                *a = dot_i8(xrow, &w[r * self.in_dim..(r + 1) * self.in_dim]);
            }
        }
        acc
    }

    /// Dequantize accumulators to f32 outputs (`acc·scale + bias`), the
    /// elementwise step a verifier re-executes cheaply.
    #[must_use]
    pub fn dequantize_acc(&self, acc: &[i32], batch: usize) -> Tensor {
        let mut out = vec![0.0f32; batch * self.out_dim];
        for b in 0..batch {
            for r in 0..self.out_dim {
                out[b * self.out_dim + r] = acc[b * self.out_dim + r] as f32
                    * (self.in_scale * self.w_scales[r])
                    + self.bias[r];
            }
        }
        Tensor::from_vec(out, &[batch, self.out_dim])
    }
}

/// Quantize activations onto the int8 grid at `scale` — the single
/// expression shared by [`QDense::forward`] and [`QDense::quantize_input`]
/// (paper §V: the verifier must see the exact kernel inputs).
#[inline]
pub fn quantize_activations(src: &[f32], scale: f32, dst: &mut [i8]) {
    debug_assert_eq!(src.len(), dst.len());
    for (q, &v) in dst.iter_mut().zip(src) {
        *q = (v / scale).round().clamp(-127.0, 127.0) as i8;
    }
}

/// i8·i8 → i32 dot product. Deliberately the plainest possible reduction:
/// unlike `tensor::matmul::dot` (where manual 4-way unrolling supplies the
/// reassociation floats forbid), integer addition is already associative,
/// so LLVM vectorizes this loop as-is — and measurement showed a manual
/// stride-4 unroll *breaks* that vectorization (0.9 vs 6.8 MAC/cycle on
/// AVX2). The speedup comes from the [`row_kernel_avx2`] clone, which lets
/// the same loop vectorize at 256-bit width. Exactly equal to the
/// sequential sum for any input (associativity; |acc| ≤ len·127² cannot
/// overflow i32 below len = 2³⁰).
#[inline(always)]
fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0i32;
    for (x, y) in a.iter().zip(b.iter()) {
        acc += i32::from(*x) * i32::from(*y);
    }
    acc
}

/// One batch row of the integer forward: `out[r] = dequant(xq · w[r])` for
/// every output row. Runtime-dispatches to an AVX2 clone on x86-64, where
/// the widening i8 multiplies vectorize at 256-bit instead of the baseline
/// 128-bit.
#[inline]
fn row_kernel(
    w: &[i8],
    xrow: &[i8],
    in_dim: usize,
    in_scale: f32,
    w_scales: &[f32],
    bias: &[f32],
    out_row: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: avx2 presence checked on this CPU.
        unsafe { row_kernel_avx2(w, xrow, in_dim, in_scale, w_scales, bias, out_row) };
        return;
    }
    row_kernel_body(w, xrow, in_dim, in_scale, w_scales, bias, out_row);
}

#[inline(always)]
fn row_kernel_body(
    w: &[i8],
    xrow: &[i8],
    in_dim: usize,
    in_scale: f32,
    w_scales: &[f32],
    bias: &[f32],
    out_row: &mut [f32],
) {
    for (r, o) in out_row.iter_mut().enumerate() {
        let wrow = &w[r * in_dim..(r + 1) * in_dim];
        *o = dot_i8(xrow, wrow) as f32 * (in_scale * w_scales[r]) + bias[r];
    }
}

/// AVX2 clone of [`row_kernel_body`]; a separate function because the
/// vectorizer only uses 256-bit lanes when the enclosing function enables
/// the feature.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn row_kernel_avx2(
    w: &[i8],
    xrow: &[i8],
    in_dim: usize,
    in_scale: f32,
    w_scales: &[f32],
    bias: &[f32],
    out_row: &mut [f32],
) {
    row_kernel_body(w, xrow, in_dim, in_scale, w_scales, bias, out_row);
}

/// A binary (1-bit) dense layer: sign weights packed into `u64` words with
/// an XNOR-popcount kernel and per-row scaling factors (XNOR-Net style).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BinaryDense {
    /// Sign bits, `words_per_row` u64 words per output row (1 = +1, 0 = −1).
    pub w_bits: Vec<u64>,
    /// Per-row scale α = mean |w|.
    pub alpha: Vec<f32>,
    /// f32 bias per output.
    pub bias: Vec<f32>,
    /// Input dimension.
    pub in_dim: usize,
    /// Output dimension.
    pub out_dim: usize,
    /// `true` = XNOR-Net: activations are also binarized by sign (the
    /// cheapest kernel, the post-hoc collapse E1 measures). `false` =
    /// weight-only binarization (BinaryConnect-style): the packed ±α
    /// weights multiply f32 activations — what binary-aware training
    /// prepares the network for, so int1 deployment keeps its accuracy.
    pub binarize_input: bool,
}

fn words_per_row(in_dim: usize) -> usize {
    in_dim.div_ceil(64)
}

impl BinaryDense {
    /// Binarize an f32 weight matrix `[out,in]`.
    #[must_use]
    pub fn quantize(w: &Tensor, bias: &Tensor) -> Self {
        let (out_dim, in_dim) = (w.shape()[0], w.shape()[1]);
        let wpr = words_per_row(in_dim);
        let mut w_bits = vec![0u64; out_dim * wpr];
        let mut alpha = Vec::with_capacity(out_dim);
        for r in 0..out_dim {
            let row = w.row(r);
            let a = row.iter().map(|v| v.abs()).sum::<f32>() / in_dim as f32;
            alpha.push(a);
            for (i, &v) in row.iter().enumerate() {
                if v >= 0.0 {
                    w_bits[r * wpr + i / 64] |= 1u64 << (i % 64);
                }
            }
        }
        BinaryDense {
            w_bits,
            alpha,
            bias: bias.data().to_vec(),
            in_dim,
            out_dim,
            binarize_input: true,
        }
    }

    /// Binarize weights only ([`BinaryDense::binarize_input`] = `false`):
    /// same 1-bit packed storage, f32 activations at execution.
    #[must_use]
    pub fn quantize_weight_only(w: &Tensor, bias: &Tensor) -> Self {
        BinaryDense {
            binarize_input: false,
            ..Self::quantize(w, bias)
        }
    }

    /// Forward pass: XNOR-popcount when [`BinaryDense::binarize_input`]
    /// is set (inputs binarized by sign with a per-example scale
    /// β = mean |x|, XNOR-Net: `y ≈ α·β·(x_b ⊙ w_b)`), otherwise the
    /// weight-only kernel `y = α·(Σ₊x − Σ₋x) + bias` over the same packed
    /// sign bits.
    #[must_use]
    pub fn forward(&self, x: &Tensor) -> Tensor {
        if !self.binarize_input {
            return self.forward_weight_only(x);
        }
        let batch = x.rows();
        assert_eq!(x.cols(), self.in_dim, "BinaryDense input width");
        let wpr = words_per_row(self.in_dim);
        let n = self.in_dim as i32;
        // Mask of valid bits in the last word (padding bits must not count).
        let tail_bits = self.in_dim % 64;
        let tail_mask: u64 = if tail_bits == 0 {
            !0u64
        } else {
            (1u64 << tail_bits) - 1
        };
        let mut out = vec![0.0f32; batch * self.out_dim];
        let mut x_bits = vec![0u64; wpr];
        for b in 0..batch {
            let xrow = x.row(b);
            let beta = xrow.iter().map(|v| v.abs()).sum::<f32>() / self.in_dim as f32;
            x_bits.fill(0);
            for (i, &v) in xrow.iter().enumerate() {
                if v >= 0.0 {
                    x_bits[i / 64] |= 1u64 << (i % 64);
                }
            }
            for r in 0..self.out_dim {
                let wrow = &self.w_bits[r * wpr..(r + 1) * wpr];
                let mut same: i32 = 0;
                for wi in 0..wpr {
                    let mask = if wi + 1 == wpr { tail_mask } else { !0u64 };
                    // XNOR = matching signs; count within valid lanes.
                    same += (!(x_bits[wi] ^ wrow[wi]) & mask).count_ones() as i32;
                }
                // dot(sign(x), sign(w)) = same − (n − same) = 2·same − n
                let dot = (2 * same - n) as f32;
                out[b * self.out_dim + r] = self.alpha[r] * beta * dot + self.bias[r];
            }
        }
        Tensor::from_vec(out, &[batch, self.out_dim])
    }

    /// Weight-only kernel: per output row, split the f32 input sum by the
    /// weight sign bits — `dot(x, ±α) = α·(2·Σ₊x − Σx)` — so the packed
    /// representation is still the only weight storage touched.
    fn forward_weight_only(&self, x: &Tensor) -> Tensor {
        let batch = x.rows();
        assert_eq!(x.cols(), self.in_dim, "BinaryDense input width");
        let wpr = words_per_row(self.in_dim);
        let mut out = vec![0.0f32; batch * self.out_dim];
        for b in 0..batch {
            let xrow = x.row(b);
            let sum_all: f32 = xrow.iter().sum();
            for r in 0..self.out_dim {
                let wrow = &self.w_bits[r * wpr..(r + 1) * wpr];
                let mut sum_plus = 0.0f32;
                for (i, &v) in xrow.iter().enumerate() {
                    if wrow[i / 64] & (1u64 << (i % 64)) != 0 {
                        sum_plus += v;
                    }
                }
                out[b * self.out_dim + r] =
                    self.alpha[r] * (2.0 * sum_plus - sum_all) + self.bias[r];
            }
        }
        Tensor::from_vec(out, &[batch, self.out_dim])
    }

    /// Deployment size in bytes: bit-planes + scales + bias.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.w_bits.len() * 8 + 4 * (self.alpha.len() + self.bias.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinymlops_tensor::TensorRng;

    #[test]
    fn pack_unpack_round_trip_all_widths() {
        for bits in [8u32, 4, 2] {
            let qmax = qmax_for(bits) as i16;
            let vals: Vec<i8> = (0..37i16)
                .map(|i| ((i * 7) % (2 * qmax + 1) - qmax) as i8)
                .collect();
            let mut packed = Vec::new();
            pack_row(&vals, bits, &mut packed);
            assert_eq!(packed.len(), row_bytes(vals.len(), bits));
            let mut out = vec![0i8; vals.len()];
            unpack_row(&packed, bits, vals.len(), &mut out);
            assert_eq!(out, vals, "round trip at {bits} bits");
        }
    }

    #[test]
    fn qdense_int8_close_to_f32() {
        let mut rng = TensorRng::seed(1);
        let w = rng.uniform(&[6, 10], -1.0, 1.0);
        let b = rng.uniform(&[6], -0.1, 0.1);
        let x = rng.uniform(&[4, 10], -1.0, 1.0);
        let q = QDense::quantize(&w, &b, 8, 1.0 / 127.0 * 1.0);
        let got = q.forward(&x);
        let want = x.matmul_nt(&w).unwrap().add_row_vector(&b).unwrap();
        for (g, w_) in got.data().iter().zip(want.data()) {
            assert!((g - w_).abs() < 0.05, "int8: {g} vs {w_}");
        }
    }

    #[test]
    fn qdense_error_grows_as_bits_shrink() {
        let mut rng = TensorRng::seed(2);
        let w = rng.uniform(&[8, 16], -1.0, 1.0);
        let b = Tensor::zeros(&[8]);
        let x = rng.uniform(&[8, 16], -1.0, 1.0);
        let want = x.matmul_nt(&w).unwrap();
        let err_at = |bits: u32| -> f32 {
            let q = QDense::quantize(&w, &b, bits, 1.0 / 127.0);
            let got = q.forward(&x);
            got.sub(&want).unwrap().norm() / want.norm()
        };
        let (e8, e4, e2) = (err_at(8), err_at(4), err_at(2));
        assert!(e8 < e4 && e4 < e2, "errors: 8b={e8} 4b={e4} 2b={e2}");
        assert!(e8 < 0.02, "int8 relative error {e8}");
    }

    #[test]
    fn batch_parallel_path_is_bit_identical() {
        // 64·64·64 = 262144 MACs crosses QPAR_MIN_MACS, so this exercises
        // the rayon par_chunks_mut branch of `forward` (the proptests and
        // the CI quick bench all stay below the gate).
        let mut rng = TensorRng::seed(9);
        let w = rng.uniform(&[64, 64], -1.0, 1.0);
        let b = rng.uniform(&[64], -0.1, 0.1);
        let x = rng.uniform(&[64, 64], -1.0, 1.0);
        for bits in [8u32, 4, 2] {
            let q = QDense::quantize(&w, &b, bits, 1.0 / 127.0);
            assert!(x.rows() * q.out_dim * q.in_dim >= QPAR_MIN_MACS);
            assert_eq!(
                q.forward(&x).data(),
                q.forward_reference(&x).data(),
                "parallel path diverges at {bits} bits"
            );
        }
    }

    #[test]
    fn qdense_size_shrinks_with_bits() {
        let mut rng = TensorRng::seed(3);
        let w = rng.uniform(&[32, 64], -1.0, 1.0);
        let b = Tensor::zeros(&[32]);
        let s8 = QDense::quantize(&w, &b, 8, 0.01).size_bytes();
        let s4 = QDense::quantize(&w, &b, 4, 0.01).size_bytes();
        let s2 = QDense::quantize(&w, &b, 2, 0.01).size_bytes();
        assert!(s4 < s8 && s2 < s4);
        // Weight payloads should be exactly 1×, ½×, ¼×.
        assert_eq!(s8 - s4, 32 * 64 / 2);
    }

    #[test]
    fn binary_dense_sign_agreement() {
        // With ±1 inputs the XNOR kernel must reproduce the exact dot
        // product of the sign matrices.
        let mut rng = TensorRng::seed(4);
        let w = rng.uniform(&[5, 70], -1.0, 1.0); // >64 exercises multi-word
        let b = Tensor::zeros(&[5]);
        let q = BinaryDense::quantize(&w, &b);
        let x = rng
            .uniform(&[3, 70], -1.0, 1.0)
            .map(|v| if v >= 0.0 { 1.0 } else { -1.0 });
        let got = q.forward(&x);
        // Reference: sign(w) dot x, scaled by alpha (beta = 1 for ±1 x).
        let w_sign = w.map(|v| if v >= 0.0 { 1.0 } else { -1.0 });
        let want = x.matmul_nt(&w_sign).unwrap();
        for r in 0..3 {
            for c in 0..5 {
                let g = got.at(r, c);
                let alpha = q.alpha[c];
                let wnt = want.at(r, c) * alpha;
                assert!((g - wnt).abs() < 1e-4, "({r},{c}): {g} vs {wnt}");
            }
        }
    }

    #[test]
    fn binary_padding_bits_do_not_leak() {
        // in_dim = 65: one padding-heavy word. All-(-1) weights and inputs
        // must give dot = +65, not polluted by the 63 padding lanes.
        let w = Tensor::full(&[1, 65], -1.0);
        let b = Tensor::zeros(&[1]);
        let q = BinaryDense::quantize(&w, &b);
        let x = Tensor::full(&[1, 65], -1.0);
        let y = q.forward(&x);
        // alpha = 1, beta = 1, dot = 65.
        assert!((y.data()[0] - 65.0).abs() < 1e-4, "got {}", y.data()[0]);
    }

    #[test]
    fn binary_size_is_one_eighth() {
        let mut rng = TensorRng::seed(5);
        let w = rng.uniform(&[16, 128], -1.0, 1.0);
        let b = Tensor::zeros(&[16]);
        let q = BinaryDense::quantize(&w, &b);
        // 128 bits = 2 words = 16 bytes per row.
        assert_eq!(q.w_bits.len() * 8, 16 * 16);
        assert!(q.size_bytes() < 16 * 128); // ≪ 8 KiB of f32
    }

    #[test]
    fn fake_quantize_tensor_is_idempotent() {
        let mut row = vec![0.9f32, -0.4, 0.1, 0.0];
        fake_quantize_tensor(&mut row, 4);
        let once = row.clone();
        fake_quantize_tensor(&mut row, 4);
        assert_eq!(row, once);
    }
}
