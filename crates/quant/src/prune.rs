//! Magnitude pruning and sparse inference.
//!
//! §II lists pruning among the standard TinyML compression techniques; the
//! registry's optimization pipeline (§III-A) generates pruned variants, and
//! §V uses pruning as a watermark-removal attack.

use serde::{Deserialize, Serialize};
use tinymlops_nn::Sequential;
use tinymlops_tensor::Tensor;

/// Zero out the smallest-magnitude fraction `sparsity ∈ [0,1)` of weights
/// across all Dense/Conv matrices (global threshold; biases untouched).
/// Returns the number of weights zeroed.
pub fn magnitude_prune(model: &mut Sequential, sparsity: f32) -> usize {
    assert!((0.0..1.0).contains(&sparsity), "sparsity in [0,1)");
    // Collect all weight magnitudes to find the global threshold.
    let mut mags: Vec<f32> = Vec::new();
    for l in &model.layers {
        for p in l.params() {
            if p.shape().len() >= 2 {
                mags.extend(p.data().iter().map(|v| v.abs()));
            }
        }
    }
    if mags.is_empty() {
        return 0;
    }
    let k = ((mags.len() as f32) * sparsity) as usize;
    if k == 0 {
        return 0;
    }
    mags.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let threshold = mags[k - 1];
    let mut zeroed = 0;
    for l in &mut model.layers {
        for (p, _) in l.params_mut() {
            if p.shape().len() >= 2 {
                for v in p.data_mut() {
                    if v.abs() <= threshold && *v != 0.0 {
                        *v = 0.0;
                        zeroed += 1;
                    }
                }
            }
        }
    }
    zeroed
}

/// Fraction of exactly-zero weights among all weight matrices.
#[must_use]
pub fn sparsity_of(model: &Sequential) -> f32 {
    let mut zeros = 0usize;
    let mut total = 0usize;
    for l in &model.layers {
        for p in l.params() {
            if p.shape().len() >= 2 {
                total += p.len();
                zeros += p.data().iter().filter(|&&v| v == 0.0).count();
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        zeros as f32 / total as f32
    }
}

/// Boolean masks of surviving weights, one per weight matrix (used to keep
/// pruning fixed during fine-tuning).
#[must_use]
pub fn capture_masks(model: &Sequential) -> Vec<Vec<bool>> {
    let mut masks = Vec::new();
    for l in &model.layers {
        for p in l.params() {
            if p.shape().len() >= 2 {
                masks.push(p.data().iter().map(|&v| v != 0.0).collect());
            }
        }
    }
    masks
}

/// Re-zero masked weights (call after each optimizer step while
/// fine-tuning a pruned model).
pub fn apply_masks(model: &mut Sequential, masks: &[Vec<bool>]) {
    let mut i = 0;
    for l in &mut model.layers {
        for (p, _) in l.params_mut() {
            if p.shape().len() >= 2 {
                for (v, &keep) in p.data_mut().iter_mut().zip(&masks[i]) {
                    if !keep {
                        *v = 0.0;
                    }
                }
                i += 1;
            }
        }
    }
}

/// Fine-tune a pruned model for `epochs` while holding the pruned weights
/// at zero — the standard prune-then-finetune recovery step the registry's
/// optimization pipeline runs (§III-A).
pub fn finetune_pruned(
    model: &mut Sequential,
    data: &tinymlops_nn::Dataset,
    epochs: usize,
    lr: f32,
    seed: u64,
) {
    let masks = capture_masks(model);
    let mut opt = tinymlops_nn::Adam::new(lr);
    for e in 0..epochs {
        for (x, y) in data.batches(32, seed.wrapping_add(e as u64)) {
            model.zero_grad();
            let logits = model.forward_train(&x);
            let (_, grad) = tinymlops_nn::loss::cross_entropy(&logits, &y);
            model.backward(&grad);
            tinymlops_nn::Optimizer::step(&mut opt, model);
            apply_masks(model, &masks);
        }
    }
}

/// A dense layer stored in compressed-sparse-row form for pruned models.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SparseDense {
    /// Row start offsets into `cols`/`vals` (length `out_dim + 1`).
    pub row_ptr: Vec<u32>,
    /// Column indices of nonzeros.
    pub cols: Vec<u32>,
    /// Nonzero values.
    pub vals: Vec<f32>,
    /// Bias per output.
    pub bias: Vec<f32>,
    /// Input dimension.
    pub in_dim: usize,
    /// Output dimension.
    pub out_dim: usize,
}

impl SparseDense {
    /// Compress an f32 weight matrix `[out,in]` into CSR.
    #[must_use]
    pub fn from_dense(w: &Tensor, bias: &Tensor) -> Self {
        let (out_dim, in_dim) = (w.shape()[0], w.shape()[1]);
        let mut row_ptr = Vec::with_capacity(out_dim + 1);
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        row_ptr.push(0u32);
        for r in 0..out_dim {
            for (c, &v) in w.row(r).iter().enumerate() {
                if v != 0.0 {
                    cols.push(c as u32);
                    vals.push(v);
                }
            }
            row_ptr.push(cols.len() as u32);
        }
        SparseDense {
            row_ptr,
            cols,
            vals,
            bias: bias.data().to_vec(),
            in_dim,
            out_dim,
        }
    }

    /// Number of stored nonzeros.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Sparse forward pass `x [batch,in] → y [batch,out]`.
    #[must_use]
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let batch = x.rows();
        assert_eq!(x.cols(), self.in_dim, "SparseDense input width");
        let mut out = vec![0.0f32; batch * self.out_dim];
        for b in 0..batch {
            let xrow = x.row(b);
            for r in 0..self.out_dim {
                let (s, e) = (self.row_ptr[r] as usize, self.row_ptr[r + 1] as usize);
                let mut acc = self.bias[r];
                for i in s..e {
                    acc += self.vals[i] * xrow[self.cols[i] as usize];
                }
                out[b * self.out_dim + r] = acc;
            }
        }
        Tensor::from_vec(out, &[batch, self.out_dim])
    }

    /// Storage bytes in CSR form (4-byte indices + values + bias).
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.row_ptr.len() * 4 + self.cols.len() * 4 + self.vals.len() * 4 + self.bias.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinymlops_nn::model::mlp;
    use tinymlops_nn::Layer;
    use tinymlops_tensor::TensorRng;

    #[test]
    fn prune_hits_requested_sparsity() {
        let mut rng = TensorRng::seed(0);
        let mut m = mlp(&[32, 64, 10], &mut rng);
        magnitude_prune(&mut m, 0.7);
        let s = sparsity_of(&m);
        assert!((s - 0.7).abs() < 0.02, "sparsity {s}");
    }

    #[test]
    fn prune_removes_smallest_weights_first() {
        let mut rng = TensorRng::seed(1);
        let mut m = mlp(&[16, 16], &mut rng);
        let before = m.flat_params();
        magnitude_prune(&mut m, 0.5);
        let after = m.flat_params();
        // Weights that survived must be (weakly) larger in magnitude than
        // any weight that was zeroed.
        let zeroed_max = before
            .iter()
            .zip(&after)
            .filter(|(_, &a)| a == 0.0)
            .map(|(&b, _)| b.abs())
            .fold(0.0f32, f32::max);
        let kept_min = after
            .iter()
            .filter(|&&a| a != 0.0)
            .map(|a| a.abs())
            .fold(f32::INFINITY, f32::min);
        assert!(kept_min >= zeroed_max - 1e-6, "{kept_min} vs {zeroed_max}");
    }

    #[test]
    fn zero_sparsity_is_identity() {
        let mut rng = TensorRng::seed(2);
        let mut m = mlp(&[8, 8], &mut rng);
        let before = m.flat_params();
        assert_eq!(magnitude_prune(&mut m, 0.0), 0);
        assert_eq!(m.flat_params(), before);
    }

    #[test]
    fn csr_matches_dense_forward() {
        let mut rng = TensorRng::seed(3);
        let mut m = mlp(&[20, 12], &mut rng);
        magnitude_prune(&mut m, 0.6);
        let (w, b) = match &m.layers[0] {
            Layer::Dense(d) => (d.w.clone(), d.b.clone()),
            _ => panic!("dense expected"),
        };
        let sp = SparseDense::from_dense(&w, &b);
        let x = rng.uniform(&[5, 20], -1.0, 1.0);
        let dense_y = x.matmul_nt(&w).unwrap().add_row_vector(&b).unwrap();
        let sparse_y = sp.forward(&x);
        for (a, c) in dense_y.data().iter().zip(sparse_y.data()) {
            assert!((a - c).abs() < 1e-5);
        }
    }

    #[test]
    fn csr_size_beats_dense_at_high_sparsity() {
        let mut rng = TensorRng::seed(4);
        let mut m = mlp(&[64, 64], &mut rng);
        magnitude_prune(&mut m, 0.9);
        if let Layer::Dense(d) = &m.layers[0] {
            let sp = SparseDense::from_dense(&d.w, &d.b);
            assert!(
                sp.size_bytes() < 64 * 64 * 4,
                "CSR {} bytes",
                sp.size_bytes()
            );
            assert!((sp.nnz() as f32) < 0.15 * 64.0 * 64.0);
        }
    }

    #[test]
    fn pruned_model_keeps_most_accuracy() {
        use tinymlops_nn::data::synth_digits;
        use tinymlops_nn::train::{evaluate, fit, FitConfig};
        let data = synth_digits(1000, 0.08, 44);
        let (train, test) = data.split(0.85, 0);
        let mut rng = TensorRng::seed(5);
        let mut model = mlp(&[64, 32, 10], &mut rng);
        let mut opt = tinymlops_nn::Adam::new(0.005);
        fit(
            &mut model,
            &train,
            &mut opt,
            &FitConfig {
                epochs: 15,
                batch_size: 32,
                ..Default::default()
            },
        );
        let base = evaluate(&model, &test);
        let mut pruned = model.clone();
        magnitude_prune(&mut pruned, 0.5);
        let raw_acc = evaluate(&pruned, &test);
        finetune_pruned(&mut pruned, &train, 3, 0.002, 9);
        let tuned_acc = evaluate(&pruned, &test);
        // Fine-tuning must keep the sparsity and recover most accuracy.
        assert!(
            sparsity_of(&pruned) > 0.45,
            "mask held: {}",
            sparsity_of(&pruned)
        );
        assert!(
            tuned_acc > base - 0.05,
            "50% prune+finetune: {base} → raw {raw_acc} → tuned {tuned_acc}"
        );
        assert!(tuned_acc >= raw_acc - 0.02, "finetune should not hurt");
    }
}
