//! Activation-range calibration for static quantization.
//!
//! Static quantization needs a representative input batch: we run the f32
//! model, record per-layer input ranges, and derive symmetric int8 scales.
//! A percentile option clips outliers, which usually buys accuracy at low
//! bit widths.

use tinymlops_nn::Sequential;
use tinymlops_tensor::Tensor;

/// Per-layer activation scales captured from a calibration batch.
#[derive(Debug, Clone)]
pub struct Calibration {
    /// Symmetric int8 scale of the *input* to each layer
    /// (`x_q = round(x / scale)`), indexed by layer position.
    pub input_scales: Vec<f32>,
}

impl Calibration {
    /// Run `model` on `calib` and record per-layer input scales.
    ///
    /// `percentile ∈ (0, 1]` — 1.0 uses the absolute max; 0.999 clips the
    /// top 0.1% of magnitudes (robust to outliers).
    #[must_use]
    pub fn capture(model: &Sequential, calib: &Tensor, percentile: f32) -> Self {
        assert!(
            percentile > 0.0 && percentile <= 1.0,
            "percentile must be in (0,1]"
        );
        let acts = model.forward_collect(calib);
        // acts[i] is the input of layer i.
        let input_scales = acts[..model.layers.len()]
            .iter()
            .map(|a| {
                let amax = percentile_abs_max(a.data(), percentile);
                if amax == 0.0 {
                    1.0
                } else {
                    amax / 127.0
                }
            })
            .collect();
        Calibration { input_scales }
    }
}

fn percentile_abs_max(data: &[f32], percentile: f32) -> f32 {
    if data.is_empty() {
        return 0.0;
    }
    if percentile >= 1.0 {
        return data.iter().fold(0.0f32, |m, v| m.max(v.abs()));
    }
    let mut mags: Vec<f32> = data.iter().map(|v| v.abs()).collect();
    mags.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let idx = ((mags.len() as f32 * percentile).ceil() as usize).clamp(1, mags.len()) - 1;
    mags[idx]
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinymlops_nn::model::mlp;
    use tinymlops_tensor::TensorRng;

    #[test]
    fn capture_produces_one_scale_per_layer() {
        let mut rng = TensorRng::seed(0);
        let m = mlp(&[4, 8, 2], &mut rng);
        let calib = rng.uniform(&[16, 4], -1.0, 1.0);
        let c = Calibration::capture(&m, &calib, 1.0);
        assert_eq!(c.input_scales.len(), m.layers.len());
        assert!(c.input_scales.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn percentile_clips_outliers() {
        let mut data = vec![0.5f32; 999];
        data.push(100.0); // one outlier
        let full = percentile_abs_max(&data, 1.0);
        let clipped = percentile_abs_max(&data, 0.99);
        assert_eq!(full, 100.0);
        assert_eq!(clipped, 0.5);
    }

    #[test]
    fn first_scale_matches_input_range() {
        let mut rng = TensorRng::seed(1);
        let m = mlp(&[4, 4], &mut rng);
        let calib = rng.uniform(&[32, 4], -2.0, 2.0);
        let c = Calibration::capture(&m, &calib, 1.0);
        let amax = calib.data().iter().fold(0.0f32, |a, v| a.max(v.abs()));
        assert!((c.input_scales[0] - amax / 127.0).abs() < 1e-6);
    }
}
