//! Quantized model container: post-training static quantization of dense
//! networks with integer inference kernels.

use crate::calibrate::Calibration;
use crate::qtensor::{BinaryDense, QDense};
use crate::QuantError;
use serde::{Deserialize, Serialize};
use tinymlops_nn::{Layer, Sequential};
use tinymlops_tensor::Tensor;

/// Target numeric scheme for quantization (§III-A's 8/4/2/1-bit menu;
/// "3-bit" in the paper rounds to our 2- and 4-bit neighbours).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QuantScheme {
    /// 8-bit symmetric weights + int8 activations.
    Int8,
    /// 4-bit symmetric weights + int8 activations.
    Int4,
    /// 2-bit symmetric weights + int8 activations.
    Int2,
    /// 1-bit (binary) weights and activations, XNOR-popcount kernel.
    Binary,
}

impl QuantScheme {
    /// Bits per weight.
    #[must_use]
    pub fn bits(self) -> u32 {
        match self {
            QuantScheme::Int8 => 8,
            QuantScheme::Int4 => 4,
            QuantScheme::Int2 => 2,
            QuantScheme::Binary => 1,
        }
    }

    /// Stable name used in registries and reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            QuantScheme::Int8 => "int8",
            QuantScheme::Int4 => "int4",
            QuantScheme::Int2 => "int2",
            QuantScheme::Binary => "binary",
        }
    }

    /// All schemes, densest first.
    #[must_use]
    pub fn all() -> [QuantScheme; 4] {
        [
            QuantScheme::Int8,
            QuantScheme::Int4,
            QuantScheme::Int2,
            QuantScheme::Binary,
        ]
    }
}

/// One layer of a quantized model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum QLayer {
    /// Integer dense kernel.
    Dense(QDense),
    /// Binary XNOR dense kernel.
    BinaryDense(BinaryDense),
    /// Element-wise / reshaping layer executed in f32 (cheap at TinyML
    /// scale; realistic runtimes fuse these into the preceding kernel).
    Passthrough(Layer),
}

/// A statically-quantized dense network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuantizedModel {
    /// Quantized layer stack.
    pub layers: Vec<QLayer>,
    /// The scheme this model was quantized with.
    pub scheme: QuantScheme,
}

impl QuantizedModel {
    /// Quantize `model` post-training, using `calib` inputs to fix
    /// activation scales. Fails on conv layers (dense-only kernels; use
    /// [`crate::fake_quantize`] for conv architectures).
    pub fn quantize(
        model: &Sequential,
        calib: &Tensor,
        scheme: QuantScheme,
    ) -> Result<Self, QuantError> {
        if calib.rows() == 0 {
            return Err(QuantError::BadCalibration("empty calibration batch".into()));
        }
        for l in &model.layers {
            if matches!(l, Layer::Conv2d(_) | Layer::MaxPool2d(_)) {
                return Err(QuantError::Unsupported(format!(
                    "integer kernels cover dense networks; layer `{}` needs fake_quantize",
                    l.name()
                )));
            }
        }
        let cal = Calibration::capture(model, calib, 0.999);
        let layers = model
            .layers
            .iter()
            .enumerate()
            .map(|(i, l)| match l {
                Layer::Dense(d) => match scheme {
                    QuantScheme::Binary => QLayer::BinaryDense(BinaryDense::quantize(&d.w, &d.b)),
                    s => QLayer::Dense(QDense::quantize(&d.w, &d.b, s.bits(), cal.input_scales[i])),
                },
                other => QLayer::Passthrough(other.clone()),
            })
            .collect();
        Ok(QuantizedModel { layers, scheme })
    }

    /// Forward pass through the quantized stack.
    #[must_use]
    pub fn forward(&self, x: &Tensor) -> Tensor {
        self.layers.iter().fold(x.clone(), |h, l| match l {
            QLayer::Dense(d) => d.forward(&h),
            QLayer::BinaryDense(b) => b.forward(&h),
            QLayer::Passthrough(p) => p.forward(&h),
        })
    }

    /// Class predictions (row-wise argmax).
    #[must_use]
    pub fn predict(&self, x: &Tensor) -> Vec<usize> {
        self.forward(x).argmax_rows()
    }

    /// Deployment size in bytes (packed weights + scales + biases). A
    /// passthrough dense layer — e.g. the full-precision head a
    /// binary-aware export keeps — ships its f32 parameters, so it counts;
    /// parameter-free passthroughs (activations, reshapes) are free.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.layers
            .iter()
            .map(|l| match l {
                QLayer::Dense(d) => d.size_bytes(),
                QLayer::BinaryDense(b) => b.size_bytes(),
                QLayer::Passthrough(Layer::Dense(d)) => {
                    (d.w.data().len() + d.b.data().len()) * std::mem::size_of::<f32>()
                }
                QLayer::Passthrough(_) => 0,
            })
            .sum()
    }

    /// Classification accuracy on a labelled set.
    #[must_use]
    pub fn accuracy(&self, x: &Tensor, y: &[usize]) -> f32 {
        if y.is_empty() {
            return 0.0;
        }
        let pred = self.predict(x);
        pred.iter().zip(y).filter(|(p, t)| p == t).count() as f32 / y.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinymlops_nn::data::synth_digits;
    use tinymlops_nn::model::mlp;
    use tinymlops_nn::train::{evaluate, fit, FitConfig};
    use tinymlops_nn::Adam;
    use tinymlops_tensor::TensorRng;

    fn trained_digits_model() -> (Sequential, tinymlops_nn::Dataset, tinymlops_nn::Dataset) {
        let data = synth_digits(1200, 0.08, 33);
        let (train, test) = data.split(0.85, 0);
        let mut rng = TensorRng::seed(10);
        let mut model = mlp(&[64, 32, 10], &mut rng);
        let mut opt = Adam::new(0.005);
        fit(
            &mut model,
            &train,
            &mut opt,
            &FitConfig {
                epochs: 20,
                batch_size: 32,
                ..Default::default()
            },
        );
        (model, train, test)
    }

    #[test]
    fn int8_quantization_preserves_accuracy() {
        let (model, train, test) = trained_digits_model();
        let f32_acc = evaluate(&model, &test);
        let q = QuantizedModel::quantize(&model, &train.x, QuantScheme::Int8).unwrap();
        let q_acc = q.accuracy(&test.x, &test.y);
        assert!(
            q_acc > f32_acc - 0.03,
            "int8 {q_acc} should be within 3pt of f32 {f32_acc}"
        );
    }

    #[test]
    fn accuracy_degrades_monotonically_in_expectation() {
        let (model, train, test) = trained_digits_model();
        let acc_of = |s: QuantScheme| {
            QuantizedModel::quantize(&model, &train.x, s)
                .unwrap()
                .accuracy(&test.x, &test.y)
        };
        let a8 = acc_of(QuantScheme::Int8);
        let a4 = acc_of(QuantScheme::Int4);
        let a2 = acc_of(QuantScheme::Int2);
        // 8-bit ≈ f32; 4-bit close; 2-bit noticeably worse but above chance.
        assert!(a8 >= a4 - 0.02, "a8={a8} a4={a4}");
        assert!(a4 >= a2 - 0.05, "a4={a4} a2={a2}");
        assert!(a2 > 0.15, "2-bit should beat chance, got {a2}");
    }

    #[test]
    fn size_ordering_matches_bits() {
        let (model, train, _) = trained_digits_model();
        let size_of = |s: QuantScheme| {
            QuantizedModel::quantize(&model, &train.x, s)
                .unwrap()
                .size_bytes()
        };
        let s8 = size_of(QuantScheme::Int8);
        let s4 = size_of(QuantScheme::Int4);
        let s2 = size_of(QuantScheme::Int2);
        let s1 = size_of(QuantScheme::Binary);
        assert!(s8 > s4 && s4 > s2 && s2 > s1, "{s8} {s4} {s2} {s1}");
        assert!(s8 < model.param_bytes(), "int8 smaller than f32");
    }

    #[test]
    fn conv_models_are_rejected_with_guidance() {
        let mut rng = TensorRng::seed(1);
        let m = Sequential::new(vec![Layer::Conv2d(tinymlops_nn::Conv2d::new(
            1, 2, 3, 0, &mut rng,
        ))]);
        let calib = Tensor::zeros(&[1, 1, 8, 8]);
        let err = QuantizedModel::quantize(&m, &calib, QuantScheme::Int8).unwrap_err();
        assert!(matches!(err, QuantError::Unsupported(_)));
    }

    #[test]
    fn empty_calibration_is_rejected() {
        let mut rng = TensorRng::seed(2);
        let m = mlp(&[4, 2], &mut rng);
        let calib = Tensor::zeros(&[0, 4]);
        assert!(matches!(
            QuantizedModel::quantize(&m, &calib, QuantScheme::Int8),
            Err(QuantError::BadCalibration(_))
        ));
    }

    #[test]
    fn serde_round_trip() {
        let (model, train, test) = trained_digits_model();
        let q = QuantizedModel::quantize(&model, &train.x, QuantScheme::Int4).unwrap();
        let json = serde_json::to_vec(&q).unwrap();
        let q2: QuantizedModel = serde_json::from_slice(&json).unwrap();
        assert_eq!(q.predict(&test.x), q2.predict(&test.x));
    }
}
