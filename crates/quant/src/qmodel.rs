//! Quantized model container: post-training static quantization of dense
//! networks with integer inference kernels.
//!
//! Inference runs through [`QuantizedModel::forward_fused`], which keeps
//! activations in the integer domain across `Dense → (ReLU) → Dense`
//! chains using the per-row fixed-point requantization scheme documented
//! in [`crate::qtensor`]. The unfused [`QuantizedModel::forward`] stays as
//! the per-layer reference path the proptests compare against.

use crate::calibrate::Calibration;
use crate::qtensor::{BinaryDense, QDense, RequantPlan};
use crate::QuantError;
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;
use tinymlops_nn::{Layer, Sequential};
use tinymlops_tensor::Tensor;

/// Target numeric scheme for quantization (§III-A's 8/4/2/1-bit menu;
/// "3-bit" in the paper rounds to our 2- and 4-bit neighbours).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QuantScheme {
    /// 8-bit symmetric weights + int8 activations.
    Int8,
    /// 4-bit symmetric weights + int8 activations.
    Int4,
    /// 2-bit symmetric weights + int8 activations.
    Int2,
    /// 1-bit (binary) weights and activations, XNOR-popcount kernel.
    Binary,
}

impl QuantScheme {
    /// Bits per weight.
    #[must_use]
    pub fn bits(self) -> u32 {
        match self {
            QuantScheme::Int8 => 8,
            QuantScheme::Int4 => 4,
            QuantScheme::Int2 => 2,
            QuantScheme::Binary => 1,
        }
    }

    /// Stable name used in registries and reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            QuantScheme::Int8 => "int8",
            QuantScheme::Int4 => "int4",
            QuantScheme::Int2 => "int2",
            QuantScheme::Binary => "binary",
        }
    }

    /// All schemes, densest first.
    #[must_use]
    pub fn all() -> [QuantScheme; 4] {
        [
            QuantScheme::Int8,
            QuantScheme::Int4,
            QuantScheme::Int2,
            QuantScheme::Binary,
        ]
    }
}

/// One layer of a quantized model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum QLayer {
    /// Integer dense kernel.
    Dense(QDense),
    /// Binary XNOR dense kernel.
    BinaryDense(BinaryDense),
    /// Element-wise / reshaping layer. On the fused path
    /// ([`QuantizedModel::forward_fused`]) a ReLU or Dropout sitting
    /// between two [`QDense`] layers is folded into the preceding kernel's
    /// integer requantization and never materializes in f32; only
    /// passthroughs at the head/tail of the stack, next to a
    /// [`BinaryDense`], or at a boundary with degenerate scales (no
    /// [`RequantPlan`]) still execute here in f32.
    Passthrough(Layer),
}

/// A fusable `Dense → (ReLU/Dropout)* → Dense` boundary: the requant plan
/// carries `in_scale · w_scale / next_in_scale` as fixed-point multipliers.
#[derive(Debug, Clone)]
struct FusedEdge {
    /// Index of the consuming `QLayer::Dense` in `layers`.
    next: usize,
    /// Whether a ReLU between the two denses folds into the requant
    /// (exact: max with zero commutes with a positive scale).
    relu: bool,
    /// Fixed-point multipliers bridging the two layers' scales.
    plan: RequantPlan,
}

/// Per-layer fusion decisions, derived lazily from the (serialized) scales
/// so a deserialized model rebuilds the identical plan.
#[derive(Debug, Clone, Default)]
struct FusedPlan {
    /// `edges[i]` is `Some` iff `layers[i]` is a Dense whose output feeds
    /// another Dense without leaving the integer domain.
    edges: Vec<Option<FusedEdge>>,
}

/// A statically-quantized dense network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuantizedModel {
    /// Quantized layer stack.
    pub layers: Vec<QLayer>,
    /// The scheme this model was quantized with.
    pub scheme: QuantScheme,
    /// Lazily-built fusion plan; derived from `layers`' scales, so it is
    /// skipped in serialization and rebuilt identically after a round trip.
    #[serde(skip)]
    fused: OnceLock<FusedPlan>,
}

impl QuantizedModel {
    /// Quantize `model` post-training, using `calib` inputs to fix
    /// activation scales. Fails on conv layers (dense-only kernels; use
    /// [`crate::fake_quantize`] for conv architectures).
    pub fn quantize(
        model: &Sequential,
        calib: &Tensor,
        scheme: QuantScheme,
    ) -> Result<Self, QuantError> {
        if calib.rows() == 0 {
            return Err(QuantError::BadCalibration("empty calibration batch".into()));
        }
        for l in &model.layers {
            if matches!(l, Layer::Conv2d(_) | Layer::MaxPool2d(_)) {
                return Err(QuantError::Unsupported(format!(
                    "integer kernels cover dense networks; layer `{}` needs fake_quantize",
                    l.name()
                )));
            }
        }
        let cal = Calibration::capture(model, calib, 0.999);
        let layers = model
            .layers
            .iter()
            .enumerate()
            .map(|(i, l)| match l {
                Layer::Dense(d) => match scheme {
                    QuantScheme::Binary => QLayer::BinaryDense(BinaryDense::quantize(&d.w, &d.b)),
                    s => QLayer::Dense(QDense::quantize(&d.w, &d.b, s.bits(), cal.input_scales[i])),
                },
                other => QLayer::Passthrough(other.clone()),
            })
            .collect();
        Ok(QuantizedModel::from_layers(layers, scheme))
    }

    /// Assemble a model from already-quantized layers (fusion plan is
    /// derived lazily from the layers' scales on first forward).
    #[must_use]
    pub fn from_layers(layers: Vec<QLayer>, scheme: QuantScheme) -> Self {
        QuantizedModel {
            layers,
            scheme,
            fused: OnceLock::new(),
        }
    }

    /// Unfused forward pass: every layer quantizes its input and
    /// dequantizes its accumulators independently. Kept as the reference
    /// the fused path is property-tested against; production callers
    /// ([`Self::predict`], [`Self::accuracy`]) use
    /// [`Self::forward_fused`].
    #[must_use]
    pub fn forward(&self, x: &Tensor) -> Tensor {
        self.layers.iter().fold(x.clone(), |h, l| match l {
            QLayer::Dense(d) => d.forward(&h),
            QLayer::BinaryDense(b) => b.forward(&h),
            QLayer::Passthrough(p) => p.forward(&h),
        })
    }

    /// Fused forward pass: activations stay int8 across
    /// `Dense → (ReLU/Dropout)* → Dense` chains, with the scale bridge
    /// `in_scale · w_scale / next_in_scale` applied as a fixed-point
    /// multiplier straight off the i32 accumulators
    /// ([`QDense::requantize_acc`]). f32 tensors materialize only at the
    /// head/tail of each integer segment: before a [`BinaryDense`], at a
    /// passthrough other than ReLU/Dropout, at a boundary whose scales
    /// yield no valid [`RequantPlan`], and at the model output.
    ///
    /// Differs from the unfused [`Self::forward`] by at most one requant
    /// ULP per fused boundary (the fixed-point multiply rounds once where
    /// the f32 path rounds twice).
    #[must_use]
    pub fn forward_fused(&self, x: &Tensor) -> Tensor {
        let plan = self.fused_plan();
        let mut h = x.clone();
        let mut i = 0;
        while i < self.layers.len() {
            match &self.layers[i] {
                QLayer::Dense(d) => {
                    // Integer segment: quantize once, then chase fused
                    // edges without leaving the i8/i32 domain.
                    let batch = h.rows();
                    let mut cur = d;
                    let mut xq = cur.quantize_input(&h);
                    loop {
                        let acc = cur.int_accumulate(&xq, batch);
                        match &plan.edges[i] {
                            Some(edge) => {
                                xq = cur.requantize_acc(&acc, batch, &edge.plan, edge.relu);
                                i = edge.next;
                                cur = match &self.layers[i] {
                                    QLayer::Dense(d2) => d2,
                                    _ => unreachable!("fused edge targets a Dense"),
                                };
                            }
                            None => {
                                h = cur.dequantize_acc(&acc, batch);
                                i += 1;
                                break;
                            }
                        }
                    }
                }
                QLayer::BinaryDense(b) => {
                    h = b.forward(&h);
                    i += 1;
                }
                QLayer::Passthrough(p) => {
                    h = p.forward(&h);
                    i += 1;
                }
            }
        }
        h
    }

    /// The memoized fusion plan (built on first use; deterministic in the
    /// serialized scales, so identical after a serde round trip).
    fn fused_plan(&self) -> &FusedPlan {
        self.fused.get_or_init(|| self.build_fused_plan())
    }

    fn build_fused_plan(&self) -> FusedPlan {
        let mut edges = Vec::with_capacity(self.layers.len());
        for (i, l) in self.layers.iter().enumerate() {
            let QLayer::Dense(d) = l else {
                edges.push(None);
                continue;
            };
            // Scan past inference-foldable passthroughs: ReLU folds into
            // the requant clamp, Dropout is identity at inference.
            let mut relu = false;
            let mut j = i + 1;
            let edge = loop {
                match self.layers.get(j) {
                    Some(QLayer::Passthrough(Layer::Relu)) => {
                        relu = true;
                        j += 1;
                    }
                    Some(QLayer::Passthrough(Layer::Dropout(_))) => j += 1,
                    Some(QLayer::Dense(d2)) => {
                        break d.requant_plan(d2.in_scale).map(|plan| FusedEdge {
                            next: j,
                            relu,
                            plan,
                        });
                    }
                    _ => break None,
                }
            };
            edges.push(edge);
        }
        FusedPlan { edges }
    }

    /// Class predictions (row-wise argmax) via the fused integer path.
    #[must_use]
    pub fn predict(&self, x: &Tensor) -> Vec<usize> {
        self.forward_fused(x).argmax_rows()
    }

    /// Deployment size in bytes (packed weights + scales + biases). A
    /// passthrough dense layer — e.g. the full-precision head a
    /// binary-aware export keeps — ships its f32 parameters, so it counts;
    /// parameter-free passthroughs (activations, reshapes) are free.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.layers
            .iter()
            .map(|l| match l {
                QLayer::Dense(d) => d.size_bytes(),
                QLayer::BinaryDense(b) => b.size_bytes(),
                QLayer::Passthrough(Layer::Dense(d)) => {
                    (d.w.data().len() + d.b.data().len()) * std::mem::size_of::<f32>()
                }
                QLayer::Passthrough(_) => 0,
            })
            .sum()
    }

    /// Classification accuracy on a labelled set.
    #[must_use]
    pub fn accuracy(&self, x: &Tensor, y: &[usize]) -> f32 {
        if y.is_empty() {
            return 0.0;
        }
        let pred = self.predict(x);
        pred.iter().zip(y).filter(|(p, t)| p == t).count() as f32 / y.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinymlops_nn::data::synth_digits;
    use tinymlops_nn::model::mlp;
    use tinymlops_nn::train::{evaluate, fit, FitConfig};
    use tinymlops_nn::Adam;
    use tinymlops_tensor::TensorRng;

    fn trained_digits_model() -> (Sequential, tinymlops_nn::Dataset, tinymlops_nn::Dataset) {
        let data = synth_digits(1200, 0.08, 33);
        let (train, test) = data.split(0.85, 0);
        let mut rng = TensorRng::seed(10);
        let mut model = mlp(&[64, 32, 10], &mut rng);
        let mut opt = Adam::new(0.005);
        fit(
            &mut model,
            &train,
            &mut opt,
            &FitConfig {
                epochs: 20,
                batch_size: 32,
                ..Default::default()
            },
        );
        (model, train, test)
    }

    #[test]
    fn int8_quantization_preserves_accuracy() {
        let (model, train, test) = trained_digits_model();
        let f32_acc = evaluate(&model, &test);
        let q = QuantizedModel::quantize(&model, &train.x, QuantScheme::Int8).unwrap();
        let q_acc = q.accuracy(&test.x, &test.y);
        assert!(
            q_acc > f32_acc - 0.03,
            "int8 {q_acc} should be within 3pt of f32 {f32_acc}"
        );
    }

    #[test]
    fn accuracy_degrades_monotonically_in_expectation() {
        let (model, train, test) = trained_digits_model();
        let acc_of = |s: QuantScheme| {
            QuantizedModel::quantize(&model, &train.x, s)
                .unwrap()
                .accuracy(&test.x, &test.y)
        };
        let a8 = acc_of(QuantScheme::Int8);
        let a4 = acc_of(QuantScheme::Int4);
        let a2 = acc_of(QuantScheme::Int2);
        // 8-bit ≈ f32; 4-bit close; 2-bit noticeably worse but above chance.
        assert!(a8 >= a4 - 0.02, "a8={a8} a4={a4}");
        assert!(a4 >= a2 - 0.05, "a4={a4} a2={a2}");
        assert!(a2 > 0.15, "2-bit should beat chance, got {a2}");
    }

    #[test]
    fn size_ordering_matches_bits() {
        let (model, train, _) = trained_digits_model();
        let size_of = |s: QuantScheme| {
            QuantizedModel::quantize(&model, &train.x, s)
                .unwrap()
                .size_bytes()
        };
        let s8 = size_of(QuantScheme::Int8);
        let s4 = size_of(QuantScheme::Int4);
        let s2 = size_of(QuantScheme::Int2);
        let s1 = size_of(QuantScheme::Binary);
        assert!(s8 > s4 && s4 > s2 && s2 > s1, "{s8} {s4} {s2} {s1}");
        assert!(s8 < model.param_bytes(), "int8 smaller than f32");
    }

    #[test]
    fn conv_models_are_rejected_with_guidance() {
        let mut rng = TensorRng::seed(1);
        let m = Sequential::new(vec![Layer::Conv2d(tinymlops_nn::Conv2d::new(
            1, 2, 3, 0, &mut rng,
        ))]);
        let calib = Tensor::zeros(&[1, 1, 8, 8]);
        let err = QuantizedModel::quantize(&m, &calib, QuantScheme::Int8).unwrap_err();
        assert!(matches!(err, QuantError::Unsupported(_)));
    }

    #[test]
    fn empty_calibration_is_rejected() {
        let mut rng = TensorRng::seed(2);
        let m = mlp(&[4, 2], &mut rng);
        let calib = Tensor::zeros(&[0, 4]);
        assert!(matches!(
            QuantizedModel::quantize(&m, &calib, QuantScheme::Int8),
            Err(QuantError::BadCalibration(_))
        ));
    }

    #[test]
    fn serde_round_trip() {
        let (model, train, test) = trained_digits_model();
        let q = QuantizedModel::quantize(&model, &train.x, QuantScheme::Int4).unwrap();
        let json = serde_json::to_vec(&q).unwrap();
        let q2: QuantizedModel = serde_json::from_slice(&json).unwrap();
        assert_eq!(q.predict(&test.x), q2.predict(&test.x));
    }

    #[test]
    fn fused_forward_fuses_the_interior_boundary() {
        let (model, train, _) = trained_digits_model();
        let q = QuantizedModel::quantize(&model, &train.x, QuantScheme::Int8).unwrap();
        // mlp([64,32,10]) quantizes to Dense, Relu, Dense: exactly one
        // fusable edge, from layer 0 over the ReLU to layer 2.
        let plan = q.fused_plan();
        let edge = plan.edges[0].as_ref().expect("interior edge fuses");
        assert_eq!(edge.next, 2);
        assert!(edge.relu, "the ReLU folds into the requant");
        assert!(plan.edges[2].is_none(), "tail dequantizes to f32");
    }

    #[test]
    fn fused_forward_matches_unfused_predictions() {
        let (model, train, test) = trained_digits_model();
        for scheme in [QuantScheme::Int8, QuantScheme::Int4, QuantScheme::Int2] {
            let q = QuantizedModel::quantize(&model, &train.x, scheme).unwrap();
            let fused = q.forward_fused(&test.x).argmax_rows();
            let unfused = q.forward(&test.x).argmax_rows();
            let agree = fused.iter().zip(&unfused).filter(|(a, b)| a == b).count() as f32
                / fused.len() as f32;
            // The paths differ by at most one requant ULP per fused
            // boundary, so argmax flips only on near-ties.
            assert!(
                agree > 0.98,
                "{}: fused/unfused agreement {agree}",
                scheme.name()
            );
        }
    }

    #[test]
    fn fused_plan_survives_serde_round_trip() {
        let (model, train, test) = trained_digits_model();
        let q = QuantizedModel::quantize(&model, &train.x, QuantScheme::Int8).unwrap();
        let json = serde_json::to_vec(&q).unwrap();
        let q2: QuantizedModel = serde_json::from_slice(&json).unwrap();
        // The plan is derived entirely from serialized scales, so the
        // round-tripped model rebuilds the identical fixed-point bridge
        // and the fused outputs are bit-identical.
        let (p1, p2) = (q.fused_plan(), q2.fused_plan());
        assert_eq!(p1.edges.len(), p2.edges.len());
        for (a, b) in p1.edges.iter().zip(&p2.edges) {
            match (a, b) {
                (None, None) => {}
                (Some(ea), Some(eb)) => {
                    assert_eq!(ea.next, eb.next);
                    assert_eq!(ea.relu, eb.relu);
                    assert_eq!(ea.plan, eb.plan);
                }
                _ => panic!("fusion decisions diverged after round trip"),
            }
        }
        assert_eq!(
            q.forward_fused(&test.x).data(),
            q2.forward_fused(&test.x).data()
        );
    }

    #[test]
    fn binary_and_head_boundaries_fall_back_to_f32() {
        let (model, train, test) = trained_digits_model();
        let q = QuantizedModel::quantize(&model, &train.x, QuantScheme::Binary).unwrap();
        // All-binary stacks have no QDense edges at all; the fused path
        // must degrade to exactly the unfused one.
        assert!(q.fused_plan().edges.iter().all(Option::is_none));
        assert_eq!(q.forward_fused(&test.x).data(), q.forward(&test.x).data());
    }
}
