//! Property-based tests: quantization invariants over arbitrary weights.

use proptest::prelude::*;
use tinymlops_quant::{fake_quantize_tensor, BinaryDense, QDense, SparseDense};
use tinymlops_tensor::Tensor;

proptest! {
    /// Fake quantization is idempotent and bounded: the error of one round
    /// trip never exceeds half a quantization step.
    #[test]
    fn fake_quant_idempotent_and_bounded(
        mut row in proptest::collection::vec(-10.0f32..10.0, 1..128),
        bits in 2u32..9,
    ) {
        let orig = row.clone();
        fake_quantize_tensor(&mut row, bits);
        let once = row.clone();
        fake_quantize_tensor(&mut row, bits);
        prop_assert_eq!(&row, &once, "idempotent");
        let amax = orig.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        if amax > 0.0 {
            let qmax = ((1i64 << (bits - 1)) - 1) as f32;
            let step = amax / qmax;
            for (o, q) in orig.iter().zip(&once) {
                prop_assert!((o - q).abs() <= step / 2.0 + 1e-5, "{o} vs {q} step {step}");
            }
        }
    }

    /// The int8 integer kernel approximates the f32 product within the
    /// combined quantization error bound.
    #[test]
    fn qdense_int8_error_bounded(
        out_dim in 1usize..8,
        in_dim in 1usize..16,
        seed in any::<u64>(),
    ) {
        let mut rng = tinymlops_tensor::TensorRng::seed(seed);
        let w = rng.uniform(&[out_dim, in_dim], -1.0, 1.0);
        let b = rng.uniform(&[out_dim], -0.5, 0.5);
        let x = rng.uniform(&[3, in_dim], -1.0, 1.0);
        let q = QDense::quantize(&w, &b, 8, 1.0 / 127.0);
        let got = q.forward(&x);
        let want = x.matmul_nt(&w).unwrap().add_row_vector(&b).unwrap();
        // Error bound: per-term quantization error ~ (1/127)(|x|+|w|max);
        // loose bound: 0.02 per input dimension.
        let bound = 0.02 * in_dim as f32 + 0.01;
        for (g, t) in got.data().iter().zip(want.data()) {
            prop_assert!((g - t).abs() < bound, "{g} vs {t} (bound {bound})");
        }
    }

    /// CSR forward equals dense forward for any sparsity pattern.
    #[test]
    fn csr_equals_dense(
        out_dim in 1usize..8,
        in_dim in 1usize..16,
        seed in any::<u64>(),
        zero_prob in 0.0f64..1.0,
    ) {
        let mut rng = tinymlops_tensor::TensorRng::seed(seed);
        let mut w = rng.uniform(&[out_dim, in_dim], -2.0, 2.0);
        for v in w.data_mut() {
            if f64::from(v.abs() % 1.0) < zero_prob {
                *v = 0.0;
            }
        }
        let b = rng.uniform(&[out_dim], -1.0, 1.0);
        let x = rng.uniform(&[4, in_dim], -1.0, 1.0);
        let sp = SparseDense::from_dense(&w, &b);
        let dense_y = x.matmul_nt(&w).unwrap().add_row_vector(&b).unwrap();
        let sparse_y = sp.forward(&x);
        for (a, c) in dense_y.data().iter().zip(sparse_y.data()) {
            prop_assert!((a - c).abs() < 1e-4);
        }
    }

    /// The XNOR kernel reproduces sign-matrix products exactly for ±1
    /// inputs, at any width (including multi-word and padded tails).
    #[test]
    fn binary_kernel_exact_on_signs(
        out_dim in 1usize..6,
        in_dim in 1usize..200,
        seed in any::<u64>(),
    ) {
        let mut rng = tinymlops_tensor::TensorRng::seed(seed);
        let w = rng.uniform(&[out_dim, in_dim], -1.0, 1.0);
        let b = Tensor::zeros(&[out_dim]);
        let q = BinaryDense::quantize(&w, &b);
        let x = rng
            .uniform(&[2, in_dim], -1.0, 1.0)
            .map(|v| if v >= 0.0 { 1.0 } else { -1.0 });
        let got = q.forward(&x);
        let w_sign = w.map(|v| if v >= 0.0 { 1.0 } else { -1.0 });
        let want = x.matmul_nt(&w_sign).unwrap();
        for r in 0..2 {
            for c in 0..out_dim {
                let expect = want.at(r, c) * q.alpha[c];
                prop_assert!((got.at(r, c) - expect).abs() < 1e-3);
            }
        }
    }

    /// Packed storage round-trips exactly through the public matrix view.
    #[test]
    fn packed_unpack_round_trip(
        out_dim in 1usize..6,
        in_dim in 1usize..40,
        bits in prop::sample::select(vec![8u32, 4, 2]),
        seed in any::<u64>(),
    ) {
        let mut rng = tinymlops_tensor::TensorRng::seed(seed);
        let w = rng.uniform(&[out_dim, in_dim], -1.0, 1.0);
        let b = Tensor::zeros(&[out_dim]);
        let q = QDense::quantize(&w, &b, bits, 0.01);
        let ints = q.unpack_matrix();
        prop_assert_eq!(ints.len(), out_dim * in_dim);
        let qmax = ((1i32 << (bits - 1)) - 1) as i8;
        prop_assert!(ints.iter().all(|&v| v >= -qmax && v <= qmax));
    }
}

mod restructured_kernels {
    use super::*;

    proptest! {
        /// The restructured forward (cached unpack, AVX2-dispatched dot,
        /// batch parallelism) is bit-for-bit identical to the seed scalar
        /// loop — not merely close: i32 accumulation is associative, so any
        /// divergence is a kernel bug.
        #[test]
        fn forward_is_bit_identical_to_reference(
            out_dim in 1usize..20,
            in_dim in 1usize..48,
            batch in 1usize..12,
            bits in prop::sample::select(vec![8u32, 4, 2]),
            seed in any::<u64>(),
        ) {
            let mut rng = tinymlops_tensor::TensorRng::seed(seed);
            let w = rng.uniform(&[out_dim, in_dim], -1.5, 1.5);
            let b = rng.uniform(&[out_dim], -0.5, 0.5);
            let x = rng.uniform(&[batch, in_dim], -2.0, 2.0);
            let q = QDense::quantize(&w, &b, bits, 0.02);
            let fast = q.forward(&x);
            let slow = q.forward_reference(&x);
            prop_assert_eq!(fast.shape(), slow.shape());
            prop_assert_eq!(fast.data(), slow.data(), "int{} outputs diverge", bits);
        }

        /// The explicit AVX2 `vpmaddwd` kernel is bit-identical to the
        /// portable scalar loop for every length (SIMD body, 32-lane
        /// chunking, scalar tail) and the full i8 value range — wrapping
        /// i32 addition is associative, so any divergence is a lane bug.
        #[test]
        fn maddwd_dot_matches_portable_exactly(
            len in 0usize..300,
            seed in any::<u64>(),
        ) {
            let mut rng = tinymlops_tensor::TensorRng::seed(seed);
            let f = rng.uniform(&[2, len.max(1)], -128.0, 128.0);
            let a: Vec<i8> = (0..len).map(|i| f.data()[i].clamp(-128.0, 127.0) as i8).collect();
            let b: Vec<i8> = (0..len).map(|i| f.data()[len.max(1) + i].clamp(-128.0, 127.0) as i8).collect();
            prop_assert_eq!(
                tinymlops_quant::dot_i8(&a, &b),
                tinymlops_quant::dot_i8_portable(&a, &b)
            );
        }

        /// `quantize_input` and the activations the kernel consumes are the
        /// same expression: feeding the verifier's integers through
        /// `int_accumulate` + `dequantize_acc` reproduces `forward` exactly.
        #[test]
        fn verifier_path_reproduces_forward(
            out_dim in 1usize..12,
            in_dim in 1usize..32,
            batch in 1usize..6,
            bits in prop::sample::select(vec![8u32, 4, 2]),
            seed in any::<u64>(),
        ) {
            let mut rng = tinymlops_tensor::TensorRng::seed(seed);
            let w = rng.uniform(&[out_dim, in_dim], -1.0, 1.0);
            let b = rng.uniform(&[out_dim], -0.2, 0.2);
            let x = rng.uniform(&[batch, in_dim], -1.0, 1.0);
            let q = QDense::quantize(&w, &b, bits, 0.01);
            let xq = q.quantize_input(&x);
            let acc = q.int_accumulate(&xq, batch);
            let rebuilt = q.dequantize_acc(&acc, batch);
            let direct = q.forward(&x);
            prop_assert_eq!(rebuilt.data(), direct.data());
        }
    }
}

mod fused_integer_path {
    use super::*;
    use tinymlops_nn::Layer;
    use tinymlops_quant::qmodel::QLayer;
    use tinymlops_quant::qtensor::quantize_activations;
    use tinymlops_quant::{QuantScheme, QuantizedModel};

    proptest! {
        /// The fixed-point requantization bridge stays within one requant
        /// ULP of the f32 boundary it replaces (dequantize → optional ReLU
        /// → quantize at the next scale), for any scales a real layer pair
        /// can produce.
        #[test]
        fn requantize_acc_within_one_ulp_of_f32_boundary(
            out_dim in 1usize..10,
            in_dim in 1usize..24,
            batch in 1usize..5,
            in_scale in 0.002f32..0.1,
            next_scale in 0.002f32..0.1,
            relu in any::<bool>(),
            seed in any::<u64>(),
        ) {
            let mut rng = tinymlops_tensor::TensorRng::seed(seed);
            let w = rng.uniform(&[out_dim, in_dim], -1.0, 1.0);
            let b = rng.uniform(&[out_dim], -0.5, 0.5);
            let x = rng.uniform(&[batch, in_dim], -1.5, 1.5);
            let q = QDense::quantize(&w, &b, 8, in_scale);
            let Some(plan) = q.requant_plan(next_scale) else {
                // Degenerate scale ratio: the fused path falls back to
                // f32, nothing to compare.
                return Ok(());
            };
            let xq = q.quantize_input(&x);
            let acc = q.int_accumulate(&xq, batch);
            let fused = q.requantize_acc(&acc, batch, &plan, relu);
            let mut f = q.dequantize_acc(&acc, batch);
            if relu {
                f = f.map(|v| v.max(0.0));
            }
            let mut want = vec![0i8; fused.len()];
            quantize_activations(f.data(), next_scale, &mut want);
            for (i, (&g, &t)) in fused.iter().zip(&want).enumerate() {
                prop_assert!(
                    (i32::from(g) - i32::from(t)).abs() <= 1,
                    "elem {}: fused {} vs f32 boundary {} (relu={})", i, g, t, relu
                );
            }
        }

        /// End to end: the fused integer forward matches the unfused
        /// per-layer forward within the amplification of one requant ULP —
        /// the layer-2 input differs by at most 1 quantum per element, so
        /// output r differs by at most
        /// `in2_scale · w_scale2[r] · Σ_j |w2q[r][j]|`.
        #[test]
        fn fused_model_within_one_requant_ulp_of_unfused(
            d1 in 1usize..16,
            d2 in 1usize..16,
            d3 in 1usize..8,
            batch in 1usize..5,
            in_scale in 0.005f32..0.05,
            mid_scale in 0.005f32..0.05,
            relu in any::<bool>(),
            seed in any::<u64>(),
        ) {
            let mut rng = tinymlops_tensor::TensorRng::seed(seed);
            let w1 = rng.uniform(&[d2, d1], -1.0, 1.0);
            let b1 = rng.uniform(&[d2], -0.3, 0.3);
            let w2 = rng.uniform(&[d3, d2], -1.0, 1.0);
            let b2 = rng.uniform(&[d3], -0.3, 0.3);
            let q1 = QDense::quantize(&w1, &b1, 8, in_scale);
            let q2 = QDense::quantize(&w2, &b2, 8, mid_scale);
            let w2q = q2.unpack_matrix();
            let (sc2, ws2) = (q2.in_scale, q2.w_scales.clone());
            let mut layers = vec![QLayer::Dense(q1)];
            if relu {
                layers.push(QLayer::Passthrough(Layer::Relu));
            }
            layers.push(QLayer::Dense(q2));
            let m = QuantizedModel::from_layers(layers, QuantScheme::Int8);
            let x = rng.uniform(&[batch, d1], -1.0, 1.0);
            let fused = m.forward_fused(&x);
            let unfused = m.forward(&x);
            prop_assert_eq!(fused.shape(), unfused.shape());
            for r in 0..d3 {
                let rowsum: i32 = w2q[r * d2..(r + 1) * d2]
                    .iter()
                    .map(|&v| i32::from(v.abs()))
                    .sum();
                let bound = sc2 * ws2[r] * rowsum as f32 + 1e-4;
                for bi in 0..batch {
                    let (a, c) = (fused.at(bi, r), unfused.at(bi, r));
                    prop_assert!(
                        (a - c).abs() <= bound,
                        "row {} out {}: fused {} vs unfused {} (bound {})", bi, r, a, c, bound
                    );
                }
            }
        }
    }
}
