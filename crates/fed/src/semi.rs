//! Semi-supervised federated learning via confident pseudo-labeling.
//!
//! §III-D: *"Most Federated Learning approaches make the assumption that
//! labelled data is available … this is not very realistic for a TinyML
//! setting. Here, the individual nodes might operate without human
//! intervention or feedback which means that the data remains completely
//! unlabeled. … Several techniques have been developed that can use
//! unlabelled local data to improve the global model either in a
//! semi-supervised or unsupervised way."*
//!
//! The recipe (SemiFL-style, simplified to TinyML budgets): the server
//! seeds a model from a small labelled set it owns; each round, clients
//! pseudo-label their *unlabeled* local data with the current global
//! model, keep only predictions above a confidence threshold, train
//! locally on those, and FedAvg the deltas.

use crate::client::{local_train, LocalTrainConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tinymlops_nn::{evaluate, Dataset, Sequential};
use tinymlops_tensor::Tensor;

/// Configuration for semi-supervised rounds.
#[derive(Debug, Clone)]
pub struct SemiConfig {
    /// Minimum top-1 confidence to accept a pseudo-label.
    pub confidence: f32,
    /// Fraction of clients drawn each round.
    pub participation: f32,
    /// Local training settings (applied to pseudo-labelled data).
    pub local: LocalTrainConfig,
    /// Base seed.
    pub seed: u64,
}

impl Default for SemiConfig {
    fn default() -> Self {
        SemiConfig {
            confidence: 0.9,
            participation: 0.8,
            local: LocalTrainConfig {
                epochs: 3,
                lr: 0.05,
                ..LocalTrainConfig::default()
            },
            seed: 0,
        }
    }
}

/// Per-round statistics.
#[derive(Debug, Clone)]
pub struct SemiRoundStats {
    /// Round index (1-based).
    pub round: usize,
    /// Mean fraction of unlabeled examples that passed the confidence gate.
    pub pseudo_label_rate: f32,
    /// Mean accuracy of accepted pseudo-labels against (hidden) truth —
    /// observable only in simulation, reported for the experiment tables.
    pub pseudo_label_accuracy: f32,
    /// Global accuracy after the round.
    pub accuracy: f32,
}

/// Pseudo-label `unlabeled` inputs with `model`, keeping confident rows.
/// Returns the kept subset as a labelled dataset plus indices kept.
#[must_use]
pub fn pseudo_label(
    model: &Sequential,
    x: &Tensor,
    num_classes: usize,
    confidence: f32,
) -> (Dataset, Vec<usize>) {
    let probs = model.predict_proba(x);
    let mut keep_rows = Vec::new();
    let mut labels = Vec::new();
    for r in 0..x.rows() {
        let row = probs.row(r);
        let (mut best, mut best_p) = (0usize, f32::NEG_INFINITY);
        for (i, &p) in row.iter().enumerate() {
            if p > best_p {
                best_p = p;
                best = i;
            }
        }
        if best_p >= confidence {
            keep_rows.push(r);
            labels.push(best);
        }
    }
    let cols = x.cols();
    let mut data = Vec::with_capacity(keep_rows.len() * cols);
    for &r in &keep_rows {
        data.extend_from_slice(x.row(r));
    }
    (
        Dataset::new(
            Tensor::from_vec(data, &[keep_rows.len(), cols]),
            labels,
            num_classes,
        ),
        keep_rows,
    )
}

/// Run `rounds` of semi-supervised FL. `server_seed` is the server's small
/// labelled set (trains the initial model and re-anchors each round);
/// `clients` hold **unlabeled** inputs (their true labels, used only for
/// reporting, ride along in the Dataset). Returns per-round stats.
pub fn run_semi_supervised(
    global: &mut Sequential,
    server_seed: &Dataset,
    clients: &[Dataset],
    holdout: &Dataset,
    rounds: usize,
    cfg: &SemiConfig,
) -> Vec<SemiRoundStats> {
    let mut stats = Vec::with_capacity(rounds);
    for round in 1..=rounds {
        let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(round as u64));
        let mut deltas: Vec<(Vec<f32>, u64)> = Vec::new();
        let mut rate_sum = 0.0f32;
        let mut pl_acc_sum = 0.0f32;
        let mut counted = 0usize;
        for client in clients {
            if rng.gen_range(0.0f32..1.0) >= cfg.participation || client.is_empty() {
                continue;
            }
            let (pseudo, kept) =
                pseudo_label(global, &client.x, client.num_classes, cfg.confidence);
            rate_sum += kept.len() as f32 / client.len() as f32;
            if !kept.is_empty() {
                let correct = kept
                    .iter()
                    .zip(&pseudo.y)
                    .filter(|(&orig_row, &pl)| client.y[orig_row] == pl)
                    .count();
                pl_acc_sum += correct as f32 / kept.len() as f32;
            }
            counted += 1;
            if pseudo.len() >= 8 {
                // SemiFL-style anchoring: the server's labelled seed is
                // *public* (it owns it), so it rides along to every client
                // and is mixed into the same batches as the pseudo-labels.
                // Without this anchor, confident-only training collapses
                // into confirmation bias (entropy minimization on what the
                // model already believes) — measured in the E14 ablation.
                let mixed = pseudo.concat(server_seed);
                let mut lcfg = cfg.local.clone();
                lcfg.seed = cfg.seed.wrapping_add((round * 31 + counted) as u64);
                let update = local_train(global, &mixed, &lcfg);
                deltas.push((update.delta, update.num_examples));
            }
        }
        // Server also contributes a supervised update from its seed set —
        // the anchor that stops pseudo-label drift.
        let mut server_cfg = cfg.local.clone();
        server_cfg.seed = cfg.seed.wrapping_add(round as u64 * 977);
        let server_update = local_train(global, server_seed, &server_cfg);
        deltas.push((server_update.delta, server_update.num_examples));

        let total_w: u64 = deltas.iter().map(|(_, w)| *w).sum();
        let n = global.num_params();
        let mut agg = vec![0.0f64; n];
        for (d, w) in &deltas {
            for (a, v) in agg.iter_mut().zip(d) {
                *a += f64::from(*v) * *w as f64;
            }
        }
        let mut params = global.flat_params();
        for (p, a) in params.iter_mut().zip(&agg) {
            *p += (*a / total_w.max(1) as f64) as f32;
        }
        global.set_flat_params(&params).expect("model shape");

        stats.push(SemiRoundStats {
            round,
            pseudo_label_rate: if counted == 0 {
                0.0
            } else {
                rate_sum / counted as f32
            },
            pseudo_label_accuracy: if counted == 0 {
                0.0
            } else {
                pl_acc_sum / counted as f32
            },
            accuracy: evaluate(global, holdout),
        });
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::partition_iid;
    use tinymlops_nn::data::synth_digits;
    use tinymlops_nn::model::mlp;
    use tinymlops_nn::train::{fit, FitConfig};
    use tinymlops_nn::Adam;
    use tinymlops_tensor::TensorRng;

    #[test]
    fn pseudo_labels_are_confident_and_mostly_right() {
        let data = synth_digits(800, 0.08, 11);
        let (train, test) = data.split(0.8, 0);
        let mut rng = TensorRng::seed(1);
        let mut model = mlp(&[64, 24, 10], &mut rng);
        let mut opt = Adam::new(0.005);
        fit(
            &mut model,
            &train,
            &mut opt,
            &FitConfig {
                epochs: 8,
                batch_size: 32,
                ..Default::default()
            },
        );
        let (pseudo, kept) = pseudo_label(&model, &test.x, 10, 0.9);
        assert!(!kept.is_empty());
        let correct = kept
            .iter()
            .zip(&pseudo.y)
            .filter(|(&r, &pl)| test.y[r] == pl)
            .count();
        let acc = correct as f32 / kept.len() as f32;
        assert!(acc > 0.95, "confident pseudo-labels accuracy {acc}");
    }

    #[test]
    fn unlabeled_clients_improve_a_weak_seed_model() {
        let data = synth_digits(2400, 0.08, 12);
        let (train, test) = data.split(0.85, 0);
        // Server owns a tiny labelled seed; clients are unlabeled.
        let (seed_set, unlabeled_pool) = train.split(0.06, 1);
        let clients = partition_iid(&unlabeled_pool, 8, 2);

        let mut rng = TensorRng::seed(3);
        let mut model = mlp(&[64, 24, 10], &mut rng);
        let mut opt = Adam::new(0.005);
        fit(
            &mut model,
            &seed_set,
            &mut opt,
            &FitConfig {
                epochs: 20,
                batch_size: 16,
                ..Default::default()
            },
        );
        let seed_only_acc = evaluate(&model, &test);

        let stats = run_semi_supervised(
            &mut model,
            &seed_set,
            &clients,
            &test,
            30,
            &SemiConfig::default(),
        );
        let final_acc = stats.last().unwrap().accuracy;
        assert!(
            final_acc > seed_only_acc + 0.03,
            "semi-supervised FL should beat the seed-only model: {seed_only_acc} → {final_acc}"
        );
        // Confidence gate keeps pseudo-labels clean.
        let mean_pl_acc: f32 =
            stats.iter().map(|s| s.pseudo_label_accuracy).sum::<f32>() / stats.len() as f32;
        assert!(mean_pl_acc > 0.85, "pseudo-label accuracy {mean_pl_acc}");
    }

    #[test]
    fn impossible_confidence_keeps_nothing() {
        let data = synth_digits(100, 0.08, 13);
        let model = mlp(&[64, 8, 10], &mut TensorRng::seed(4));
        let (pseudo, kept) = pseudo_label(&model, &data.x, 10, 1.01);
        assert!(kept.is_empty());
        assert!(pseudo.is_empty());
    }
}
