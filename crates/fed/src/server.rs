//! Federated round orchestration.
//!
//! One [`FlServer::round`]: sample available clients (devices may be
//! offline — §III-C/§III-D), run local training in parallel with rayon,
//! optionally compress and securely aggregate the updates, apply the
//! weighted-mean delta to the global model, and evaluate.

use crate::client::{local_train, ClientUpdate, LocalTrainConfig};
use crate::compress::{CompressedUpdate, Compression};
use crate::secure_agg::SecureAggregator;
use crate::FedError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use tinymlops_nn::{evaluate, Dataset, Sequential};

/// Federated-learning configuration.
#[derive(Debug, Clone)]
pub struct FlConfig {
    /// Fraction of clients invited each round.
    pub participation: f32,
    /// Probability an invited client is actually reachable this round
    /// (§III-D: wireless nodes dodge rounds to save energy).
    pub availability: f32,
    /// Local training settings.
    pub local: LocalTrainConfig,
    /// Update compression.
    pub compression: Compression,
    /// Use pairwise-mask secure aggregation.
    pub secure_agg: bool,
    /// Server learning rate applied to the aggregated delta.
    pub server_lr: f32,
    /// Base seed.
    pub seed: u64,
}

impl Default for FlConfig {
    fn default() -> Self {
        FlConfig {
            participation: 0.5,
            availability: 0.9,
            local: LocalTrainConfig::default(),
            compression: Compression::None,
            secure_agg: false,
            server_lr: 1.0,
            seed: 0,
        }
    }
}

/// Outcome of one round.
#[derive(Debug, Clone)]
pub struct RoundStats {
    /// Round index (1-based).
    pub round: usize,
    /// Clients that actually participated.
    pub participants: usize,
    /// Global-model accuracy on the held-out set after the round.
    pub accuracy: f32,
    /// Total client→server bytes this round (after compression).
    pub uplink_bytes: usize,
    /// Mean final local loss across participants.
    pub mean_local_loss: f32,
}

/// The federated server: owns the global model and the round loop.
pub struct FlServer {
    /// The global model.
    pub global: Sequential,
    /// Per-client local datasets.
    pub clients: Vec<Dataset>,
    cfg: FlConfig,
    round: usize,
    /// Per-round statistics history.
    pub history: Vec<RoundStats>,
}

impl FlServer {
    /// New server over a client population.
    #[must_use]
    pub fn new(global: Sequential, clients: Vec<Dataset>, cfg: FlConfig) -> Self {
        FlServer {
            global,
            clients,
            cfg,
            round: 0,
            history: Vec::new(),
        }
    }

    /// Run one federated round; evaluates on `holdout`.
    pub fn round(&mut self, holdout: &Dataset) -> Result<RoundStats, FedError> {
        self.round += 1;
        let mut rng = StdRng::seed_from_u64(self.cfg.seed.wrapping_add(self.round as u64));
        // Invite a fraction; availability thins the invitees.
        let selected: Vec<usize> = (0..self.clients.len())
            .filter(|_| {
                let invited = rng.gen_range(0.0f32..1.0) < self.cfg.participation;
                invited && rng.gen_range(0.0f32..1.0) < self.cfg.availability
            })
            .collect();
        if selected.is_empty() {
            return Err(FedError::NoClients);
        }
        let round_seed = self.cfg.seed.wrapping_add(self.round as u64 * 7919);
        let local_cfg_base = self.cfg.local.clone();
        let global = &self.global;
        let clients = &self.clients;
        let updates: Vec<ClientUpdate> = selected
            .par_iter()
            .map(|&ci| {
                let mut cfg = local_cfg_base.clone();
                cfg.seed = round_seed.wrapping_add(ci as u64);
                local_train(global, &clients[ci], &cfg)
            })
            .collect();

        // Compress (lossy) then reconstruct — what the server would see.
        let mut uplink_bytes = 0usize;
        let reconstructed: Vec<(Vec<f32>, u64)> = updates
            .iter()
            .map(|u| {
                let c = CompressedUpdate::compress(&u.delta, self.cfg.compression);
                uplink_bytes += c.wire_bytes();
                (c.decompress(), u.num_examples)
            })
            .collect();

        let n_params = self.global.num_params();
        for (d, _) in &reconstructed {
            if d.len() != n_params {
                return Err(FedError::BadUpdate {
                    expected: n_params,
                    got: d.len(),
                });
            }
        }

        // Aggregate: weighted mean, optionally under secure aggregation.
        let agg_delta: Vec<f32> = if self.cfg.secure_agg {
            let ids: Vec<u32> = selected.iter().map(|&i| i as u32).collect();
            let agg = SecureAggregator::new(round_seed, ids.clone());
            let masked: Vec<_> = reconstructed
                .iter()
                .zip(&ids)
                .map(|((d, w), &id)| agg.mask(id, d, *w))
                .collect();
            agg.aggregate(&masked)
        } else {
            let total_w: u64 = reconstructed.iter().map(|(_, w)| *w).sum();
            let mut sum = vec![0.0f64; n_params];
            for (d, w) in &reconstructed {
                for (s, v) in sum.iter_mut().zip(d) {
                    *s += f64::from(*v) * *w as f64;
                }
            }
            sum.iter()
                .map(|s| (s / total_w.max(1) as f64) as f32)
                .collect()
        };

        // Apply with the server learning rate.
        let mut params = self.global.flat_params();
        for (p, d) in params.iter_mut().zip(&agg_delta) {
            *p += self.cfg.server_lr * d;
        }
        self.global
            .set_flat_params(&params)
            .expect("aggregated delta has model shape");

        let stats = RoundStats {
            round: self.round,
            participants: selected.len(),
            accuracy: evaluate(&self.global, holdout),
            uplink_bytes,
            mean_local_loss: updates.iter().map(|u| u.final_loss).sum::<f32>()
                / updates.len() as f32,
        };
        self.history.push(stats.clone());
        Ok(stats)
    }

    /// Run `n` rounds, skipping rounds where no clients were reachable.
    pub fn run(&mut self, n: usize, holdout: &Dataset) -> Vec<RoundStats> {
        (0..n).filter_map(|_| self.round(holdout).ok()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{partition_dirichlet, partition_iid};
    use tinymlops_nn::data::synth_digits;
    use tinymlops_nn::model::mlp;
    use tinymlops_tensor::TensorRng;

    fn setup(clients: usize, iid: bool) -> (FlServer, Dataset) {
        let data = synth_digits(1500, 0.08, 21);
        let (train, test) = data.split(0.85, 0);
        let parts = if iid {
            partition_iid(&train, clients, 1)
        } else {
            partition_dirichlet(&train, clients, 0.2, 1)
        };
        let mut rng = TensorRng::seed(5);
        let model = mlp(&[64, 24, 10], &mut rng);
        let server = FlServer::new(model, parts, FlConfig::default());
        (server, test)
    }

    #[test]
    fn fl_learns_iid_digits() {
        let (mut server, test) = setup(10, true);
        let stats = server.run(25, &test);
        assert!(!stats.is_empty());
        let final_acc = stats.last().unwrap().accuracy;
        assert!(final_acc > 0.75, "iid FedAvg accuracy {final_acc}");
        // Accuracy improves over the run.
        assert!(final_acc > stats[0].accuracy);
    }

    #[test]
    fn noniid_hurts_fedavg() {
        let (mut iid_server, test) = setup(10, true);
        let (mut skew_server, _) = setup(10, false);
        let iid_final = iid_server.run(10, &test).last().unwrap().accuracy;
        let skew_final = skew_server.run(10, &test).last().unwrap().accuracy;
        assert!(
            iid_final > skew_final - 0.02,
            "iid {iid_final} should beat/match non-iid {skew_final}"
        );
    }

    #[test]
    fn compression_cuts_uplink_bytes() {
        let (mut plain, test) = setup(8, true);
        let compressed_cfg = FlConfig {
            compression: Compression::Sign,
            ..Default::default()
        };
        let data = synth_digits(1500, 0.08, 21);
        let (train, _) = data.split(0.85, 0);
        let parts = partition_iid(&train, 8, 1);
        let mut rng = TensorRng::seed(5);
        let mut signed = FlServer::new(mlp(&[64, 24, 10], &mut rng), parts, compressed_cfg);
        let b_plain = plain.round(&test).unwrap().uplink_bytes;
        let b_sign = signed.round(&test).unwrap().uplink_bytes;
        // Same #params; sign is ~32x smaller per client (participant count
        // varies slightly with the seed, so compare per-participant).
        let per_plain = b_plain / plain.history[0].participants;
        let per_sign = b_sign / signed.history[0].participants;
        assert!(
            per_sign * 20 < per_plain,
            "sign {per_sign} vs plain {per_plain}"
        );
    }

    #[test]
    fn secure_agg_matches_plain_aggregation() {
        let data = synth_digits(800, 0.08, 22);
        let (train, test) = data.split(0.85, 0);
        let parts = partition_iid(&train, 6, 2);
        let mut rng = TensorRng::seed(6);
        let model = mlp(&[64, 16, 10], &mut rng);
        let mut cfg = FlConfig {
            participation: 1.0,
            availability: 1.0,
            ..Default::default()
        };
        let mut plain_server = FlServer::new(model.clone(), parts.clone(), cfg.clone());
        cfg.secure_agg = true;
        let mut secure_server = FlServer::new(model, parts, cfg);
        let a = plain_server.round(&test).unwrap();
        let b = secure_server.round(&test).unwrap();
        // Fixed-point masking adds ≤1e-4 per-coordinate error: accuracy
        // should agree to within a couple of test examples.
        assert!(
            (a.accuracy - b.accuracy).abs() < 0.03,
            "plain {} vs secure {}",
            a.accuracy,
            b.accuracy
        );
    }

    #[test]
    fn zero_participation_errors() {
        let (mut server, test) = setup(5, true);
        server.cfg.participation = 0.0;
        assert!(matches!(server.round(&test), Err(FedError::NoClients)));
    }
}
