//! Continual learning on-device: catastrophic forgetting and its
//! replay-buffer mitigation.
//!
//! §III-D: *"Modern machine learning applications are not static anymore,
//! they are updated continuously as new data has been observed. … There
//! are some challenges such as dealing with catastrophic forgetting when
//! designing machine learning models that support continuous learning."*
//!
//! A TinyML device sees its data as a stream with shifting task focus
//! (new keyword, new machine state). Naively fine-tuning on each phase
//! erases earlier phases; a small reservoir [`ReplayBuffer`] — the
//! memory-bounded mitigation that fits MCU budgets — retains them.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tinymlops_nn::loss::cross_entropy;
use tinymlops_nn::{evaluate, Dataset, Optimizer, Sequential, Sgd};
use tinymlops_tensor::Tensor;

/// A bounded reservoir of past examples (Vitter's Algorithm R), the
/// classic O(capacity)-memory replay store.
#[derive(Debug, Clone)]
pub struct ReplayBuffer {
    capacity: usize,
    seen: u64,
    xs: Vec<Vec<f32>>,
    ys: Vec<usize>,
    rng: StdRng,
    num_classes: usize,
    feature_dim: usize,
}

impl ReplayBuffer {
    /// A buffer holding at most `capacity` examples.
    #[must_use]
    pub fn new(capacity: usize, feature_dim: usize, num_classes: usize, seed: u64) -> Self {
        ReplayBuffer {
            capacity,
            seen: 0,
            xs: Vec::with_capacity(capacity),
            ys: Vec::with_capacity(capacity),
            rng: StdRng::seed_from_u64(seed),
            num_classes,
            feature_dim,
        }
    }

    /// Offer one example; reservoir sampling keeps a uniform sample of the
    /// whole stream regardless of length.
    pub fn offer(&mut self, x: &[f32], y: usize) {
        assert_eq!(x.len(), self.feature_dim, "feature dim mismatch");
        self.seen += 1;
        if self.xs.len() < self.capacity {
            self.xs.push(x.to_vec());
            self.ys.push(y);
        } else {
            let j = self.rng.gen_range(0..self.seen);
            if (j as usize) < self.capacity {
                self.xs[j as usize] = x.to_vec();
                self.ys[j as usize] = y;
            }
        }
    }

    /// Number of retained examples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// True when nothing has been retained yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Materialize the buffer as a dataset (for mixing into batches).
    #[must_use]
    pub fn as_dataset(&self) -> Dataset {
        let mut data = Vec::with_capacity(self.xs.len() * self.feature_dim);
        for x in &self.xs {
            data.extend_from_slice(x);
        }
        Dataset::new(
            Tensor::from_vec(data, &[self.xs.len(), self.feature_dim]),
            self.ys.clone(),
            self.num_classes,
        )
    }
}

/// Train sequentially over task phases. With `replay = None` this is naive
/// continual fine-tuning (the forgetting baseline); with a buffer, each
/// phase trains on current-phase batches mixed with replayed history.
/// Returns, per phase, the accuracy on **every** phase's test set after
/// finishing that phase — the matrix forgetting metrics are computed from.
pub fn train_sequential(
    model: &mut Sequential,
    phases: &[(Dataset, Dataset)], // (train, test) per phase
    mut replay: Option<&mut ReplayBuffer>,
    epochs_per_phase: usize,
    lr: f32,
    seed: u64,
) -> Vec<Vec<f32>> {
    let mut accuracy_matrix = Vec::with_capacity(phases.len());
    let mut opt = Sgd::with_momentum(lr, 0.9);
    for (phase_idx, (train, _)) in phases.iter().enumerate() {
        for e in 0..epochs_per_phase {
            for (x, y) in train.batches(32, seed.wrapping_add((phase_idx * 100 + e) as u64)) {
                // Mix in an equal-size replay batch when available.
                let (bx, by) = match replay.as_deref() {
                    Some(buf) if !buf.is_empty() => {
                        let replay_data = buf.as_dataset();
                        let k = y.len().min(replay_data.len());
                        let idx: Vec<usize> = (0..k).collect();
                        let r = replay_data.subset(&idx);
                        let mut xs = x.data().to_vec();
                        xs.extend_from_slice(r.x.data());
                        let rows = x.rows() + r.len();
                        let mut ys = y.clone();
                        ys.extend_from_slice(&r.y);
                        (Tensor::from_vec(xs, &[rows, x.cols()]), ys)
                    }
                    _ => (x.clone(), y.clone()),
                };
                model.zero_grad();
                let logits = model.forward_train(&bx);
                let (_, grad) = cross_entropy(&logits, &by);
                model.backward(&grad);
                opt.step(model);
            }
        }
        // Feed this phase's data into the reservoir *after* training on it.
        if let Some(buf) = replay.as_deref_mut() {
            for r in 0..train.len() {
                buf.offer(train.x.row(r), train.y[r]);
            }
        }
        accuracy_matrix.push(
            phases
                .iter()
                .map(|(_, test)| evaluate(model, test))
                .collect(),
        );
    }
    accuracy_matrix
}

/// Backward transfer: mean drop from each phase's just-trained accuracy to
/// its final accuracy. Positive = forgetting; ≈0 = retained.
#[must_use]
pub fn forgetting(accuracy_matrix: &[Vec<f32>]) -> f32 {
    let n = accuracy_matrix.len();
    if n < 2 {
        return 0.0;
    }
    let last = &accuracy_matrix[n - 1];
    let mut total = 0.0;
    for phase in 0..n - 1 {
        let just_trained = accuracy_matrix[phase][phase];
        total += just_trained - last[phase];
    }
    total / (n - 1) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinymlops_nn::data::synth_digits;
    use tinymlops_nn::model::mlp;
    use tinymlops_tensor::TensorRng;

    /// Two phases with disjoint digit groups: 0–4 then 5–9.
    fn phases() -> Vec<(Dataset, Dataset)> {
        let all = synth_digits(2000, 0.08, 123);
        let split_classes = |lo: usize, hi: usize| -> (Dataset, Dataset) {
            let idx: Vec<usize> = (0..all.len())
                .filter(|&i| all.y[i] >= lo && all.y[i] < hi)
                .collect();
            all.subset(&idx).split(0.8, 5)
        };
        vec![split_classes(0, 5), split_classes(5, 10)]
    }

    #[test]
    fn naive_finetuning_forgets_replay_remembers() {
        let phases = phases();
        let make_model = || mlp(&[64, 32, 10], &mut TensorRng::seed(3));

        let mut naive = make_model();
        let naive_matrix = train_sequential(&mut naive, &phases, None, 8, 0.05, 0);
        let naive_forget = forgetting(&naive_matrix);

        let mut buffered = make_model();
        let mut buf = ReplayBuffer::new(150, 64, 10, 1);
        let replay_matrix = train_sequential(&mut buffered, &phases, Some(&mut buf), 8, 0.05, 0);
        let replay_forget = forgetting(&replay_matrix);

        assert!(
            naive_forget > 0.3,
            "naive sequential training should forget task 1 badly, got {naive_forget}"
        );
        assert!(
            replay_forget < naive_forget / 2.0,
            "replay should at least halve forgetting: {replay_forget} vs {naive_forget}"
        );
        // And replay must not wreck the new task.
        let new_task_acc = replay_matrix[1][1];
        assert!(new_task_acc > 0.75, "phase-2 accuracy {new_task_acc}");
    }

    #[test]
    fn reservoir_is_bounded_and_uniformish() {
        let mut buf = ReplayBuffer::new(50, 2, 2, 9);
        for i in 0..5000usize {
            buf.offer(&[i as f32, 0.0], i % 2);
        }
        assert_eq!(buf.len(), 50);
        // Uniform over the stream → mean retained index ≈ 2500.
        let d = buf.as_dataset();
        let mean: f32 = (0..50).map(|r| d.x.row(r)[0]).sum::<f32>() / 50.0;
        assert!((1500.0..3500.0).contains(&mean), "reservoir mean {mean}");
    }

    #[test]
    fn forgetting_metric_edge_cases() {
        assert_eq!(forgetting(&[]), 0.0);
        assert_eq!(forgetting(&[vec![0.9, 0.1]]), 0.0);
        // Perfect retention.
        let m = vec![vec![0.9, 0.0], vec![0.9, 0.8]];
        assert!(forgetting(&m).abs() < 1e-6);
        // Total forgetting.
        let m = vec![vec![0.9, 0.0], vec![0.0, 0.8]];
        assert!((forgetting(&m) - 0.9).abs() < 1e-6);
    }
}
