//! Client-side local training.
//!
//! §III-D: *"With Federated Learning, a user downloads the current model
//! and updates it locally with his own data."* `local_train` is that step:
//! it returns a weight *delta* (not weights), which is what compression and
//! secure aggregation operate on. The optional FedProx proximal term
//! (μ/2·‖w − w_global‖²) tames client drift on non-iid data.

use tinymlops_nn::loss::cross_entropy;
use tinymlops_nn::{Dataset, Optimizer, Sequential, Sgd};

/// Local-training hyperparameters.
#[derive(Debug, Clone)]
pub struct LocalTrainConfig {
    /// Local epochs per round.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// FedProx μ (0 = plain FedAvg).
    pub prox_mu: f32,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for LocalTrainConfig {
    fn default() -> Self {
        LocalTrainConfig {
            epochs: 2,
            batch_size: 16,
            lr: 0.05,
            prox_mu: 0.0,
            seed: 0,
        }
    }
}

/// A client's contribution for one round.
#[derive(Debug, Clone)]
pub struct ClientUpdate {
    /// Flat weight delta (`local − global`).
    pub delta: Vec<f32>,
    /// Number of local examples (aggregation weight).
    pub num_examples: u64,
    /// Final local training loss (diagnostics).
    pub final_loss: f32,
}

/// Train a copy of `global` on `data` and return the weight delta.
#[must_use]
pub fn local_train(global: &Sequential, data: &Dataset, cfg: &LocalTrainConfig) -> ClientUpdate {
    let global_params = global.flat_params();
    let mut local = global.clone();
    let mut opt = Sgd::new(cfg.lr);
    let mut final_loss = 0.0f32;
    for e in 0..cfg.epochs {
        let mut total = 0.0f32;
        let mut count = 0usize;
        for (x, y) in data.batches(cfg.batch_size, cfg.seed.wrapping_add(e as u64)) {
            local.zero_grad();
            let logits = local.forward_train(&x);
            let (loss, grad) = cross_entropy(&logits, &y);
            local.backward(&grad);
            opt.step(&mut local);
            if cfg.prox_mu > 0.0 {
                // Proximal correction applied directly to the weights:
                // w ← w − lr·μ·(w − w_global). Equivalent to adding the
                // FedProx term's gradient to each step.
                let mut params = local.flat_params();
                for (p, g) in params.iter_mut().zip(&global_params) {
                    *p -= cfg.lr * cfg.prox_mu * (*p - g);
                }
                local
                    .set_flat_params(&params)
                    .expect("same architecture, same length");
            }
            total += loss * y.len() as f32;
            count += y.len();
        }
        final_loss = if count == 0 {
            0.0
        } else {
            total / count as f32
        };
    }
    let local_params = local.flat_params();
    let delta: Vec<f32> = local_params
        .iter()
        .zip(&global_params)
        .map(|(l, g)| l - g)
        .collect();
    ClientUpdate {
        delta,
        num_examples: data.len() as u64,
        final_loss,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinymlops_nn::data::gaussian_blobs;
    use tinymlops_nn::model::mlp;
    use tinymlops_tensor::TensorRng;

    fn setup() -> (Sequential, Dataset) {
        let mut rng = TensorRng::seed(1);
        let model = mlp(&[4, 12, 3], &mut rng);
        let data = gaussian_blobs(120, 3, 4, 0.5, 7);
        (model, data)
    }

    #[test]
    fn update_has_model_shape_and_counts() {
        let (model, data) = setup();
        let u = local_train(&model, &data, &LocalTrainConfig::default());
        assert_eq!(u.delta.len(), model.num_params());
        assert_eq!(u.num_examples, 120);
        assert!(u.final_loss.is_finite());
    }

    #[test]
    fn training_moves_weights() {
        let (model, data) = setup();
        let u = local_train(&model, &data, &LocalTrainConfig::default());
        let norm: f32 = u.delta.iter().map(|d| d * d).sum::<f32>().sqrt();
        assert!(norm > 1e-3, "delta norm {norm}");
    }

    #[test]
    fn global_model_is_untouched() {
        let (model, data) = setup();
        let before = model.flat_params();
        let _ = local_train(&model, &data, &LocalTrainConfig::default());
        assert_eq!(model.flat_params(), before);
    }

    #[test]
    fn prox_term_shrinks_drift() {
        let (model, data) = setup();
        let plain = local_train(
            &model,
            &data,
            &LocalTrainConfig {
                epochs: 5,
                prox_mu: 0.0,
                ..Default::default()
            },
        );
        let prox = local_train(
            &model,
            &data,
            &LocalTrainConfig {
                epochs: 5,
                prox_mu: 1.0,
                ..Default::default()
            },
        );
        let n = |d: &[f32]| d.iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!(
            n(&prox.delta) < n(&plain.delta),
            "prox {} vs plain {}",
            n(&prox.delta),
            n(&plain.delta)
        );
    }

    #[test]
    fn applying_delta_reproduces_local_model() {
        let (model, data) = setup();
        let cfg = LocalTrainConfig::default();
        let u = local_train(&model, &data, &cfg);
        let mut reconstructed = model.clone();
        let params: Vec<f32> = model
            .flat_params()
            .iter()
            .zip(&u.delta)
            .map(|(g, d)| g + d)
            .collect();
        reconstructed.set_flat_params(&params).unwrap();
        // Re-run local training deterministically; same result.
        let u2 = local_train(&model, &data, &cfg);
        let params2: Vec<f32> = model
            .flat_params()
            .iter()
            .zip(&u2.delta)
            .map(|(g, d)| g + d)
            .collect();
        assert_eq!(params, params2, "local training is deterministic");
    }
}
