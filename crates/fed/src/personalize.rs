//! Model personalization: local fine-tuning of the federated global model.
//!
//! §III-D: *"We could exploit this to train specialized models that are
//! 'overfitted' to a specific user or location. An example of this would be
//! a personalized auto complete functionality or an anomaly detection model
//! trained for predictive maintenance that over time learns the
//! characteristics of a single machine or sensor."*

use crate::client::{local_train, LocalTrainConfig};
use tinymlops_nn::{evaluate, Dataset, Sequential};

/// Per-client comparison of the global model vs its personalized variant.
#[derive(Debug, Clone)]
pub struct PersonalizationReport {
    /// Client index.
    pub client: usize,
    /// Global model accuracy on this client's local test data.
    pub global_acc: f32,
    /// Personalized model accuracy on the same data.
    pub personal_acc: f32,
    /// Personalized model accuracy on the *global* test set — measures how
    /// much generality was traded away ("overfitted to a specific user").
    pub personal_global_acc: f32,
}

/// Fine-tune `global` on each client's local data; evaluate on a held-out
/// local split and on the global test set.
#[must_use]
pub fn personalize(
    global: &Sequential,
    clients: &[Dataset],
    global_test: &Dataset,
    epochs: usize,
    lr: f32,
    seed: u64,
) -> Vec<PersonalizationReport> {
    clients
        .iter()
        .enumerate()
        .filter(|(_, d)| d.len() >= 10)
        .map(|(i, data)| {
            let (local_train_set, local_test) = data.split(0.8, seed.wrapping_add(i as u64));
            let cfg = LocalTrainConfig {
                epochs,
                lr,
                seed: seed.wrapping_add(i as u64),
                ..Default::default()
            };
            let update = local_train(global, &local_train_set, &cfg);
            let mut personal = global.clone();
            let params: Vec<f32> = global
                .flat_params()
                .iter()
                .zip(&update.delta)
                .map(|(g, d)| g + d)
                .collect();
            personal
                .set_flat_params(&params)
                .expect("delta matches model");
            PersonalizationReport {
                client: i,
                global_acc: evaluate(global, &local_test),
                personal_acc: evaluate(&personal, &local_test),
                personal_global_acc: evaluate(&personal, global_test),
            }
        })
        .collect()
}

/// Mean local-accuracy gain from personalization across clients.
#[must_use]
pub fn mean_gain(reports: &[PersonalizationReport]) -> f32 {
    if reports.is_empty() {
        return 0.0;
    }
    reports
        .iter()
        .map(|r| r.personal_acc - r.global_acc)
        .sum::<f32>()
        / reports.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::partition_dirichlet;
    use crate::server::{FlConfig, FlServer};
    use tinymlops_nn::data::synth_digits;
    use tinymlops_nn::model::mlp;
    use tinymlops_tensor::TensorRng;

    #[test]
    fn personalization_beats_global_on_skewed_clients() {
        let data = synth_digits(1500, 0.08, 31);
        let (train, test) = data.split(0.85, 0);
        // Heavy skew: each client sees few classes.
        let parts = partition_dirichlet(&train, 8, 0.1, 2);
        let mut rng = TensorRng::seed(8);
        let model = mlp(&[64, 24, 10], &mut rng);
        let mut server = FlServer::new(model, parts.clone(), FlConfig::default());
        server.run(8, &test);
        let reports = personalize(&server.global, &parts, &test, 4, 0.05, 0);
        assert!(!reports.is_empty());
        let gain = mean_gain(&reports);
        assert!(
            gain > 0.0,
            "personalization should help on skewed data, gain {gain}"
        );
        // Specialization trades global generality: personalized models are
        // on average no better globally than locally.
        let mean_pg: f32 =
            reports.iter().map(|r| r.personal_global_acc).sum::<f32>() / reports.len() as f32;
        let mean_pl: f32 =
            reports.iter().map(|r| r.personal_acc).sum::<f32>() / reports.len() as f32;
        assert!(
            mean_pl >= mean_pg - 0.02,
            "local {mean_pl} vs global {mean_pg}"
        );
    }

    #[test]
    fn tiny_clients_are_skipped() {
        let data = synth_digits(100, 0.05, 32);
        let small = data.subset(&[0, 1, 2]); // < 10 examples
        let mut rng = TensorRng::seed(9);
        let model = mlp(&[64, 8, 10], &mut rng);
        let reports = personalize(&model, &[small], &data, 1, 0.05, 0);
        assert!(reports.is_empty());
    }

    #[test]
    fn mean_gain_of_empty_is_zero() {
        assert_eq!(mean_gain(&[]), 0.0);
    }
}
