//! Pairwise-mask secure aggregation.
//!
//! §III-D relies on updates being aggregated without exposing individual
//! contributions (the privacy argument for FL collapses if the server can
//! read per-user updates). The classic Bonawitz-style construction: every
//! pair of clients (i, j) shares a seed; client i adds `PRG(seed_ij)` for
//! every j > i and subtracts it for every j < i. Summing all masked
//! updates cancels every mask exactly, revealing only the aggregate.
//!
//! Masks are generated in *fixed-point* (i64 of scaled f32) so cancellation
//! is bit-exact regardless of floating-point addition order.

use tinymlops_crypto::Drbg;

/// Fixed-point scale: f32 values are carried as round(v · 2^20).
const FP_SCALE: f64 = 1_048_576.0;

/// A client's masked update in fixed-point.
#[derive(Debug, Clone)]
pub struct MaskedUpdate {
    /// Client id.
    pub client: u32,
    /// Masked fixed-point coordinates.
    pub values: Vec<i64>,
    /// Aggregation weight (example count).
    pub weight: u64,
}

/// Helper owning the pairwise-seed schedule for a round.
pub struct SecureAggregator {
    round_seed: u64,
    participants: Vec<u32>,
}

impl SecureAggregator {
    /// A new round with the given participant ids. In production the seeds
    /// come from Diffie–Hellman pairs; here they are derived from a round
    /// seed the simulation controls.
    #[must_use]
    pub fn new(round_seed: u64, participants: Vec<u32>) -> Self {
        SecureAggregator {
            round_seed,
            participants,
        }
    }

    fn pair_mask(&self, a: u32, b: u32, len: usize) -> Vec<i64> {
        // Deterministic per unordered pair; domain-separated by round.
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let mut seed_material = Vec::with_capacity(16);
        seed_material.extend_from_slice(&self.round_seed.to_le_bytes());
        seed_material.extend_from_slice(&lo.to_le_bytes());
        seed_material.extend_from_slice(&hi.to_le_bytes());
        let mut rng = Drbg::new(&seed_material, b"secure-agg-mask");
        (0..len)
            .map(|_| (rng.next_u64() as i64) >> 24) // bounded mask magnitude
            .collect()
    }

    /// Mask a client's f32 delta.
    #[must_use]
    pub fn mask(&self, client: u32, delta: &[f32], weight: u64) -> MaskedUpdate {
        // Weighted fixed-point encoding: carry weight·delta so the server
        // can divide by total weight once.
        let mut values: Vec<i64> = delta
            .iter()
            .map(|&v| (f64::from(v) * weight as f64 * FP_SCALE).round() as i64)
            .collect();
        for &other in &self.participants {
            if other == client {
                continue;
            }
            let mask = self.pair_mask(client, other, delta.len());
            if client < other {
                for (v, m) in values.iter_mut().zip(&mask) {
                    *v = v.wrapping_add(*m);
                }
            } else {
                for (v, m) in values.iter_mut().zip(&mask) {
                    *v = v.wrapping_sub(*m);
                }
            }
        }
        MaskedUpdate {
            client,
            values,
            weight,
        }
    }

    /// Aggregate masked updates into the weighted-mean dense delta.
    /// Requires every participant's update (dropout recovery is out of
    /// scope; the caller re-runs the round without the missing client).
    #[must_use]
    pub fn aggregate(&self, updates: &[MaskedUpdate]) -> Vec<f32> {
        assert_eq!(
            updates.len(),
            self.participants.len(),
            "all participants must report (dropout handling is caller-side)"
        );
        if updates.is_empty() {
            return Vec::new();
        }
        let len = updates[0].values.len();
        let mut sum = vec![0i64; len];
        let mut total_weight = 0u64;
        for u in updates {
            assert_eq!(u.values.len(), len, "update lengths must agree");
            for (s, v) in sum.iter_mut().zip(&u.values) {
                *s = s.wrapping_add(*v);
            }
            total_weight += u.weight;
        }
        let denom = total_weight.max(1) as f64 * FP_SCALE;
        sum.iter().map(|&s| (s as f64 / denom) as f32).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn deltas(n_clients: usize, len: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n_clients)
            .map(|_| (0..len).map(|_| rng.gen_range(-0.5..0.5)).collect())
            .collect()
    }

    #[test]
    fn masks_cancel_exactly() {
        let parts: Vec<u32> = (0..5).collect();
        let agg = SecureAggregator::new(99, parts.clone());
        let ds = deltas(5, 200, 1);
        let masked: Vec<MaskedUpdate> = ds
            .iter()
            .enumerate()
            .map(|(i, d)| agg.mask(i as u32, d, 10))
            .collect();
        let result = agg.aggregate(&masked);
        // Expected: plain weighted mean (equal weights → plain mean).
        for (j, r) in result.iter().enumerate() {
            let want: f32 = ds.iter().map(|d| d[j]).sum::<f32>() / 5.0;
            assert!((r - want).abs() < 1e-4, "coord {j}: {r} vs {want}");
        }
    }

    #[test]
    fn weighted_mean_respects_example_counts() {
        let parts: Vec<u32> = vec![0, 1];
        let agg = SecureAggregator::new(7, parts);
        let d0 = vec![1.0f32; 10];
        let d1 = vec![0.0f32; 10];
        let masked = vec![agg.mask(0, &d0, 30), agg.mask(1, &d1, 10)];
        let out = agg.aggregate(&masked);
        for v in out {
            assert!((v - 0.75).abs() < 1e-4, "30:10 weighting → 0.75, got {v}");
        }
    }

    #[test]
    fn individual_masked_update_hides_the_delta() {
        let parts: Vec<u32> = (0..3).collect();
        let agg = SecureAggregator::new(3, parts);
        let delta = vec![0.1f32; 50];
        let masked = agg.mask(0, &delta, 1);
        // The masked values should look nothing like the raw fixed-point
        // encoding: compare normalized correlation.
        let raw: Vec<f64> = delta.iter().map(|&v| f64::from(v) * FP_SCALE).collect();
        let masked_f: Vec<f64> = masked.values.iter().map(|&v| v as f64).collect();
        let mean_m = masked_f.iter().sum::<f64>() / 50.0;
        let dev: f64 = masked_f.iter().map(|v| (v - mean_m).abs()).sum::<f64>() / 50.0;
        // Raw encoding is constant (0.1·2^20 ≈ 1e5); masked values must
        // fluctuate wildly around it.
        assert!(dev > raw[0].abs() * 10.0, "masks dominate: dev {dev}");
    }

    #[test]
    fn different_rounds_use_different_masks() {
        let parts: Vec<u32> = vec![0, 1];
        let a = SecureAggregator::new(1, parts.clone());
        let b = SecureAggregator::new(2, parts);
        let d = vec![0.0f32; 16];
        assert_ne!(a.mask(0, &d, 1).values, b.mask(0, &d, 1).values);
    }

    #[test]
    #[should_panic(expected = "all participants must report")]
    fn missing_participant_panics() {
        let agg = SecureAggregator::new(1, vec![0, 1, 2]);
        let d = vec![0.0f32; 4];
        let masked = vec![agg.mask(0, &d, 1), agg.mask(1, &d, 1)];
        let _ = agg.aggregate(&masked);
    }

    #[test]
    fn single_participant_round_is_just_the_update() {
        let agg = SecureAggregator::new(5, vec![42]);
        let d = vec![0.25f32, -0.5];
        let masked = vec![agg.mask(42, &d, 4)];
        let out = agg.aggregate(&masked);
        assert!((out[0] - 0.25).abs() < 1e-5);
        assert!((out[1] + 0.5).abs() < 1e-5);
    }
}
