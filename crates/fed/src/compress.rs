//! Update compression for communication-efficient federated learning.
//!
//! §III-D: *"model updates need to be shared with the cloud backend
//! periodically. This will have a direct impact on the energy consumption
//! … Several techniques have been developed to reduce the communication
//! overhead of the Federated Learning techniques"* — citing top-k/sketch
//! sparsification and ternary compression (ref 40). Implemented here:
//!
//! * [`Compression::TopK`] — keep the largest-magnitude fraction, send
//!   `(index, value)` pairs.
//! * [`Compression::Ternary`] — {−1, 0, +1}·scale at 2 bits/weight.
//! * [`Compression::Sign`] — signSGD: 1 bit/weight plus one scale.

use serde::{Deserialize, Serialize};

/// A compression strategy for client→server updates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Compression {
    /// Send raw f32 (baseline).
    None,
    /// Keep the top `frac` fraction of coordinates by magnitude.
    TopK {
        /// Fraction kept, in (0,1].
        frac: f32,
    },
    /// Ternary quantization with threshold at 0.7×mean|v|.
    Ternary,
    /// Sign quantization (1 bit + global scale).
    Sign,
}

impl Compression {
    /// Stable name for reports.
    #[must_use]
    pub fn name(self) -> String {
        match self {
            Compression::None => "none".into(),
            Compression::TopK { frac } => format!("top{:.0}%", frac * 100.0),
            Compression::Ternary => "ternary".into(),
            Compression::Sign => "sign".into(),
        }
    }
}

/// A compressed update, decompressible to a dense delta.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum CompressedUpdate {
    /// Raw values.
    Dense(Vec<f32>),
    /// Sparse `(index, value)` pairs + original length.
    Sparse {
        /// Original dense length.
        len: u32,
        /// Kept coordinates.
        entries: Vec<(u32, f32)>,
    },
    /// Ternary: packed 2-bit codes + scale.
    Ternary {
        /// Original dense length.
        len: u32,
        /// Per-update scale.
        scale: f32,
        /// 2-bit codes (00=0, 01=+1, 10=−1), 4 per byte.
        codes: Vec<u8>,
    },
    /// Sign: packed 1-bit signs + scale.
    Sign {
        /// Original dense length.
        len: u32,
        /// Per-update scale.
        scale: f32,
        /// Sign bits (1 = positive), 8 per byte.
        bits: Vec<u8>,
    },
}

impl CompressedUpdate {
    /// Compress `delta` under `method`.
    #[must_use]
    pub fn compress(delta: &[f32], method: Compression) -> Self {
        match method {
            Compression::None => CompressedUpdate::Dense(delta.to_vec()),
            Compression::TopK { frac } => {
                if delta.is_empty() {
                    return CompressedUpdate::Sparse {
                        len: 0,
                        entries: Vec::new(),
                    };
                }
                let k = ((delta.len() as f32 * frac).ceil() as usize).clamp(1, delta.len());
                let mut order: Vec<u32> = (0..delta.len() as u32).collect();
                order.sort_by(|&a, &b| {
                    delta[b as usize]
                        .abs()
                        .partial_cmp(&delta[a as usize].abs())
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                let mut entries: Vec<(u32, f32)> =
                    order[..k].iter().map(|&i| (i, delta[i as usize])).collect();
                entries.sort_by_key(|e| e.0);
                CompressedUpdate::Sparse {
                    len: delta.len() as u32,
                    entries,
                }
            }
            Compression::Ternary => {
                let mean_abs =
                    delta.iter().map(|v| v.abs()).sum::<f32>() / delta.len().max(1) as f32;
                let threshold = 0.7 * mean_abs;
                // Scale = mean |v| over kept coordinates (unbiased-ish).
                let kept: Vec<f32> = delta
                    .iter()
                    .filter(|v| v.abs() > threshold)
                    .map(|v| v.abs())
                    .collect();
                let scale = if kept.is_empty() {
                    0.0
                } else {
                    kept.iter().sum::<f32>() / kept.len() as f32
                };
                let mut codes = vec![0u8; delta.len().div_ceil(4)];
                for (i, &v) in delta.iter().enumerate() {
                    let code: u8 = if v > threshold {
                        0b01
                    } else if v < -threshold {
                        0b10
                    } else {
                        0b00
                    };
                    codes[i / 4] |= code << (2 * (i % 4));
                }
                CompressedUpdate::Ternary {
                    len: delta.len() as u32,
                    scale,
                    codes,
                }
            }
            Compression::Sign => {
                let scale = delta.iter().map(|v| v.abs()).sum::<f32>() / delta.len().max(1) as f32;
                let mut bits = vec![0u8; delta.len().div_ceil(8)];
                for (i, &v) in delta.iter().enumerate() {
                    if v >= 0.0 {
                        bits[i / 8] |= 1 << (i % 8);
                    }
                }
                CompressedUpdate::Sign {
                    len: delta.len() as u32,
                    scale,
                    bits,
                }
            }
        }
    }

    /// Reconstruct a dense delta.
    #[must_use]
    pub fn decompress(&self) -> Vec<f32> {
        match self {
            CompressedUpdate::Dense(v) => v.clone(),
            CompressedUpdate::Sparse { len, entries } => {
                let mut out = vec![0.0f32; *len as usize];
                for &(i, v) in entries {
                    out[i as usize] = v;
                }
                out
            }
            CompressedUpdate::Ternary { len, scale, codes } => (0..*len as usize)
                .map(|i| match (codes[i / 4] >> (2 * (i % 4))) & 0b11 {
                    0b01 => *scale,
                    0b10 => -*scale,
                    _ => 0.0,
                })
                .collect(),
            CompressedUpdate::Sign { len, scale, bits } => (0..*len as usize)
                .map(|i| {
                    if (bits[i / 8] >> (i % 8)) & 1 == 1 {
                        *scale
                    } else {
                        -*scale
                    }
                })
                .collect(),
        }
    }

    /// Bytes this update would occupy on the wire.
    #[must_use]
    pub fn wire_bytes(&self) -> usize {
        match self {
            CompressedUpdate::Dense(v) => v.len() * 4,
            CompressedUpdate::Sparse { entries, .. } => 4 + entries.len() * 8,
            CompressedUpdate::Ternary { codes, .. } => 8 + codes.len(),
            CompressedUpdate::Sign { bits, .. } => 8 + bits.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sample_delta(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    #[test]
    fn none_round_trips_exactly() {
        let d = sample_delta(100, 1);
        let c = CompressedUpdate::compress(&d, Compression::None);
        assert_eq!(c.decompress(), d);
        assert_eq!(c.wire_bytes(), 400);
    }

    #[test]
    fn topk_keeps_largest() {
        let d = vec![0.1f32, -5.0, 0.2, 3.0, -0.05];
        let c = CompressedUpdate::compress(&d, Compression::TopK { frac: 0.4 });
        let out = c.decompress();
        assert_eq!(out, vec![0.0, -5.0, 0.0, 3.0, 0.0]);
        assert!(c.wire_bytes() <= 20);
    }

    #[test]
    fn ternary_codes_match_signs() {
        let d = vec![1.0f32, -1.0, 0.001, 0.9, -0.8];
        let c = CompressedUpdate::compress(&d, Compression::Ternary);
        let out = c.decompress();
        assert!(out[0] > 0.0 && out[1] < 0.0);
        assert_eq!(out[2], 0.0, "small values zeroed");
        assert_eq!(out[0], -out[1], "shared scale");
    }

    #[test]
    fn sign_preserves_all_signs() {
        let d = sample_delta(333, 2);
        let c = CompressedUpdate::compress(&d, Compression::Sign);
        let out = c.decompress();
        for (a, b) in d.iter().zip(&out) {
            assert_eq!(a.signum(), b.signum());
        }
    }

    #[test]
    fn compression_ratios_ordering() {
        let d = sample_delta(10_000, 3);
        let none = CompressedUpdate::compress(&d, Compression::None).wire_bytes();
        let top10 = CompressedUpdate::compress(&d, Compression::TopK { frac: 0.1 }).wire_bytes();
        let tern = CompressedUpdate::compress(&d, Compression::Ternary).wire_bytes();
        let sign = CompressedUpdate::compress(&d, Compression::Sign).wire_bytes();
        assert!(top10 < none / 4, "topk {top10} vs {none}");
        assert!(tern < none / 10, "ternary {tern}");
        assert!(sign < tern, "sign {sign} < ternary {tern}");
        assert!(
            none / sign >= 30,
            "sign compresses ≥30x, got {}",
            none / sign
        );
    }

    #[test]
    fn reconstruction_error_ordering() {
        // More aggressive compression = more error, but direction preserved.
        let d = sample_delta(5000, 4);
        let err = |m: Compression| {
            let out = CompressedUpdate::compress(&d, m).decompress();
            d.iter()
                .zip(&out)
                .map(|(a, b)| (a - b).powi(2))
                .sum::<f32>()
                .sqrt()
        };
        let e_none = err(Compression::None);
        let e_top = err(Compression::TopK { frac: 0.25 });
        let e_sign = err(Compression::Sign);
        assert_eq!(e_none, 0.0);
        assert!(e_top > 0.0);
        assert!(e_sign > 0.0);
        // Cosine similarity with the true delta stays positive for sign.
        let out = CompressedUpdate::compress(&d, Compression::Sign).decompress();
        let dot: f32 = d.iter().zip(&out).map(|(a, b)| a * b).sum();
        assert!(dot > 0.0, "sign update points the right way");
    }

    #[test]
    fn empty_delta_handled() {
        let d: Vec<f32> = vec![];
        for m in [Compression::None, Compression::Ternary, Compression::Sign] {
            let c = CompressedUpdate::compress(&d, m);
            assert!(c.decompress().is_empty());
        }
    }
}
