//! Property-based tests: federated-learning invariants.

use proptest::prelude::*;
use tinymlops_fed::{CompressedUpdate, Compression, SecureAggregator};
use tinymlops_nn::data::gaussian_blobs;

proptest! {
    /// Compression round trips preserve length, and `None` is lossless.
    #[test]
    fn compression_preserves_length(
        delta in proptest::collection::vec(-1.0f32..1.0, 0..300),
        method in prop::sample::select(vec![
            Compression::None,
            Compression::TopK { frac: 0.1 },
            Compression::TopK { frac: 1.0 },
            Compression::Ternary,
            Compression::Sign,
        ]),
    ) {
        let c = CompressedUpdate::compress(&delta, method);
        let out = c.decompress();
        prop_assert_eq!(out.len(), delta.len());
        if method == Compression::None || method == (Compression::TopK { frac: 1.0 }) {
            prop_assert_eq!(out, delta);
        }
    }

    /// TopK keeps exactly ⌈frac·n⌉ coordinates and they are the largest.
    #[test]
    fn topk_keeps_largest_coords(
        delta in proptest::collection::vec(-10.0f32..10.0, 1..128),
        frac in 0.01f32..1.0,
    ) {
        let c = CompressedUpdate::compress(&delta, Compression::TopK { frac });
        let out = c.decompress();
        let k = ((delta.len() as f32 * frac).ceil() as usize).clamp(1, delta.len());
        let kept = out.iter().filter(|&&v| v != 0.0).count();
        prop_assert!(kept <= k, "kept {kept} > k {k}");
        // Every kept coordinate's magnitude ≥ every dropped original's
        // magnitude (ties allowed).
        let kept_min = out
            .iter()
            .zip(&delta)
            .filter(|(o, _)| **o != 0.0)
            .map(|(_, d)| d.abs())
            .fold(f32::INFINITY, f32::min);
        let dropped_max = out
            .iter()
            .zip(&delta)
            .filter(|(o, _)| **o == 0.0)
            .map(|(_, d)| d.abs())
            .fold(0.0f32, f32::max);
        prop_assert!(kept_min >= dropped_max - 1e-6);
    }

    /// Sign compression preserves every coordinate's sign.
    #[test]
    fn sign_preserves_signs(delta in proptest::collection::vec(-5.0f32..5.0, 1..200)) {
        let out = CompressedUpdate::compress(&delta, Compression::Sign).decompress();
        for (d, o) in delta.iter().zip(&out) {
            if *d != 0.0 {
                prop_assert_eq!(d.signum(), o.signum());
            }
        }
    }

    /// Compression never increases wire size beyond dense.
    #[test]
    fn compression_never_inflates(
        delta in proptest::collection::vec(-1.0f32..1.0, 32..256),
        method in prop::sample::select(vec![
            Compression::TopK { frac: 0.25 },
            Compression::Ternary,
            Compression::Sign,
        ]),
    ) {
        let dense = CompressedUpdate::compress(&delta, Compression::None).wire_bytes();
        let small = CompressedUpdate::compress(&delta, method).wire_bytes();
        prop_assert!(small <= dense, "{small} > {dense}");
    }

    /// Secure-aggregation masks cancel for any participant set and any
    /// updates: the aggregate equals the weighted mean within fixed-point
    /// tolerance.
    #[test]
    fn secure_agg_masks_cancel(
        n_clients in 1usize..7,
        len in 1usize..64,
        round in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let mut rng = tinymlops_tensor::TensorRng::seed(seed);
        let deltas: Vec<Vec<f32>> = (0..n_clients)
            .map(|_| (0..len).map(|_| rng.next_f32() - 0.5).collect())
            .collect();
        let weights: Vec<u64> = (0..n_clients).map(|i| 1 + (i as u64 % 5)).collect();
        let ids: Vec<u32> = (0..n_clients as u32).collect();
        let agg = SecureAggregator::new(round, ids.clone());
        let masked: Vec<_> = deltas
            .iter()
            .zip(&weights)
            .zip(&ids)
            .map(|((d, w), &id)| agg.mask(id, d, *w))
            .collect();
        let out = agg.aggregate(&masked);
        let total_w: u64 = weights.iter().sum();
        for j in 0..len {
            let want: f64 = deltas
                .iter()
                .zip(&weights)
                .map(|(d, w)| f64::from(d[j]) * *w as f64)
                .sum::<f64>()
                / total_w as f64;
            prop_assert!((f64::from(out[j]) - want).abs() < 1e-3, "coord {j}");
        }
    }

    /// Dataset partitions via subset never lose or duplicate examples.
    #[test]
    fn iid_partition_is_exact(clients in 1usize..12, seed in any::<u64>()) {
        let data = gaussian_blobs(120, 3, 4, 0.5, 7);
        let parts = tinymlops_fed::partition_iid(&data, clients, seed);
        let total: usize = parts.iter().map(|p| p.len()).sum();
        prop_assert_eq!(total, data.len());
    }
}
