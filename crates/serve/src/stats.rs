//! Serving statistics: latency percentiles, throughput, shed and cache
//! rates. Everything is computed from exact simulated timestamps, so a
//! fixed seed reproduces the report bit-for-bit.

use crate::observer::NodeObservation;
use crate::request::ShedReason;
use std::collections::BTreeMap;
use tinymlops_observe::LogHistogram;

/// Accumulator filled during a run.
#[derive(Debug, Default)]
pub struct ServeStats {
    latencies_us: Vec<u64>,
    hist: LogHistogram,
    shed: BTreeMap<&'static str, u64>,
    batches: u64,
    batch_items: u64,
    first_arrival_us: Option<u64>,
    last_completion_us: u64,
    /// Outputs produced by real (non-virtual) model execution.
    pub real_predictions: u64,
    /// Per-node observability output (windows, alarms, trace), populated
    /// by the engine at finish when observation is enabled. Node-local:
    /// [`ServeStats::merge`] deliberately does not combine it — the
    /// fabric extracts it per node before fleet aggregation.
    pub(crate) observation: Option<Box<NodeObservation>>,
}

impl ServeStats {
    /// New empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        ServeStats::default()
    }

    /// Record an arrival (tracks run start).
    pub fn on_arrival(&mut self, arrival_us: u64) {
        if self.first_arrival_us.is_none() {
            self.first_arrival_us = Some(arrival_us);
        }
    }

    /// Record a served request.
    pub fn on_served(&mut self, latency_us: u64, completion_us: u64) {
        self.latencies_us.push(latency_us);
        self.hist.record(latency_us);
        self.last_completion_us = self.last_completion_us.max(completion_us);
    }

    /// The log-bucketed latency histogram (same samples as the exact
    /// percentile path; bounded-memory and exactly mergeable, so it is
    /// what leaves the node in fleet aggregation).
    #[must_use]
    pub fn histogram(&self) -> &LogHistogram {
        &self.hist
    }

    /// Take the node's observability output, if the engine produced one.
    pub fn take_observation(&mut self) -> Option<Box<NodeObservation>> {
        self.observation.take()
    }

    /// Record a shed request.
    pub fn on_shed(&mut self, reason: ShedReason) {
        *self.shed.entry(reason.name()).or_insert(0) += 1;
    }

    /// Record a dispatched batch of `items` requests.
    pub fn on_batch(&mut self, items: usize) {
        self.batches += 1;
        self.batch_items += items as u64;
    }

    /// Fold another node's accumulator into this one (fleet aggregation).
    /// Latencies are concatenated, not summarized, so the merged report's
    /// percentiles are exact — identical to a single accumulator having
    /// observed every node's completions.
    pub fn merge(&mut self, other: &ServeStats) {
        self.latencies_us.extend_from_slice(&other.latencies_us);
        self.hist.merge(&other.hist);
        for (k, v) in &other.shed {
            *self.shed.entry(k).or_insert(0) += v;
        }
        self.batches += other.batches;
        self.batch_items += other.batch_items;
        self.first_arrival_us = match (self.first_arrival_us, other.first_arrival_us) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.last_completion_us = self.last_completion_us.max(other.last_completion_us);
        self.real_predictions += other.real_predictions;
    }

    /// Finish: compute the report. `cache` supplies hit/miss counts.
    #[must_use]
    pub fn report(&self, cache_hits: u64, cache_misses: u64, devices_used: usize) -> ServeReport {
        let mut sorted = self.latencies_us.clone();
        sorted.sort_unstable();
        let served = sorted.len() as u64;
        let shed_total: u64 = self.shed.values().sum();
        let span_us = self
            .last_completion_us
            .saturating_sub(self.first_arrival_us.unwrap_or(0));
        let throughput_rps = if span_us == 0 {
            0.0
        } else {
            served as f64 / (span_us as f64 / 1e6)
        };
        ServeReport {
            served,
            shed: self.shed.clone(),
            shed_total,
            shed_rate: if served + shed_total == 0 {
                0.0
            } else {
                shed_total as f64 / (served + shed_total) as f64
            },
            p50_ms: percentile_us(&sorted, 50.0) / 1000.0,
            p95_ms: percentile_us(&sorted, 95.0) / 1000.0,
            p99_ms: percentile_us(&sorted, 99.0) / 1000.0,
            p999_ms: percentile_us(&sorted, 99.9) / 1000.0,
            max_ms: sorted.last().copied().unwrap_or(0) as f64 / 1000.0,
            throughput_rps,
            mean_batch: if self.batches == 0 {
                0.0
            } else {
                self.batch_items as f64 / self.batches as f64
            },
            batches: self.batches,
            cache_hits,
            cache_misses,
            cache_hit_rate: if cache_hits + cache_misses == 0 {
                0.0
            } else {
                cache_hits as f64 / (cache_hits + cache_misses) as f64
            },
            devices_used,
            real_predictions: self.real_predictions,
        }
    }
}

/// Nearest-rank percentile over a sorted latency list (µs).
fn percentile_us(sorted: &[u64], pct: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1] as f64
}

/// The per-run serving report (deterministic under a fixed seed).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Requests served to completion.
    pub served: u64,
    /// Shed counts by reason name.
    pub shed: BTreeMap<&'static str, u64>,
    /// Total shed.
    pub shed_total: u64,
    /// Shed fraction of all admitted-or-shed requests.
    pub shed_rate: f64,
    /// Median end-to-end latency.
    pub p50_ms: f64,
    /// 95th-percentile latency.
    pub p95_ms: f64,
    /// 99th-percentile latency.
    pub p99_ms: f64,
    /// 99.9th-percentile latency.
    pub p999_ms: f64,
    /// Worst-case latency.
    pub max_ms: f64,
    /// Served requests per simulated second.
    pub throughput_rps: f64,
    /// Mean dispatched batch size.
    pub mean_batch: f64,
    /// Batches dispatched.
    pub batches: u64,
    /// Model-cache hits.
    pub cache_hits: u64,
    /// Model-cache misses.
    pub cache_misses: u64,
    /// Cache hit fraction.
    pub cache_hit_rate: f64,
    /// Devices that served at least one batch.
    pub devices_used: usize,
    /// Predictions produced by real `nn`/`quant` execution (0 in the
    /// virtual-cost mode).
    pub real_predictions: u64,
}

impl ServeReport {
    /// Shed count for one reason.
    #[must_use]
    pub fn shed_by(&self, reason: ShedReason) -> u64 {
        self.shed.get(reason.name()).copied().unwrap_or(0)
    }
}

impl std::fmt::Display for ServeReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "served {} | {:.0} rps | p50 {:.2}ms p95 {:.2}ms p99 {:.2}ms | \
             shed {:.1}% | batch {:.2} | cache {:.1}% | {} devices",
            self.served,
            self.throughput_rps,
            self.p50_ms,
            self.p95_ms,
            self.p99_ms,
            self.shed_rate * 100.0,
            self.mean_batch,
            self.cache_hit_rate * 100.0,
            self.devices_used
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_us(&sorted, 50.0), 50.0);
        assert_eq!(percentile_us(&sorted, 95.0), 95.0);
        assert_eq!(percentile_us(&sorted, 99.0), 99.0);
        assert_eq!(percentile_us(&sorted, 100.0), 100.0);
        assert_eq!(percentile_us(&[], 50.0), 0.0);
        assert_eq!(percentile_us(&[7], 99.0), 7.0);
    }

    #[test]
    fn merge_is_equivalent_to_one_accumulator() {
        let mut a = ServeStats::new();
        a.on_arrival(100);
        a.on_served(1000, 5000);
        a.on_shed(ShedReason::NoRoute);
        a.on_batch(2);
        let mut b = ServeStats::new();
        b.on_arrival(50);
        b.on_served(3000, 9000);
        b.on_served(2000, 7000);
        b.on_batch(3);
        let mut whole = ServeStats::new();
        whole.on_arrival(50);
        whole.on_served(1000, 5000);
        whole.on_served(3000, 9000);
        whole.on_served(2000, 7000);
        whole.on_shed(ShedReason::NoRoute);
        whole.on_batch(2);
        whole.on_batch(3);
        a.merge(&b);
        assert_eq!(a.report(0, 0, 1), whole.report(0, 0, 1));
    }

    #[test]
    fn report_rates() {
        let mut s = ServeStats::new();
        s.on_arrival(0);
        for i in 0..8 {
            s.on_served(1000 * (i + 1), 2_000_000);
        }
        s.on_shed(ShedReason::QuotaExhausted);
        s.on_shed(ShedReason::Overload);
        s.on_batch(4);
        s.on_batch(4);
        let r = s.report(3, 1, 5);
        assert_eq!(r.served, 8);
        assert_eq!(r.shed_total, 2);
        assert!((r.shed_rate - 0.2).abs() < 1e-12);
        assert!((r.cache_hit_rate - 0.75).abs() < 1e-12);
        assert!((r.mean_batch - 4.0).abs() < 1e-12);
        assert!((r.throughput_rps - 4.0).abs() < 1e-9, "8 served over 2s");
        assert_eq!(r.shed_by(ShedReason::QuotaExhausted), 1);
        assert_eq!(r.shed_by(ShedReason::NoRoute), 0);
    }
}
